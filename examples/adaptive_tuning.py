#!/usr/bin/env python
"""Watch Dynatune adapt live to RTT and loss fluctuations (§IV-C).

The network degrades in three acts while the cluster serves:

  act 1 — RTT ramps 50 -> 150 ms (gradual congestion);
  act 2 — packet loss climbs to 20 % (flaky WAN segment);
  act 3 — everything recovers.

Every five virtual seconds the script prints the ground truth next to what
Dynatune inferred: the measured loss rate, the tuned election timeout of
one follower, and the heartbeat interval the leader applies to it.  The
run ends with a spike drill proving the pre-vote guard (Fig. 6b): a sudden
10× RTT jump causes false detections but no leader change and no outage.

Run:  python examples/adaptive_tuning.py
"""

from repro import ClusterConfig, DynatunePolicy, build_cluster
from repro.cluster.measurements import leaderless_intervals, total_interval_length
from repro.dynatune.config import DynatuneConfig
from repro.net.schedule import NetworkSchedule, ScheduleAction

SAMPLE_MS = 5_000.0


def main() -> None:
    # A smaller measurement window (120 samples) keeps the demo snappy;
    # the paper's 1000-sample window adapts the same way, just slower.
    cluster = build_cluster(
        ClusterConfig(n_nodes=5, seed=99, rtt_ms=50.0),
        lambda name: DynatunePolicy(DynatuneConfig(max_list_size=120)),
    )
    schedule = NetworkSchedule(
        [
            ScheduleAction(at_ms=20_000.0, rtt_ms=100.0, label="congestion builds"),
            ScheduleAction(at_ms=35_000.0, rtt_ms=150.0, label="congestion peak"),
            ScheduleAction(at_ms=50_000.0, loss=0.20, label="flaky segment"),
            ScheduleAction(at_ms=70_000.0, rtt_ms=50.0, loss=0.0, label="recovery"),
        ]
    )
    schedule.install(cluster.loop, cluster.network)
    cluster.start()
    leader = cluster.run_until_leader()
    watched = next(n for n in cluster.names if n != leader)
    follower = cluster.node(watched)
    leader_node = cluster.node(leader)

    print(f"leader={leader}, watching follower {watched}")
    print(
        f"{'t(s)':>5} {'true RTT':>9} {'true loss':>10} | "
        f"{'measured p':>10} {'tuned Et':>9} {'applied h':>10}"
    )
    while cluster.loop.now < 90_000.0:
        cluster.run_for(SAMPLE_MS)
        rtt, loss = schedule.value_at(cluster.loop.now)
        pol = follower.policy
        et = pol.tuned_et_ms
        h = leader_node.policy.applied_h_ms(watched)
        print(
            f"{cluster.loop.now / 1000:5.0f} "
            f"{(rtt if rtt is not None else 50):>7.0f}ms "
            f"{(loss if loss is not None else 0.0):>9.0%} | "
            f"{pol.measurement.loss_rate():>9.1%} "
            f"{(f'{et:7.0f}ms' if et is not None else '  (warm)'):>9} "
            f"{(f'{h:8.0f}ms' if h is not None else ' default'):>10}"
        )

    # --- spike drill: Fig. 6b in miniature ---------------------------- #
    print("\nspike drill: RTT 50 -> 500 ms for 15 s")
    t0 = cluster.loop.now
    term_before = leader_node.current_term
    cluster.network.set_all_rtt(500.0)
    cluster.run_for(15_000.0)
    cluster.network.set_all_rtt(50.0)
    cluster.run_for(10_000.0)
    timeouts = [r for r in cluster.trace.of_kind("election_timeout") if r.time > t0]
    elections = [r for r in cluster.trace.of_kind("election_start") if r.time > t0]
    ots = total_interval_length(
        leaderless_intervals(cluster.trace, t_start=t0, t_end=cluster.loop.now)
    )
    print(f"  false detections : {len(timeouts)}")
    print(f"  elections        : {len(elections)}")
    print(f"  leader changes   : {int(leader_node.current_term != term_before)}")
    print(f"  out-of-service   : {ots:.0f} ms")
    print("  -> the pre-vote phase absorbed every false alarm (paper Fig. 6b)")


if __name__ == "__main__":
    main()
