#!/usr/bin/env python
"""The paper's §IV-E future-work optimisations, measured.

The paper proposes two leader-side optimisations to claw back Dynatune's
6.4 % peak-throughput deficit and leaves them as future work; this library
implements both behind ``RaftConfig`` flags:

1. **Heartbeat suppression under load** — a replication message already
   resets the follower's election timer, so it counts as the heartbeat and
   pushes the next dedicated one out by a full interval.
2. **Consolidated heartbeat timer** — one timer at the minimum tuned ``h``
   beating for every follower, instead of ``n − 1`` independent timers.

This example runs the same open-loop workload against a Dynatune cluster
with each configuration and reports the leader's heartbeat traffic and
CPU time, plus proof that failover still works with both enabled.

Run:  python examples/throughput_extensions.py
"""

from repro import ClusterConfig, DynatunePolicy, build_cluster
from repro.cluster.workload import OpenLoopDriver
from repro.raft.types import RaftConfig

WORKLOAD_RPS = 300.0
LOAD_MS = 15_000.0


def run_config(label: str, raft: RaftConfig) -> None:
    cluster = build_cluster(
        ClusterConfig(
            n_nodes=5, seed=31, rtt_ms=50.0, raft=raft, with_cost_model=True
        ),
        lambda name: DynatunePolicy(),
    )
    client = cluster.add_client("client")
    cluster.start()
    leader = cluster.run_until_leader()
    cluster.run_for(5_000)  # warm up + tune

    leader_node = cluster.node(leader)
    hb_before = leader_node.metrics.heartbeats_sent
    busy_before = cluster.cost_model.busy_ms[leader]
    driver = OpenLoopDriver(
        cluster.loop, client, rps=WORKLOAD_RPS, rng=cluster.rngs.stream("load")
    )
    driver.start()
    cluster.run_for(LOAD_MS)
    driver.stop()
    cluster.run_for(2_000)

    hb = leader_node.metrics.heartbeats_sent - hb_before
    busy = cluster.cost_model.busy_ms[leader] - busy_before
    done = len(client.completed)
    print(
        f"{label:<28} heartbeats={hb:5d}  leaderCPU={busy:7.1f} ms  "
        f"commits={done:5d}  timers={len(leader_node.timers.names())}"
    )

    # Failover drill: the optimisations must not break leader failure
    # detection (suppressed heartbeats stop with the leader too).
    from repro.cluster.faults import pause_for

    pause_for(cluster.loop, leader_node, 6_000.0)
    new = cluster.run_until_leader(exclude=leader, timeout_ms=30_000)
    print(f"{'':<28} failover ok -> {new}")


def main() -> None:
    print(f"open-loop workload: {WORKLOAD_RPS:.0f} req/s for {LOAD_MS / 1000:.0f} s\n")
    run_config("baseline Dynatune", RaftConfig())
    run_config(
        "+ heartbeat suppression", RaftConfig(suppress_heartbeats_under_load=True)
    )
    run_config(
        "+ consolidated timer", RaftConfig(consolidated_heartbeat_timer=True)
    )
    run_config(
        "+ both",
        RaftConfig(
            suppress_heartbeats_under_load=True, consolidated_heartbeat_timer=True
        ),
    )
    print(
        "\nSuppression removes most dedicated heartbeats while the workload"
        "\nruns (replication carries liveness); the consolidated timer trades"
        "\nper-path pacing for O(1) timer management (§IV-E)."
    )


if __name__ == "__main__":
    main()
