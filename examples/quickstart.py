#!/usr/bin/env python
"""Quickstart: a five-node Dynatune cluster surviving a leader failure.

This walks the library's core loop end to end:

1. build a cluster (one call — Dynatune vs Raft is just the policy);
2. run a replicated KV workload through a client;
3. watch Dynatune tune the election timeout down to network scale;
4. kill the leader and measure how fast the service recovers;
5. verify that every replica holds the same data.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, DynatunePolicy, build_cluster
from repro.cluster.faults import pause_for
from repro.cluster.measurements import LEADER_FAILURE_KIND, extract_failure_episodes
from repro.raft.state_machine import kv_get, kv_put


def main() -> None:
    # 1. A five-server cluster with 100 ms RTT between every pair — the
    #    paper's §IV-B testbed.  Dynatune's defaults match the paper:
    #    s = 2, x = 0.999, minListSize = 10, maxListSize = 1000.
    cluster = build_cluster(
        ClusterConfig(n_nodes=5, seed=2024, rtt_ms=100.0),
        lambda name: DynatunePolicy(),
    )
    client = cluster.add_client("client")
    cluster.start()

    leader = cluster.run_until_leader()
    print(f"[t={cluster.loop.now / 1000:6.2f}s] leader elected: {leader}")

    # 2. Replicate some state.
    for i in range(10):
        client.submit(kv_put(f"user:{i}", {"id": i, "active": True}))
    cluster.run_for(2_000)
    print(
        f"[t={cluster.loop.now / 1000:6.2f}s] {len(client.completed)} writes "
        f"committed, mean latency {client.mean_latency_ms():.0f} ms"
    )

    # 3. Let Dynatune measure and tune (10 RTT samples needed, ~1 s).
    cluster.run_for(6_000)
    for name in cluster.names:
        node = cluster.node(name)
        if name != leader:
            print(
                f"    {name}: tuned election timeout = "
                f"{node.policy.tuned_et_ms:7.1f} ms "
                f"(default was 1000 ms; RTT is 100 ms)"
            )

    # 4. Fail the leader the way the paper does (container sleep) and time
    #    the recovery from the trace, like the paper reads server logs.
    print(f"[t={cluster.loop.now / 1000:6.2f}s] killing leader {leader}...")
    pause_for(cluster.loop, cluster.node(leader), 8_000.0, kind=LEADER_FAILURE_KIND)
    new_leader = cluster.run_until_leader(exclude=leader, timeout_ms=30_000)
    episode = extract_failure_episodes(cluster.trace, cluster_size=5)[0]
    print(
        f"[t={cluster.loop.now / 1000:6.2f}s] new leader: {new_leader} — "
        f"detection {episode.detection_latency_ms:.0f} ms, "
        f"out-of-service {episode.ots_ms:.0f} ms"
    )

    # 5. The service keeps working and the replicas agree.
    client.submit(kv_put("after-failover", True))
    client.submit(kv_get("user:7"))
    cluster.run_for(4_000)
    get = [r for r in client.completed if getattr(r.command, "op", "") == "get"][0]
    print(f"    read user:7 -> {get.result}")

    cluster.run_for(10_000)  # old leader rejoins and catches up
    snapshots = [cluster.node(n).state_machine.snapshot() for n in cluster.names]
    assert all(s == snapshots[0] for s in snapshots), "replicas diverged!"
    print(f"    all 5 replicas agree on {len(snapshots[0])} keys ✓")


if __name__ == "__main__":
    main()
