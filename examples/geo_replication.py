#!/usr/bin/env python
"""Geo-replicated SMR across five continents (the paper's §IV-D scenario).

Five replicas in Tokyo, London, California, Sydney and São Paulo, with a
realistic inter-region RTT matrix (105–310 ms).  The example contrasts
static Raft timeouts against Dynatune's per-path tuning:

* with static parameters, every path shares one conservative Et = 1000 ms;
* with Dynatune, *each leader-follower pair* tunes to its own RTT — the
  Tokyo–California follower detects in ~110 ms while Sydney–São Paulo
  tolerates its 310 ms path, something no single static value can do.

Run:  python examples/geo_replication.py
"""

from repro import ClusterConfig, DynatunePolicy, StaticPolicy, build_cluster
from repro.cluster.faults import pause_for
from repro.cluster.measurements import LEADER_FAILURE_KIND, extract_failure_episodes
from repro.net.topology import region_rtt


def run_system(label: str, policy_factory) -> None:
    cluster = build_cluster(
        ClusterConfig(n_nodes=5, seed=7, topology="aws"),
        policy_factory,
    )
    cluster.start()
    leader = cluster.run_until_leader()
    placement = cluster.placement or {}
    print(f"\n=== {label} ===")
    print(f"leader: {leader} ({placement.get(leader)})")
    cluster.run_for(10_000)  # warm up / tune

    # Show the per-path election timeouts now in force.
    for name in cluster.names:
        if name == leader:
            continue
        node = cluster.node(name)
        rtt = region_rtt(placement[name], placement[leader])
        tuned = getattr(node.policy, "tuned_et_ms", None)
        et = tuned if tuned is not None else node.policy.election_timeout_ms(leader)
        print(
            f"  {name} ({placement[name]:<10}) RTT to leader {rtt:5.0f} ms"
            f" -> election timeout {et:7.1f} ms"
        )

    # Kill the leader and measure recovery.
    pause_for(cluster.loop, cluster.node(leader), 10_000.0, kind=LEADER_FAILURE_KIND)
    new = cluster.run_until_leader(exclude=leader, timeout_ms=60_000)
    ep = extract_failure_episodes(cluster.trace, cluster_size=5)[0]
    print(
        f"  leader {leader} failed -> {new} ({placement.get(new)}) took over: "
        f"detection {ep.detection_latency_ms:7.0f} ms, OTS {ep.ots_ms:7.0f} ms"
    )


def main() -> None:
    run_system("Raft (static Et=1000ms, h=100ms)", lambda name: StaticPolicy.raft_default())
    run_system("Dynatune (per-path tuning)", lambda name: DynatunePolicy())
    print(
        "\nDynatune detects geo-failures several times faster because each"
        "\npath's timeout sits just above that path's RTT instead of at a"
        "\none-size-fits-all constant (paper Fig. 8: 1137 ms -> 213 ms)."
    )


if __name__ == "__main__":
    main()
