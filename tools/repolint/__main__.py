"""Command-line entry point: ``python -m tools.repolint [paths...]``.

Exit status 0 when every finding is suppressed or baselined, 1 when any
active finding (or parse error) remains, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from tools.repolint.config import DEFAULT_CONFIG
from tools.repolint.engine import Baseline, load_project, run_repolint
from tools.repolint.rules import rule_classes
from tools.repolint.rules.tracekinds import generate_trace_registry

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m tools.repolint",
        description="AST-based invariant checker for this repository.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="root directories to scan (default: src)",
    )
    parser.add_argument("--json", action="store_true", help="JSON report")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="baseline file of grandfathered findings",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore the baseline (report grandfathered findings too)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write every active finding into the baseline file and exit 0",
    )
    parser.add_argument(
        "--write-trace-registry",
        action="store_true",
        help="regenerate the trace-kind registry module from the scan",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for cls in rule_classes():
            print(f"{cls.name:28s} {cls.description}")
        return 0

    roots = [Path(p) for p in args.paths]
    for root in roots:
        if not root.is_dir():
            print(f"error: {root} is not a directory", file=sys.stderr)
            return 2

    if args.write_trace_registry:
        for root in roots:
            project, errors = load_project(root, DEFAULT_CONFIG)
            if errors:
                print("\n".join(errors), file=sys.stderr)
                return 1
            target = root / DEFAULT_CONFIG.trace_registry_modpath
            if not target.parent.is_dir():
                continue
            target.write_text(
                generate_trace_registry(project, DEFAULT_CONFIG),
                encoding="utf-8",
            )
            print(f"wrote {target}")
        return 0

    baseline = (
        None if args.no_baseline else Baseline.load(args.baseline)
    )
    t0 = time.perf_counter()
    reports = [
        run_repolint(root, config=DEFAULT_CONFIG, baseline=baseline)
        for root in roots
    ]
    elapsed = time.perf_counter() - t0

    findings = [f for r in reports for f in r.findings]
    suppressed = [f for r in reports for f in r.suppressed]
    baselined = [f for r in reports for f in r.baselined]
    parse_errors = [e for r in reports for e in r.parse_errors]
    files = sum(r.files_checked for r in reports)

    if args.write_baseline:
        Baseline.from_findings(findings).dump(args.baseline)
        print(f"wrote {len(findings)} finding(s) to {args.baseline}")
        return 0

    if args.json:
        import json as _json

        print(
            _json.dumps(
                {
                    "ok": not findings and not parse_errors,
                    "files_checked": files,
                    "elapsed_s": round(elapsed, 3),
                    "findings": [
                        {
                            "rule": f.rule,
                            "path": f.path,
                            "line": f.line,
                            "symbol": f.symbol,
                            "message": f.message,
                        }
                        for f in findings
                    ],
                    "suppressed": len(suppressed),
                    "baselined": len(baselined),
                    "parse_errors": parse_errors,
                },
                indent=2,
            )
        )
    else:
        for err in parse_errors:
            print(f"PARSE ERROR: {err}")
        for f in findings:
            print(f.render())
        status = "FAILED" if (findings or parse_errors) else "ok"
        print(
            f"repolint: {status} — {files} files, {len(findings)} "
            f"finding(s), {len(suppressed)} suppressed, "
            f"{len(baselined)} baselined, {elapsed:.2f}s"
        )
    return 1 if (findings or parse_errors) else 0


if __name__ == "__main__":
    raise SystemExit(main())
