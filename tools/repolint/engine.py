"""repolint core: file loading, rule driving, suppressions, baseline.

Design notes:

* **Findings are keyed without line numbers** — ``(rule, path, symbol,
  message)`` — so a committed baseline survives unrelated edits above a
  grandfathered finding.  Rule authors must therefore keep line numbers
  (and anything else that drifts) out of the message text.
* **Suppressions are per line**: ``# repolint: disable=rule-a,rule-b``
  on the reported line, or on a standalone comment line directly above
  it (multi-line calls report at the statement head, so the comment
  naturally sits on top).
* **Two pass shapes**: :meth:`Rule.check_file` runs once per parsed
  file; :meth:`Rule.finish` runs once at the end with the whole
  :class:`Project` — cross-file rules (trace registry, dispatch
  completeness) do their work there.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
from pathlib import Path
from typing import Iterable, Iterator

from tools.repolint.config import DEFAULT_CONFIG, RepolintConfig

__all__ = [
    "Finding",
    "FileContext",
    "Project",
    "Rule",
    "Baseline",
    "Report",
    "run_repolint",
]

_SUPPRESS_RE = re.compile(r"#\s*repolint:\s*disable=([A-Za-z0-9_,\- ]+)")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a specific site."""

    rule: str
    path: str  # modpath (relative to the scanned root, posix)
    line: int
    message: str
    symbol: str = ""  # stable anchor (class/function/kind name) if any

    @property
    def key(self) -> tuple[str, str, str, str]:
        """Line-independent identity used for baseline matching."""
        return (self.rule, self.path, self.symbol, self.message)

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class FileContext:
    """One parsed source file plus the helpers rules need."""

    def __init__(
        self, root: Path, path: Path, config: RepolintConfig
    ) -> None:
        self.root = root
        self.path = path
        self.modpath = path.relative_to(root).as_posix()
        self.config = config
        self.source = path.read_text(encoding="utf-8")
        self.lines = self.source.splitlines()
        self.tree = ast.parse(self.source, filename=str(path))

    def finding(
        self, rule: str, node: ast.AST | int, message: str, symbol: str = ""
    ) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 0)
        return Finding(
            rule=rule, path=self.modpath, line=line, message=message, symbol=symbol
        )

    def suppressed_rules_at(self, line: int) -> frozenset[str]:
        """Rules disabled for ``line`` (1-based) via suppression comments."""
        out: set[str] = set()
        for cand in (line, line - 1):
            if 1 <= cand <= len(self.lines):
                text = self.lines[cand - 1]
                if cand != line and text.lstrip()[:1] != "#":
                    continue  # the line above only counts as a bare comment
                m = _SUPPRESS_RE.search(text)
                if m:
                    out.update(
                        r.strip() for r in m.group(1).split(",") if r.strip()
                    )
        return frozenset(out)


class Project:
    """Every parsed file of one run, handed to cross-file passes."""

    def __init__(
        self, root: Path, files: list[FileContext], config: RepolintConfig
    ) -> None:
        self.root = root
        self.files = files
        self.config = config
        self._by_modpath = {f.modpath: f for f in files}

    def file(self, modpath: str) -> FileContext | None:
        return self._by_modpath.get(modpath)


class Rule:
    """Base class for one lint rule (a family may ship several)."""

    name: str = ""
    description: str = ""

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        return ()

    def finish(self, project: Project) -> Iterable[Finding]:
        return ()


class Baseline:
    """Committed list of grandfathered findings (line-independent keys)."""

    def __init__(self, entries: list[dict[str, str]]) -> None:
        self.entries = entries
        self._keys = {
            (e["rule"], e["path"], e.get("symbol", ""), e["message"])
            for e in entries
        }

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls([])
        data = json.loads(path.read_text(encoding="utf-8"))
        return cls(list(data.get("findings", [])))

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(
            [
                {
                    "rule": f.rule,
                    "path": f.path,
                    "symbol": f.symbol,
                    "message": f.message,
                }
                for f in sorted(findings, key=lambda f: f.key)
            ]
        )

    def dump(self, path: Path) -> None:
        path.write_text(
            json.dumps({"findings": self.entries}, indent=2, sort_keys=True)
            + "\n",
            encoding="utf-8",
        )

    def covers(self, finding: Finding) -> bool:
        return finding.key in self._keys

    def __len__(self) -> int:
        return len(self.entries)


@dataclasses.dataclass
class Report:
    """Outcome of one repolint run."""

    findings: list[Finding]  # active (not suppressed, not baselined)
    suppressed: list[Finding]
    baselined: list[Finding]
    parse_errors: list[str]
    files_checked: int

    @property
    def ok(self) -> bool:
        return not self.findings and not self.parse_errors

    def to_json(self) -> str:
        def enc(f: Finding) -> dict[str, object]:
            return {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "symbol": f.symbol,
                "message": f.message,
            }

        return json.dumps(
            {
                "ok": self.ok,
                "files_checked": self.files_checked,
                "findings": [enc(f) for f in self.findings],
                "suppressed": [enc(f) for f in self.suppressed],
                "baselined": [enc(f) for f in self.baselined],
                "parse_errors": self.parse_errors,
            },
            indent=2,
        )


def iter_python_files(root: Path) -> Iterator[Path]:
    yield from sorted(
        p
        for p in root.rglob("*.py")
        if "__pycache__" not in p.parts and not p.name.startswith(".")
    )


def load_project(
    root: Path, config: RepolintConfig
) -> tuple[Project, list[str]]:
    files: list[FileContext] = []
    errors: list[str] = []
    for path in iter_python_files(root):
        try:
            files.append(FileContext(root, path, config))
        except SyntaxError as exc:
            errors.append(f"{path}: syntax error: {exc.msg} (line {exc.lineno})")
    return Project(root, files, config), errors


def run_repolint(
    root: Path | str,
    *,
    config: RepolintConfig = DEFAULT_CONFIG,
    rules: Iterable[Rule] | None = None,
    baseline: Baseline | None = None,
) -> Report:
    """Run every rule over every ``.py`` file under ``root``."""
    from tools.repolint.rules import default_rules

    root = Path(root)
    active_rules = list(rules) if rules is not None else default_rules(config)
    project, parse_errors = load_project(root, config)

    raw_set: set[Finding] = set()
    for rule in active_rules:
        for ctx in project.files:
            raw_set.update(rule.check_file(ctx))
        raw_set.update(rule.finish(project))
    raw = list(raw_set)

    findings: list[Finding] = []
    suppressed: list[Finding] = []
    baselined: list[Finding] = []
    for f in sorted(raw, key=lambda f: (f.path, f.line, f.rule, f.message)):
        ctx = project.file(f.path)
        if ctx is not None and f.rule in ctx.suppressed_rules_at(f.line):
            suppressed.append(f)
        elif baseline is not None and baseline.covers(f):
            baselined.append(f)
        else:
            findings.append(f)
    return Report(
        findings=findings,
        suppressed=suppressed,
        baselined=baselined,
        parse_errors=parse_errors,
        files_checked=len(project.files),
    )
