"""repolint — the repository's AST-based invariant checker.

The reproduction's headline claims (byte-identical digests for any
``REPRO_JOBS``, the §IV-A detection-time results, the fuzz oracle's
verdicts) rest on code invariants that no general-purpose linter knows
about: simulation code must never read wall clocks or unseeded RNGs,
hot-path message classes must be slotted and allocation-free, every
emitted trace kind must be registered so safety checkers and trace gates
cannot be blinded by a typo, every message class must have a dispatch
handler, and protocol state must only change through its designated
mutators.  ``repolint`` turns each of those conventions into a build
failure.

Usage::

    python -m tools.repolint src/                # human-readable report
    python -m tools.repolint src/ --json         # machine-readable report
    python -m tools.repolint src/ --write-trace-registry
    python -m tools.repolint src/ --write-baseline

See ``tools/repolint/rules/`` for the rule families and README.md
("Static analysis & invariants") for the suppression/baseline workflow.
"""

from tools.repolint.config import DEFAULT_CONFIG, RepolintConfig
from tools.repolint.engine import (
    Baseline,
    FileContext,
    Finding,
    Project,
    Rule,
    run_repolint,
)

__all__ = [
    "Baseline",
    "DEFAULT_CONFIG",
    "FileContext",
    "Finding",
    "Project",
    "RepolintConfig",
    "Rule",
    "run_repolint",
]
