"""Rule family 6 — durable-write hygiene.

The durable storage engine only works if every mutation of hard state
flows through the storage-backed mutators that journal it: the node's
log may only be mutated (``append_new`` / ``try_append`` / ``compact`` /
``install_snapshot``) from the designated methods whose persist barriers
cover the write, and ``self.snapshot`` may only be assigned where a
``storage.save_snapshot`` precedes it.  A mutation anywhere else writes
state the WAL never sees — it would survive in memory and silently
vanish at the next crash, which is precisely the bug class the
crash-point fuzzer exists to catch *after* the fact.  This rule catches
it before.

``durable-write-hygiene`` flags, across the whole scan:

* calls to a restricted log-mutator (``<x>.log.append_new(...)`` or via
  the hot-path alias ``log = self.log; log.append_new(...)``) outside
  the configured owner methods, and
* assignments to a ``.snapshot`` attribute outside the configured
  snapshot writers.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.repolint.astutil import iter_functions
from tools.repolint.config import RepolintConfig
from tools.repolint.engine import FileContext, Finding, Rule

__all__ = ["DurableWriteRule"]


class DurableWriteRule(Rule):
    name = "durable-write-hygiene"
    description = (
        "hard-state mutations (log mutators, snapshot writes) may only "
        "happen inside designated storage-backed methods"
    )

    def __init__(self, config: RepolintConfig) -> None:
        self.config = config

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        mutators = self.config.durable_log_mutators
        snap_writers = self.config.durable_snapshot_writers
        if not mutators and not snap_writers:
            return
        spans: list[tuple[int, int, str]] = []
        for qual, fn in iter_functions(ctx.tree):
            spans.append((fn.lineno, fn.end_lineno or fn.lineno, qual))
        spans.sort()

        def qualname_at(line: int) -> str:
            best = ""
            for lo, hi, qual in spans:
                if lo <= line <= hi:
                    best = qual  # innermost wins: spans sorted by start
            return best

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                method = _log_mutator_call(node)
                if method is None or method not in mutators:
                    continue
                qual = qualname_at(node.lineno)
                if qual in mutators[method]:
                    continue
                where = f"in {qual}" if qual else "at module level"
                allowed = ", ".join(sorted(mutators[method]))
                yield ctx.finding(
                    self.name,
                    node,
                    f"log mutator {method!r} called {where} — only "
                    f"[{allowed}] may mutate the durable log",
                    symbol=method,
                )
            elif isinstance(node, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    list(node.targets)
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if not (
                        isinstance(target, ast.Attribute)
                        and target.attr == "snapshot"
                    ):
                        continue
                    qual = qualname_at(node.lineno)
                    if qual in snap_writers:
                        continue
                    where = f"in {qual}" if qual else "at module level"
                    allowed = ", ".join(sorted(snap_writers))
                    yield ctx.finding(
                        self.name,
                        node,
                        f"write to 'snapshot' {where} — only [{allowed}] "
                        "may install a snapshot (storage.save_snapshot "
                        "must cover it)",
                        symbol="snapshot",
                    )


def _log_mutator_call(call: ast.Call) -> str | None:
    """Name of the restricted log mutator this call invokes, if any.

    Matches ``<expr>.log.<method>(...)`` and the hot-path alias form
    ``log.<method>(...)`` — reads through other receivers never match.
    """
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    base = func.value
    if isinstance(base, ast.Attribute) and base.attr == "log":
        return func.attr
    if isinstance(base, ast.Name) and base.id == "log":
        return func.attr
    return None
