"""Rule family 2 — hot-path discipline.

* ``hotpath-slots`` — every class in the configured message/metadata
  modules, and every envelope class (``_Delivery``, ``Message``,
  ``TraceRecord``) wherever it lives, must declare ``__slots__`` either
  directly or via ``@dataclass(slots=True)``.  A slotless payload class
  adds a per-instance ``__dict__`` on the hottest allocation path in the
  simulator.
* ``hotpath-alloc`` — functions on the configured hot list (message
  delivery, the envelope-free transmit, heartbeat send/receive, the
  measurement-window recorders, trace recording) must not contain
  comprehensions, generator expressions, lambdas or f-strings: each is a
  hidden per-call allocation (comprehensions also pay a frame).
  Allocations inside ``raise`` statements are exempt — error paths may
  format freely.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.repolint.astutil import class_has_slots, iter_functions
from tools.repolint.config import RepolintConfig
from tools.repolint.engine import FileContext, Finding, Rule

__all__ = ["SlotsRule", "HotPathAllocRule"]


class SlotsRule(Rule):
    name = "hotpath-slots"
    description = "message/envelope classes must declare __slots__"

    def __init__(self, config: RepolintConfig) -> None:
        self.config = config

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        module_wide = ctx.modpath in self.config.slots_modules
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            wanted = module_wide or node.name in self.config.slots_class_names
            if not wanted:
                continue
            if _is_exception(node) or _is_protocol_or_enum(node):
                continue
            if not class_has_slots(node):
                yield ctx.finding(
                    self.name,
                    node,
                    f"class {node.name} must declare __slots__ (or use "
                    f"@dataclass(slots=True)) — it is a hot-path "
                    f"message/envelope class",
                    symbol=node.name,
                )


def _base_names(node: ast.ClassDef) -> list[str]:
    out = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            out.append(base.id)
        elif isinstance(base, ast.Attribute):
            out.append(base.attr)
    return out


def _is_exception(node: ast.ClassDef) -> bool:
    return any(b.endswith(("Error", "Exception")) for b in _base_names(node))


def _is_protocol_or_enum(node: ast.ClassDef) -> bool:
    return any(
        b in {"Protocol", "Enum", "IntEnum", "StrEnum"}
        for b in _base_names(node)
    )


_ALLOC_NODES = (
    ast.ListComp,
    ast.SetComp,
    ast.DictComp,
    ast.GeneratorExp,
    ast.Lambda,
    ast.JoinedStr,
)

_ALLOC_LABEL = {
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
    ast.GeneratorExp: "generator expression",
    ast.Lambda: "lambda",
    ast.JoinedStr: "f-string",
}


class HotPathAllocRule(Rule):
    name = "hotpath-alloc"
    description = (
        "configured hot functions must be free of comprehension/lambda/"
        "f-string allocations (raise statements exempt)"
    )

    def __init__(self, config: RepolintConfig) -> None:
        self.config = config

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        wanted = self.config.hot_functions.get(ctx.modpath)
        if not wanted:
            return
        seen: set[str] = set()
        for qual, fn in iter_functions(ctx.tree):
            if qual not in wanted:
                continue
            seen.add(qual)
            yield from self._check_function(ctx, qual, fn)
        for missing in sorted(wanted - seen):
            yield ctx.finding(
                self.name,
                1,
                f"hot function {missing} is configured but was not found "
                f"in this module — update tools/repolint/config.py",
                symbol=missing,
            )

    def _check_function(
        self,
        ctx: FileContext,
        qual: str,
        fn: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterable[Finding]:
        raise_spans = [
            (n.lineno, n.end_lineno or n.lineno)
            for n in ast.walk(fn)
            if isinstance(n, ast.Raise)
        ]

        def in_raise(node: ast.AST) -> bool:
            line = getattr(node, "lineno", 0)
            return any(lo <= line <= hi for lo, hi in raise_spans)

        for node in ast.walk(fn):
            if isinstance(node, _ALLOC_NODES) and not in_raise(node):
                yield ctx.finding(
                    self.name,
                    node,
                    f"{_ALLOC_LABEL[type(node)]} in hot function {qual} — "
                    f"hoist it off the per-call path",
                    symbol=qual,
                )
