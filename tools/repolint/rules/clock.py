"""Rule family 7 — node-clock hygiene.

Every node owns a :class:`~repro.sim.clock.NodeClock` through which all
of its protocol-visible time flows: timer durations are scaled by the
node's drift and timestamps carry its offset, so the gray-failure
scenarios can skew one node's clock and watch the protocol cope.  That
only works if the protocol layers never reach around the adapter: a raw
``loop.now`` read inside ``repro/raft/`` or ``repro/dynatune/`` is a
measurement the skew machinery cannot touch — under ``SetClock`` it
silently reports simulation-frame time and the experiment measures
nothing.

``node-clock-hygiene`` flags any read of a ``.now`` attribute whose
receiver names the shared event loop (``loop.now``, ``self.loop.now``,
``self._loop.now``, hot-path aliases included) inside the configured
clock scopes.  Reads through the adapter (``self.clock.now()``,
``self._now()``, ``clock.sim_now()`` for genuinely sim-frame
bookkeeping) never match — the adapter is the point.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.repolint.astutil import iter_functions
from tools.repolint.config import RepolintConfig
from tools.repolint.engine import FileContext, Finding, Rule

__all__ = ["NodeClockRule"]


class NodeClockRule(Rule):
    name = "node-clock-hygiene"
    description = (
        "protocol code reads time through the NodeClock adapter, never "
        "raw loop.now"
    )

    def __init__(self, config: RepolintConfig) -> None:
        self.config = config

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        cfg = self.config
        if not any(ctx.modpath.startswith(s) for s in cfg.clock_scopes):
            return
        spans: list[tuple[int, int, str]] = []
        for qual, fn in iter_functions(ctx.tree):
            spans.append((fn.lineno, fn.end_lineno or fn.lineno, qual))
        spans.sort()

        def qualname_at(line: int) -> str:
            best = ""
            for lo, hi, qual in spans:
                if lo <= line <= hi:
                    best = qual  # innermost wins: spans sorted by start
            return best

        for node in ast.walk(ctx.tree):
            if not (isinstance(node, ast.Attribute) and node.attr == "now"):
                continue
            receiver = _terminal_name(node.value)
            if receiver not in cfg.clock_loop_names:
                continue
            qual = qualname_at(node.lineno)
            if qual in cfg.clock_exempt:
                continue
            where = f"in {qual}" if qual else "at module level"
            yield ctx.finding(
                self.name,
                node,
                f"raw '{receiver}.now' read {where} — protocol code must "
                "read time through its NodeClock adapter (self._now() / "
                "clock.now(); clock.sim_now() for sim-frame bookkeeping) "
                "so per-node skew and drift apply",
                symbol=f"{receiver}.now",
            )


def _terminal_name(expr: ast.expr) -> str | None:
    """The last name segment of the receiver expression.

    ``loop.now`` -> ``loop``; ``self.loop.now`` -> ``loop``;
    ``self._loop.now`` -> ``_loop``; ``cluster.loop.now`` -> ``loop``.
    Calls and subscripts never match — only plain attribute chains.
    """
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None
