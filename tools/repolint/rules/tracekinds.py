"""Rule family 3 — trace-kind registry.

The event-hooked :class:`SafetyChecker`, the ``keep_kinds`` storage gate
and every ``of_kind`` analysis query silently ignore kinds that no one
emits — a typo'd kind string blinds them without failing anything.  This
family extracts every statically-resolvable kind emitted via
``*.record(time, node, kind, ...)`` across the scanned tree and
cross-checks three directions against the **generated registry module**
(``repro/sim/trace_kinds.py``, written by
``python -m tools.repolint --write-trace-registry``):

* ``trace-unregistered-emit`` — an emitted kind is missing from the
  registry (the registry is stale: regenerate it);
* ``trace-stale-registry`` — the registry lists a kind nothing emits
  (dead registry entry, or the last emitter was deleted);
* ``trace-unknown-consume`` — a kind consumed by ``of_kind`` /
  ``of_kinds`` / ``wants`` / ``keep_kinds`` / ``first_after`` /
  ``last_before`` / ``where(kind=...)`` or declared in a ``*KINDS*``
  module constant has **no emitter** — the query can never match;
* ``trace-dynamic-kind`` — a ``record()`` call whose kind argument is
  not a string literal or a resolvable module-level constant.  Route the
  kind through a constant, or suppress with a justification and add the
  runtime kinds to ``extra_trace_kinds`` in the config.

The same extraction feeds the runtime guard: ``TraceLog.keep_kinds`` and
``SafetyChecker.install`` validate against the generated module.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.repolint.astutil import resolve_str_constant
from tools.repolint.config import RepolintConfig
from tools.repolint.engine import FileContext, Finding, Project, Rule

__all__ = [
    "TraceRegistryRule",
    "extract_emitted_kinds",
    "extract_consumed_kinds",
    "generate_trace_registry",
    "read_registry_module",
]

_CONSUMER_POSITIONAL = {"of_kind", "wants", "of_kinds"}
_CONSUMER_KEYWORD = {"first_after", "last_before", "where"}


def _literal_str(node: ast.AST) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def extract_emitted_kinds(
    project: Project,
) -> tuple[dict[str, list[tuple[str, int]]], list[tuple[FileContext, ast.Call]]]:
    """All kinds passed to ``*.record(time, node, kind, ...)``.

    Returns ``(kind -> [(modpath, line), ...], dynamic_sites)`` where
    dynamic sites are record calls whose kind could not be resolved.
    """
    emitted: dict[str, list[tuple[str, int]]] = {}
    dynamic: list[tuple[FileContext, ast.Call]] = []
    for ctx in project.files:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "record"
                and len(node.args) >= 3
            ):
                continue
            kind_arg = node.args[2]
            kind = _literal_str(kind_arg)
            if kind is None and isinstance(kind_arg, ast.Name):
                kind = resolve_str_constant(kind_arg.id, ctx, project)
            if kind is None:
                dynamic.append((ctx, node))
            else:
                emitted.setdefault(kind, []).append((ctx.modpath, node.lineno))
    return emitted, dynamic


def extract_consumed_kinds(
    project: Project,
) -> dict[str, list[tuple[str, int]]]:
    """All kinds the codebase queries, gates on, or hooks."""
    consumed: dict[str, list[tuple[str, int]]] = {}

    def note(kind: str, ctx: FileContext, line: int) -> None:
        consumed.setdefault(kind, []).append((ctx.modpath, line))

    for ctx in project.files:
        if ctx.modpath == ctx.config.trace_registry_modpath:
            continue  # the registry itself is not a consumer
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                attr = node.func.attr
                if attr in _CONSUMER_POSITIONAL:
                    for arg in node.args:
                        kind = _literal_str(arg)
                        if kind is None and isinstance(arg, ast.Name):
                            kind = resolve_str_constant(arg.id, ctx, project)
                        if kind is not None:
                            note(kind, ctx, node.lineno)
                elif attr == "keep_kinds":
                    for arg in node.args:
                        if isinstance(arg, (ast.Set, ast.List, ast.Tuple)):
                            for elt in arg.elts:
                                kind = _literal_str(elt)
                                if kind is not None:
                                    note(kind, ctx, node.lineno)
                if attr in _CONSUMER_KEYWORD or attr in _CONSUMER_POSITIONAL:
                    for kw in node.keywords:
                        if kw.arg == "kind":
                            kind = _literal_str(kw.value)
                            if kind is not None:
                                note(kind, ctx, node.lineno)
            elif isinstance(node, (ast.Assign, ast.AnnAssign)):
                # Configured constants like HOOK_KINDS = frozenset({...})
                # declare consumption: the safety checker dispatches on
                # membership rather than via of_kind calls.
                target = (
                    node.targets[0]
                    if isinstance(node, ast.Assign) and node.targets
                    else getattr(node, "target", None)
                )
                if not (
                    isinstance(target, ast.Name)
                    and target.id in ctx.config.trace_kind_constant_names
                ):
                    continue
                value = node.value
                if value is None:
                    continue
                for elt_kind in _collection_of_strings(value):
                    note(elt_kind, ctx, node.lineno)
    return consumed


def _collection_of_strings(value: ast.AST) -> list[str]:
    if isinstance(value, ast.Call) and value.args:
        fn = value.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else ""
        )
        if name in {"frozenset", "set", "tuple", "list"}:
            return _collection_of_strings(value.args[0])
    if isinstance(value, (ast.Set, ast.List, ast.Tuple)):
        out = []
        for elt in value.elts:
            s = _literal_str(elt)
            if s is not None:
                out.append(s)
        return out
    return []


def read_registry_module(ctx: FileContext) -> frozenset[str] | None:
    """Parse ``TRACE_KINDS`` out of the generated registry module."""
    for node in ast.walk(ctx.tree):
        target = None
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
        elif isinstance(node, ast.AnnAssign):
            target = node.target
        else:
            continue
        if isinstance(target, ast.Name) and target.id == "TRACE_KINDS":
            assert node.value is not None
            return frozenset(_collection_of_strings(node.value))
    return None


_REGISTRY_HEADER = '''"""Generated trace-kind registry — do not edit by hand.

Regenerate with::

    python -m tools.repolint src/ --write-trace-registry

Every kind emitted anywhere under ``src/`` (plus the justified
``extra_trace_kinds`` from ``tools/repolint/config.py``) is listed here.
``TraceLog.keep_kinds`` and ``SafetyChecker.install`` validate against
this set at runtime so a typo'd kind fails loudly instead of silently
blinding a gate or a safety hook; ``tools/repolint`` cross-checks it
statically on every run.
"""

from __future__ import annotations

__all__ = ["TRACE_KINDS"]

TRACE_KINDS: frozenset[str] = frozenset(
    (
'''


def generate_trace_registry(
    project: Project, config: RepolintConfig
) -> str:
    """Render the registry module from the current extraction."""
    emitted, _dynamic = extract_emitted_kinds(project)
    kinds = sorted(set(emitted) | set(config.extra_trace_kinds))
    body = "".join(f'        "{k}",\n' for k in kinds)
    return _REGISTRY_HEADER + body + "    )\n)\n"


class TraceRegistryRule(Rule):
    name = "trace-registry"
    description = (
        "emitted/consumed trace kinds must agree with the generated "
        "registry module"
    )

    def __init__(self, config: RepolintConfig) -> None:
        self.config = config

    def finish(self, project: Project) -> Iterable[Finding]:
        cfg = self.config
        registry_ctx = project.file(cfg.trace_registry_modpath)
        emitted, dynamic = extract_emitted_kinds(project)
        consumed = extract_consumed_kinds(project)

        for ctx, call in dynamic:
            yield ctx.finding(
                "trace-dynamic-kind",
                call,
                "record() kind is not a string literal or module-level "
                "constant — unresolvable kinds cannot be registered; "
                "route it through a constant or suppress with a "
                "justification",
            )

        if registry_ctx is None:
            # No registry module in this tree (e.g. a fixture corpus that
            # does not exercise this family): nothing to cross-check.
            return
        registry = read_registry_module(registry_ctx)
        if registry is None:
            yield registry_ctx.finding(
                "trace-registry",
                1,
                "registry module defines no TRACE_KINDS frozenset — "
                "regenerate with --write-trace-registry",
            )
            return

        known = registry | frozenset(cfg.extra_trace_kinds)
        for kind in sorted(set(emitted) - registry):
            modpath, line = emitted[kind][0]
            ctx = project.file(modpath)
            assert ctx is not None
            yield ctx.finding(
                "trace-unregistered-emit",
                line,
                f"trace kind {kind!r} is emitted but missing from the "
                f"registry — run --write-trace-registry",
                symbol=kind,
            )
        expected = set(emitted) | set(cfg.extra_trace_kinds)
        for kind in sorted(registry - expected):
            yield registry_ctx.finding(
                "trace-stale-registry",
                1,
                f"registry lists kind {kind!r} but nothing emits it — "
                f"run --write-trace-registry",
                symbol=kind,
            )
        for kind in sorted(set(consumed) - known):
            modpath, line = consumed[kind][0]
            ctx = project.file(modpath)
            assert ctx is not None
            yield ctx.finding(
                "trace-unknown-consume",
                line,
                f"kind {kind!r} is consumed here but never emitted "
                f"anywhere — the query/gate/hook can never match "
                f"(typo'd kind?)",
                symbol=kind,
            )
