"""Rule family 1 — determinism.

Simulation code must be a pure function of its seeds: same seed, same
event total order, same trace digest for any ``REPRO_JOBS``.  Two rules
enforce that:

* ``determinism-forbidden-call`` — wall clocks (``time.time``,
  ``time.monotonic``, ``time.perf_counter``, ``datetime.now`` /
  ``utcnow``), ambient entropy (``os.urandom``, ``uuid.uuid4``), the
  stdlib ``random`` module, and **unseeded** ``np.random.default_rng()``
  are banned inside the simulation scopes.  Virtual time comes from the
  event loop; randomness comes from named, seeded
  :class:`~repro.sim.rng.RngRegistry` streams.
* ``determinism-unordered-iter`` — iterating a ``set``/``frozenset``
  (hash order: varies with ``PYTHONHASHSEED``) or a ``dict`` view
  (insertion order: deterministic only if every insertion is) is flagged
  when the loop body schedules events, emits trace records or sends
  messages, unless the iterable is wrapped in ``sorted(...)``.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.repolint.astutil import (
    ImportMap,
    dotted_call_name,
    set_dict_attrs,
)
from tools.repolint.config import RepolintConfig
from tools.repolint.engine import FileContext, Finding, Rule

__all__ = ["ForbiddenNondeterminismRule", "UnorderedIterationRule"]

#: Dotted callables that read ambient time/entropy.
_FORBIDDEN_CALLS: dict[str, str] = {
    "time.time": "wall clock",
    "time.time_ns": "wall clock",
    "time.monotonic": "wall clock",
    "time.monotonic_ns": "wall clock",
    "time.perf_counter": "wall clock",
    "time.perf_counter_ns": "wall clock",
    "datetime.datetime.now": "wall clock",
    "datetime.datetime.utcnow": "wall clock",
    "datetime.date.today": "wall clock",
    "os.urandom": "ambient entropy",
    "uuid.uuid4": "ambient entropy",
    "uuid.uuid1": "ambient entropy",
    "secrets.token_bytes": "ambient entropy",
    "secrets.token_hex": "ambient entropy",
}

#: Modules whose import alone is banned in simulation scopes.
_FORBIDDEN_MODULES = {"random", "secrets"}


def _in_scope(ctx: FileContext) -> bool:
    return any(
        ctx.modpath.startswith(scope)
        for scope in ctx.config.determinism_scopes
    )


class ForbiddenNondeterminismRule(Rule):
    name = "determinism-forbidden-call"
    description = (
        "no wall clocks, stdlib random, os.urandom or unseeded "
        "default_rng() in simulation code"
    )

    def __init__(self, config: RepolintConfig) -> None:
        self.config = config

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx):
            return
        imports = ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in _FORBIDDEN_MODULES:
                        yield ctx.finding(
                            self.name,
                            node,
                            f"import of nondeterministic module "
                            f"{root!r} (use a seeded RngRegistry stream)",
                            symbol=root,
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                root = node.module.split(".")[0]
                if root in _FORBIDDEN_MODULES:
                    yield ctx.finding(
                        self.name,
                        node,
                        f"import from nondeterministic module "
                        f"{root!r} (use a seeded RngRegistry stream)",
                        symbol=root,
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_call_name(node.func, imports)
                if dotted is None:
                    continue
                # Normalize `datetime.now` from `from datetime import
                # datetime` (dotted resolution already yields the full
                # path) and bare-attribute shapes like `dt.now()`.
                reason = _FORBIDDEN_CALLS.get(dotted)
                if reason is None and dotted.endswith(
                    (".datetime.now", ".datetime.utcnow")
                ):
                    reason = "wall clock"
                if reason is not None:
                    yield ctx.finding(
                        self.name,
                        node,
                        f"call to {dotted} ({reason}) — simulation code "
                        f"must use virtual loop time / seeded streams",
                        symbol=dotted,
                    )
                    continue
                if (
                    dotted.endswith(".default_rng")
                    or dotted == "default_rng"
                ) and not node.args and not node.keywords:
                    yield ctx.finding(
                        self.name,
                        node,
                        "unseeded default_rng() — derive the generator "
                        "from a named RngRegistry stream instead",
                        symbol="default_rng",
                    )


_DICT_VIEWS = {"keys", "values", "items"}
_SET_CTORS = {"set", "frozenset"}


class UnorderedIterationRule(Rule):
    name = "determinism-unordered-iter"
    description = (
        "set/dict iteration feeding event scheduling, tracing or sends "
        "must go through sorted()"
    )

    def __init__(self, config: RepolintConfig) -> None:
        self.config = config

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        if not _in_scope(ctx):
            return
        attr_types = set_dict_attrs(ctx.tree)
        # Walk functions so each loop knows its enclosing class (for
        # `self.<attr>` type lookups).
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                known = attr_types.get(node.name, set())
                for sub in ast.walk(node):
                    yield from self._check_scope(ctx, sub, known)
        # Module-level / free functions (no self attrs to know about).
        for node in ctx.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for sub in ast.walk(node):
                    yield from self._check_scope(ctx, sub, set())

    def _check_scope(
        self, ctx: FileContext, node: ast.AST, known_attrs: set[str]
    ) -> Iterable[Finding]:
        if isinstance(node, (ast.For, ast.AsyncFor)):
            if self._is_unordered(node.iter, known_attrs) and _has_sink(
                node.body, self.config
            ):
                yield ctx.finding(
                    self.name,
                    node,
                    f"iteration over {_describe(node.iter)} feeds an "
                    f"order-sensitive sink "
                    f"({_first_sink(node.body, self.config)}); wrap the "
                    f"iterable in sorted()",
                )
        elif isinstance(node, ast.Call):
            # A comprehension passed straight into a sink call: its
            # element order lands in the emitted payload / schedule.
            sink = _call_sink_name(node, self.config)
            if sink is None:
                return
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                if isinstance(
                    arg, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    for gen in arg.generators:
                        if self._is_unordered(gen.iter, known_attrs):
                            yield ctx.finding(
                                self.name,
                                arg,
                                f"comprehension over {_describe(gen.iter)} "
                                f"is an argument of order-sensitive sink "
                                f"{sink}(); wrap the iterable in sorted()",
                            )

    def _is_unordered(self, expr: ast.AST, known_attrs: set[str]) -> bool:
        # sorted(...) / sorted copies are ordered by construction.
        if isinstance(expr, ast.Call):
            fn = expr.func
            if isinstance(fn, ast.Name) and fn.id == "sorted":
                return False
            if isinstance(fn, ast.Name) and fn.id in _SET_CTORS:
                return True
            if isinstance(fn, ast.Attribute) and fn.attr in _DICT_VIEWS:
                return True
            return False
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        if isinstance(expr, ast.Name):
            return expr.id in known_attrs
        if (
            isinstance(expr, ast.Attribute)
            and isinstance(expr.value, ast.Name)
            and expr.value.id == "self"
        ):
            return expr.attr in known_attrs
        return False


def _call_sink_name(node: ast.Call, config: RepolintConfig) -> str | None:
    fn = node.func
    name = fn.attr if isinstance(fn, ast.Attribute) else (
        fn.id if isinstance(fn, ast.Name) else None
    )
    if name in config.order_sensitive_sinks:
        return name
    return None


def _has_sink(body: list[ast.stmt], config: RepolintConfig) -> bool:
    return _first_sink(body, config) is not None


def _first_sink(body: list[ast.stmt], config: RepolintConfig) -> str | None:
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                name = _call_sink_name(node, config)
                if name is not None:
                    return name
    return None


def _describe(expr: ast.AST) -> str:
    try:
        return f"`{ast.unparse(expr)}` (set/dict)"
    except Exception:  # pragma: no cover - unparse is total on 3.11
        return "a set/dict expression"
