"""Rule family 4 — dispatch completeness.

* ``dispatch-unhandled-message`` — every RPC payload class defined in
  the messages module must be a key of the node's type-indexed
  ``_DISPATCH`` table (minus the configured client-bound exemptions).
  An unhandled class means ``deliver`` raises at runtime — but only the
  first time that message is actually sent, which under rare scenarios
  can be long after the class ships.
* ``dispatch-unknown-message`` — the dispatch table references a class
  the messages module does not define (stale key after a rename).
* ``step-unregistered`` — every concrete ``Step`` subclass in the
  scenario module must be registered in ``STEP_TYPES`` so
  ``step_from_dict`` (and therefore every JSON reproducer) can round-trip
  it.  Private ``_Foo`` bases are exempt.
* ``step-unknown-registered`` — ``STEP_TYPES`` registers a name that is
  not a concrete Step subclass.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.repolint.config import RepolintConfig
from tools.repolint.engine import Finding, Project, Rule

__all__ = ["MessageDispatchRule", "StepRegistryRule"]


def _module_classes(tree: ast.Module) -> dict[str, ast.ClassDef]:
    return {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    }


class MessageDispatchRule(Rule):
    name = "dispatch-unhandled-message"
    description = "every message class needs a _DISPATCH handler"

    def __init__(self, config: RepolintConfig) -> None:
        self.config = config

    def finish(self, project: Project) -> Iterable[Finding]:
        cfg = self.config
        messages_ctx = project.file(cfg.messages_modpath)
        dispatch_ctx = project.file(cfg.dispatch_modpath)
        if messages_ctx is None or dispatch_ctx is None:
            return  # family not exercised by this tree
        classes = _module_classes(messages_ctx.tree)

        keys: dict[str, int] = {}
        found_table = False
        for node in ast.walk(dispatch_ctx.tree):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Attribute)
                and node.targets[0].attr == cfg.dispatch_attr
                and isinstance(node.value, ast.Dict)
            ):
                continue
            found_table = True
            for key in node.value.keys:
                if isinstance(key, ast.Name):
                    keys[key.id] = key.lineno
                elif isinstance(key, ast.Attribute):
                    keys[key.attr] = key.lineno
        if not found_table:
            yield dispatch_ctx.finding(
                self.name,
                1,
                f"no `X.{cfg.dispatch_attr} = {{...}}` table found in the "
                f"dispatch module — repolint cannot verify handler "
                f"completeness",
            )
            return

        for name in sorted(set(classes) - set(keys) - cfg.dispatch_exempt):
            yield messages_ctx.finding(
                self.name,
                classes[name],
                f"message class {name} has no handler in "
                f"{cfg.dispatch_modpath}'s {cfg.dispatch_attr} table — "
                f"deliver() will raise the first time one arrives",
                symbol=name,
            )
        for name in sorted(set(keys) - set(classes)):
            yield dispatch_ctx.finding(
                "dispatch-unknown-message",
                keys[name],
                f"{cfg.dispatch_attr} references {name}, which "
                f"{cfg.messages_modpath} does not define",
                symbol=name,
            )


class StepRegistryRule(Rule):
    name = "step-unregistered"
    description = "every concrete Step subclass needs a STEP_TYPES entry"

    def __init__(self, config: RepolintConfig) -> None:
        self.config = config

    def finish(self, project: Project) -> Iterable[Finding]:
        cfg = self.config
        ctx = project.file(cfg.steps_modpath)
        if ctx is None:
            return
        classes = _module_classes(ctx.tree)

        # Transitive subclasses of the configured base(s), local names only.
        bases_of = {
            name: {
                b.id if isinstance(b, ast.Name) else getattr(b, "attr", "")
                for b in node.bases
            }
            for name, node in classes.items()
        }
        step_like: set[str] = set(cfg.step_abstract_names)
        changed = True
        while changed:
            changed = False
            for name, bases in bases_of.items():
                if name not in step_like and bases & step_like:
                    step_like.add(name)
                    changed = True
        concrete = {
            n
            for n in step_like
            if n in classes
            and not n.startswith("_")
            and n not in cfg.step_abstract_names
        }

        registered: dict[str, int] = {}
        found_registry = False
        for node in ast.walk(ctx.tree):
            target = None
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
            elif isinstance(node, ast.AnnAssign):
                target = node.target
            if not (
                isinstance(target, ast.Name)
                and target.id == cfg.step_registry_name
            ):
                continue
            value = getattr(node, "value", None)
            if value is None:
                continue
            found_registry = True
            if isinstance(value, ast.Dict):
                for v in value.values:
                    if isinstance(v, ast.Name):
                        registered[v.id] = v.lineno
            elif isinstance(value, ast.DictComp) and value.generators:
                it = value.generators[0].iter
                if isinstance(it, (ast.Tuple, ast.List)):
                    for elt in it.elts:
                        if isinstance(elt, ast.Name):
                            registered[elt.id] = elt.lineno
        if not found_registry:
            yield ctx.finding(
                self.name,
                1,
                f"no {cfg.step_registry_name} registry found in "
                f"{cfg.steps_modpath} — repolint cannot verify step "
                f"round-trip registration",
            )
            return

        for name in sorted(concrete - set(registered)):
            yield ctx.finding(
                self.name,
                classes[name],
                f"Step subclass {name} is not registered in "
                f"{cfg.step_registry_name} — step_from_dict cannot "
                f"round-trip it (JSON reproducers break)",
                symbol=name,
            )
        for name in sorted(set(registered) - concrete):
            yield ctx.finding(
                "step-unknown-registered",
                registered[name],
                f"{cfg.step_registry_name} registers {name}, which is not "
                f"a concrete Step subclass in this module",
                symbol=name,
            )
