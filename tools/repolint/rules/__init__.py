"""Rule registry: one module per family, ``default_rules`` builds all."""

from __future__ import annotations

from tools.repolint.config import RepolintConfig
from tools.repolint.engine import Rule
from tools.repolint.rules.determinism import (
    ForbiddenNondeterminismRule,
    UnorderedIterationRule,
)
from tools.repolint.rules.clock import NodeClockRule
from tools.repolint.rules.durability import DurableWriteRule
from tools.repolint.rules.dispatch import (
    MessageDispatchRule,
    StepRegistryRule,
)
from tools.repolint.rules.hotpath import HotPathAllocRule, SlotsRule
from tools.repolint.rules.state import ProtectedStateRule
from tools.repolint.rules.tracekinds import TraceRegistryRule

__all__ = ["default_rules", "rule_classes"]


def rule_classes() -> list[type[Rule]]:
    return [
        ForbiddenNondeterminismRule,
        UnorderedIterationRule,
        SlotsRule,
        HotPathAllocRule,
        TraceRegistryRule,
        MessageDispatchRule,
        StepRegistryRule,
        ProtectedStateRule,
        DurableWriteRule,
        NodeClockRule,
    ]


def default_rules(config: RepolintConfig) -> list[Rule]:
    return [cls(config) for cls in rule_classes()]
