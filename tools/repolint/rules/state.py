"""Rule family 5 — protocol-state hygiene.

``current_term`` and ``voted_for`` are Raft's *persistent* state: every
write is a durability point, and the safety argument (§5.2/§5.4 of the
paper) only holds when term adoption and vote granting go through the
designated transitions.  The membership record (``_base_config`` /
``_config_log``) has the same property for reconfiguration safety.

``state-protected-write`` flags any assignment (plain, augmented or
through a subscript, e.g. ``node._config_log[-1] = ...``) to a protected
attribute outside its configured owner methods — including writes from
*other* modules reaching into a node.  Deliberate corruption (the fuzz
bug injectors) carries per-line suppressions, which is exactly the
audit trail we want for such writes.
"""

from __future__ import annotations

import ast
from typing import Iterable

from tools.repolint.astutil import iter_functions
from tools.repolint.config import RepolintConfig
from tools.repolint.engine import FileContext, Finding, Rule

__all__ = ["ProtectedStateRule"]


class ProtectedStateRule(Rule):
    name = "state-protected-write"
    description = (
        "protected protocol state may only be written by its designated "
        "mutation methods"
    )

    def __init__(self, config: RepolintConfig) -> None:
        self.config = config

    def check_file(self, ctx: FileContext) -> Iterable[Finding]:
        protected = self.config.protected_state
        if not protected:
            return
        # Map every line span to its enclosing function qualname, so a
        # write knows whether it is inside an allowed mutator.
        spans: list[tuple[int, int, str]] = []
        for qual, fn in iter_functions(ctx.tree):
            spans.append((fn.lineno, fn.end_lineno or fn.lineno, qual))
        spans.sort()

        def qualname_at(line: int) -> str:
            best = ""
            for lo, hi, qual in spans:
                if lo <= line <= hi:
                    best = qual  # innermost wins: spans sorted by start
            return best

        for node in ast.walk(ctx.tree):
            targets: list[ast.AST] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            else:
                continue
            for target in targets:
                for attr in _written_attrs(target):
                    if attr not in protected:
                        continue
                    qual = qualname_at(node.lineno)
                    if qual in protected[attr]:
                        continue
                    where = f"in {qual}" if qual else "at module level"
                    allowed = ", ".join(sorted(protected[attr]))
                    yield ctx.finding(
                        self.name,
                        node,
                        f"write to protected state {attr!r} {where} — only "
                        f"[{allowed}] may mutate it",
                        symbol=attr,
                    )


def _written_attrs(target: ast.AST) -> list[str]:
    """Attribute names a store target writes.

    ``x.current_term = ...`` and ``x._config_log[-1] = ...`` both count;
    tuple targets are unpacked recursively.
    """
    if isinstance(target, ast.Attribute):
        return [target.attr]
    if isinstance(target, ast.Subscript) and isinstance(
        target.value, ast.Attribute
    ):
        return [target.value.attr]
    if isinstance(target, (ast.Tuple, ast.List)):
        out: list[str] = []
        for elt in target.elts:
            out.extend(_written_attrs(elt))
        return out
    return []
