"""Shared AST analysis helpers used by several rule families."""

from __future__ import annotations

import ast
from typing import Iterator

from tools.repolint.engine import FileContext, Project

__all__ = [
    "ImportMap",
    "module_str_constants",
    "resolve_str_constant",
    "iter_functions",
    "class_has_slots",
    "set_dict_attrs",
    "dotted_call_name",
]


class ImportMap:
    """Resolves names in one module back to their origin.

    ``modules``: local alias -> imported module name (``import time as t``
    maps ``t -> time``).  ``names``: local alias -> (module, original
    name) for ``from x import y [as z]``.
    """

    def __init__(self, tree: ast.Module) -> None:
        self.modules: dict[str, str] = {}
        self.names: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.modules[local] = alias.name if alias.asname else local
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    self.names[alias.asname or alias.name] = (
                        node.module,
                        alias.name,
                    )


def dotted_call_name(node: ast.AST, imports: ImportMap) -> str | None:
    """Best-effort dotted origin of a Name/Attribute expression.

    ``t.monotonic`` with ``import time as t`` -> ``time.monotonic``;
    ``urandom`` with ``from os import urandom`` -> ``os.urandom``.
    """
    if isinstance(node, ast.Name):
        origin = imports.names.get(node.id)
        if origin is not None:
            return f"{origin[0]}.{origin[1]}"
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_call_name(node.value, imports)
        if base is None:
            return None
        # The base may itself be an aliased module.
        root, _, rest = base.partition(".")
        real_root = imports.modules.get(root, root)
        base = real_root + ("." + rest if rest else "")
        return f"{base}.{node.attr}"
    return None


def module_str_constants(tree: ast.Module) -> dict[str, str]:
    """Module-level ``NAME = "literal"`` assignments."""
    out: dict[str, str] = {}
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            out[node.targets[0].id] = node.value.value
        elif (
            isinstance(node, ast.AnnAssign)
            and isinstance(node.target, ast.Name)
            and isinstance(node.value, ast.Constant)
            and isinstance(node.value.value, str)
        ):
            out[node.target.id] = node.value.value
    return out


def resolve_str_constant(
    name: str, ctx: FileContext, project: Project
) -> str | None:
    """Resolve ``name`` to a string constant: same module first, then a
    ``from x import NAME`` chased into the scanned project."""
    local = module_str_constants(ctx.tree)
    if name in local:
        return local[name]
    imports = ImportMap(ctx.tree)
    origin = imports.names.get(name)
    if origin is None:
        return None
    mod, orig = origin
    target = project.file(mod.replace(".", "/") + ".py")
    if target is None:
        return None
    return module_str_constants(target.tree).get(orig)


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, node)`` for every function, methods as
    ``Class.method`` (nested functions as ``outer.<locals>.inner``)."""

    def walk(node: ast.AST, prefix: str) -> Iterator[
        tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]
    ]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                yield qual, child
                yield from walk(child, f"{qual}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            elif isinstance(child, (ast.If, ast.Try, ast.With)):
                yield from walk(child, prefix)

    yield from walk(tree, "")


def class_has_slots(node: ast.ClassDef) -> bool:
    """True for an explicit ``__slots__`` or ``@dataclass(slots=True)``."""
    for stmt in node.body:
        if isinstance(stmt, ast.Assign):
            for t in stmt.targets:
                if isinstance(t, ast.Name) and t.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                return True
    for dec in node.decorator_list:
        if isinstance(dec, ast.Call):
            fn = dec.func
            name = fn.attr if isinstance(fn, ast.Attribute) else (
                fn.id if isinstance(fn, ast.Name) else ""
            )
            if name == "dataclass":
                for kw in dec.keywords:
                    if (
                        kw.arg == "slots"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value is True
                    ):
                        return True
    return False


_SET_DICT_ANN = {"set", "frozenset", "dict", "Set", "FrozenSet", "Dict"}


def _annotation_is_set_or_dict(ann: ast.AST) -> bool:
    if isinstance(ann, ast.Name):
        return ann.id in _SET_DICT_ANN
    if isinstance(ann, ast.Subscript):
        return _annotation_is_set_or_dict(ann.value)
    if isinstance(ann, ast.Attribute):
        return ann.attr in _SET_DICT_ANN
    if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
        head = ann.value.split("[", 1)[0].strip()
        return head in _SET_DICT_ANN
    return False


def _value_is_set_or_dict(value: ast.AST | None) -> bool:
    if value is None:
        return False
    if isinstance(value, (ast.Set, ast.Dict, ast.SetComp, ast.DictComp)):
        return True
    if isinstance(value, ast.Call):
        fn = value.func
        name = fn.id if isinstance(fn, ast.Name) else (
            fn.attr if isinstance(fn, ast.Attribute) else ""
        )
        return name in {"set", "frozenset", "dict"}
    return False


def set_dict_attrs(tree: ast.Module) -> dict[str, set[str]]:
    """Per class: attribute names known (by annotation or assigned value)
    to hold a ``set``/``frozenset``/``dict``.

    Looks at class-body annotations and ``self.x`` assignments in any
    method.  An attribute ever assigned a non-set/dict value is *not*
    removed — one set-typed assignment is enough to make iteration order
    suspect at every use site.
    """
    out: dict[str, set[str]] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        attrs: set[str] = set()
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                if _annotation_is_set_or_dict(stmt.annotation):
                    attrs.add(stmt.target.id)
        for sub in ast.walk(node):
            target: ast.AST | None = None
            ann: ast.AST | None = None
            value: ast.AST | None = None
            if isinstance(sub, ast.AnnAssign):
                target, ann, value = sub.target, sub.annotation, sub.value
            elif isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                target, value = sub.targets[0], sub.value
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                if (ann is not None and _annotation_is_set_or_dict(ann)) or (
                    _value_is_set_or_dict(value)
                ):
                    attrs.add(target.attr)
        if attrs:
            out[node.name] = attrs
    return out
