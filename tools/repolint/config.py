"""Repo-specific configuration for the repolint rule families.

Everything path-like is a **modpath**: the file's path relative to the
scanned root, in posix form.  Scanning ``src/`` therefore yields modpaths
such as ``repro/raft/node.py`` — the same shape fixture trees use in
``tests/repolint/``, so one config drives both the real tree and the
fixture corpora.
"""

from __future__ import annotations

import dataclasses

__all__ = ["RepolintConfig", "DEFAULT_CONFIG"]


@dataclasses.dataclass(frozen=True)
class RepolintConfig:
    """Knobs consumed by the rule families (see ``tools/repolint/rules``)."""

    # -- determinism (rule family 1) ----------------------------------- #
    #: Modpath prefixes where wall clocks, stdlib ``random``, ``os.urandom``
    #: and unseeded ``default_rng()`` are forbidden and where unordered
    #: iteration feeding scheduling/tracing/sends is flagged.
    determinism_scopes: tuple[str, ...] = (
        "repro/sim/",
        "repro/raft/",
        "repro/net/",
        "repro/dynatune/",
        "repro/scenarios/",
        "repro/fuzz/",
    )
    #: Callable attribute names that schedule events, emit trace records or
    #: send messages — the sinks whose invocation order must not depend on
    #: set/dict iteration order.
    order_sensitive_sinks: frozenset[str] = frozenset(
        {
            "send",
            "transmit",
            "broadcast",
            "schedule",
            "schedule_at",
            "_push_event",
            "record",
            "_rpc",
            "_send",
            "_send_append",
            "_send_heartbeat_to",
            "_send_snapshot",
            "reset",  # Timer.reset arms an event
        }
    )

    # -- hot-path discipline (rule family 2) --------------------------- #
    #: Modules whose every class must declare ``__slots__`` (directly or
    #: via ``@dataclass(slots=True)``).
    slots_modules: tuple[str, ...] = (
        "repro/raft/messages.py",
        "repro/dynatune/metadata.py",
    )
    #: Envelope-style class names that must be slotted wherever they live.
    slots_class_names: frozenset[str] = frozenset(
        {"_Delivery", "Message", "TraceRecord"}
    )
    #: modpath -> qualified function names that must stay free of
    #: comprehension/lambda/f-string allocations (error paths inside
    #: ``raise`` statements are exempt).
    hot_functions: dict[str, frozenset[str]] = dataclasses.field(
        default_factory=lambda: {
            "repro/raft/node.py": frozenset(
                {
                    "RaftNode.deliver",
                    "RaftNode._on_heartbeat",
                    "RaftNode._on_heartbeat_response",
                    "RaftNode._send_heartbeat_to",
                    "RaftNode._heartbeat_tick",
                }
            ),
            "repro/net/network.py": frozenset({"Network.transmit"}),
            "repro/dynatune/measurement.py": frozenset(
                {"PathMeasurement.record_id", "PathMeasurement.record_rtt"}
            ),
            "repro/sim/tracing.py": frozenset(
                {"TraceLog.record", "TraceLog.wants"}
            ),
        }
    )

    # -- trace-kind registry (rule family 3) --------------------------- #
    #: Modpath of the generated registry module.
    trace_registry_modpath: str = "repro/sim/trace_kinds.py"
    #: Kinds merged into the registry that static extraction cannot see.
    #: They reach ``TraceLog.record`` through dynamic ``kind`` parameters
    #: (the suppressed ``trace-dynamic-kind`` sites):
    #: * ``fault_leader_pause`` — a pause that *is* a leader failure;
    #:   consumed by the measurement layer as ``LEADER_FAILURE_KIND``;
    #: * ``fault_pause`` — ``pause_for``'s default / plain container sleep;
    #: * ``stall_pause`` — ``StallInjector`` processing stalls;
    #: * ``liveness_*`` — the :class:`~repro.scenarios.liveness.
    #:   LivenessChecker`'s three detectors, emitted via its ``_flag``
    #:   helper.
    extra_trace_kinds: tuple[str, ...] = (
        "fault_leader_pause",
        "fault_pause",
        "stall_pause",
        "liveness_no_leader",
        "liveness_election_livelock",
        "liveness_commit_stall",
    )

    #: Module/class constants whose string elements are consumed trace
    #: kinds (membership-dispatch sets like ``SafetyChecker.HOOK_KINDS``)
    #: — checked against the registry like any ``of_kind`` argument.
    trace_kind_constant_names: frozenset[str] = frozenset({"HOOK_KINDS"})

    # -- dispatch completeness (rule family 4) ------------------------- #
    #: Module defining the RPC payload classes.
    messages_modpath: str = "repro/raft/messages.py"
    #: Module holding the type-indexed dispatch table assignment.
    dispatch_modpath: str = "repro/raft/node.py"
    #: Name the dispatch dict is assigned to (``X._DISPATCH = {...}``).
    dispatch_attr: str = "_DISPATCH"
    #: Message classes nodes legitimately never receive (client-bound).
    dispatch_exempt: frozenset[str] = frozenset({"ClientResponse"})
    #: Module defining the scenario Step subclasses.
    steps_modpath: str = "repro/scenarios/steps.py"
    #: Name of the kind-tag -> class registry dict in that module.
    step_registry_name: str = "STEP_TYPES"
    #: Step base/abstract classes exempt from registration (private
    #: ``_Foo`` helpers are exempt automatically).
    step_abstract_names: frozenset[str] = frozenset({"Step"})

    # -- protocol-state hygiene (rule family 5) ------------------------ #
    #: Protected attribute -> qualified methods allowed to write it.
    #: A write anywhere else (any file in the scan) is an error.
    protected_state: dict[str, frozenset[str]] = dataclasses.field(
        default_factory=lambda: {
            "current_term": frozenset(
                {
                    "RaftNode.__init__",
                    "RaftNode._become_follower",
                    "RaftNode._become_candidate",
                    "RaftNode._restore_durable",
                }
            ),
            "voted_for": frozenset(
                {
                    "RaftNode.__init__",
                    "RaftNode._become_follower",
                    "RaftNode._become_candidate",
                    "RaftNode._grant_vote",
                    "RaftNode._restore_durable",
                }
            ),
            "_base_config": frozenset(
                {
                    "RaftNode.__init__",
                    "RaftNode.on_recover",
                    "RaftNode._rebase_config",
                }
            ),
            "_config_log": frozenset(
                {"RaftNode.__init__", "RaftNode.on_recover"}
            ),
        }
    )

    # -- durable-write hygiene (rule family 6) ------------------------- #
    #: Restricted log mutator -> qualified methods allowed to call it
    #: (as ``<x>.log.<mutator>(...)`` or via a ``log`` alias).  These are
    #: the storage-backed mutators whose persist barriers cover the
    #: write; a call anywhere else mutates state the WAL never journals.
    durable_log_mutators: dict[str, frozenset[str]] = dataclasses.field(
        default_factory=lambda: {
            "append_new": frozenset(
                {
                    "RaftNode._become_leader",
                    "RaftNode._on_client_request",
                    "RaftNode._flush_batch",
                    "RaftNode.propose_config_change",
                }
            ),
            "try_append": frozenset({"RaftNode._on_append_entries"}),
            "compact": frozenset({"RaftNode._maybe_compact"}),
            "install_snapshot": frozenset(
                {
                    "RaftNode._on_install_snapshot",
                    "RaftNode._restore_durable",
                }
            ),
        }
    )
    #: Qualified methods allowed to assign ``.snapshot`` (each pairs the
    #: assignment with a covering ``storage.save_snapshot``).
    durable_snapshot_writers: frozenset[str] = frozenset(
        {
            "RaftNode.__init__",
            "RaftNode._restore_durable",
            "RaftNode._send_snapshot",
            "RaftNode._maybe_compact",
            "RaftNode._on_install_snapshot",
        }
    )

    # -- node-clock hygiene (rule family 7) ----------------------------- #
    #: Modpath prefixes where protocol code must read time through its
    #: :class:`~repro.sim.clock.NodeClock` adapter (``self._now()`` /
    #: ``clock.now()``) so per-node skew/drift can never be bypassed.  A
    #: raw ``loop.now`` read here is a timer that ignores the node's own
    #: clock — the gray-failure experiments would silently measure the
    #: wrong thing.
    clock_scopes: tuple[str, ...] = (
        "repro/raft/",
        "repro/dynatune/",
    )
    #: Receiver names that denote the shared event loop; reading ``.now``
    #: off any of them (directly or through an attribute chain such as
    #: ``self.loop.now``) is what the rule flags.
    clock_loop_names: frozenset[str] = frozenset({"loop", "_loop"})
    #: Qualified methods exempt from the rule — adapters that *define*
    #: the boundary (none needed in the real tree today; the knob exists
    #: so a future wall-clock runtime shim can register itself).
    clock_exempt: frozenset[str] = frozenset()


DEFAULT_CONFIG = RepolintConfig()
