"""Ablation benches for the design choices DESIGN.md §4 calls out."""

import math

from repro.experiments import ablations


def _by_label(points):
    return {p.label: p.metrics for p in points}


def test_prevote_ablation(once, benchmark):
    points = once(ablations.prevote_ablation)
    m = _by_label(points)
    benchmark.extra_info["results"] = {k: v for k, v in m.items()}
    # With pre-vote: the spike causes zero OTS (Fig. 6b).  Without it, the
    # first false detection deposes the leader.
    assert m["prevote-on"]["ots_ms"] == 0.0
    assert m["prevote-on"]["unnecessary_elections"] == 0.0
    assert m["prevote-off"]["unnecessary_elections"] > 0.0
    assert m["prevote-off"]["leader_changes"] > m["prevote-on"]["leader_changes"]


def test_safety_factor_sweep(once, benchmark):
    points = once(ablations.safety_factor_sweep)
    benchmark.extra_info["results"] = {p.label: p.metrics for p in points}
    by_s = {p.value: p.metrics for p in points}
    # The tuned Et widens monotonically with s (Et = mu + s*sigma).
    ets = [by_s[s]["mean_tuned_et_ms"] for s in (0.0, 1.0, 2.0, 4.0)]
    assert ets == sorted(ets)
    assert ets[-1] > ets[0] + 15.0
    # Detection slows accordingly (allow sample noise between neighbours).
    assert by_s[4.0]["mean_detection_ms"] > by_s[0.0]["mean_detection_ms"]
    # Every configuration still resolves every failure.
    for p in points:
        assert p.metrics["resolved_episodes"] > 0


def test_arrival_probability_sweep(once, benchmark):
    points = once(ablations.arrival_probability_sweep)
    benchmark.extra_info["results"] = {p.label: p.metrics for p in points}
    by_x = {p.value: p.metrics for p in points}
    # Higher x -> more redundancy -> higher heartbeat rate...
    rates = [by_x[x]["leader_heartbeats_per_s"] for x in (0.9, 0.99, 0.999, 0.9999)]
    assert rates == sorted(rates)
    # ...and fewer missed-window fallbacks.
    assert by_x[0.9999]["fallbacks"] < by_x[0.9]["fallbacks"]
    # No configuration loses the leader to loss-induced elections.
    for p in points:
        assert p.metrics["unnecessary_elections"] == 0.0


def test_min_list_size_sweep(once, benchmark):
    points = once(ablations.min_list_size_sweep)
    benchmark.extra_info["results"] = {p.label: p.metrics for p in points}
    by_m = {p.value: p.metrics for p in points}
    for p in points:
        assert p.metrics["all_tuned"] == 1.0
    # Warm-up time grows with minListSize.
    assert by_m[100.0]["time_to_tuned_ms"] > by_m[2.0]["time_to_tuned_ms"]


def test_window_sweep(once, benchmark):
    points = once(ablations.window_sweep)
    benchmark.extra_info["results"] = {p.label: p.metrics for p in points}
    by_w = {p.value: p.metrics for p in points}
    for p in points:
        assert not math.isinf(p.metrics["adaptation_lag_ms"])
    # Larger windows adapt more slowly to an RTT step.
    assert by_w[1000.0]["adaptation_lag_ms"] > by_w[30.0]["adaptation_lag_ms"]


def test_fallback_ablation(once, benchmark):
    points = once(ablations.fallback_ablation)
    m = _by_label(points)
    benchmark.extra_info["results"] = m
    # The discard rule costs re-warm-up: more untuned follower-time.
    assert (
        m["fallback-on"]["untuned_follower_seconds"]
        > m["fallback-off"]["untuned_follower_seconds"]
    )
    # The rule actually fires (measurements are discarded on timeouts).
    assert m["fallback-on"]["fallbacks"] > 0
    assert m["fallback-off"]["fallbacks"] == 0
    # Neither variant loses availability here (pre-vote still protects).
    assert m["fallback-on"]["ots_ms"] == 0.0
    assert m["fallback-off"]["ots_ms"] == 0.0
