"""Fig. 5 bench: peak throughput and the latency/throughput curve.

Paper: Raft 13 678 req/s vs Dynatune 12 800 req/s (−6.4 %), latency rising
from ≈ 200 ms toward ≈ 700 ms at the knee.
"""

import numpy as np

from repro.experiments import fig5_throughput


def test_fig5_throughput_staircase(once, benchmark):
    cfg = fig5_throughput.Fig5Config.quick()
    result = once(fig5_throughput.run, cfg)
    raft = result.systems["raft"]
    dyn = result.systems["dynatune"]
    benchmark.extra_info["raft_peak_rps"] = round(raft.peak_rps)
    benchmark.extra_info["dynatune_peak_rps"] = round(dyn.peak_rps)
    benchmark.extra_info["peak_gap"] = round(result.peak_gap, 4)
    benchmark.extra_info["paper"] = fig5_throughput.PAPER_NUMBERS

    assert 13_000 < raft.peak_rps < 14_500  # paper: 13 678
    assert 12_200 < dyn.peak_rps < 13_500  # paper: 12 800
    assert 0.04 < result.peak_gap < 0.09  # paper: 6.4 %
    # Latency curve: flat-ish plateau near 200 ms, then the knee.
    assert raft.mean_latency_ms[0] < 230.0
    assert raft.mean_latency_ms[-1] > 500.0
    assert np.all(np.diff(raft.mean_latency_ms) > -1e-6)
    # Dynatune's knee sits to the left of Raft's.
    knee_raft = np.argmax(raft.throughput_rps >= raft.peak_rps * 0.999)
    knee_dyn = np.argmax(dyn.throughput_rps >= dyn.peak_rps * 0.999)
    assert knee_dyn <= knee_raft
