"""Fig. 7 bench: packet-loss adaptivity — h tuning (7a) and CPU (7b)."""

import numpy as np

from repro.experiments import fig7_loss


def test_fig7_loss_staircase(once, benchmark):
    cfg = fig7_loss.Fig7Config.quick()
    result = once(fig7_loss.run, cfg)
    peak = max(cfg.loss_levels)
    for n in cfg.sizes:
        dyn = result.runs[("dynatune", n)]
        fix = result.runs[("fix-k", n)]
        h0 = float(np.mean(dyn.h_at_loss(0.0)))
        hpk_arr = dyn.h_at_loss(peak)
        hpk = float(np.mean(hpk_arr)) if hpk_arr.size else float("nan")
        benchmark.extra_info[f"N{n}_dynatune_h0_ms"] = round(h0, 1)
        benchmark.extra_info[f"N{n}_dynatune_hpeak_ms"] = round(hpk, 1)
        benchmark.extra_info[f"N{n}_fixk_h_ms"] = round(float(np.nanmean(fix.h_ms)), 1)
        benchmark.extra_info[f"N{n}_dynatune_leader_cpu"] = round(
            float(dyn.leader_cpu.mean()), 1
        )
        benchmark.extra_info[f"N{n}_fixk_leader_cpu"] = round(
            float(fix.leader_cpu.mean()), 1
        )

        # Fig. 7a: Dynatune lowers h as loss rises (K: 1 -> 6 at 30 %);
        # Fix-K stays pinned at Et/10 ≈ 20 ms.
        assert hpk < 0.45 * h0
        assert np.nanstd(fix.h_ms) < 4.0
        assert 15.0 < np.nanmean(fix.h_ms) < 30.0
        # Fig. 7b: Fix-K's leader burns multiples of Dynatune's CPU, and the
        # follower load is far below the leader's.
        assert fix.leader_cpu.mean() > 2.0 * dyn.leader_cpu.mean()
        assert fix.follower_cpu.mean() < 0.2 * fix.leader_cpu.mean()
        # Dynatune's CPU peaks with the loss rate (the "peak pattern").
        mid = len(dyn.leader_cpu) // 2
        assert dyn.leader_cpu[mid - 2 : mid + 3].mean() > dyn.leader_cpu[:3].mean()
        # §IV-C2: no unnecessary elections for either system.
        assert dyn.unnecessary_elections == 0
        assert fix.unnecessary_elections == 0

    # Leader CPU grows with cluster size for Fix-K (the scalability story).
    if len(cfg.sizes) >= 2:
        small, large = min(cfg.sizes), max(cfg.sizes)
        assert (
            result.runs[("fix-k", large)].leader_cpu.mean()
            > 2.0 * result.runs[("fix-k", small)].leader_cpu.mean()
        )
