"""Fig. 8 bench: geo-replicated (AWS, five regions) election performance.

Paper: detection 1137 → 213 ms (−81 %), OTS 1718 → 1145 ms (−33 %), with
NTP-grade measurement error acknowledged.
"""

from repro.experiments import fig8_geo


def test_fig8_geo_election_performance(once, benchmark):
    cfg = fig8_geo.Fig8Config.quick()
    result = once(fig8_geo.run, cfg)
    raft = result.systems["raft"]
    dyn = result.systems["dynatune"]
    benchmark.extra_info["n_failures"] = cfg.n_failures
    benchmark.extra_info["raft_detection_ms"] = round(raft.mean_detection_ms, 1)
    benchmark.extra_info["raft_ots_ms"] = round(raft.mean_ots_ms, 1)
    benchmark.extra_info["dynatune_detection_ms"] = round(dyn.mean_detection_ms, 1)
    benchmark.extra_info["dynatune_ots_ms"] = round(dyn.mean_ots_ms, 1)
    benchmark.extra_info["detection_reduction"] = round(result.reduction("detection"), 3)
    benchmark.extra_info["ots_reduction"] = round(result.reduction("ots"), 3)
    benchmark.extra_info["paper"] = fig8_geo.PAPER_NUMBERS

    # Raft magnitudes track the paper (1137 / 1718 ms).
    assert 950.0 < raft.mean_detection_ms < 1450.0
    assert 1400.0 < raft.mean_ots_ms < 2100.0
    # Dynatune: detection collapses to RTT scale; OTS clearly reduced.
    assert dyn.mean_detection_ms < 450.0
    assert result.reduction("detection") > 0.6  # paper: 81 %
    assert result.reduction("ots") > 0.1  # paper: 33 %
