"""Compaction benches: compact-under-load cost and snapshot vs full-replay
catch-up, with the memory trajectory recorded alongside the timings.

Each bench stores a ``tracemalloc`` high-water mark and the retained-entry
counts in ``extra_info``, so every ``BENCH_<stamp>.json`` snapshot (and the
committed ``BENCH_latest.json`` trajectory point) carries the memory story
next to the wall-clock one — the quantity this subsystem exists to bound.
"""

import tracemalloc

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.dynatune.policy import StaticPolicy
from repro.raft.log import RaftLog
from repro.raft.state_machine import kv_put
from repro.raft.types import RaftConfig


def _cluster(*, threshold: int, margin: int = 32, n: int = 5, seed: int = 3):
    cluster = build_cluster(
        ClusterConfig(
            n_nodes=n,
            seed=seed,
            rtt_ms=20.0,
            raft=RaftConfig(
                compaction_threshold=threshold, compaction_retain_margin=margin
            ),
        ),
        lambda name: StaticPolicy(election_timeout_ms=300.0, heartbeat_interval_ms=50.0),
    )
    cluster.start()
    return cluster


def _drive_load(cluster, client, n_ops: int, *, batch: int = 25, settle_ms: float = 400.0):
    sent = 0
    while sent < n_ops:
        for i in range(sent, min(sent + batch, n_ops)):
            client.submit(kv_put(f"k{i % 64}", i))
        sent = min(sent + batch, n_ops)
        cluster.run_for(settle_ms)
    cluster.run_for(2_000.0)


def _max_retained(cluster) -> int:
    return max(
        n.log.last_index - n.log.last_included_index for n in cluster.nodes.values()
    )


def test_log_compact_microbench(benchmark):
    """Raw ``RaftLog.compact``: the per-compaction cost at threshold scale."""

    def run():
        log = RaftLog()
        total = 0
        for round_no in range(50):
            base = log.last_index
            for i in range(1_000):
                log.append_new(1, ("k", base + i))
            total += log.compact(log.last_index - 64)
        return total, log.retained

    total, retained = benchmark(run)
    assert retained == 64
    assert total == 50 * 1_000 - 64


def test_compact_under_load(benchmark):
    """A live 5-node cluster committing 600 ops with a small threshold:
    the replication + apply + snapshot/compact pipeline end to end, with
    the retained-entry bound recorded as the memory result."""

    def run():
        cluster = _cluster(threshold=150, margin=16)
        client = cluster.add_client("cl")
        cluster.run_until_leader()
        tracemalloc.start()
        _drive_load(cluster, client, 600)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return cluster, peak

    cluster, peak = benchmark.pedantic(run, rounds=1, iterations=1)
    retained = _max_retained(cluster)
    compactions = sum(n.metrics.compactions for n in cluster.nodes.values())
    assert compactions >= 1
    assert retained <= 150 + 16 + 64
    benchmark.extra_info["tracemalloc_peak_kb"] = round(peak / 1024.0, 1)
    benchmark.extra_info["max_retained_entries"] = retained
    benchmark.extra_info["compactions"] = compactions


def test_uncompacted_baseline_memory(benchmark):
    """The same 600-op run with compaction off: the memory control the
    trajectory compares against (retained == full history)."""

    def run():
        cluster = _cluster(threshold=0)
        client = cluster.add_client("cl")
        cluster.run_until_leader()
        tracemalloc.start()
        _drive_load(cluster, client, 600)
        _, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        return cluster, peak

    cluster, peak = benchmark.pedantic(run, rounds=1, iterations=1)
    retained = _max_retained(cluster)
    assert retained >= 600  # the whole history is still in memory
    benchmark.extra_info["tracemalloc_peak_kb"] = round(peak / 1024.0, 1)
    benchmark.extra_info["max_retained_entries"] = retained
    benchmark.extra_info["compactions"] = 0


def _catchup(threshold: int):
    """Crash a follower, commit 500 ops, recover, run to convergence."""
    cluster = _cluster(threshold=threshold, margin=16)
    client = cluster.add_client("cl")
    leader = cluster.run_until_leader()
    cluster.run_for(300.0)
    lagger = next(n for n in cluster.names if n != leader)
    cluster.node(lagger).crash()
    _drive_load(cluster, client, 500)
    target = max(
        n.commit_index for n in cluster.nodes.values() if n.name != lagger
    )
    follower = cluster.node(lagger)
    applied_before = follower.metrics.entries_applied
    follower.recover()
    deadline = cluster.loop.now + 20_000.0
    while cluster.loop.now < deadline and follower.last_applied < target:
        cluster.run_for(25.0)
    assert follower.last_applied >= target
    return cluster, follower.metrics.entries_applied - applied_before, follower


def test_snapshot_catchup(benchmark):
    """Follower rejoin after 500 committed ops, compaction on: one
    InstallSnapshot plus a margin-scale tail."""
    cluster, replayed, follower = benchmark.pedantic(
        lambda: _catchup(threshold=100), rounds=1, iterations=1
    )
    assert follower.metrics.snapshots_installed >= 1
    assert replayed <= 100  # margin + in-flight tail, not the history
    benchmark.extra_info["replayed_entries"] = replayed
    benchmark.extra_info["max_retained_entries"] = _max_retained(cluster)


def test_full_replay_catchup(benchmark):
    """The control: same rejoin with compaction off — the follower replays
    the entire committed history entry by entry."""
    cluster, replayed, follower = benchmark.pedantic(
        lambda: _catchup(threshold=0), rounds=1, iterations=1
    )
    assert follower.metrics.snapshots_installed == 0
    assert replayed >= 500  # the whole history replays
    benchmark.extra_info["replayed_entries"] = replayed
    benchmark.extra_info["max_retained_entries"] = _max_retained(cluster)
