"""Micro-benchmarks of the simulator's hot paths.

These are classic pytest-benchmark timing runs (multiple rounds) rather
than one-shot experiment regenerations: they track the cost of the event
loop, the estimator, and a full simulated heartbeat round — the quantities
that determine how big an N and how long a dwell the figure benches can
afford.
"""

import numpy as np

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.dynatune.estimators import WindowedMeanStd
from repro.dynatune.measurement import PathMeasurement
from repro.dynatune.policy import DynatunePolicy
from repro.raft.commit import CommitTracker
from repro.sim.loop import EventLoop


def test_event_loop_schedule_execute(benchmark):
    """Throughput of schedule+execute cycles (the simulator's unit cost)."""

    def run():
        loop = EventLoop()
        for i in range(10_000):
            loop.schedule(float(i % 100), lambda: None)
        loop.run()
        return loop.executed

    executed = benchmark(run)
    assert executed == 10_000


def test_timer_reset_storm(benchmark):
    """Heartbeat-style timer resets: the dominant Raft follower operation."""
    loop = EventLoop()
    from repro.sim.timers import Timer

    t = Timer(loop, "el", lambda: None)
    t.start(1e12)

    def run():
        for _ in range(10_000):
            t.reset(1e12)

    benchmark(run)


def test_estimator_push(benchmark):
    """O(1) windowed mean/std push at the paper's maxListSize."""
    w = WindowedMeanStd(1000)
    rng = np.random.default_rng(0)
    samples = rng.normal(100.0, 2.0, size=10_000).tolist()

    def run():
        for v in samples:
            w.push(v)
        return w.mean_std()

    mu, sigma = benchmark(run)
    assert 99.0 < mu < 101.0


def test_measurement_record_and_tune(benchmark):
    """Full follower-side per-heartbeat work: id + rtt + retune."""
    from repro.dynatune.metadata import HeartbeatMeta

    policy = DynatunePolicy()
    policy.on_leader_change("L", 0.0)

    def run():
        for i in range(1, 5_001):
            meta = HeartbeatMeta(
                seq=i, send_ts=float(i), rtt_sample_ms=100.0, rtt_sample_seq=i
            )
            policy.on_heartbeat("L", meta, float(i))
        return policy.tuned_et_ms

    et = benchmark(run)
    assert et is not None


def test_loss_rate_with_sliding_window(benchmark):
    """10k in-order IDs (every other one lost) through a 1000-ID window.

    The measurement is constructed inside the round: with a shared
    instance, every round after the first would re-record already-seen
    IDs and measure the duplicate path instead of the sliding window.
    """

    def run():
        m = PathMeasurement(min_list_size=1, max_list_size=1000)
        for i in range(1, 20_001, 2):  # every other heartbeat lost
            m.record_id(i)
        return m.loss_rate()

    p = benchmark(run)
    assert 0.45 < p < 0.55


def test_simulated_cluster_second(benchmark):
    """Wall cost of one virtual second of a 5-node Dynatune cluster."""
    cluster = build_cluster(
        ClusterConfig(n_nodes=5, seed=1, rtt_ms=100.0),
        lambda name: DynatunePolicy(),
    )
    cluster.start()
    cluster.run_until_leader()

    def run():
        cluster.run_for(1_000.0)

    benchmark(run)


def test_commit_tracker_append_response_storm(benchmark):
    """Commit advancement under an append-response storm at n=101.

    100 followers each acknowledge 200 entries one at a time (20k
    responses), interleaved round-robin — the exact pattern a loaded
    large-cluster leader sees.  The seed implementation sorted all 100
    match indices per response (O(n log n) each); the tracker must stay
    O(1) amortized, i.e. this bench must scale with responses, not with
    responses × cluster size.
    """
    n_followers = 100
    quorum_acks = (n_followers + 1) // 2 + 1 - 1  # quorum-1 for n=101

    def run():
        tracker = CommitTracker(quorum_acks)
        matches = [0] * n_followers
        commit = 0
        for entry in range(1, 201):
            for f in range(n_followers):
                old = matches[f]
                matches[f] = entry
                frontier = tracker.advance(old, entry)
                if frontier > commit:
                    commit = frontier
                    tracker.discard_through(commit)
        return commit

    commit = benchmark(run)
    assert commit == 200


def test_record_id_window_slide(benchmark):
    """record_id at a saturated 1000-sample window (the §III-E bound).

    20k strictly in-order IDs through an already-full window: every call
    takes the monotone fast path and evicts the oldest ID.  The seed paid
    an O(window) ``pop(0)`` shift per call here.
    """
    m = PathMeasurement(min_list_size=1, max_list_size=1000)
    for i in range(1, 1_001):
        m.record_id(i)
    state = {"next": 1_001}

    def run():
        start = state["next"]
        stop = start + 20_000
        for i in range(start, stop):
            m.record_id(i)
        state["next"] = stop
        return m.id_count

    count = benchmark(run)
    assert count == 1_000
    assert m.duplicates_ignored == 0
