"""Fig. 4 bench: stable-network election performance (detection/OTS CDFs).

Regenerates the paper's headline numbers — detection 1205 → 237 ms (−80 %),
OTS 1449 → 797 ms (−45 %) — at the scale selected by ``REPRO_SCALE``.
"""

from repro.experiments import fig4_election


def test_fig4_election_performance(once, benchmark):
    """Both systems in one run so the reduction factors can be asserted."""
    cfg = fig4_election.Fig4Config.quick()
    result = once(fig4_election.run, cfg)
    raft = result.systems["raft"]
    dyn = result.systems["dynatune"]
    benchmark.extra_info["n_failures"] = cfg.n_failures
    benchmark.extra_info["raft_detection_ms"] = round(raft.mean_detection_ms, 1)
    benchmark.extra_info["raft_ots_ms"] = round(raft.mean_ots_ms, 1)
    benchmark.extra_info["dynatune_detection_ms"] = round(dyn.mean_detection_ms, 1)
    benchmark.extra_info["dynatune_ots_ms"] = round(dyn.mean_ots_ms, 1)
    benchmark.extra_info["detection_reduction"] = round(result.reduction("detection"), 3)
    benchmark.extra_info["ots_reduction"] = round(result.reduction("ots"), 3)
    benchmark.extra_info["paper"] = fig4_election.PAPER_NUMBERS

    # Shape assertions (paper: −80 % detection, −45 % OTS).
    assert result.reduction("detection") > 0.6
    assert result.reduction("ots") > 0.15
    # Raft baseline magnitudes match the paper's measurements closely.
    assert 1000.0 < raft.mean_detection_ms < 1450.0
    assert 1200.0 < raft.mean_ots_ms < 1750.0
    # randomizedTimeout means: ~1.45 s (Raft) vs ~0.15 s (Dynatune).
    assert 1300.0 < raft.mean_randomized_timeout_ms < 1600.0
    assert dyn.mean_randomized_timeout_ms < 300.0
    # §IV-E: Dynatune's election phase is longer (split votes).
    assert dyn.mean_election_ms > raft.mean_election_ms
