"""Storage benches: the persist-path cost the durability layer added.

Three angles on the same question — what does ack-after-sync cost the
hot path?  The raw WAL append+fsync storm prices one storage operation;
the ideal/simdisk cluster pair prices the whole replication pipeline on
each backend (the two runs are asserted event-identical, so any timing
gap *is* the bookkeeping overhead); and the recovery bench prices the
synced-WAL replay a rebooting node performs, with the replayed record
count in ``extra_info`` alongside the wall clock.
"""

import numpy as np

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.dynatune.policy import StaticPolicy
from repro.raft.log import LogEntry
from repro.raft.state_machine import kv_put
from repro.raft.types import RaftConfig
from repro.storage import SimDiskStorage


def _cluster(storage: str, *, n: int = 5, seed: int = 3, threshold: int = 150):
    cluster = build_cluster(
        ClusterConfig(
            n_nodes=n,
            seed=seed,
            rtt_ms=20.0,
            raft=RaftConfig(
                compaction_threshold=threshold, compaction_retain_margin=16
            ),
            storage=storage,
        ),
        lambda name: StaticPolicy(election_timeout_ms=300.0, heartbeat_interval_ms=50.0),
    )
    cluster.start()
    return cluster


def _drive_load(cluster, client, n_ops: int, *, batch: int = 25, settle_ms: float = 400.0):
    sent = 0
    while sent < n_ops:
        for i in range(sent, min(sent + batch, n_ops)):
            client.submit(kv_put(f"k{i % 64}", i))
        sent = min(sent + batch, n_ops)
        cluster.run_for(settle_ms)
    cluster.run_for(2_000.0)


def test_wal_append_sync_storm(benchmark):
    """Raw SimDiskStorage: checksummed record build + fsync barrier, one
    entry per sync — the worst-case (unbatched) persist cadence."""
    cluster = _cluster("simdisk", n=3)

    def run():
        store = SimDiskStorage(np.random.default_rng(11))
        store.attach(cluster.node("n1"))  # fault plumbing (all-zero knobs)
        for i in range(1, 2_001):
            store.wal_append(LogEntry(term=1, index=i, command=("k", i)))
            store.sync()
        return store.durable_view()

    view = benchmark(run)
    assert max(view.entry_terms) == 2_000


def test_replication_pipeline_ideal(benchmark):
    """400 committed ops on the ideal backend: the no-op persist
    baseline (bit-identical to the pre-storage engine)."""
    cluster, events = benchmark.pedantic(
        lambda: _run_pipeline("ideal"), rounds=1, iterations=1
    )
    benchmark.extra_info["trace_events"] = events


def test_replication_pipeline_simdisk(benchmark):
    """The same 400 ops on the fault-free simdisk backend: the gap to the
    ideal bench is the full WAL bookkeeping + checksum overhead."""
    cluster, events = benchmark.pedantic(
        lambda: _run_pipeline("simdisk"), rounds=1, iterations=1
    )
    benchmark.extra_info["trace_events"] = events
    # Fault-free simdisk is pure bookkeeping: the run must be
    # event-identical to the ideal baseline, so the benches time the same
    # work on different storage.
    ideal_cluster, ideal_events = _run_pipeline("ideal")
    assert events == ideal_events
    assert (
        cluster.node("n1").state_machine.snapshot()
        == ideal_cluster.node("n1").state_machine.snapshot()
    )


def _run_pipeline(storage: str):
    cluster = _cluster(storage)
    client = cluster.add_client("cl")
    cluster.run_until_leader()
    _drive_load(cluster, client, 400)
    return cluster, len(cluster.trace.all())


def test_recovery_replay(benchmark):
    """Synced-WAL replay at reboot: parse + checksum-verify every durable
    record and rebuild hard state, log and snapshot."""
    cluster = _cluster("simdisk", threshold=0)  # no compaction: long WAL
    client = cluster.add_client("cl")
    leader = cluster.run_until_leader()
    _drive_load(cluster, client, 300)
    follower = cluster.node(next(n for n in cluster.names if n != leader))
    follower.crash()

    durable = benchmark(follower.storage.recover)
    assert durable.replayed >= 300
    benchmark.extra_info["replayed_entries"] = durable.replayed
