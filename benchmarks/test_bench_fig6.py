"""Fig. 6 benches: RTT-fluctuation adaptivity (gradual 6a, radical 6b)."""

import numpy as np

from repro.experiments import fig6_rtt


def test_fig6a_gradual_rtt(once, benchmark):
    cfg = fig6_rtt.Fig6Config.quick("gradual")
    result = once(fig6_rtt.run, cfg)
    dyn = result.systems["dynatune"]
    raft = result.systems["raft"]
    low = result.systems["raft-low"]
    benchmark.extra_info["dwell_s"] = cfg.dwell_ms / 1000.0
    benchmark.extra_info["dynatune_ots_s"] = round(dyn.ots_total_ms / 1000.0, 1)
    benchmark.extra_info["raft_ots_s"] = round(raft.ots_total_ms / 1000.0, 1)
    benchmark.extra_info["raftlow_ots_s"] = round(low.ots_total_ms / 1000.0, 1)
    benchmark.extra_info["raftlow_elections"] = low.unnecessary_elections
    benchmark.extra_info["dynatune_elections"] = dyn.unnecessary_elections

    # Dynatune tracks the RTT: the f+1-smallest randomizedTimeout stays a
    # small multiple of the RTT once warmed up.
    warmed = dyn.times_ms > 30_000.0
    ratio = dyn.kth_randomized_timeout_ms[warmed] / dyn.rtt_ms[warmed]
    assert np.nanmedian(ratio) < 4.0
    # Raft: flat near 1.5 × 1000 ms, never disturbed.
    assert 1200.0 < np.nanmedian(raft.kth_randomized_timeout_ms) < 1800.0
    assert raft.ots_total_ms == 0.0
    assert raft.unnecessary_elections == 0
    # Dynatune: no service loss either.
    assert dyn.ots_total_ms == 0.0
    assert dyn.unnecessary_elections == 0
    # Raft-Low: unnecessary elections and OTS episodes at elevated RTT.
    assert low.unnecessary_elections > 0
    assert low.ots_total_ms > 0.0


def test_fig6b_radical_rtt(once, benchmark):
    cfg = fig6_rtt.Fig6Config.quick("radical")
    result = once(fig6_rtt.run, cfg)
    dyn = result.systems["dynatune"]
    raft = result.systems["raft"]
    low = result.systems["raft-low"]
    benchmark.extra_info["dynatune_false_detections"] = dyn.false_detections
    benchmark.extra_info["dynatune_elections"] = dyn.unnecessary_elections
    benchmark.extra_info["dynatune_ots_s"] = round(dyn.ots_total_ms / 1000.0, 1)
    benchmark.extra_info["raftlow_ots_s"] = round(low.ots_total_ms / 1000.0, 1)

    # The paper's §IV-C1 radical narrative:
    # Dynatune false-detects during the spike but pre-vote aborts: no OTS.
    assert dyn.false_detections > 0
    assert dyn.unnecessary_elections == 0
    assert dyn.ots_total_ms == 0.0
    # Raft rides it out entirely.
    assert raft.ots_total_ms == 0.0
    # Raft-Low cannot elect while RTT > its randomizedTimeout: OTS roughly
    # the whole spike dwell.
    assert low.unnecessary_elections > 0
    assert low.ots_total_ms > 0.5 * cfg.dwell_ms
