"""Serving fast-path bench: the ISSUE-8 acceptance number.

Runs the closed-loop serving grid (see ``repro.experiments.serving``)
once and records the headline throughput per mode in ``extra_info``, so
every ``BENCH_<stamp>.json`` snapshot — and the committed
``BENCH_latest.json`` trajectory point — carries the fast-path speedup
next to the wall-clock timings.  The ≥ 3× gate is asserted here on the
**simulated** ops/sec (seed-deterministic); wall-clock ops/sec is
recorded advisory-only, like the memory trajectory.
"""

from repro.experiments import serving


def test_serving_fastpath_speedup(once, benchmark):
    cfg = serving.ServingConfig(n_clients=64, duration_ms=18_000.0)
    result = once(serving.run, cfg)

    for r in result.runs:
        benchmark.extra_info[f"{r.mode}_ops_per_sim_s"] = round(r.ops_per_sim_s)
        benchmark.extra_info[f"{r.mode}_ops_per_wall_s"] = round(r.ops_per_wall_s)
    benchmark.extra_info["serving_speedup"] = round(result.speedup, 2)
    benchmark.extra_info["reads_lease"] = result.find("lease").reads_lease
    benchmark.extra_info["reads_readindex"] = result.find("readindex").reads_readindex

    # The full gate set: safety clean in every mode, fast paths covered,
    # the drift control always falling back, speedup >= 3x.
    assert serving.check(result) == []
    assert result.speedup >= serving.MIN_SPEEDUP

    # The fast path must not buy throughput with dropped requests.
    for r in result.runs:
        assert r.availability >= serving.MIN_AVAILABILITY, r.mode
