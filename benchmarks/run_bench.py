#!/usr/bin/env python
"""Run the pytest-benchmark suite, snapshot results, flag regressions.

Usage::

    PYTHONPATH=src python benchmarks/run_bench.py               # full suite
    PYTHONPATH=src python benchmarks/run_bench.py -k core_perf  # subset
    PYTHONPATH=src python benchmarks/run_bench.py --threshold 0.10
    PYTHONPATH=src python benchmarks/run_bench.py --compare-only old.json new.json

Each run writes ``BENCH_<timestamp>.json`` (raw ``--benchmark-json``
output) into ``--results-dir`` (default ``benchmarks/results/``), then
compares per-benchmark mean times against the most recent previous
snapshot in that directory.  Exits non-zero when any benchmark regressed
by more than ``--threshold`` (default 20 %), so CI can gate on it.
"""

from __future__ import annotations

import argparse
import datetime
import json
import pathlib
import shutil
import subprocess
import sys

DEFAULT_THRESHOLD = 0.20
BENCH_DIR = pathlib.Path(__file__).resolve().parent
SNAPSHOT_PREFIX = "BENCH_"
#: Committed copy of the most recent full-suite snapshot: the repo-level
#: perf trajectory (one point per PR; CI refreshes it and uploads it as an
#: artifact so regressions are visible across history, not just run-to-run).
LATEST_PATH = BENCH_DIR.parent / "BENCH_latest.json"


def load_means(path: pathlib.Path) -> dict[str, float]:
    """Benchmark name → mean seconds from a ``--benchmark-json`` file."""
    with open(path) as fh:
        data = json.load(fh)
    means: dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        means[bench["fullname"]] = float(bench["stats"]["mean"])
    return means


#: ``extra_info`` keys that form the memory trajectory (recorded by the
#: compaction benches; see benchmarks/test_bench_compaction.py).
MEMORY_KEYS = (
    "tracemalloc_peak_kb",
    "max_retained_entries",
    "replayed_entries",
    "compactions",
)


def load_memory(path: pathlib.Path) -> dict[str, dict[str, float]]:
    """Benchmark name → memory ``extra_info`` from a ``--benchmark-json`` file."""
    with open(path) as fh:
        data = json.load(fh)
    out: dict[str, dict[str, float]] = {}
    for bench in data.get("benchmarks", []):
        extra = bench.get("extra_info") or {}
        mem = {k: float(extra[k]) for k in MEMORY_KEYS if k in extra}
        if mem:
            out[bench["fullname"]] = mem
    return out


def memory_report(
    old: dict[str, dict[str, float]], new: dict[str, dict[str, float]]
) -> list[str]:
    """Advisory memory-trajectory lines (never gate: allocator noise is
    platform-dependent; the *retained-entry* bounds are asserted inside the
    benches themselves)."""
    if not new:
        return []
    lines = ["", "memory trajectory (extra_info):"]
    width = max(len(n) for n in new)
    for name in sorted(new):
        parts = []
        for key, value in sorted(new[name].items()):
            base = old.get(name, {}).get(key)
            delta = f" (was {base:g})" if base is not None and base != value else ""
            parts.append(f"{key}={value:g}{delta}")
        lines.append(f"{name:<{width}}  {'  '.join(parts)}")
    return lines


def compare(
    old: dict[str, float], new: dict[str, float], threshold: float
) -> tuple[list[str], list[str]]:
    """Return (report lines, regressed benchmark names)."""
    lines: list[str] = []
    regressed: list[str] = []
    width = max((len(n) for n in new), default=10)
    for name in sorted(new):
        mean = new[name]
        base = old.get(name)
        if base is None or base <= 0.0:
            lines.append(f"{name:<{width}}  {mean * 1e3:10.3f} ms  (new)")
            continue
        ratio = mean / base - 1.0
        marker = ""
        if ratio > threshold:
            marker = "  << REGRESSION"
            regressed.append(name)
        elif ratio < -threshold:
            marker = "  (improved)"
        lines.append(
            f"{name:<{width}}  {mean * 1e3:10.3f} ms  vs {base * 1e3:10.3f} ms  "
            f"{ratio:+7.1%}{marker}"
        )
    for name in sorted(set(old) - set(new)):
        lines.append(f"{name:<{width}}  (dropped from suite)")
    return lines, regressed


def previous_snapshot(results_dir: pathlib.Path, exclude: pathlib.Path) -> pathlib.Path | None:
    snaps = sorted(
        p
        for p in results_dir.glob(f"{SNAPSHOT_PREFIX}*.json")
        if p.resolve() != exclude.resolve()
    )
    return snaps[-1] if snaps else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="max tolerated mean-time regression fraction (default 0.20)",
    )
    parser.add_argument(
        "--results-dir",
        type=pathlib.Path,
        default=BENCH_DIR / "results",
        help="where snapshots live (default benchmarks/results/)",
    )
    parser.add_argument(
        "--baseline",
        type=pathlib.Path,
        default=None,
        help="explicit baseline snapshot (default: latest previous one)",
    )
    parser.add_argument(
        "--compare-only",
        nargs=2,
        metavar=("OLD", "NEW"),
        default=None,
        help="skip running; just compare two snapshot files",
    )
    parser.add_argument(
        "--no-fail",
        action="store_true",
        help="report regressions but exit 0 anyway",
    )
    parser.add_argument(
        "--latest-path",
        type=pathlib.Path,
        default=LATEST_PATH,
        help=(
            "where to mirror the snapshot when the full suite ran "
            f"(default {LATEST_PATH}); --no-latest disables"
        ),
    )
    parser.add_argument(
        "--no-latest",
        action="store_true",
        help="do not refresh the BENCH_latest.json mirror",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "breakage check only: run every benchmark once with timing "
            "disabled, write no snapshot, compare nothing (CI's cheap gate "
            "that the benchmarked paths still execute)"
        ),
    )
    parser.add_argument(
        "pytest_args",
        nargs="*",
        help="extra arguments forwarded to pytest (e.g. -k core_perf)",
    )
    # parse_known_args: unknown flags (-k, -x, --benchmark-*) flow to pytest.
    args, passthrough = parser.parse_known_args(argv)
    args.pytest_args = [*passthrough, *args.pytest_args]

    if args.compare_only:
        old_path, new_path = map(pathlib.Path, args.compare_only)
        try:
            old_means, new_means = load_means(old_path), load_means(new_path)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read snapshot: {exc}", file=sys.stderr)
            return 2
        lines, regressed = compare(old_means, new_means, args.threshold)
        print("\n".join(lines) if lines else "no benchmarks in common")
        for line in memory_report(load_memory(old_path), load_memory(new_path)):
            print(line)
        if regressed and not args.no_fail:
            print(f"\n{len(regressed)} benchmark(s) regressed > {args.threshold:.0%}")
            return 1
        return 0

    if args.smoke:
        cmd = [
            sys.executable,
            "-m",
            "pytest",
            str(BENCH_DIR),
            "-q",
            "--benchmark-disable",
            *args.pytest_args,
        ]
        print("+", " ".join(cmd))
        return subprocess.run(cmd).returncode

    args.results_dir.mkdir(parents=True, exist_ok=True)
    stamp = datetime.datetime.now().strftime("%Y%m%d-%H%M%S")
    snapshot = args.results_dir / f"{SNAPSHOT_PREFIX}{stamp}.json"

    cmd = [
        sys.executable,
        "-m",
        "pytest",
        str(BENCH_DIR),
        "-q",
        "--benchmark-only",
        f"--benchmark-json={snapshot}",
        *args.pytest_args,
    ]
    print("+", " ".join(cmd))
    proc = subprocess.run(cmd)
    if proc.returncode != 0:
        print(f"benchmark run failed (exit {proc.returncode})", file=sys.stderr)
        return proc.returncode
    print(f"\nsnapshot written: {snapshot}")
    if not args.no_latest:
        # Only a full-suite run may refresh the trajectory point: any
        # pytest passthrough (-k, -m, a file path, --deselect, ...) can
        # subset the suite and would silently drop benchmarks from the
        # committed file, so extra args disable the mirror wholesale.
        if args.pytest_args:
            print("(pytest args given: BENCH_latest.json left untouched)")
        else:
            shutil.copyfile(snapshot, args.latest_path)
            print(f"latest mirror refreshed: {args.latest_path}")

    baseline = args.baseline or previous_snapshot(args.results_dir, snapshot)
    if baseline is None:
        print("no previous snapshot to compare against — baseline recorded.")
        for line in memory_report({}, load_memory(snapshot)):
            print(line)
        return 0
    print(f"comparing against: {baseline}\n")
    lines, regressed = compare(
        load_means(baseline), load_means(snapshot), args.threshold
    )
    print("\n".join(lines))
    for line in memory_report(load_memory(baseline), load_memory(snapshot)):
        print(line)
    if regressed and not args.no_fail:
        print(f"\n{len(regressed)} benchmark(s) regressed > {args.threshold:.0%}")
        return 1
    print("\nno regressions beyond threshold.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
