"""Benchmark-suite configuration.

Every paper figure has one benchmark that *regenerates* it and records the
headline numbers as ``extra_info`` (so ``--benchmark-json`` output carries
the paper-vs-measured data).  Simulation benches run exactly once
(``pedantic(rounds=1)``): they are deterministic given the seed, so
repetition would only burn time.

Scale: ``REPRO_SCALE=quick`` (default) or ``paper`` — see
``repro.experiments.common``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def once(benchmark):
    """Run a deterministic simulation exactly once under the benchmark."""

    def _run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _run
