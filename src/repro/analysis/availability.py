"""Availability summaries over leaderless (OTS) intervals.

The scenario matrix reduces each run to "how unavailable was the service
and how hard did it thrash" — the BALLAST-style figures of merit for
partition/heal timelines.  Input is the interval list produced by
:func:`repro.cluster.measurements.leaderless_intervals`.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

__all__ = ["AvailabilityStats", "availability_stats"]


@dataclasses.dataclass(slots=True, frozen=True)
class AvailabilityStats:
    """Unavailability profile of one run window.

    Attributes:
        window_ms: length of the observation window.
        unavailable_ms: total leaderless time inside the window.
        unavailable_fraction: ``unavailable_ms / window_ms`` (0 for an
            empty window).
        n_outages: number of distinct leaderless intervals.
        longest_outage_ms: the worst single interval (0 with no outage).
    """

    window_ms: float
    unavailable_ms: float
    unavailable_fraction: float
    n_outages: int
    longest_outage_ms: float


def availability_stats(
    intervals: Sequence[tuple[float, float]],
    *,
    t_start: float,
    t_end: float,
) -> AvailabilityStats:
    """Summarise leaderless ``intervals`` clipped to ``[t_start, t_end]``.

    Intervals wholly outside the window are dropped; straddling ones are
    clipped, so warmup noise before ``t_start`` never pollutes the figure.
    """
    if t_end < t_start:
        raise ValueError(f"t_end must be >= t_start, got [{t_start!r}, {t_end!r}]")
    window = t_end - t_start
    clipped: list[float] = []
    for a, b in intervals:
        lo, hi = max(a, t_start), min(b, t_end)
        if hi > lo:
            clipped.append(hi - lo)
    total = float(sum(clipped))
    return AvailabilityStats(
        window_ms=window,
        unavailable_ms=total,
        unavailable_fraction=(total / window) if window > 0.0 else 0.0,
        n_outages=len(clipped),
        longest_outage_ms=max(clipped, default=0.0),
    )
