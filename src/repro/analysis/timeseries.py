"""Time-series helpers for the Fig. 6/7 plots."""

from __future__ import annotations

import numpy as np

__all__ = ["bin_series", "interval_coverage"]


def bin_series(
    times_ms: np.ndarray | list[float],
    values: np.ndarray | list[float],
    *,
    bin_ms: float,
    t_start: float = 0.0,
    t_end: float | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Average ``values`` into fixed-width time bins.

    Returns ``(bin_centers_ms, bin_means)``; empty bins are NaN.
    """
    t = np.asarray(times_ms, dtype=np.float64)
    v = np.asarray(values, dtype=np.float64)
    if t.shape != v.shape:
        raise ValueError("times and values must have matching shapes")
    if bin_ms <= 0:
        raise ValueError(f"bin_ms must be > 0, got {bin_ms!r}")
    if t_end is None:
        t_end = float(t.max()) if t.size else t_start + bin_ms
    edges = np.arange(t_start, t_end + bin_ms, bin_ms)
    if len(edges) < 2:
        edges = np.array([t_start, t_start + bin_ms])
    which = np.digitize(t, edges) - 1
    n_bins = len(edges) - 1
    sums = np.zeros(n_bins)
    counts = np.zeros(n_bins)
    mask = (which >= 0) & (which < n_bins)
    np.add.at(sums, which[mask], v[mask])
    np.add.at(counts, which[mask], 1.0)
    with np.errstate(invalid="ignore"):
        means = np.where(counts > 0, sums / np.maximum(counts, 1.0), np.nan)
    centers = (edges[:-1] + edges[1:]) / 2.0
    return centers, means


def interval_coverage(
    intervals: list[tuple[float, float]],
    *,
    t_start: float,
    t_end: float,
    bin_ms: float,
) -> tuple[np.ndarray, np.ndarray]:
    """Fraction of each time bin covered by ``intervals``.

    Used to rasterise the OTS shading of Fig. 6 into a plottable series
    (1.0 = the whole bin was leaderless).
    """
    if bin_ms <= 0:
        raise ValueError(f"bin_ms must be > 0, got {bin_ms!r}")
    edges = np.arange(t_start, t_end + bin_ms, bin_ms)
    centers = (edges[:-1] + edges[1:]) / 2.0
    coverage = np.zeros(len(centers))
    for a, b in intervals:
        if b <= t_start or a >= t_end:
            continue
        lo = np.clip(edges[:-1], a, b)
        hi = np.clip(edges[1:], a, b)
        coverage += np.maximum(hi - lo, 0.0)
    return centers, coverage / bin_ms
