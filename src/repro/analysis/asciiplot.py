"""Terminal-renderable charts for experiment output.

The paper's figures are line plots and CDFs; this environment has no
plotting stack, so the experiment ``main()``s render compact ASCII charts
instead — enough to eyeball that Dynatune's series tracks the RTT line or
that a CDF sits left of another.

Only two chart shapes are needed:

* :func:`line_chart` — one or more (x, y) series on a shared grid, NaN-
  tolerant (gaps simply don't paint);
* :func:`cdf_chart` — convenience wrapper rendering empirical CDFs.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = ["line_chart", "cdf_chart"]

_MARKERS = "*o+x#@%&"


def _scale(v: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    frac = (v - lo) / (hi - lo)
    return min(cells - 1, max(0, int(frac * (cells - 1) + 0.5)))


def line_chart(
    series: dict[str, tuple[Sequence[float], Sequence[float]]],
    *,
    width: int = 72,
    height: int = 16,
    title: str = "",
    x_label: str = "",
    y_label: str = "",
) -> str:
    """Render named (xs, ys) series onto one character grid.

    Args:
        series: name → (xs, ys); series are assigned markers in order.
        width/height: plot area size in characters (axes add a margin).

    Returns:
        The chart as a newline-joined string.

    Raises:
        ValueError: if no series contains a finite point.
    """
    if not series:
        raise ValueError("need at least one series")
    xs_all: list[float] = []
    ys_all: list[float] = []
    for xs, ys in series.values():
        for x, y in zip(xs, ys):
            if math.isfinite(x) and math.isfinite(y):
                xs_all.append(float(x))
                ys_all.append(float(y))
    if not xs_all:
        raise ValueError("no finite data points to plot")
    x_lo, x_hi = min(xs_all), max(xs_all)
    y_lo, y_hi = min(ys_all), max(ys_all)
    if y_lo == y_hi:
        y_lo, y_hi = y_lo - 1.0, y_hi + 1.0

    grid = [[" "] * width for _ in range(height)]
    for idx, (name, (xs, ys)) in enumerate(series.items()):
        marker = _MARKERS[idx % len(_MARKERS)]
        for x, y in zip(xs, ys):
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            col = _scale(float(x), x_lo, x_hi, width)
            row = height - 1 - _scale(float(y), y_lo, y_hi, height)
            grid[row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    label_w = 10
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:>{label_w}.0f} |"
        elif i == height - 1:
            label = f"{y_lo:>{label_w}.0f} |"
        elif i == height // 2 and y_label:
            label = f"{y_label[:label_w]:>{label_w}} |"
        else:
            label = " " * label_w + " |"
        lines.append(label + "".join(row))
    lines.append(" " * label_w + " +" + "-" * width)
    x_axis = f"{x_lo:.0f}"
    pad = width - len(x_axis) - len(f"{x_hi:.0f}")
    lines.append(
        " " * (label_w + 2) + x_axis + " " * max(1, pad) + f"{x_hi:.0f}"
        + (f"  ({x_label})" if x_label else "")
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)


def cdf_chart(
    cdfs: dict[str, tuple[np.ndarray, np.ndarray]],
    *,
    width: int = 72,
    height: int = 16,
    title: str = "",
    x_label: str = "ms",
) -> str:
    """Render empirical CDFs (output of :func:`repro.analysis.cdf.
    empirical_cdf`) as a line chart with probability on the y axis."""
    series = {name: (xs, ps) for name, (xs, ps) in cdfs.items()}
    return line_chart(
        series,
        width=width,
        height=height,
        title=title,
        x_label=x_label,
        y_label="P(X<=x)",
    )
