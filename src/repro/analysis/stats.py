"""Summary statistics with bootstrap confidence intervals."""

from __future__ import annotations

import dataclasses

import numpy as np

__all__ = ["SummaryStats", "summarize", "bootstrap_mean_ci"]


@dataclasses.dataclass(slots=True, frozen=True)
class SummaryStats:
    """Standard location/percentile summary of one sample."""

    n: int
    mean: float
    std: float
    minimum: float
    p50: float
    p95: float
    p99: float
    maximum: float

    def __str__(self) -> str:
        return (
            f"n={self.n} mean={self.mean:.1f} std={self.std:.1f} "
            f"min={self.minimum:.1f} p50={self.p50:.1f} p95={self.p95:.1f} "
            f"p99={self.p99:.1f} max={self.maximum:.1f}"
        )


def summarize(values: list[float] | np.ndarray) -> SummaryStats:
    """Vectorised summary of a sample.

    Raises:
        ValueError: on an empty sample — an experiment that produced no
            observations is a bug, not a zero.
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    p50, p95, p99 = np.percentile(arr, [50.0, 95.0, 99.0])
    return SummaryStats(
        n=int(arr.size),
        mean=float(arr.mean()),
        std=float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        minimum=float(arr.min()),
        p50=float(p50),
        p95=float(p95),
        p99=float(p99),
        maximum=float(arr.max()),
    )


def bootstrap_mean_ci(
    values: list[float] | np.ndarray,
    *,
    confidence: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap CI for the mean (fully vectorised)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not (0.0 < confidence < 1.0):
        raise ValueError(f"confidence must be in (0,1), got {confidence!r}")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_resamples, arr.size))
    means = arr[idx].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.percentile(means, [100 * alpha, 100 * (1 - alpha)])
    return float(lo), float(hi)
