"""Empirical CDFs (Figs. 4 and 8 are CDF plots)."""

from __future__ import annotations

import numpy as np

__all__ = ["empirical_cdf"]


def empirical_cdf(values: list[float] | np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Return ``(xs, ps)`` with ``ps[i] = P(X <= xs[i])``.

    ``xs`` is the sorted sample; ``ps`` ranges over ``(0, 1]`` with the
    standard ``i/n`` convention.  An empty input yields two empty arrays.
    """
    arr = np.sort(np.asarray(values, dtype=np.float64))
    if arr.size == 0:
        return arr, arr.copy()
    ps = np.arange(1, arr.size + 1, dtype=np.float64) / arr.size
    return arr, ps
