"""Numeric post-processing: CDFs, summary stats, time series, ASCII charts."""

from repro.analysis.asciiplot import cdf_chart, line_chart
from repro.analysis.availability import AvailabilityStats, availability_stats
from repro.analysis.cdf import empirical_cdf
from repro.analysis.stats import SummaryStats, bootstrap_mean_ci, summarize
from repro.analysis.timeseries import bin_series, interval_coverage

__all__ = [
    "AvailabilityStats",
    "SummaryStats",
    "availability_stats",
    "bin_series",
    "bootstrap_mean_ci",
    "cdf_chart",
    "empirical_cdf",
    "interval_coverage",
    "line_chart",
    "summarize",
]
