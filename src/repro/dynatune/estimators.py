"""Windowed statistics for the RTT list.

``Et = μ_RTT + s·σ_RTT`` is recomputed on **every** heartbeat (§III-D1), so
the estimator is on the hot path of every simulated node.  Two
implementations are provided:

* :func:`window_mean_std` — direct numpy over the window; the reference
  implementation used by tests;
* :class:`WindowedMeanStd` — O(1) incremental version maintaining running
  ``Σx`` and ``Σx²`` over a bounded ring buffer, with periodic exact
  recomputation to bound floating-point drift.  Profiling the Fig. 4 bench
  showed the per-heartbeat numpy reduction over a 1000-sample window
  dominating node step time; the incremental form removes it (the guides'
  "optimize the measured bottleneck, nothing else").

σ uses the population convention (``ddof = 0``): the window *is* the
population the tuner reasons about, and it keeps ``σ = 0`` exact for a
single sample.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["window_mean_std", "WindowedMeanStd"]

#: Recompute exactly every this many pushes to cap accumulated FP error.
_RESYNC_INTERVAL = 4096


def window_mean_std(values: np.ndarray | list[float]) -> tuple[float, float]:
    """Mean and population standard deviation of a sample window.

    Returns ``(0.0, 0.0)`` for an empty window (callers treat that as
    "no data; stay on defaults").
    """
    arr = np.asarray(values, dtype=np.float64)
    if arr.size == 0:
        return 0.0, 0.0
    return float(arr.mean()), float(arr.std(ddof=0))


class WindowedMeanStd:
    """Bounded sliding-window mean/σ with O(1) push.

    Args:
        capacity: window size (``maxListSize`` in the paper, §III-E).
            Once full, each push evicts the oldest sample.

    The ring buffer is a preallocated numpy array.  Running moments are
    kept *relative to an offset* (the first sample after a reset): with
    RTT-scale values (hundreds of ms) and ms-scale spreads, raw
    ``Σx² − n·μ²`` loses ~6 digits to cancellation, while the shifted form
    keeps the estimator accurate to full precision.  They are additionally
    re-derived exactly from the buffer every ``_RESYNC_INTERVAL`` pushes.
    """

    __slots__ = (
        "_buf",
        "_capacity",
        "_start",
        "_count",
        "_sum",
        "_sumsq",
        "_offset",
        "_pushes",
        "_resync_every",
    )

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self._capacity = int(capacity)
        # A plain Python list, not an ndarray: scalar loads/stores on an
        # ndarray return np.float64 objects whose arithmetic then infects
        # the running moments (3-5× slower per op, bit-identical values).
        # Every individual operation is IEEE-754 binary64 either way, so
        # the statistics are unchanged to the last bit.
        self._buf: list[float] = [0.0] * self._capacity
        self._start = 0  # index of oldest sample
        self._count = 0
        self._sum = 0.0  # Σ (x - offset)
        self._sumsq = 0.0  # Σ (x - offset)²
        self._offset = 0.0
        self._pushes = 0
        # Exact-recompute cadence (see push); 1 = every push for small
        # windows, where one pass is cheaper than a numpy call.
        self._resync_every = (
            1 if self._capacity <= 64 else min(_RESYNC_INTERVAL, self._capacity)
        )

    # -- mutation --------------------------------------------------------- #

    def push(self, value: float) -> None:
        """Insert a sample, evicting the oldest if the window is full.

        This is the per-heartbeat hot path of every Dynatune follower:
        index arithmetic uses compare-and-wrap rather than ``%`` and the
        resync cadence is precomputed.
        """
        v = float(value)
        if not math.isfinite(v):
            raise ValueError(f"sample must be finite, got {value!r}")
        count = self._count
        start = self._start
        capacity = self._capacity
        buf = self._buf
        if count == capacity:
            old = buf[start] - self._offset
            self._sum -= old
            self._sumsq -= old * old
            buf[start] = v
            start += 1
            self._start = 0 if start == capacity else start
        else:
            if count == 0:
                self._offset = v
            idx = start + count
            if idx >= capacity:
                idx -= capacity
            buf[idx] = v
            self._count = count + 1
        d = v - self._offset
        self._sum += d
        self._sumsq += d * d

        # Exact recompute keeps the offset representative of the *current*
        # window even when sample magnitudes shift by orders of magnitude.
        # Small windows recompute every push (O(64) — cheaper than one
        # numpy call); large ones amortise to O(1) per push by recomputing
        # once per window turnover.
        pushes = self._pushes + 1
        self._pushes = pushes
        if pushes % self._resync_every == 0:
            self._resync()

    def reset(self) -> None:
        """Discard all samples (the fallback action of §III-B Step 0)."""
        self._start = 0
        self._count = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._offset = 0.0

    # -- statistics -------------------------------------------------------- #

    def __len__(self) -> int:
        return self._count

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def full(self) -> bool:
        return self._count == self._capacity

    def mean(self) -> float:
        if self._count == 0:
            return 0.0
        return self._offset + self._sum / self._count

    def std(self) -> float:
        """Population standard deviation (``ddof = 0``).

        Shift-invariant: computed from the offset-relative moments, so the
        raw magnitude of the samples does not erode precision.
        """
        if self._count == 0:
            return 0.0
        mean_d = self._sum / self._count
        var = self._sumsq / self._count - mean_d * mean_d
        # FP rounding can push a tiny-variance window slightly negative.
        return math.sqrt(var) if var > 0.0 else 0.0

    def mean_std(self) -> tuple[float, float]:
        """Both statistics in one call (flattened: this runs per retune)."""
        count = self._count
        if count == 0:
            return 0.0, 0.0
        mean_d = self._sum / count
        var = self._sumsq / count - mean_d * mean_d
        return (
            self._offset + mean_d,
            math.sqrt(var) if var > 0.0 else 0.0,
        )

    def values(self) -> np.ndarray:
        """The window contents, oldest first (a copy)."""
        count = self._count
        if count == 0:
            return np.empty(0, dtype=np.float64)
        start = self._start
        end = start + count
        capacity = self._capacity
        if end <= capacity:
            window = self._buf[start:end]
        else:
            window = self._buf[start:] + self._buf[: end - capacity]
        return np.asarray(window, dtype=np.float64)

    def _resync(self) -> None:
        vals = self.values()
        if vals.size == 0:
            self._sum = self._sumsq = self._offset = 0.0
            return
        # Anchoring at the window mean minimises |x - offset| and hence the
        # cancellation error of the running second moment.
        self._offset = float(vals.mean())
        d = vals - self._offset
        self._sum = float(d.sum())
        self._sumsq = float((d * d).sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WindowedMeanStd(n={self._count}/{self._capacity}, "
            f"mean={self.mean():.3f}, std={self.std():.3f})"
        )
