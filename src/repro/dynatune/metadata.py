"""Heartbeat piggyback metadata (Fig. 3 of the paper).

Dynatune adds *no additional messages* to Raft: everything rides on the
existing heartbeat exchange (§III-B).  The leader attaches
:class:`HeartbeatMeta` to each heartbeat; the follower answers with
:class:`HeartbeatResponseMeta`.

The RTT protocol (Fig. 3a) keeps all clock arithmetic on the **leader's**
clock: the leader stamps ``send_ts``, the follower echoes it untouched, and
the leader computes ``RTT = now − echo_ts`` on receipt.  The *measured* RTT
then travels to the follower inside the *next* heartbeat
(``rtt_sample_ms``).  This is why the scheme works in a partially
synchronous system with unsynchronised clocks, and why packet loss requires
no cleanup: a lost heartbeat simply never produces a sample, and a
reordered response still carries the matching original timestamp.

The loss protocol (Fig. 3b) needs only ``seq``: the follower infers losses
from gaps in the sequence it has received.
"""

from __future__ import annotations

__all__ = ["HeartbeatMeta", "HeartbeatResponseMeta"]


class HeartbeatMeta:
    """Leader → follower metadata, one per heartbeat.

    One instance is constructed per heartbeat per path (the sequence
    number makes each unique), so this is a hand-written slotted class
    rather than a frozen dataclass — same layout, a fraction of the
    construction cost.  Instances are immutable by convention.

    Attributes:
        seq: per leader-follower-path sequential heartbeat ID (§III-C2).
        send_ts: leader-clock timestamp at transmission (§III-C1).
        rtt_sample_ms: the RTT the leader measured from the *previous*
            response on this path, or ``None`` if none exists yet (first
            heartbeat after election, or all responses so far were lost).
        rtt_sample_seq: monotone id of the RTT measurement.  When responses
            are lost the leader re-sends its latest measurement on several
            consecutive heartbeats; the follower uses this id to record
            each *measurement* exactly once instead of over-weighting a
            stale value.
    """

    __slots__ = ("seq", "send_ts", "rtt_sample_ms", "rtt_sample_seq")

    def __init__(
        self,
        seq: int,
        send_ts: float,
        rtt_sample_ms: float | None = None,
        rtt_sample_seq: int = 0,
    ) -> None:
        self.seq = seq
        self.send_ts = send_ts
        self.rtt_sample_ms = rtt_sample_ms
        self.rtt_sample_seq = rtt_sample_seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeartbeatMeta(seq={self.seq}, send_ts={self.send_ts}, "
            f"rtt_sample_ms={self.rtt_sample_ms}, "
            f"rtt_sample_seq={self.rtt_sample_seq})"
        )


class HeartbeatResponseMeta:
    """Follower → leader metadata, one per heartbeat response.

    Hot-path class like :class:`HeartbeatMeta`; immutable by convention.

    Attributes:
        echo_seq: the ``seq`` of the heartbeat being answered.
        echo_ts: the ``send_ts`` of the heartbeat being answered, echoed
            verbatim (leader-clock value; the follower never interprets it).
        tuned_h_ms: the heartbeat interval the follower computed for this
            path (§III-D2), or ``None`` while the follower is still in
            Step 0 (fewer than ``minListSize`` samples).
        tuned_et_ms: the election timeout the follower is currently
            applying toward this leader, or ``None`` while on the
            default.  The leader's lease arithmetic needs a lower bound
            on the ``Et`` any voter would wait before granting a vote
            (see ``TuningPolicy.lease_bound_ms``); piggybacking the tuned
            value keeps that bound tight without extra messages — the
            same "no additional communication" framing as the rest of
            the metadata.
    """

    __slots__ = ("echo_seq", "echo_ts", "tuned_h_ms", "tuned_et_ms")

    def __init__(
        self,
        echo_seq: int,
        echo_ts: float,
        tuned_h_ms: float | None = None,
        tuned_et_ms: float | None = None,
    ) -> None:
        self.echo_seq = echo_seq
        self.echo_ts = echo_ts
        self.tuned_h_ms = tuned_h_ms
        self.tuned_et_ms = tuned_et_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeartbeatResponseMeta(echo_seq={self.echo_seq}, "
            f"echo_ts={self.echo_ts}, tuned_h_ms={self.tuned_h_ms}, "
            f"tuned_et_ms={self.tuned_et_ms})"
        )
