"""Heartbeat piggyback metadata (Fig. 3 of the paper).

Dynatune adds *no additional messages* to Raft: everything rides on the
existing heartbeat exchange (§III-B).  The leader attaches
:class:`HeartbeatMeta` to each heartbeat; the follower answers with
:class:`HeartbeatResponseMeta`.

The RTT protocol (Fig. 3a) keeps all clock arithmetic on the **leader's**
clock: the leader stamps ``send_ts``, the follower echoes it untouched, and
the leader computes ``RTT = now − echo_ts`` on receipt.  The *measured* RTT
then travels to the follower inside the *next* heartbeat
(``rtt_sample_ms``).  This is why the scheme works in a partially
synchronous system with unsynchronised clocks, and why packet loss requires
no cleanup: a lost heartbeat simply never produces a sample, and a
reordered response still carries the matching original timestamp.

The loss protocol (Fig. 3b) needs only ``seq``: the follower infers losses
from gaps in the sequence it has received.
"""

from __future__ import annotations

import dataclasses

__all__ = ["HeartbeatMeta", "HeartbeatResponseMeta"]


@dataclasses.dataclass(slots=True, frozen=True)
class HeartbeatMeta:
    """Leader → follower metadata, one per heartbeat.

    Attributes:
        seq: per leader-follower-path sequential heartbeat ID (§III-C2).
        send_ts: leader-clock timestamp at transmission (§III-C1).
        rtt_sample_ms: the RTT the leader measured from the *previous*
            response on this path, or ``None`` if none exists yet (first
            heartbeat after election, or all responses so far were lost).
        rtt_sample_seq: monotone id of the RTT measurement.  When responses
            are lost the leader re-sends its latest measurement on several
            consecutive heartbeats; the follower uses this id to record
            each *measurement* exactly once instead of over-weighting a
            stale value.
    """

    seq: int
    send_ts: float
    rtt_sample_ms: float | None = None
    rtt_sample_seq: int = 0


@dataclasses.dataclass(slots=True, frozen=True)
class HeartbeatResponseMeta:
    """Follower → leader metadata, one per heartbeat response.

    Attributes:
        echo_seq: the ``seq`` of the heartbeat being answered.
        echo_ts: the ``send_ts`` of the heartbeat being answered, echoed
            verbatim (leader-clock value; the follower never interprets it).
        tuned_h_ms: the heartbeat interval the follower computed for this
            path (§III-D2), or ``None`` while the follower is still in
            Step 0 (fewer than ``minListSize`` samples).
    """

    echo_seq: int
    echo_ts: float
    tuned_h_ms: float | None = None
