"""The tuning formulas of §III-D, with the edge cases pinned down.

* **Election timeout** (§III-D1):  ``Et = μ_RTT + s·σ_RTT``.  The paper's
  safety factor ``s`` trades detection speed against false-detection risk
  (they use ``s = 2``).
* **Heartbeat redundancy** (§III-D2): the smallest ``K`` with
  ``1 − p^K ≥ x``, i.e. ``K = ⌈log_p(1 − x)⌉``.
* **Heartbeat interval**: ``h = Et / K`` — ``K`` heartbeats spaced equally
  inside one election-timeout window, so at least one arrives within ``Et``
  with probability ≥ ``x``.

Edge cases the formulas must survive in a live system:

* ``p = 0``  → any single heartbeat arrives: ``K = 1`` (``log_0`` is
  undefined; the limit is what the paper's requirement means).
* ``p`` extremely close to 1 (a follower measured near-total loss) →
  ``K`` explodes; it is clamped to ``k_max`` because sending heartbeats
  every few microseconds would be the resource-exhaustion failure the
  paper warns about in §II-B.
* Tuned values are clamped to configured floors so that a degenerate
  measurement (e.g. ``μ ≈ 0`` on a loopback-fast path) cannot arm a
  zero-length timer.  Clamping ``h`` up to the floor silently *lowers* the
  number of heartbeats that fit inside one ``Et`` window, so
  :func:`tune_heartbeat` re-derives the effective ``K`` (and never lets
  ``h`` exceed ``Et`` itself) instead of pretending the requested ``K``
  still holds — the §III-D2 guarantee is ``K·h ≤ Et``, not ``h = Et/K``.
"""

from __future__ import annotations

import dataclasses
import math

__all__ = [
    "HeartbeatTuning",
    "required_heartbeats",
    "tune_election_timeout",
    "tune_heartbeat",
    "tune_heartbeat_interval",
]


def tune_election_timeout(
    mu_rtt_ms: float,
    sigma_rtt_ms: float,
    *,
    safety_factor: float,
    floor_ms: float = 1.0,
    ceiling_ms: float | None = None,
) -> float:
    """``Et = μ + s·σ`` clamped to ``[floor_ms, ceiling_ms]``.

    Raises:
        ValueError: on negative inputs (a negative μ or σ indicates a
            corrupted measurement stream and must not be papered over).
    """
    if mu_rtt_ms < 0.0 or sigma_rtt_ms < 0.0:
        raise ValueError(
            f"mean/std RTT must be >= 0, got mu={mu_rtt_ms!r} sigma={sigma_rtt_ms!r}"
        )
    if safety_factor < 0.0:
        raise ValueError(f"safety factor must be >= 0, got {safety_factor!r}")
    et = mu_rtt_ms + safety_factor * sigma_rtt_ms
    if et < floor_ms:
        et = floor_ms
    if ceiling_ms is not None and et > ceiling_ms:
        et = ceiling_ms
    return et


def required_heartbeats(
    loss_rate: float,
    arrival_probability: float,
    *,
    k_max: int = 50,
) -> int:
    """Smallest ``K`` with ``1 − p^K ≥ x``, clamped to ``[1, k_max]``.

    Args:
        loss_rate: measured per-heartbeat loss probability ``p``.
        arrival_probability: target ``x`` ∈ (0, 1).
        k_max: upper clamp on heartbeat redundancy.
    """
    if not (0.0 < arrival_probability < 1.0):
        raise ValueError(
            f"arrival probability x must be in (0, 1), got {arrival_probability!r}"
        )
    if not (0.0 <= loss_rate <= 1.0):
        raise ValueError(f"loss rate must be in [0, 1], got {loss_rate!r}")
    if loss_rate <= 0.0:
        return 1
    if loss_rate >= 1.0:
        return k_max
    # K = ceil(log(1-x) / log(p)); both logs are negative.
    k = math.ceil(math.log(1.0 - arrival_probability) / math.log(loss_rate))
    if k < 1:
        return 1
    return min(k, k_max)


@dataclasses.dataclass(slots=True, frozen=True)
class HeartbeatTuning:
    """Result of :func:`tune_heartbeat` — the interval plus its provenance.

    Attributes:
        h_ms: the heartbeat interval to apply.
        requested_k: the redundancy ``K`` the loss formula asked for.
        effective_k: heartbeats that actually fit in one ``Et`` window at
            ``h_ms`` (equals ``requested_k`` unless a clamp bound).
        floor_clamped: True when ``floor_ms`` (or the ``h ≤ Et`` cap)
            overrode ``Et / K`` — the signal that the measured loss regime
            is asking for more redundancy than the floor permits.
    """

    h_ms: float
    requested_k: int
    effective_k: int
    floor_clamped: bool


def tune_heartbeat(
    et_ms: float,
    k: int,
    *,
    floor_ms: float = 1.0,
) -> HeartbeatTuning:
    """``h = Et / K``, clamped to ``[floor_ms, Et]``, with honest metadata.

    The §III-D2 requirement is that the ``K`` heartbeats spaced ``h`` apart
    all land inside one ``Et`` window (``K·h ≤ Et``).  When ``Et / K``
    falls below ``floor_ms`` the floor wins — but then fewer than ``K``
    beats fit, so the *effective* ``K`` is re-derived as ``⌊Et / h⌋``
    (min 1) rather than silently reporting the unattainable request.
    ``h`` is additionally capped at ``Et`` so a floor above the tuned
    election timeout can never space heartbeats past the window entirely.
    """
    if et_ms <= 0.0:
        raise ValueError(f"election timeout must be > 0 ms, got {et_ms!r}")
    if k < 1:
        raise ValueError(f"K must be >= 1, got {k!r}")
    if floor_ms <= 0.0:
        raise ValueError(f"floor must be > 0 ms, got {floor_ms!r}")
    h = et_ms / k
    if h >= floor_ms:
        return HeartbeatTuning(h_ms=h, requested_k=k, effective_k=k, floor_clamped=False)
    h = min(floor_ms, et_ms)
    # The 1e-9 slack keeps an exact multiple (Et = m·h up to float error)
    # from rounding the count down to m−1.
    effective = max(1, math.floor(et_ms / h + 1e-9))
    return HeartbeatTuning(h_ms=h, requested_k=k, effective_k=effective, floor_clamped=True)


def tune_heartbeat_interval(
    et_ms: float,
    k: int,
    *,
    floor_ms: float = 1.0,
) -> float:
    """``h = Et / K`` clamped to ``[floor_ms, Et]`` (see :func:`tune_heartbeat`)."""
    return tune_heartbeat(et_ms, k, floor_ms=floor_ms).h_ms
