"""Tuning policies: how a node chooses its election parameters.

A :class:`TuningPolicy` is attached to each Raft node and consulted at
every point where an election parameter matters:

* arming the election timer (``election_timeout_ms``),
* scheduling the next heartbeat to a given follower
  (``heartbeat_interval_ms``),
* building/consuming heartbeat metadata (``heartbeat_meta`` /
  ``on_heartbeat`` / ``on_heartbeat_response``),
* reacting to election timeouts and leader changes (the fallback rule of
  §III-B: discard measurements, revert to defaults).

Implementations:

* :class:`StaticPolicy` — plain Raft.  Constant parameters, no metadata.
  Instantiate with 1/10 of the defaults for the paper's **Raft-Low**
  baseline.
* :class:`DynatunePolicy` — the paper's system; also covers the **Fix-K**
  variant via ``DynatuneConfig(fixed_k=10)``.

One policy object serves both roles a node can play: its *follower half*
measures the path from its current leader and tunes ``Et``/``h``; its
*leader half* stamps outgoing heartbeats and applies the ``h`` each
follower piggybacks back (§III-B step 3).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Protocol

from repro.dynatune.config import DynatuneConfig
from repro.dynatune.measurement import PathMeasurement
from repro.dynatune.metadata import HeartbeatMeta, HeartbeatResponseMeta
from repro.dynatune.tuner import (
    HeartbeatTuning,
    required_heartbeats,
    tune_heartbeat,
)

__all__ = ["TuningPolicy", "StaticPolicy", "DynatunePolicy"]


class TuningPolicy(Protocol):
    """Interface between a Raft node and its parameter-tuning layer."""

    # -- follower half --------------------------------------------------- #

    def election_timeout_ms(self, leader: str | None) -> float:
        """Base election timeout ``Et`` toward ``leader`` (pre-randomization).

        ``leader=None`` (no current leader) must return the default — this
        value is also what the lease check and the leader's own quorum
        check use.
        """
        ...

    def on_heartbeat(
        self, leader: str, meta: HeartbeatMeta | None, now_ms: float
    ) -> HeartbeatResponseMeta | None:
        """Process heartbeat metadata; return the response metadata."""
        ...

    def on_election_timeout(self, now_ms: float) -> None:
        """Election timer expired: apply the fallback rule."""
        ...

    def on_leader_change(self, leader: str | None, now_ms: float) -> None:
        """A different leader is now in charge: restart measurement."""
        ...

    # -- leader half ------------------------------------------------------ #

    def heartbeat_interval_ms(self, follower: str) -> float:
        """Interval ``h`` for the next heartbeat to ``follower``."""
        ...

    def heartbeat_meta(self, follower: str, now_ms: float) -> HeartbeatMeta | None:
        """Metadata to stamp on the next heartbeat to ``follower``."""
        ...

    def on_heartbeat_response(
        self, follower: str, meta: HeartbeatResponseMeta | None, now_ms: float
    ) -> None:
        """Process a follower's response metadata (RTT sample, tuned h)."""
        ...

    def on_become_leader(self, now_ms: float) -> None: ...

    def on_step_down(self, now_ms: float) -> None: ...

    def lease_bound_ms(self) -> float | None:
        """Lower bound on the election timeout any current voter is
        applying, for leader-lease reads — no follower grants a vote
        before ``last leader contact + Et``, so a lease of
        ``bound − drift margin`` from confirmed quorum contact cannot
        outlive this leader's exclusivity.  ``None`` means the policy
        cannot bound it (leases must fall back to ReadIndex).

        Static policies return their configured ``Et``; Dynatune returns
        the minimum over every follower's last *piggybacked* tuned ``Et``
        (default ``Et`` for followers still on defaults) — at most one
        response stale, which the caller's drift margin must absorb
        together with clock drift and the response's one-way delay.
        """
        ...

    def on_peer_removed(self, peer: str) -> None:
        """``peer`` left the cluster for good (committed ``remove`` config
        change): drop any per-peer tuning state so a long-lived policy
        does not leak entries across membership churn."""
        ...

    @property
    def heartbeat_channel(self) -> str:
        """Transport for heartbeats: ``"udp"`` or ``"tcp"``."""
        ...


# --------------------------------------------------------------------- #
# static baseline (Raft / Raft-Low)
# --------------------------------------------------------------------- #


class StaticPolicy:
    """Fixed election parameters — the Raft baseline of every experiment.

    Args:
        election_timeout_ms: ``Et`` (paper default 1000 ms; Raft-Low 100 ms).
        heartbeat_interval_ms: ``h`` (paper default 100 ms; Raft-Low 10 ms).
        heartbeat_channel: etcd carries heartbeats over TCP.
    """

    def __init__(
        self,
        election_timeout_ms: float = 1000.0,
        heartbeat_interval_ms: float = 100.0,
        *,
        heartbeat_channel: str = "tcp",
    ) -> None:
        if election_timeout_ms <= 0.0 or heartbeat_interval_ms <= 0.0:
            raise ValueError("election timeout and heartbeat interval must be > 0")
        self._et = float(election_timeout_ms)
        self._h = float(heartbeat_interval_ms)
        self._channel = heartbeat_channel

    @classmethod
    def raft_default(cls) -> "StaticPolicy":
        """The paper's Raft baseline: Et = 1000 ms, h = 100 ms."""
        return cls(1000.0, 100.0)

    @classmethod
    def raft_low(cls) -> "StaticPolicy":
        """The paper's Raft-Low baseline: parameters at 1/10 of default."""
        return cls(100.0, 10.0)

    # follower half
    def election_timeout_ms(self, leader: str | None) -> float:  # noqa: ARG002
        return self._et

    def on_heartbeat(
        self, leader: str, meta: HeartbeatMeta | None, now_ms: float
    ) -> HeartbeatResponseMeta | None:  # noqa: ARG002
        return None

    def on_election_timeout(self, now_ms: float) -> None:  # noqa: ARG002
        return None

    def on_leader_change(self, leader: str | None, now_ms: float) -> None:  # noqa: ARG002
        return None

    # leader half
    def heartbeat_interval_ms(self, follower: str) -> float:  # noqa: ARG002
        return self._h

    def heartbeat_meta(self, follower: str, now_ms: float) -> HeartbeatMeta | None:  # noqa: ARG002
        return None

    def on_heartbeat_response(
        self, follower: str, meta: HeartbeatResponseMeta | None, now_ms: float
    ) -> None:  # noqa: ARG002
        return None

    def on_become_leader(self, now_ms: float) -> None:  # noqa: ARG002
        return None

    def on_step_down(self, now_ms: float) -> None:  # noqa: ARG002
        return None

    def lease_bound_ms(self) -> float | None:
        return self._et  # every follower waits the same static Et

    def on_peer_removed(self, peer: str) -> None:  # noqa: ARG002
        return None  # static policies hold no per-peer state

    @property
    def heartbeat_channel(self) -> str:
        return self._channel

    def __repr__(self) -> str:
        return f"StaticPolicy(Et={self._et} ms, h={self._h} ms)"


# --------------------------------------------------------------------- #
# Dynatune
# --------------------------------------------------------------------- #


@dataclasses.dataclass(slots=True)
class _FollowerPathState:
    """Leader-side per-follower state (Fig. 3a's leader role)."""

    next_seq: int = 0
    last_rtt_ms: float | None = None
    rtt_seq: int = 0
    applied_h_ms: float | None = None
    #: The Et this follower last piggybacked (None = still on defaults).
    reported_et_ms: float | None = None


class DynatunePolicy:
    """The paper's tuning mechanism (§III), per node.

    Follower half: maintains one :class:`PathMeasurement` for the current
    leader, recomputes ``Et`` on every RTT sample and ``h`` on every
    heartbeat, and piggybacks ``h`` on responses.

    Leader half: keeps a per-follower sequence counter and last measured
    RTT (sent back out on the next heartbeat), and applies each follower's
    piggybacked ``h`` to that follower's heartbeat timer.
    """

    def __init__(self, config: DynatuneConfig | None = None) -> None:
        self.config = config if config is not None else DynatuneConfig()
        cfg = self.config
        # follower half
        self._meas = PathMeasurement(cfg.min_list_size, cfg.max_list_size)
        self._leader: str | None = None
        self._tuned_et: float | None = None
        self._tuned_h: float | None = None
        self._last_rtt_seq = 0
        self._last_hb_ms: float | None = None
        # leader half
        self._paths: dict[str, _FollowerPathState] = {}
        # diagnostics
        self.fallbacks = 0
        self.retunes = 0
        #: Measurement windows discarded because a heartbeat gap spanned a
        #: partition/pause outage (see :meth:`on_heartbeat`).
        self.gap_resets = 0
        #: Retunes where the h floor bound (effective K < requested K).
        self.floor_clamps = 0
        #: ``(h, requested_k, effective_k, clamped)`` of the latest retune,
        #: surfaced as a :class:`HeartbeatTuning` via :attr:`last_tuning`.
        self._last_tuning: tuple[float, int, int, bool] | None = None
        # Per-heartbeat hot-path caches: config fields are immutable, and
        # required_heartbeats(p) is pure, so memoizing the last (p -> K)
        # pair turns the common loss-stable regime into one comparison.
        self._gap_guard: bool = cfg.reset_on_sample_gap
        self._default_et: float = cfg.default_election_timeout_ms
        self._last_p: float = -1.0
        self._last_k: int = 1
        # The RTT estimator lives for the policy's lifetime (reset() keeps
        # the object); retune reads it directly, skipping one wrapper call
        # per heartbeat.
        self._est = self._meas._rtts

    # -- introspection (used by experiments/tests) ------------------------- #

    @property
    def tuned_et_ms(self) -> float | None:
        """Currently tuned ``Et`` (None while on defaults)."""
        return self._tuned_et

    @property
    def tuned_h_ms(self) -> float | None:
        """Currently tuned ``h`` this follower piggybacks (None in Step 0)."""
        return self._tuned_h

    @property
    def measurement(self) -> PathMeasurement:
        return self._meas

    @property
    def last_tuning(self) -> HeartbeatTuning | None:
        """Metadata of the most recent retune (clamp provenance, §III-D2).

        Materialized lazily: the hot path stores a plain tuple and this
        diagnostic view builds the dataclass only when somebody looks.
        """
        t = self._last_tuning
        if t is None:
            return None
        return HeartbeatTuning(
            h_ms=t[0], requested_k=t[1], effective_k=t[2], floor_clamped=t[3]
        )

    def applied_h_ms(self, follower: str) -> float | None:
        """The ``h`` the leader half is currently applying to ``follower``."""
        st = self._paths.get(follower)
        return st.applied_h_ms if st is not None else None

    # -- follower half ------------------------------------------------------ #

    def election_timeout_ms(self, leader: str | None) -> float:
        if leader is not None and leader == self._leader and self._tuned_et is not None:
            return self._tuned_et
        return self.config.default_election_timeout_ms

    def on_heartbeat(
        self, leader: str, meta: HeartbeatMeta | None, now_ms: float
    ) -> HeartbeatResponseMeta | None:
        if leader != self._leader:
            # Defensive: the node calls on_leader_change first, but a
            # heartbeat racing a leader change must not pollute the window.
            self.on_leader_change(leader, now_ms)
        if meta is None:
            return None
        last_hb = self._last_hb_ms
        if last_hb is not None and self._gap_guard:
            et = self._tuned_et
            if et is None:
                et = self._default_et
            if now_ms - last_hb > 2.0 * et:
                # The gap outlasted every possible randomizedTimeout draw
                # ([Et, 2Et)), yet no fallback ran — the follower was paused
                # or partitioned with frozen timers.  The window predates the
                # outage: its RTTs describe the old path and the ID span
                # counts the whole outage as loss, which would explode K (and
                # collapse h) for up to maxListSize heartbeats after the
                # heal.  Restart measurement instead, exactly like the §III-B
                # fallback.
                self._reset_follower_state()
                self.gap_resets += 1
        self._last_hb_ms = now_ms
        meas = self._meas
        seq = meta.seq
        ids = meas._ids
        if ids and seq > ids[-1]:
            # Inline of PathMeasurement.record_id's monotone fast path
            # (keep in sync): in-order arrival is every heartbeat of the
            # steady state.
            ids.append(seq)
            head = meas._head
            if len(ids) - head > meas.max_list_size:
                meas._head = head + 1
                if head + 1 > meas.max_list_size:
                    del ids[: head + 1]
                    meas._head = 0
        else:
            meas.record_id(seq)
        rtt = meta.rtt_sample_ms
        if rtt is not None and meta.rtt_sample_seq > self._last_rtt_seq:
            self._last_rtt_seq = meta.rtt_sample_seq
            # Inline of PathMeasurement.record_rtt (keep in sync): one
            # sample lands per heartbeat once the leader has RTTs.
            if rtt < 0.0:
                raise ValueError(f"RTT cannot be negative, got {rtt!r}")
            est = self._est
            est.push(rtt)
            if not meas.ready and len(est) >= meas.min_list_size:
                meas.ready = True
        if meas.ready:
            self._retune()
        return HeartbeatResponseMeta(
            meta.seq, meta.send_ts, self._tuned_h, self._tuned_et
        )

    def _retune(self) -> None:
        """Steps 1–2 of §III-B: derive Et from RTT stats, then h from loss.

        This runs once per received heartbeat on every follower, so the
        tuning formulas are applied inline (identical math and clamps to
        :func:`tune_election_timeout` / :func:`tune_heartbeat`, which stay
        the reference implementations) and the pure ``p → K`` mapping is
        memoized on the last loss rate — in a loss-stable regime the log
        evaluation happens once, not per beat.
        """
        cfg = self.config
        # Inline of WindowedMeanStd.mean_std (the reference implementation;
        # keep the two in sync) — this runs per heartbeat and the call +
        # tuple would be ~15% of the whole retune.
        est = self._est
        count = est._count
        if count == 0:
            mu = sigma = 0.0
        else:
            mean_d = est._sum / count
            var = est._sumsq / count - mean_d * mean_d
            mu = est._offset + mean_d
            sigma = math.sqrt(var) if var > 0.0 else 0.0
        if mu < 0.0 or sigma < 0.0:
            raise ValueError(
                f"mean/std RTT must be >= 0, got mu={mu!r} sigma={sigma!r}"
            )
        et = mu + cfg.safety_factor * sigma
        if et < cfg.et_floor_ms:
            et = cfg.et_floor_ms
        ceiling = cfg.et_ceiling_ms
        if ceiling is not None and et > ceiling:
            et = ceiling
        # Inline of PathMeasurement.loss_rate (keep in sync).
        meas = self._meas
        ids = meas._ids
        head = meas._head
        count = len(ids) - head
        if count < 2:
            p = 0.0
        else:
            expected = ids[-1] - ids[head] + 1
            if expected <= 0:
                p = 0.0
            else:
                p = 1.0 - count / expected
                if p < 0.0:
                    p = 0.0
        k = cfg.fixed_k
        if k is None:
            if p == self._last_p:
                k = self._last_k
            else:
                k = required_heartbeats(p, cfg.arrival_probability, k_max=cfg.k_max)
                self._last_p = p
                self._last_k = k
        h = et / k
        if h >= cfg.h_floor_ms:
            self._last_tuning = (h, k, k, False)
        else:
            tuning = tune_heartbeat(et, k, floor_ms=cfg.h_floor_ms)
            h = tuning.h_ms
            self._last_tuning = (h, k, tuning.effective_k, True)
            self.floor_clamps += 1
        self._tuned_et = et
        self._tuned_h = h
        self.retunes += 1

    def _reset_follower_state(self) -> None:
        """Discard the window and tuned values (back to Step 0 defaults)."""
        self._meas.reset()
        self._tuned_et = None
        self._tuned_h = None
        self._last_rtt_seq = 0
        self._last_hb_ms = None

    def on_election_timeout(self, now_ms: float) -> None:  # noqa: ARG002
        """Fallback (§III-B): discard data, revert to defaults.

        With ``fallback_on_timeout=False`` (ablation) the tuned state is
        kept — the node keeps campaigning on its small tuned timeout.
        """
        if not self.config.fallback_on_timeout:
            return
        self._reset_follower_state()
        self.fallbacks += 1

    def on_leader_change(self, leader: str | None, now_ms: float) -> None:  # noqa: ARG002
        if leader == self._leader:
            return
        self._leader = leader
        self._reset_follower_state()

    # -- leader half --------------------------------------------------------- #

    def heartbeat_interval_ms(self, follower: str) -> float:
        st = self._paths.get(follower)
        if st is not None and st.applied_h_ms is not None:
            return st.applied_h_ms
        return self.config.default_heartbeat_interval_ms

    def heartbeat_meta(self, follower: str, now_ms: float) -> HeartbeatMeta:
        st = self._paths.get(follower)
        if st is None:
            st = self._paths[follower] = _FollowerPathState()
        seq = st.next_seq + 1
        st.next_seq = seq
        return HeartbeatMeta(seq, now_ms, st.last_rtt_ms, st.rtt_seq)

    def on_heartbeat_response(
        self, follower: str, meta: HeartbeatResponseMeta | None, now_ms: float
    ) -> None:
        if meta is None:
            return
        st = self._paths.get(follower)
        if st is None:
            st = self._paths[follower] = _FollowerPathState()
        rtt = now_ms - meta.echo_ts
        if rtt >= 0.0:
            st.last_rtt_ms = rtt
            st.rtt_seq += 1
        st.reported_et_ms = meta.tuned_et_ms
        if meta.tuned_h_ms is not None:
            # Apply the follower's h as-is: tune_heartbeat already clamped
            # it into [min(h_floor, Et), Et], and a piggybacked h *below*
            # h_floor means the follower's whole Et window is shorter than
            # the floor — re-raising it here would space heartbeats past
            # the election timer (the K·h ≤ Et violation again, just moved
            # to the leader side).  Values no well-formed follower can
            # produce (< min(h_floor, et_floor)) are ignored instead of
            # "repaired": that is the §II-B heartbeat-storm guard.
            if meta.tuned_h_ms >= min(self.config.h_floor_ms, self.config.et_floor_ms):
                st.applied_h_ms = meta.tuned_h_ms

    def lease_bound_ms(self) -> float | None:
        """Minimum *tuned* Et across the followers this reign has heard
        from, or ``None`` (no lease) while any of them is still untuned.

        The ``None`` case is load-bearing, not just conservatism: an
        untuned follower applies the default Et *today* but first-tunes
        to ``mu + c·sigma`` — potentially an order of magnitude lower —
        the moment its measurement window fills, and the leader only
        learns one response later.  A lease computed from the default
        would outlive that follower's vote-refusal window across the
        cliff.  Between ordinary retunes the reported value is at most
        one response stale and moves by one window sample; that slew,
        plus clock drift and the response's one-way delay, is what the
        caller's ``lease_drift_margin_ms`` must absorb.
        """
        bound: float | None = None
        for st in self._paths.values():
            et = st.reported_et_ms
            if et is None:
                return None
            if bound is None or et < bound:
                bound = et
        return bound

    def on_become_leader(self, now_ms: float) -> None:  # noqa: ARG002
        # Fresh leadership: per-follower sequence spaces restart, and no
        # stale RTT/h survives from a previous reign.
        self._paths = {}

    def on_step_down(self, now_ms: float) -> None:  # noqa: ARG002
        self._paths = {}

    def on_peer_removed(self, peer: str) -> None:
        """Drop the removed peer's leader-side path state (measurement
        window, applied ``h``, sequence space).  Names are never reused,
        so without this a long-lived policy leaks one
        :class:`_FollowerPathState` per node the cluster ever churned
        through."""
        self._paths.pop(peer, None)

    @property
    def heartbeat_channel(self) -> str:
        return self.config.heartbeat_channel

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynatunePolicy(Et={self._tuned_et}, h={self._tuned_h}, "
            f"leader={self._leader!r}, fallbacks={self.fallbacks})"
        )
