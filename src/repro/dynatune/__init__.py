"""Dynatune — the paper's contribution (§III).

Dynatune dynamically tunes Raft's two election parameters per
leader-follower path:

* the follower's **election timeout** ``Et = μ_RTT + s·σ_RTT`` (§III-D1),
  computed from RTT samples the leader measures via heartbeat timestamps
  and echoes back (§III-C1);
* the leader's per-follower **heartbeat interval** ``h = Et / K`` with
  ``K = ⌈log_p(1 − x)⌉`` (§III-D2), where ``p`` is the packet-loss rate the
  follower measures from gaps in heartbeat sequence IDs (§III-C2).

The package layout mirrors the paper's section structure:

* :mod:`~repro.dynatune.metadata` — the fields piggybacked on heartbeats
  and responses (Fig. 3);
* :mod:`~repro.dynatune.measurement` — the follower's ``RTTs`` and ``ids``
  lists with ``minListSize``/``maxListSize`` semantics (§III-C, §III-E);
* :mod:`~repro.dynatune.estimators` — windowed mean/σ and loss-rate math
  (numpy-backed with an O(1) incremental variant);
* :mod:`~repro.dynatune.tuner` — the ``Et``/``K``/``h`` formulas with
  clamping and edge-case handling;
* :mod:`~repro.dynatune.policy` — pluggable
  :class:`~repro.dynatune.policy.TuningPolicy` implementations:
  :class:`~repro.dynatune.policy.DynatunePolicy` (the paper's system),
  :class:`~repro.dynatune.policy.StaticPolicy` (Raft and Raft-Low
  baselines) and the Fix-K ablation (``DynatuneConfig(fixed_k=10)``).
"""

from repro.dynatune.config import DynatuneConfig
from repro.dynatune.estimators import WindowedMeanStd
from repro.dynatune.measurement import PathMeasurement
from repro.dynatune.metadata import HeartbeatMeta, HeartbeatResponseMeta
from repro.dynatune.policy import DynatunePolicy, StaticPolicy, TuningPolicy
from repro.dynatune.tuner import required_heartbeats, tune_election_timeout, tune_heartbeat_interval

__all__ = [
    "DynatuneConfig",
    "DynatunePolicy",
    "HeartbeatMeta",
    "HeartbeatResponseMeta",
    "PathMeasurement",
    "StaticPolicy",
    "TuningPolicy",
    "WindowedMeanStd",
    "required_heartbeats",
    "tune_election_timeout",
    "tune_heartbeat_interval",
]
