"""Dynatune runtime configuration (§III-E's runtime arguments).

The paper exposes four runtime arguments — ``σ`` (safety factor ``s``),
``x`` (arrival probability), ``minListSize`` and ``maxListSize`` — plus the
defaults it shares with the Raft baseline (``Et = 1000 ms``,
``h = 100 ms``, §IV-A).  :class:`DynatuneConfig` carries those and the
clamps the formulas need; the extra knobs beyond the paper's four are
documented inline and keep their paper-faithful defaults.
"""

from __future__ import annotations

import dataclasses

__all__ = ["DynatuneConfig"]


@dataclasses.dataclass(slots=True, frozen=True)
class DynatuneConfig:
    """Parameters of the Dynatune tuning layer.

    Attributes:
        safety_factor: ``s`` in ``Et = μ + s·σ`` (paper: 2).
        arrival_probability: ``x`` in ``1 − p^K ≥ x`` (paper: 0.999).
        min_list_size: RTT samples required before tuning starts (paper: 10).
        max_list_size: bound on the RTTs/ids lists (paper: 1000).
        default_election_timeout_ms: fallback ``Et`` used during Step 0 and
            after an election timeout (paper: 1000 ms, same as Raft).
        default_heartbeat_interval_ms: fallback ``h`` (paper: 100 ms).
        et_floor_ms: lower clamp on the tuned ``Et`` — a zero-length timer
            would fire before any heartbeat could possibly arrive.
        et_ceiling_ms: optional upper clamp on tuned ``Et`` (``None`` =
            unclamped, the paper's behaviour).
        h_floor_ms: lower clamp on the tuned ``h``; guards against the
            §II-B resource-exhaustion regime if measured loss approaches 1.
        k_max: upper clamp on heartbeat redundancy ``K``.
        fixed_k: if set, disables ``h`` auto-tuning and pins ``K`` — this is
            the paper's **Fix-K** comparison variant (§IV-C2, ``K = 10``).
        heartbeat_channel: transport for heartbeats; Dynatune uses UDP so
            losses are observable rather than masked by TCP retransmission
            (§III-E).
        fallback_on_timeout: the §III-B rule — discard measurements and
            revert to defaults when the election timer expires.  ``False``
            is an **ablation** (keep the tuned parameters through
            suspected failures); DESIGN.md §4 motivates measuring it.
        reset_on_sample_gap: discard the measurement window when a
            heartbeat arrives after a silence longer than twice the
            election timeout in force — a gap only a frozen-timer outage
            (container pause, partition healing around a paused node) can
            produce, since any live randomizedTimeout draw in ``[Et, 2Et)``
            would have fired and triggered the ordinary fallback.  Without
            the reset, the post-heal ID span counts the whole outage as
            loss and K explodes to ``k_max`` until the window slides out.
    """

    safety_factor: float = 2.0
    arrival_probability: float = 0.999
    min_list_size: int = 10
    max_list_size: int = 1000
    default_election_timeout_ms: float = 1000.0
    default_heartbeat_interval_ms: float = 100.0
    et_floor_ms: float = 10.0
    et_ceiling_ms: float | None = None
    h_floor_ms: float = 1.0
    k_max: int = 50
    fixed_k: int | None = None
    heartbeat_channel: str = "udp"
    fallback_on_timeout: bool = True
    reset_on_sample_gap: bool = True

    def __post_init__(self) -> None:
        if self.safety_factor < 0.0:
            raise ValueError(f"safety_factor must be >= 0, got {self.safety_factor!r}")
        if not (0.0 < self.arrival_probability < 1.0):
            raise ValueError(
                f"arrival_probability must be in (0, 1), got {self.arrival_probability!r}"
            )
        if self.min_list_size < 1:
            raise ValueError(f"min_list_size must be >= 1, got {self.min_list_size!r}")
        if self.max_list_size < self.min_list_size:
            raise ValueError(
                "max_list_size must be >= min_list_size "
                f"({self.max_list_size!r} < {self.min_list_size!r})"
            )
        if self.default_election_timeout_ms <= 0.0:
            raise ValueError("default_election_timeout_ms must be > 0")
        if self.default_heartbeat_interval_ms <= 0.0:
            raise ValueError("default_heartbeat_interval_ms must be > 0")
        if self.et_floor_ms <= 0.0:
            raise ValueError("et_floor_ms must be > 0")
        if self.et_ceiling_ms is not None and self.et_ceiling_ms < self.et_floor_ms:
            raise ValueError("et_ceiling_ms must be >= et_floor_ms")
        if self.h_floor_ms <= 0.0:
            raise ValueError("h_floor_ms must be > 0")
        if self.k_max < 1:
            raise ValueError(f"k_max must be >= 1, got {self.k_max!r}")
        if self.fixed_k is not None and self.fixed_k < 1:
            raise ValueError(f"fixed_k must be >= 1, got {self.fixed_k!r}")
        if self.heartbeat_channel not in ("udp", "tcp"):
            raise ValueError(
                f"heartbeat_channel must be 'udp' or 'tcp', got {self.heartbeat_channel!r}"
            )
