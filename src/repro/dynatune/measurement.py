"""Follower-side path measurement: the ``RTTs`` and ``ids`` lists (§III-C).

Each follower keeps, for its current leader:

* ``RTTs`` — the leader-measured RTT samples echoed back in heartbeats,
  held in a bounded window (:class:`~repro.dynatune.estimators.
  WindowedMeanStd`);
* ``ids`` — the heartbeat sequence IDs received, held sorted and
  de-duplicated (§III-C2: "inserts the IDs into the list in ascending
  order and ignores subsequent receptions when duplicate").

The loss rate is ``p = 1 − received / expected`` with
``expected = ids[-1] − ids[0] + 1`` — i.e. the fraction of the ID span that
never arrived.  Out-of-order arrival shrinks neither count (the insert is
positional), and duplicates are ignored, exactly as the paper specifies for
partially synchronous networks.

``minListSize`` gates tuning (Step 0 → Step 1 transition, §III-E):
:attr:`PathMeasurement.ready` only becomes true once enough RTT samples
exist.  ``maxListSize`` bounds both lists; the oldest datum is evicted.

Implementation note: the ID list is the per-heartbeat hot path of every
follower.  The overwhelmingly common arrival is *monotone* — each new ID
is larger than everything in the window — so the list is kept as a ring
(a plain list plus a head offset) where the monotone case is one compare
plus an append, and a full window evicts its oldest element by bumping
the head offset (O(1) amortized; the dead prefix is compacted away once
it exceeds the window size).  ``insort``-style positional insertion — the
seed behaviour — survives on the rare out-of-order path, preserving the
paper's §III-C2 semantics bit for bit.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.dynatune.estimators import WindowedMeanStd

__all__ = ["PathMeasurement"]


class PathMeasurement:
    """Measurement state for one leader→follower path.

    Args:
        min_list_size: samples required before tuning may start
            (``minListSize``, paper default 10).
        max_list_size: bound on both lists (``maxListSize``, paper
            default 1000).
    """

    __slots__ = (
        "min_list_size",
        "max_list_size",
        "_rtts",
        "_ids",
        "_head",
        "duplicates_ignored",
        "ready",
    )

    def __init__(self, min_list_size: int = 10, max_list_size: int = 1000) -> None:
        if min_list_size < 1:
            raise ValueError(f"min_list_size must be >= 1, got {min_list_size!r}")
        if max_list_size < min_list_size:
            raise ValueError(
                f"max_list_size ({max_list_size!r}) must be >= "
                f"min_list_size ({min_list_size!r})"
            )
        self.min_list_size = int(min_list_size)
        self.max_list_size = int(max_list_size)
        self._rtts = WindowedMeanStd(self.max_list_size)
        #: Sorted unique IDs; the live window is ``_ids[_head:]``.
        self._ids: list[int] = []
        self._head = 0
        #: Count of duplicate heartbeat receptions ignored (diagnostics).
        self.duplicates_ignored = 0
        #: Whether Step 1 (tuning) may run — enough RTT samples collected.
        #: A plain attribute (not a property) because the policy reads it
        #: on every heartbeat; maintained by record_rtt/reset.
        self.ready = False

    # -- recording --------------------------------------------------------- #

    def record_rtt(self, rtt_ms: float) -> None:
        """Store one RTT sample (echoed by the leader, Fig. 3a)."""
        if rtt_ms < 0.0:
            raise ValueError(f"RTT cannot be negative, got {rtt_ms!r}")
        rtts = self._rtts
        rtts.push(rtt_ms)
        if not self.ready and len(rtts) >= self.min_list_size:
            self.ready = True

    def record_id(self, seq: int) -> bool:
        """Store one heartbeat ID (Fig. 3b).

        Returns:
            ``False`` if the ID was a duplicate and was ignored.
        """
        ids = self._ids
        if ids:
            if seq > ids[-1]:
                # Monotone fast path: in-order arrival (the steady state).
                ids.append(seq)
                head = self._head
                if len(ids) - head > self.max_list_size:
                    head += 1  # evict the oldest (smallest) ID
                    if head > self.max_list_size:
                        # Compact the dead prefix once it outgrows the
                        # window: each element is copied at most once per
                        # eviction run, so the amortized cost stays O(1)
                        # per sample.
                        del ids[:head]
                        head = 0
                    self._head = head
                return True
            # Out-of-order or duplicate (reordering / UDP duplication).
            head = self._head
            pos = bisect_left(ids, seq, head)
            if pos < len(ids) and ids[pos] == seq:
                self.duplicates_ignored += 1
                return False
            ids.insert(pos, seq)
            if len(ids) - head > self.max_list_size:
                self._head = head + 1
            return True
        ids.append(seq)
        return True

    def reset(self) -> None:
        """Discard everything (fallback on election timeout, §III-B)."""
        self._rtts.reset()
        self._ids.clear()
        self._head = 0
        self.ready = False

    # -- derived measurements ----------------------------------------------- #

    @property
    def rtt_count(self) -> int:
        return len(self._rtts)

    @property
    def id_count(self) -> int:
        return len(self._ids) - self._head

    def ids(self) -> list[int]:
        """The live ID window, ascending (a copy; mostly for tests)."""
        return self._ids[self._head :]

    def loss_rate(self) -> float:
        """``p = 1 − received/expected`` over the current ID window.

        Returns 0.0 with fewer than two IDs — a single observation defines
        no span, and "no evidence of loss" must not inflate ``K``.
        """
        ids = self._ids
        head = self._head
        count = len(ids) - head
        if count < 2:
            return 0.0
        expected = ids[-1] - ids[head] + 1
        if expected <= 0:  # defensive; cannot happen with sorted unique ids
            return 0.0
        p = 1.0 - count / expected
        return p if p > 0.0 else 0.0

    def rtt_mean_std(self) -> tuple[float, float]:
        """``(μ_RTT, σ_RTT)`` over the current window."""
        return self._rtts.mean_std()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PathMeasurement(rtts={self.rtt_count}, ids={self.id_count}, "
            f"ready={self.ready}, p={self.loss_rate():.4f})"
        )
