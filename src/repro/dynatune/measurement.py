"""Follower-side path measurement: the ``RTTs`` and ``ids`` lists (§III-C).

Each follower keeps, for its current leader:

* ``RTTs`` — the leader-measured RTT samples echoed back in heartbeats,
  held in a bounded window (:class:`~repro.dynatune.estimators.
  WindowedMeanStd`);
* ``ids`` — the heartbeat sequence IDs received, held sorted and
  de-duplicated (§III-C2: "inserts the IDs into the list in ascending
  order and ignores subsequent receptions when duplicate").

The loss rate is ``p = 1 − received / expected`` with
``expected = ids[-1] − ids[0] + 1`` — i.e. the fraction of the ID span that
never arrived.  Out-of-order arrival shrinks neither count (the insert is
positional), and duplicates are ignored, exactly as the paper specifies for
partially synchronous networks.

``minListSize`` gates tuning (Step 0 → Step 1 transition, §III-E):
:attr:`PathMeasurement.ready` only becomes true once enough RTT samples
exist.  ``maxListSize`` bounds both lists; the oldest datum is evicted.
"""

from __future__ import annotations

import bisect

from repro.dynatune.estimators import WindowedMeanStd

__all__ = ["PathMeasurement"]


class PathMeasurement:
    """Measurement state for one leader→follower path.

    Args:
        min_list_size: samples required before tuning may start
            (``minListSize``, paper default 10).
        max_list_size: bound on both lists (``maxListSize``, paper
            default 1000).
    """

    __slots__ = ("min_list_size", "max_list_size", "_rtts", "_ids", "duplicates_ignored")

    def __init__(self, min_list_size: int = 10, max_list_size: int = 1000) -> None:
        if min_list_size < 1:
            raise ValueError(f"min_list_size must be >= 1, got {min_list_size!r}")
        if max_list_size < min_list_size:
            raise ValueError(
                f"max_list_size ({max_list_size!r}) must be >= "
                f"min_list_size ({min_list_size!r})"
            )
        self.min_list_size = int(min_list_size)
        self.max_list_size = int(max_list_size)
        self._rtts = WindowedMeanStd(self.max_list_size)
        self._ids: list[int] = []
        #: Count of duplicate heartbeat receptions ignored (diagnostics).
        self.duplicates_ignored = 0

    # -- recording --------------------------------------------------------- #

    def record_rtt(self, rtt_ms: float) -> None:
        """Store one RTT sample (echoed by the leader, Fig. 3a)."""
        if rtt_ms < 0.0:
            raise ValueError(f"RTT cannot be negative, got {rtt_ms!r}")
        self._rtts.push(rtt_ms)

    def record_id(self, seq: int) -> bool:
        """Store one heartbeat ID (Fig. 3b).

        Returns:
            ``False`` if the ID was a duplicate and was ignored.
        """
        ids = self._ids
        pos = bisect.bisect_left(ids, seq)
        if pos < len(ids) and ids[pos] == seq:
            self.duplicates_ignored += 1
            return False
        ids.insert(pos, seq)
        if len(ids) > self.max_list_size:
            # Evict the oldest (smallest) ID so the loss window slides.
            ids.pop(0)
        return True

    def reset(self) -> None:
        """Discard everything (fallback on election timeout, §III-B)."""
        self._rtts.reset()
        self._ids.clear()

    # -- derived measurements ----------------------------------------------- #

    @property
    def ready(self) -> bool:
        """Whether Step 1 (tuning) may run: enough RTT samples collected."""
        return len(self._rtts) >= self.min_list_size

    @property
    def rtt_count(self) -> int:
        return len(self._rtts)

    @property
    def id_count(self) -> int:
        return len(self._ids)

    def rtt_mean_std(self) -> tuple[float, float]:
        """``(μ_RTT, σ_RTT)`` over the current window."""
        return self._rtts.mean_std()

    def loss_rate(self) -> float:
        """``p = 1 − received/expected`` over the current ID window.

        Returns 0.0 with fewer than two IDs — a single observation defines
        no span, and "no evidence of loss" must not inflate ``K``.
        """
        ids = self._ids
        if len(ids) < 2:
            return 0.0
        expected = ids[-1] - ids[0] + 1
        if expected <= 0:  # defensive; cannot happen with sorted unique ids
            return 0.0
        p = 1.0 - len(ids) / expected
        return p if p > 0.0 else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"PathMeasurement(rtts={self.rtt_count}, ids={self.id_count}, "
            f"ready={self.ready}, p={self.loss_rate():.4f})"
        )
