"""Cluster membership: the configuration a Raft log can change.

One-at-a-time reconfiguration (§4.1 of the Raft dissertation): the
membership is itself replicated state, carried in ordinary log entries
whose command is a :class:`ConfigChange`.  Because each change adds or
removes at most one voter, any two *adjacent* configurations share a
majority — the old and new quorums necessarily intersect, so no log
prefix can be committed under two disjoint quorums and the usual
single-config safety argument carries over unchanged.

Joint consensus is deliberately not implemented: the paper's elastic
experiments only ever grow or shrink by one node per committed change,
and the single-change protocol is both what etcd ships by default and
what the dissertation recommends.

Three change kinds, applied-at-append on every node that holds the entry:

``add_learner``
    the node joins as a **non-voting learner** — it receives appends and
    snapshots and is counted in no quorum.  This is the only way in: a
    fresh node must be caught up (through the InstallSnapshot path) before
    its vote can matter.
``promote``
    a caught-up learner becomes a voter — the step that actually changes
    quorum arithmetic.
``remove``
    a voter or learner leaves.  A leader that commits its own removal
    steps down (§4.2.2).

A :class:`ConfigChange` carries the complete *resulting*
:class:`ClusterConfig`, not a delta: a follower that appends the entry
adopts the attached configuration directly, so config agreement follows
from log agreement with no replay arithmetic.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable

__all__ = [
    "ClusterConfig",
    "ConfigChange",
    "CHANGE_KINDS",
    "quorums_overlap",
]

#: The legal ``ConfigChange.kind`` values.
CHANGE_KINDS: frozenset[str] = frozenset({"add_learner", "promote", "remove"})


@dataclasses.dataclass(slots=True, frozen=True)
class ClusterConfig:
    """An immutable membership: who votes, who merely replicates.

    Attributes:
        voters: nodes counted in election and commit quorums.
        learners: non-voting members — they receive appends/snapshots but
            appear in no quorum.

    Both tuples are kept sorted so configurations compare and hash by
    content, independent of the order changes were applied in.
    """

    voters: tuple[str, ...]
    learners: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        voters = tuple(sorted(self.voters))
        learners = tuple(sorted(self.learners))
        if len(set(voters)) != len(voters):
            raise ValueError(f"duplicate voter in {voters!r}")
        if len(set(learners)) != len(learners):
            raise ValueError(f"duplicate learner in {learners!r}")
        overlap = set(voters) & set(learners)
        if overlap:
            raise ValueError(f"nodes both voter and learner: {sorted(overlap)}")
        object.__setattr__(self, "voters", voters)
        object.__setattr__(self, "learners", learners)

    # -- queries ------------------------------------------------------------ #

    @property
    def quorum(self) -> int:
        """Majority size of the voter set (1 for an empty set: a lone
        joiner bootstrapping from a snapshot has no one to wait for)."""
        return len(self.voters) // 2 + 1

    @property
    def members(self) -> tuple[str, ...]:
        """Every member, voting or not (replication targets)."""
        return self.voters + self.learners

    def is_voter(self, name: str) -> bool:
        return name in self.voters

    def is_learner(self, name: str) -> bool:
        return name in self.learners

    def __contains__(self, name: object) -> bool:
        return name in self.voters or name in self.learners

    # -- derivation --------------------------------------------------------- #

    def with_learner(self, name: str) -> "ClusterConfig":
        """The configuration after ``name`` joins as a learner."""
        if name in self:
            raise ValueError(f"{name!r} is already a member")
        return ClusterConfig(self.voters, self.learners + (name,))

    def with_promoted(self, name: str) -> "ClusterConfig":
        """The configuration after learner ``name`` becomes a voter."""
        if name not in self.learners:
            raise ValueError(f"{name!r} is not a learner")
        return ClusterConfig(
            self.voters + (name,),
            tuple(n for n in self.learners if n != name),
        )

    def without(self, name: str) -> "ClusterConfig":
        """The configuration after member ``name`` leaves."""
        if name not in self:
            raise ValueError(f"{name!r} is not a member")
        return ClusterConfig(
            tuple(n for n in self.voters if n != name),
            tuple(n for n in self.learners if n != name),
        )

    # -- serialization ------------------------------------------------------- #

    def to_dict(self) -> dict[str, Any]:
        return {"voters": list(self.voters), "learners": list(self.learners)}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ClusterConfig":
        return cls(
            voters=tuple(payload.get("voters", ())),
            learners=tuple(payload.get("learners", ())),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClusterConfig(voters={list(self.voters)}, learners={list(self.learners)})"


@dataclasses.dataclass(slots=True, frozen=True)
class ConfigChange:
    """The command of a configuration-change log entry.

    Attributes:
        kind: one of :data:`CHANGE_KINDS`.
        node: the single node the change concerns.
        config: the complete **resulting** configuration — the one every
            holder of this entry runs under from the moment of append.
    """

    kind: str
    node: str
    config: ClusterConfig

    def __post_init__(self) -> None:
        if self.kind not in CHANGE_KINDS:
            raise ValueError(
                f"unknown config-change kind {self.kind!r}; "
                f"expected one of {sorted(CHANGE_KINDS)}"
            )

    def to_dict(self) -> dict[str, Any]:
        return {"kind": self.kind, "node": self.node, "config": self.config.to_dict()}

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "ConfigChange":
        return cls(
            kind=payload["kind"],
            node=payload["node"],
            config=ClusterConfig.from_dict(payload["config"]),
        )


def quorums_overlap(old_voters: Iterable[str], new_voters: Iterable[str]) -> bool:
    """True iff *every* majority of ``old_voters`` intersects every
    majority of ``new_voters``.

    This is the safety condition one-at-a-time changes guarantee between
    adjacent configurations: with ``q = |V| // 2 + 1``, two quorums drawn
    from the union can only be disjoint when ``q_old + q_new <= |V_old ∪
    V_new|``.  The SafetyChecker evaluates this over every committed
    config transition — a violation means a reconfiguration created a
    moment where two leaders could both assemble a quorum.
    """
    old = set(old_voters)
    new = set(new_voters)
    if not old or not new:
        # A transition into or out of an empty voter set has no quorum
        # pair to overlap; treat as safe (bootstrapping a lone learner).
        return True
    q_old = len(old) // 2 + 1
    q_new = len(new) // 2 + 1
    return q_old + q_new > len(old | new)
