"""Client sessions for the replicated KV service.

A :class:`RaftClient` is a simulated process that submits commands, follows
leader redirects, retries on silence, and records per-request latency.  It
is the building block of the examples and the correctness tests; the
high-rate open-loop load of Fig. 5 uses the fluid model in
:mod:`repro.cluster.workload` instead (see DESIGN.md §1).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

from repro.raft.messages import ClientReadRequest, ClientRequest, ClientResponse
from repro.sim.clock import NodeClock
from repro.sim.loop import EventLoop
from repro.sim.tracing import TraceLog

__all__ = ["RaftClient", "CompletedRequest"]


@dataclasses.dataclass(slots=True)
class CompletedRequest:
    """Outcome of one client command."""

    request_id: int
    command: Any
    submitted_ms: float
    completed_ms: float
    result: Any
    retries: int

    @property
    def latency_ms(self) -> float:
        return self.completed_ms - self.submitted_ms


class RaftClient:
    """A client endpoint attached to the cluster network.

    The client starts by guessing a contact node; on redirect it follows
    ``leader_hint``; on timeout (no answer within ``retry_timeout_ms``) it
    retries round-robin across the cluster.  This mirrors how etcd clients
    ride out leader failures and is what the quickstart example
    demonstrates.

    Two hooks exist for the fuzz oracle:

    * ``history`` — an operation recorder (``invoke``/``complete``/
      ``abandon``) fed at submit, success and give-up time.  The
      linearizability checker consumes these records.
    * ``resubmit_on_timeout=False`` — at-most-once mode: a timed-out
      request is *abandoned* (left in flight so a late answer can still
      complete it, but never retransmitted).  Resending after a timeout
      can duplicate a command in the log — the contacted leader may have
      appended it before dying — and a duplicated write makes the service
      genuinely non-linearizable, so the oracle's workload must not
      resend.  Redirect-following stays on: a non-leader never appends,
      so a redirect proves the previous copy left no trace.
    """

    def __init__(
        self,
        loop: EventLoop,
        name: str,
        network: Any,
        cluster: list[str],
        *,
        retry_timeout_ms: float = 1000.0,
        max_retries: int = 50,
        trace: TraceLog | None = None,
        history: Any = None,
        resubmit_on_timeout: bool = True,
    ) -> None:
        if not cluster:
            raise ValueError("client needs at least one cluster node")
        self.loop = loop
        self.name = name
        self.network = network
        self.cluster = list(cluster)
        self.retry_timeout_ms = float(retry_timeout_ms)
        self.max_retries = int(max_retries)
        self.trace = trace if trace is not None else TraceLog()
        self.history = history
        self.resubmit_on_timeout = bool(resubmit_on_timeout)
        self.alive = True
        # Clients always carry an identity clock: skew injection targets
        # servers, and the linearizability oracle's history timestamps
        # must stay in one shared frame.  Routing reads through it keeps
        # the clock discipline uniform (``node-clock-hygiene``).
        self.clock = NodeClock(loop)
        self._now: Callable[[], float] = self.clock.now

        self.completed: list[CompletedRequest] = []
        self.failed: list[int] = []
        self._next_id = 0
        self._contact = self.cluster[0]
        self._rr = 0
        # request_id -> [command, submitted, retries, callback,
        #                timeout handle, read flag]
        self._inflight: dict[int, list[Any]] = {}

    # -- network endpoint protocol ----------------------------------------- #

    def deliver(self, sender: str, payload: Any) -> None:  # noqa: ARG002
        if isinstance(payload, ClientResponse):
            self._on_response(payload)

    # -- API ------------------------------------------------------------------ #

    def submit(
        self,
        command: Any,
        *,
        on_complete: Callable[[CompletedRequest], None] | None = None,
        read: bool = False,
    ) -> int:
        """Submit a command; returns the request id.

        ``read=True`` routes the command over the leader's read fast path
        (ReadIndex / lease serving, no log entry) as a
        :class:`ClientReadRequest`.  Only meaningful for read-only
        commands; redirects, timeouts and retries behave identically.

        Completion (or final failure after ``max_retries``) is recorded in
        :attr:`completed` / :attr:`failed` and reported to ``on_complete``.
        """
        req_id = self._next_id
        self._next_id += 1
        state = [command, self._now(), 0, on_complete, None, read]
        self._inflight[req_id] = state
        if self.history is not None:
            self.history.invoke(self.name, req_id, command, self._now())
        self._transmit(req_id)
        return req_id

    @property
    def inflight_count(self) -> int:
        return len(self._inflight)

    def mean_latency_ms(self) -> float:
        if not self.completed:
            return 0.0
        return sum(c.latency_ms for c in self.completed) / len(self.completed)

    def add_server(self, name: str) -> None:
        """Add a server to the retry rotation (dynamic membership)."""
        if name not in self.cluster:
            self.cluster.append(name)

    def forget_server(self, name: str) -> None:
        """Drop a removed server from the rotation (dynamic membership).

        The last server is never dropped — a client with an empty rotation
        could not even time out sanely; requests to a fully-removed cluster
        simply go unanswered, which is the truthful outcome anyway.
        Requests already in flight toward the departed contact fall back to
        the ordinary timeout-and-rotate path.
        """
        if name not in self.cluster or len(self.cluster) == 1:
            return
        idx = self.cluster.index(name)
        del self.cluster[idx]
        # Keep the rotation pointer on the server it pointed at: removing
        # an entry below it shifts every later index down by one, and the
        # old ``_rr %= len`` clamp silently skipped a server there.
        if idx < self._rr:
            self._rr -= 1
        self._rr %= len(self.cluster)
        if self._contact == name:
            self._contact = self.cluster[self._rr]

    # -- internals --------------------------------------------------------------- #

    def _transmit(self, req_id: int) -> None:
        state = self._inflight.get(req_id)
        if state is None:
            return
        command = state[0]
        if state[5]:
            payload: Any = ClientReadRequest(request_id=req_id, command=command)
        else:
            payload = ClientRequest(request_id=req_id, command=command)
        self.network.send(
            self.name,
            self._contact,
            payload,
            channel="tcp",
            size_bytes=160,
        )
        state[4] = self.loop.schedule(
            self.retry_timeout_ms, lambda rid=req_id: self._on_timeout(rid)
        )

    def _on_timeout(self, req_id: int) -> None:
        state = self._inflight.get(req_id)
        if state is None:
            return
        state[2] += 1
        if not self.resubmit_on_timeout:
            # At-most-once mode: never retransmit after a timeout (the
            # silent contact may have appended the command).  The request
            # stays in flight so a late answer still completes it; rotate
            # the believed contact so *future* submissions try elsewhere.
            state[4] = None
            self._rr = (self._rr + 1) % len(self.cluster)
            self._contact = self.cluster[self._rr]
            self.trace.record(
                self._now(), self.name, "client_abandon", request=req_id
            )
            if self.history is not None:
                self.history.abandon(self.name, req_id, self._now())
            return
        if state[2] > self.max_retries:
            del self._inflight[req_id]
            self.failed.append(req_id)
            self.trace.record(self._now(), self.name, "client_giveup", request=req_id)
            if self.history is not None:
                self.history.abandon(self.name, req_id, self._now())
            return
        # No answer: the contact may be dead or partitioned; rotate.
        self._rr = (self._rr + 1) % len(self.cluster)
        self._contact = self.cluster[self._rr]
        self._transmit(req_id)

    def _on_response(self, resp: ClientResponse) -> None:
        state = self._inflight.get(resp.request_id)
        if state is None:
            return  # duplicate/stale answer for an already-settled request
        command, submitted, retries, on_complete, handle, _read = state
        if resp.ok:
            if handle is not None:
                handle.cancel()
            del self._inflight[resp.request_id]
            done = CompletedRequest(
                request_id=resp.request_id,
                command=command,
                submitted_ms=submitted,
                completed_ms=self._now(),
                result=resp.result,
                retries=retries,
            )
            self.completed.append(done)
            if self.history is not None:
                self.history.complete(
                    self.name, resp.request_id, resp.result, self._now()
                )
            if on_complete is not None:
                on_complete(done)
            return
        # Redirect: update the believed leader and retransmit immediately.
        # A hint equal to the current contact still needs a retransmit —
        # the earlier copy went to a different node before the contact was
        # updated.  With no hint (mid-election), the retry timer handles it.
        if resp.leader_hint is not None:
            if resp.leader_hint in self.cluster:
                self._contact = resp.leader_hint
            else:
                # A hint naming a server outside the rotation (a removed
                # member the responder has not unlearned yet) must not
                # strand the client on an unreachable contact: fall back
                # to the round-robin rotation instead.
                self._rr = (self._rr + 1) % len(self.cluster)
                self._contact = self.cluster[self._rr]
            if handle is not None:
                handle.cancel()
            state[2] += 1
            if state[2] > self.max_retries:
                del self._inflight[resp.request_id]
                self.failed.append(resp.request_id)
                self.trace.record(
                    self._now(), self.name, "client_giveup", request=resp.request_id
                )
                if self.history is not None:
                    self.history.abandon(self.name, resp.request_id, self._now())
                return
            self._transmit(resp.request_id)
