"""The replicated log, with log compaction (§7 of the Raft paper).

Indexing is 1-based as in the Raft paper; index 0 is a virtual sentinel
with term 0.  The log enforces the two structural invariants everything
else leans on:

* **append-only within a term** — entries are only removed by conflict
  truncation driven by a newer leader (or released by compaction, which
  never touches uncommitted state);
* **term monotonicity** — ``term(i) <= term(j)`` for ``i <= j``.

``try_append`` implements the receiver side of AppendEntries (§5.3 of the
Raft paper) including the conflict-index optimisation that lets a leader
skip back over an entire conflicting term per round trip instead of one
entry at a time.

**Compaction model.**  The log is *offset-indexed*: a compacted prefix is
summarised by the ``(last_included_index, last_included_term)`` frontier
and the retained entries live in a plain list starting at
:attr:`first_index` ``= last_included_index + 1``.  Every read path stays
O(1) — a logical index maps to a physical slot by subtracting the
frontier.  :meth:`compact` releases an applied prefix (the caller owns a
state-machine snapshot covering it); :meth:`install_snapshot` is the
receiver side of InstallSnapshot, replacing the log wholesale unless a
retained suffix already matches.  Entries at or below the frontier are,
by construction, committed — compaction is only ever driven past applied
state — so the frontier can stand in for them in every consistency check.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Protocol

__all__ = ["LogEntry", "RaftLog", "Snapshot", "WalJournal"]


@dataclasses.dataclass(slots=True, frozen=True)
class LogEntry:
    """One log slot.

    Attributes:
        term: leader term that created the entry.
        index: 1-based log position.
        command: state-machine command; ``None`` marks a leader no-op (the
            entry each new leader appends to commit its predecessors' tail,
            §5.4.2 of the Raft paper / etcd's empty entry).
    """

    term: int
    index: int
    command: Any = None


@dataclasses.dataclass(slots=True, frozen=True)
class Snapshot:
    """A durable state-machine image at ``(last_included_index, _term)``.

    ``data`` is whatever the state machine's ``snapshot()`` returned;
    immutable by convention (it is shared leader→follower in-process the
    same way message payloads are).

    ``config`` is the cluster configuration as of the snapshot index —
    membership is replicated state, so a snapshot that replaces the log
    prefix must also carry the configuration that prefix established
    (§4.1 of the Raft dissertation).  ``None`` only for snapshots taken
    before dynamic membership existed (and in membership-free tests);
    recovery then keeps the node's construction-time configuration.
    """

    last_included_index: int
    last_included_term: int
    data: Any
    config: Any = None


class WalJournal(Protocol):
    """Write-ahead mirror of log mutations (see :mod:`repro.storage`).

    A log with an attached journal reports every mutation *in the order
    it applies it*, so the journal's record stream replayed from empty
    reproduces the log exactly.  ``None`` (the default) disables
    mirroring at the cost of one attribute check per mutation.
    """

    def wal_append(self, entry: "LogEntry") -> None: ...

    def wal_truncate(self, from_index: int) -> None: ...

    def wal_compact(self, upto: int, term: int) -> None: ...

    def wal_reset(self, last_index: int, last_term: int) -> None: ...


class RaftLog:
    """Offset-indexed replicated log with 1-based logical indexing.

    ``last_index`` is a maintained plain attribute (always equal to
    ``last_included_index + len(self._entries)``): it is read on every
    heartbeat and every replication message, where a property's descriptor
    call is measurable.  ``last_included_index``/``last_included_term``
    are likewise plain attributes — the frontier of the compacted prefix
    ((0, 0) for an uncompacted log) — updated only by :meth:`compact` and
    :meth:`install_snapshot`; treat all three as read-only from outside.
    """

    __slots__ = (
        "_entries",
        "last_index",
        "last_included_index",
        "last_included_term",
        "journal",
    )

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []
        self.last_index: int = 0
        self.last_included_index: int = 0
        self.last_included_term: int = 0
        #: Optional write-ahead mirror of every mutation (durability layer).
        self.journal: WalJournal | None = None

    @classmethod
    def from_frontier(
        cls, base_index: int, base_term: int, entries: Iterable[LogEntry]
    ) -> "RaftLog":
        """Rebuild a log from a compaction frontier plus retained entries
        (the storage recovery path; ``entries`` must be contiguous from
        ``base_index + 1``)."""
        log = cls()
        log.last_included_index = base_index
        log.last_included_term = base_term
        log._entries = list(entries)
        log.last_index = base_index + len(log._entries)
        return log

    # -- inspection --------------------------------------------------------- #

    def __len__(self) -> int:
        """Number of *retained* (physically present) entries."""
        return len(self._entries)

    @property
    def retained(self) -> int:
        """Retained entry count (``last_index - last_included_index``)."""
        return len(self._entries)

    @property
    def first_index(self) -> int:
        """Lowest logical index still physically present (``last_included_index + 1``)."""
        return self.last_included_index + 1

    @property
    def last_term(self) -> int:
        return self._entries[-1].term if self._entries else self.last_included_term

    def term_at(self, index: int) -> int:
        """Term of the entry at ``index`` (frontier term at the frontier;
        0 for the sentinel of an uncompacted log).

        Raises:
            IndexError: if ``index`` is outside
                ``[last_included_index, last_index]`` — below the frontier
                the entry has been compacted away and its term is no
                longer individually known.
        """
        base = self.last_included_index
        if index == base:
            return self.last_included_term
        if not (base < index <= self.last_index):
            raise IndexError(
                f"log index {index} out of range {base}..{self.last_index} "
                f"(entries below {base} are compacted)"
            )
        return self._entries[index - base - 1].term

    def entry_at(self, index: int) -> LogEntry:
        base = self.last_included_index
        if not (base < index <= self.last_index):
            raise IndexError(
                f"log index {index} out of range {base + 1}..{self.last_index} "
                f"(entries below {base + 1} are compacted)"
            )
        return self._entries[index - base - 1]

    def slice_from(self, start: int, limit: int) -> tuple[LogEntry, ...]:
        """Up to ``limit`` entries beginning at index ``start``.

        Raises:
            IndexError: if ``start`` falls below :attr:`first_index` (the
            caller must fall back to snapshot transfer there).
        """
        if start < self.first_index:
            raise IndexError(
                f"slice start must be >= first_index {self.first_index}, got {start}"
            )
        phys = start - self.last_included_index - 1
        return tuple(self._entries[phys : phys + limit])

    def entries(self) -> tuple[LogEntry, ...]:
        """All retained entries (the compacted prefix is not included)."""
        return tuple(self._entries)

    def up_to_date(self, last_index: int, last_term: int) -> bool:
        """The voter rule of §5.4.1: is ``(last_term, last_index)`` at least
        as complete as this log?"""
        if last_term != self.last_term:
            return last_term > self.last_term
        return last_index >= self.last_index

    # -- mutation ------------------------------------------------------------ #

    def append_new(self, term: int, command: Any) -> LogEntry:
        """Leader-side append of a fresh entry.

        Raises:
            ValueError: if ``term`` would break term monotonicity.
        """
        if term < self.last_term:
            raise ValueError(
                f"term regression: appending term {term} after {self.last_term}"
            )
        entry = LogEntry(term=term, index=self.last_index + 1, command=command)
        self._entries.append(entry)
        self.last_index = entry.index
        j = self.journal
        if j is not None:
            j.wal_append(entry)
        return entry

    def try_append(
        self,
        prev_log_index: int,
        prev_log_term: int,
        entries: Iterable[LogEntry],
    ) -> tuple[bool, int, int | None]:
        """Follower-side AppendEntries application.

        A ``prev_log_index`` at or below the frontier always passes the
        consistency check: the compacted prefix is committed state, and a
        committed ``(index, term)`` is unique cluster-wide (Log Matching +
        Leader Completeness), so the leader's entries there necessarily
        match what the snapshot covers.  Incoming entries at or below the
        frontier are skipped for the same reason.

        Returns:
            ``(success, match_index, conflict_index)``:

            * success + the highest index now known to match the leader, or
            * failure + a hint: the index the leader should retry from
              (first index of the conflicting term, or just past our log's
              end if we are simply short).
        """
        base = self.last_included_index
        # Consistency check on the previous entry.
        if prev_log_index > self.last_index:
            return False, 0, self.last_index + 1
        if prev_log_index > base and self.term_at(prev_log_index) != prev_log_term:
            conflict_term = self.term_at(prev_log_index)
            first = prev_log_index
            while first > base + 1 and self.term_at(first - 1) == conflict_term:
                first -= 1
            return False, 0, first

        # Walk the new entries; truncate at the first term conflict.
        new_entries = list(entries)
        match = prev_log_index if prev_log_index > base else base
        j = self.journal
        for entry in new_entries:
            idx = entry.index
            if idx <= base:
                continue  # covered by the snapshot frontier (committed)
            if idx != match + 1:
                raise ValueError(
                    f"non-contiguous AppendEntries: expected index {match + 1}, "
                    f"got {idx}"
                )
            if idx <= self.last_index:
                if self.term_at(idx) == entry.term:
                    match = idx
                    continue  # already have it
                del self._entries[idx - base - 1 :]  # conflict: drop our suffix
                self.last_index = idx - 1
                if j is not None:
                    j.wal_truncate(idx)
            self._entries.append(entry)
            self.last_index = idx
            match = idx
            if j is not None:
                j.wal_append(entry)
        return True, match, None

    # -- compaction ----------------------------------------------------------- #

    def compact(self, upto: int) -> int:
        """Release the prefix through ``upto``, moving the frontier there.

        The caller is responsible for ``upto`` being *applied* state it
        holds a snapshot for — the log itself only refuses to compact past
        its own end.  Compacting at or below the current frontier is a
        no-op (idempotent under repeated triggers).

        Returns:
            Number of entries released.
        """
        base = self.last_included_index
        if upto <= base:
            return 0
        if upto > self.last_index:
            raise ValueError(
                f"cannot compact to {upto}: log ends at {self.last_index}"
            )
        term = self.term_at(upto)
        drop = upto - base
        del self._entries[:drop]
        self.last_included_index = upto
        self.last_included_term = term
        j = self.journal
        if j is not None:
            j.wal_compact(upto, term)
        return drop

    def install_snapshot(self, last_index: int, last_term: int) -> bool:
        """Receiver side of InstallSnapshot (§7): adopt a snapshot frontier.

        If a retained entry at ``last_index`` already carries
        ``last_term``, the suffix beyond it is kept (the snapshot is just
        a faster prefix) — otherwise the entire log is replaced by the
        frontier.  A snapshot at or below the current frontier is stale
        and ignored.

        Returns:
            True if the log changed.
        """
        if last_index <= self.last_included_index:
            return False
        if last_index <= self.last_index and self.term_at(last_index) == last_term:
            self.compact(last_index)
            return True
        self._entries = []
        self.last_index = last_index
        self.last_included_index = last_index
        self.last_included_term = last_term
        j = self.journal
        if j is not None:
            j.wal_reset(last_index, last_term)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RaftLog(len={self.last_index}, last_term={self.last_term}, "
            f"first={self.first_index})"
        )
