"""The replicated log.

Indexing is 1-based as in the Raft paper; index 0 is a virtual sentinel
with term 0.  The log enforces the two structural invariants everything
else leans on:

* **append-only within a term** — entries are only removed by conflict
  truncation driven by a newer leader;
* **term monotonicity** — ``term(i) <= term(j)`` for ``i <= j``.

``try_append`` implements the receiver side of AppendEntries (§5.3 of the
Raft paper) including the conflict-index optimisation that lets a leader
skip back over an entire conflicting term per round trip instead of one
entry at a time.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable

__all__ = ["LogEntry", "RaftLog"]


@dataclasses.dataclass(slots=True, frozen=True)
class LogEntry:
    """One log slot.

    Attributes:
        term: leader term that created the entry.
        index: 1-based log position.
        command: state-machine command; ``None`` marks a leader no-op (the
            entry each new leader appends to commit its predecessors' tail,
            §5.4.2 of the Raft paper / etcd's empty entry).
    """

    term: int
    index: int
    command: Any = None


class RaftLog:
    """In-memory replicated log with 1-based indexing.

    ``last_index`` is a maintained plain attribute (always equal to
    ``len(self._entries)``): it is read on every heartbeat and every
    replication message, where a property's descriptor call is measurable.
    Only the two mutation paths below update it; treat it as read-only
    from outside.
    """

    __slots__ = ("_entries", "last_index")

    def __init__(self) -> None:
        self._entries: list[LogEntry] = []
        self.last_index: int = 0

    # -- inspection --------------------------------------------------------- #

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def last_term(self) -> int:
        return self._entries[-1].term if self._entries else 0

    def term_at(self, index: int) -> int:
        """Term of the entry at ``index`` (0 for the sentinel).

        Raises:
            IndexError: if ``index`` is outside ``[0, last_index]``.
        """
        if index == 0:
            return 0
        if not (1 <= index <= len(self._entries)):
            raise IndexError(f"log index {index} out of range 1..{len(self._entries)}")
        return self._entries[index - 1].term

    def entry_at(self, index: int) -> LogEntry:
        if not (1 <= index <= len(self._entries)):
            raise IndexError(f"log index {index} out of range 1..{len(self._entries)}")
        return self._entries[index - 1]

    def slice_from(self, start: int, limit: int) -> tuple[LogEntry, ...]:
        """Up to ``limit`` entries beginning at index ``start``."""
        if start < 1:
            raise IndexError(f"slice start must be >= 1, got {start}")
        return tuple(self._entries[start - 1 : start - 1 + limit])

    def entries(self) -> tuple[LogEntry, ...]:
        return tuple(self._entries)

    def up_to_date(self, last_index: int, last_term: int) -> bool:
        """The voter rule of §5.4.1: is ``(last_term, last_index)`` at least
        as complete as this log?"""
        if last_term != self.last_term:
            return last_term > self.last_term
        return last_index >= self.last_index

    # -- mutation ------------------------------------------------------------ #

    def append_new(self, term: int, command: Any) -> LogEntry:
        """Leader-side append of a fresh entry.

        Raises:
            ValueError: if ``term`` would break term monotonicity.
        """
        if term < self.last_term:
            raise ValueError(
                f"term regression: appending term {term} after {self.last_term}"
            )
        entry = LogEntry(term=term, index=self.last_index + 1, command=command)
        self._entries.append(entry)
        self.last_index = entry.index
        return entry

    def try_append(
        self,
        prev_log_index: int,
        prev_log_term: int,
        entries: Iterable[LogEntry],
    ) -> tuple[bool, int, int | None]:
        """Follower-side AppendEntries application.

        Returns:
            ``(success, match_index, conflict_index)``:

            * success + the highest index now known to match the leader, or
            * failure + a hint: the index the leader should retry from
              (first index of the conflicting term, or just past our log's
              end if we are simply short).
        """
        # Consistency check on the previous entry.
        if prev_log_index > self.last_index:
            return False, 0, self.last_index + 1
        if prev_log_index >= 1 and self.term_at(prev_log_index) != prev_log_term:
            conflict_term = self.term_at(prev_log_index)
            first = prev_log_index
            while first > 1 and self.term_at(first - 1) == conflict_term:
                first -= 1
            return False, 0, first

        # Walk the new entries; truncate at the first term conflict.
        new_entries = list(entries)
        match = prev_log_index
        for entry in new_entries:
            idx = entry.index
            if idx != match + 1:
                raise ValueError(
                    f"non-contiguous AppendEntries: expected index {match + 1}, "
                    f"got {idx}"
                )
            if idx <= self.last_index:
                if self.term_at(idx) == entry.term:
                    match = idx
                    continue  # already have it
                del self._entries[idx - 1 :]  # conflict: drop our suffix
                self.last_index = idx - 1
            self._entries.append(entry)
            self.last_index = idx
            match = idx
        return True, match, None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RaftLog(len={self.last_index}, last_term={self.last_term})"
