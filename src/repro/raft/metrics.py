"""Per-node counters and the randomizedTimeout trace.

The paper's figures sample two node-internal quantities that are not
ordinary log events: the current ``randomizedTimeout`` (Fig. 6 plots the
f+1-smallest across the cluster every second) and role/election counters
(§IV-C2 verifies "no unnecessary elections occurred").  This module keeps
them cheap to record and easy to query.
"""

from __future__ import annotations

import dataclasses

__all__ = ["NodeMetrics"]


@dataclasses.dataclass(slots=True)
class NodeMetrics:
    """Counters for one Raft node."""

    election_timeouts: int = 0
    prevote_rounds: int = 0
    elections_started: int = 0
    times_leader: int = 0
    step_downs: int = 0
    quorum_step_downs: int = 0
    heartbeats_sent: int = 0
    heartbeats_received: int = 0
    heartbeat_responses_received: int = 0
    appends_sent: int = 0
    appends_received: int = 0
    votes_granted: int = 0
    votes_rejected: int = 0
    prevotes_granted: int = 0
    prevotes_rejected: int = 0
    entries_applied: int = 0
    #: Times the leader's commit index moved forward via quorum match
    #: (one bump may cover many entries; see RaftNode._advance_commit).
    commit_advances: int = 0
    client_requests: int = 0
    client_redirects: int = 0
    #: Client-serving fast path (all 0 with batching/reads unused).
    client_reads: int = 0
    batches_flushed: int = 0
    batched_commands: int = 0
    read_probes_sent: int = 0
    reads_served_readindex: int = 0
    reads_served_lease: int = 0
    lease_fallbacks: int = 0
    reads_failed: int = 0
    #: Log-compaction lifecycle (0 everywhere while compaction is off).
    snapshots_taken: int = 0
    compactions: int = 0
    entries_compacted: int = 0
    snapshots_sent: int = 0
    snapshots_installed: int = 0
    #: Membership-change lifecycle (0 everywhere on a static cluster).
    config_changes_appended: int = 0
    config_changes_committed: int = 0
    config_changes_rejected: int = 0
    #: Learner→voter promotions this node proposed as leader.
    learner_promotions: int = 0
    #: Whether this node joined as a learner and was later promoted —
    #: paired with ``snapshots_installed`` it asserts "snapshot-caught-up
    #: before voting" for every joiner.
    promoted_to_voter: int = 0
    #: The currently armed randomizedTimeout (ms); kept current by the node
    #: every time the election timer (or the leader's quorum timer) is armed.
    current_randomized_timeout_ms: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return dataclasses.asdict(self)
