"""Incremental quorum-match tracking for leader commit advancement.

The textbook rule — "commit the largest index replicated on a majority" —
is usually implemented by sorting the match indices on every AppendEntries
response and picking the quorum-th largest.  That is O(n log n) *per
response* (plus a list allocation), which at 101 nodes under an append
storm is the protocol layer's single hottest line.

:class:`CommitTracker` maintains the same quantity incrementally.  It
exploits two structural facts of a Raft leadership:

* a follower's ``match_index`` only moves forward during one reign (the
  leader resets the whole table when it is elected), and
* the quorum frontier — the largest index acknowledged by at least
  ``quorum − 1`` followers — is therefore monotone too.

It keeps one counter per *uncommitted* index ("how many followers have
acknowledged at least this index"), bumps the counters only for the index
range a response newly covers, and walks the frontier forward over
indices whose counter has reached the threshold.  Every index is counted
once per follower and crossed by the frontier once, so the cost is O(1)
amortized per acknowledged entry — independent of cluster size.

The term restriction of §5.4.2 (only current-term entries commit by
counting) stays in the node: the tracker answers "what is the largest
quorum-replicated index", the node decides whether it may become the
commit index.
"""

from __future__ import annotations

__all__ = ["CommitTracker"]


class CommitTracker:
    """Count-indexed match table for one leader reign.

    Args:
        acks_needed: follower acknowledgements required for quorum —
            ``quorum - 1`` (the leader itself always holds its own log,
            so it is never counted).

    Usage::

        tracker = CommitTracker(quorum - 1)       # on become_leader
        frontier = tracker.advance(old_match, new_match)
        if frontier > commit and log.term_at(frontier) == current_term:
            commit = frontier
            tracker.discard_through(commit)       # free the bookkeeping
    """

    __slots__ = ("acks_needed", "_acks", "_frontier", "_floor")

    def __init__(self, acks_needed: int) -> None:
        if acks_needed < 0:
            raise ValueError(f"acks_needed must be >= 0, got {acks_needed!r}")
        self.acks_needed = acks_needed
        #: index -> followers that have acknowledged at least this index
        #: (kept only for indices above ``_floor``).
        self._acks: dict[int, int] = {}
        #: Largest index with >= acks_needed acknowledgements (monotone).
        self._frontier = 0
        #: Indices at or below this have been discarded (committed).
        self._floor = 0

    @property
    def frontier(self) -> int:
        """Largest index currently replicated on a quorum (0 if none)."""
        return self._frontier

    @property
    def pending(self) -> int:
        """Number of indices with partial-quorum bookkeeping (diagnostics)."""
        return len(self._acks)

    def advance(self, old_match: int, new_match: int) -> int:
        """Record one follower's progress ``old_match → new_match``.

        ``old_match`` must be the value this tracker last saw for the
        follower (0 right after election); each follower must be reported
        with non-decreasing values.  Returns the updated frontier.

        With ``acks_needed == 0`` (single-voter degenerate case) there is
        no follower evidence to track; callers use the leader's own
        ``last_index`` directly.
        """
        need = self.acks_needed
        if need == 0 or new_match <= old_match:
            return self._frontier
        acks = self._acks
        start = old_match if old_match > self._floor else self._floor
        for index in range(start + 1, new_match + 1):
            acks[index] = acks.get(index, 0) + 1
        frontier = self._frontier
        get = acks.get
        while get(frontier + 1, 0) >= need:
            frontier += 1
        self._frontier = frontier
        return frontier

    def discard_through(self, index: int) -> None:
        """Drop counters for indices ``<= index`` (they are committed).

        The frontier is raised to ``index`` too: a committed index is by
        definition quorum-replicated.  On the ordinary commit path this is
        a no-op (the frontier *produced* the commit), but it makes a fresh
        tracker rebasable — a leader rebuilding its tracker mid-reign
        after a configuration change seeds it with
        ``discard_through(commit_index)`` so the frontier walk resumes
        from committed state instead of index 0.
        """
        if index <= self._floor:
            return
        acks = self._acks
        for i in range(self._floor + 1, index + 1):
            acks.pop(i, None)
        self._floor = index
        if index > self._frontier:
            self._frontier = index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CommitTracker(need={self.acks_needed}, frontier={self._frontier}, "
            f"pending={len(self._acks)})"
        )
