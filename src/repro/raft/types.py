"""Core Raft types: roles and node configuration."""

from __future__ import annotations

import dataclasses
import enum

__all__ = ["Role", "RaftConfig"]


class Role(enum.Enum):
    """The three roles of §II-A plus the pre-vote extension's fourth state.

    A *pre-candidate* has detected leader loss but has not incremented its
    term; it first polls the cluster (pre-vote) and only becomes a real
    candidate — and only then disturbs the term space — if a majority
    agrees the leader is gone.  Dynatune's tolerance of false detections
    (Fig. 6b) rests on this state.
    """

    FOLLOWER = "follower"
    PRECANDIDATE = "precandidate"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclasses.dataclass(slots=True, frozen=True)
class RaftConfig:
    """Per-node protocol configuration (election parameters live in the
    :class:`~repro.dynatune.policy.TuningPolicy`, not here).

    Attributes:
        prevote: run the pre-vote phase before real elections (etcd default;
            the paper's described behaviour, §II-A).
        check_quorum: leader steps down when it has not heard from a quorum
            within an election timeout, and followers refuse (pre-)votes
            while they have a fresh leader lease.  Matches etcd's
            ``CheckQuorum``/lease protection, which the Fig. 6 behaviour
            depends on.
        max_entries_per_append: replication batch bound.
        rpc_channel: transport for consensus RPCs (etcd: TCP; Dynatune
            keeps consensus on TCP and only moves heartbeats to UDP).
        heartbeat_response_catchup: leaders use heartbeat responses to
            detect lagging followers and push entries (etcd triggers
            MsgApp off MsgHeartbeatResp the same way).
        heartbeat_phase_stagger: start each per-follower heartbeat loop at
            a random phase within one interval.  A simulator's timers are
            perfectly aligned, which phase-locks every follower's heartbeat
            arrivals and hence their failure-detection instants — an
            artifact that makes 4-way split votes near-certain.  Real
            per-follower timers (Go runtime timers on a busy host) carry
            independent phases; staggering reproduces that.
        heartbeat_timer_jitter_ms: uniform extra delay per heartbeat tick
            (OS scheduling noise) so phases also drift over time.
        suppress_heartbeats_under_load: §IV-E future-work feature 1 — a
            replication message doubles as a heartbeat (followers reset
            their election timers on AppendEntries anyway), so sending one
            pushes that follower's next dedicated heartbeat out by a full
            interval.  Under a busy workload this suppresses most
            heartbeats, reclaiming the leader CPU the paper attributes its
            6.4 % peak-throughput gap to.  Off by default (not part of the
            evaluated system).
        consolidated_heartbeat_timer: §IV-E future-work feature 2 — one
            leader timer at the *minimum* tuned ``h`` across followers,
            beating for all of them at once, instead of ``n − 1``
            independent timers.  Trades extra heartbeats on slow paths for
            O(1) timer management.  Off by default.
        compaction_threshold: take a state-machine snapshot and compact the
            log once more than this many entries are retained (§7 of the
            Raft paper).  ``0`` (the default) disables compaction entirely
            — the log grows without bound, exactly the pre-compaction
            behaviour every golden-seed digest was captured under.
        compaction_retain_margin: entries kept *behind* the snapshot point
            when compacting (etcd's ``SnapshotCatchUpEntries``): a
            slightly-lagging follower can still catch up from the log
            instead of paying a full snapshot transfer.  Also the slack a
            leader grants live followers — compaction never advances past
            ``min(live match_index)``, but a follower that stopped
            responding does not hold memory hostage: it gets a snapshot
            when it returns.
        client_batching: leader-side append batching — client commands are
            buffered and flushed as *one* log append + one AppendEntries
            per follower instead of a full replication fan-out per
            command.  The flush fires when ``client_batch_max`` commands
            are buffered, when the dedicated ``client_batch_window_ms``
            timer expires, or at the next heartbeat tick to any follower
            (whichever comes first).  Off by default: the per-command
            fan-out is the behaviour every golden-seed digest and fuzz
            reproducer was captured under.
        client_batch_max: buffered commands that force an immediate flush.
        client_batch_window_ms: dedicated flush timer armed when the first
            command enters an empty buffer.  ``0`` (default) arms no
            timer — the batch rides the next heartbeat tick, etcd's
            classic "replicate on the tick" cadence.
        replication_pipelining: stream AppendEntries to a follower without
            waiting for acks — ``next_index`` advances optimistically at
            send time (etcd's ``StateReplicate`` progress), so each
            in-flight window slot carries *new* entries instead of
            re-sending the same suffix.  A rejection drops the follower
            into probe mode (one unpiped append at a time) until a
            success re-establishes the match point; stale rejections of
            already-superseded probes are ignored via the echoed
            ``prev_log_index``.  Off by default (identical traffic to the
            seed's ack-clocked resend).
        max_inflight_appends: per-follower in-flight window depth (only
            meaningful under load; the default equals the historical
            ``RaftNode.MAX_INFLIGHT_APPENDS`` constant).
        lease_reads: serve linearizable reads from the leader lease when
            it is safely held, falling back to the ReadIndex quorum round
            otherwise.  The lease duration derives from the policy's
            ``lease_bound_ms()`` — the smallest election timeout any
            voter is applying (Dynatune followers piggyback their tuned
            ``Et`` so the bound tracks the tuned value) — minus
            ``lease_drift_margin_ms``.  Off by default; ReadIndex reads
            need no knob (they are triggered purely by clients sending
            ``ClientReadRequest``).
        lease_drift_margin_ms: safety slack subtracted from the lease
            bound.  Must absorb (a) relative clock drift over one lease
            and (b) the one-way network delay between a follower hearing
            the leader and the leader learning it did (the lease clock
            starts at response *receipt*).  Serving experiments assert
            this margin against the measured RTT window.
        auto_promote_learners: a leader promotes a non-voting learner to
            voter (by appending the ``promote`` config entry) as soon as
            the learner's match index has caught up to the leader's commit
            index and no other config change is in flight.  On (the
            dissertation's recommended flow) a single ``add_learner``
            proposal grows the cluster end to end; off, promotion must be
            proposed explicitly — useful for tests that need to hold a
            node in the learner state.
        learner_catchup_margin: how close (in entries) a learner's match
            index must be to the leader's commit index before
            auto-promotion fires.  ``0`` demands exact catch-up.
    """

    prevote: bool = True
    check_quorum: bool = True
    max_entries_per_append: int = 64
    rpc_channel: str = "tcp"
    heartbeat_response_catchup: bool = True
    heartbeat_phase_stagger: bool = True
    heartbeat_timer_jitter_ms: float = 0.5
    suppress_heartbeats_under_load: bool = False
    consolidated_heartbeat_timer: bool = False
    client_batching: bool = False
    client_batch_max: int = 64
    client_batch_window_ms: float = 0.0
    replication_pipelining: bool = False
    max_inflight_appends: int = 4
    lease_reads: bool = False
    lease_drift_margin_ms: float = 50.0
    compaction_threshold: int = 0
    compaction_retain_margin: int = 64
    auto_promote_learners: bool = True
    learner_catchup_margin: int = 0

    def __post_init__(self) -> None:
        if self.max_entries_per_append < 1:
            raise ValueError(
                f"max_entries_per_append must be >= 1, got {self.max_entries_per_append!r}"
            )
        if self.rpc_channel not in ("tcp", "udp"):
            raise ValueError(f"rpc_channel must be 'tcp' or 'udp', got {self.rpc_channel!r}")
        if self.heartbeat_timer_jitter_ms < 0.0:
            raise ValueError(
                "heartbeat_timer_jitter_ms must be >= 0, "
                f"got {self.heartbeat_timer_jitter_ms!r}"
            )
        if self.client_batch_max < 1:
            raise ValueError(
                f"client_batch_max must be >= 1, got {self.client_batch_max!r}"
            )
        if self.client_batch_window_ms < 0.0:
            raise ValueError(
                "client_batch_window_ms must be >= 0, "
                f"got {self.client_batch_window_ms!r}"
            )
        if self.max_inflight_appends < 1:
            raise ValueError(
                f"max_inflight_appends must be >= 1, got {self.max_inflight_appends!r}"
            )
        if self.lease_drift_margin_ms < 0.0:
            raise ValueError(
                "lease_drift_margin_ms must be >= 0, "
                f"got {self.lease_drift_margin_ms!r}"
            )
        if self.compaction_threshold < 0:
            raise ValueError(
                f"compaction_threshold must be >= 0, got {self.compaction_threshold!r}"
            )
        if self.compaction_retain_margin < 0:
            raise ValueError(
                "compaction_retain_margin must be >= 0, "
                f"got {self.compaction_retain_margin!r}"
            )
        if self.learner_catchup_margin < 0:
            raise ValueError(
                "learner_catchup_margin must be >= 0, "
                f"got {self.learner_catchup_margin!r}"
            )
