"""Replicated state machines: the protocol and the etcd-style KV store.

SMR (§II-A): every server applies committed log entries in index order to
an initially identical state machine, so all copies stay consistent.  The
KV store is the service the paper's testbed runs (etcd is "a widely used
key-value store", §III-E).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Protocol, runtime_checkable

__all__ = [
    "StateMachine",
    "KVStore",
    "KVCommand",
    "kv_put",
    "kv_get",
    "kv_delete",
    "is_read_only",
]


@runtime_checkable
class StateMachine(Protocol):
    """What Raft needs from an application state machine."""

    def apply(self, command: Any) -> Any:
        """Apply one committed command; returns the client-visible result.

        Must be deterministic: identical command sequences must yield
        identical states and results on every replica.
        """
        ...

    def reset(self) -> None:
        """Drop all state (crash-recovery replays the log from scratch)."""
        ...

    def snapshot(self) -> Any:
        """A self-contained, immutable image of the current state.

        The image must be restorable via :meth:`restore` and independent
        of the live state (mutating the machine afterwards must not change
        an already-taken snapshot) — it is shipped to lagging followers in
        InstallSnapshot RPCs and replayed by crash-recovery.
        """
        ...

    def restore(self, data: Any) -> None:
        """Replace all state with a previously taken :meth:`snapshot`."""
        ...

    def read(self, command: Any) -> Any:
        """Evaluate a read-only command against current state without
        applying it (the ReadIndex/lease fast path serves reads here,
        bypassing the log).  Must not mutate any state — including
        bookkeeping like apply counters — and must equal what
        :meth:`apply` would return for the same command at this state.
        """
        ...


@dataclasses.dataclass(slots=True, frozen=True)
class KVCommand:
    """A key-value operation: ``put``, ``get`` or ``delete``."""

    op: str
    key: str
    value: Any = None


def kv_put(key: str, value: Any) -> KVCommand:
    return KVCommand(op="put", key=key, value=value)


def kv_get(key: str) -> KVCommand:
    return KVCommand(op="get", key=key)


def kv_delete(key: str) -> KVCommand:
    return KVCommand(op="delete", key=key)


def is_read_only(command: Any) -> bool:
    """True for commands eligible for the read fast path (KV ``get``).

    Clients use this to route reads as :class:`~repro.raft.messages.
    ClientReadRequest` instead of a log-serialized write.
    """
    return isinstance(command, KVCommand) and command.op == "get"


class KVStore:
    """A deterministic in-memory key-value state machine.

    ``get`` goes through the log too (linearizable reads via log
    serialization — the simplest correct read path; etcd's read-index
    optimisation is out of scope for the paper's experiments).
    """

    def __init__(self) -> None:
        self._data: dict[str, Any] = {}
        self.applied_count = 0

    def apply(self, command: Any) -> Any:
        if command is None:  # leader no-op entry
            return None
        if not isinstance(command, KVCommand):
            raise TypeError(f"KVStore cannot apply {type(command).__name__}")
        self.applied_count += 1
        if command.op == "put":
            self._data[command.key] = command.value
            return command.value
        if command.op == "get":
            return self._data.get(command.key)
        if command.op == "delete":
            return self._data.pop(command.key, None)
        raise ValueError(f"unknown KV op {command.op!r}")

    def reset(self) -> None:
        self._data.clear()
        self.applied_count = 0

    def snapshot(self) -> dict[str, Any]:
        """Copy of the full KV map (also the InstallSnapshot payload)."""
        return dict(self._data)

    def restore(self, data: dict[str, Any]) -> None:
        """Adopt a :meth:`snapshot` image (copied; the image stays intact)."""
        self._data = dict(data)

    def read(self, command: Any) -> Any:
        """Serve a ``get`` against current state without applying it.

        Unlike :meth:`apply` this leaves ``applied_count`` untouched —
        fast-path reads are not log entries and must not perturb replica
        bookkeeping (replicas would diverge on a counter the snapshot
        carries nowhere).
        """
        if not isinstance(command, KVCommand) or command.op != "get":
            raise ValueError(f"read path only serves 'get', got {command!r}")
        return self._data.get(command.key)

    # -- local inspection (not linearizable; tests/examples only) ---------- #

    def peek(self, key: str) -> Any:
        return self._data.get(key)

    def __len__(self) -> int:
        return len(self._data)
