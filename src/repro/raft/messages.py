"""Raft RPC payloads.

Dataclasses (frozen, slotted) mirroring etcd's raft message set restricted
to what the paper's experiments exercise: heartbeats (as a dedicated
lightweight pair, like etcd's ``MsgHeartbeat``/``MsgHeartbeatResp``), the
AppendEntries replication pair, the two vote pairs (pre-vote and vote), and
the client RPCs of the KV service.

Heartbeats carry the optional Dynatune metadata of §III-C; the baseline
Raft policy leaves those fields ``None``, so the two systems exchange
byte-compatible traffic apart from the metadata — matching the paper's "no
additional communication overheads" framing.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.dynatune.metadata import HeartbeatMeta, HeartbeatResponseMeta
from repro.raft.log import LogEntry

__all__ = [
    "PreVoteRequest",
    "PreVoteResponse",
    "VoteRequest",
    "VoteResponse",
    "AppendEntriesRequest",
    "AppendEntriesResponse",
    "HeartbeatRequest",
    "HeartbeatResponse",
    "ClientRequest",
    "ClientResponse",
]


@dataclasses.dataclass(slots=True, frozen=True)
class PreVoteRequest:
    """Pre-vote poll: *would* you vote for me at ``term``?

    ``term`` is the candidate's ``currentTerm + 1``; the candidate has not
    actually moved to that term yet, and receivers never adopt it.
    """

    term: int
    candidate: str
    last_log_index: int
    last_log_term: int


@dataclasses.dataclass(slots=True, frozen=True)
class PreVoteResponse:
    term: int  # echoes the proposed term on grant; voter's term on reject
    voter: str
    granted: bool


@dataclasses.dataclass(slots=True, frozen=True)
class VoteRequest:
    term: int
    candidate: str
    last_log_index: int
    last_log_term: int


@dataclasses.dataclass(slots=True, frozen=True)
class VoteResponse:
    term: int
    voter: str
    granted: bool


@dataclasses.dataclass(slots=True, frozen=True)
class AppendEntriesRequest:
    term: int
    leader: str
    prev_log_index: int
    prev_log_term: int
    entries: tuple[LogEntry, ...]
    leader_commit: int


@dataclasses.dataclass(slots=True, frozen=True)
class AppendEntriesResponse:
    term: int
    follower: str
    success: bool
    match_index: int
    conflict_index: int | None = None


@dataclasses.dataclass(slots=True, frozen=True)
class HeartbeatRequest:
    """Leader liveness beacon (etcd ``MsgHeartbeat``).

    ``commit`` is clamped by the sender to the follower's match index so a
    follower can never be told to commit entries it might not hold.
    """

    term: int
    leader: str
    commit: int
    meta: HeartbeatMeta | None = None


@dataclasses.dataclass(slots=True, frozen=True)
class HeartbeatResponse:
    term: int
    follower: str
    last_log_index: int
    meta: HeartbeatResponseMeta | None = None


@dataclasses.dataclass(slots=True, frozen=True)
class ClientRequest:
    """A state-machine command submitted by a client process."""

    request_id: int
    command: Any


@dataclasses.dataclass(slots=True, frozen=True)
class ClientResponse:
    request_id: int
    ok: bool
    result: Any = None
    leader_hint: str | None = None
