"""Raft RPC payloads.

The *hot* message pairs — heartbeats (etcd ``MsgHeartbeat``/
``MsgHeartbeatResp``) and AppendEntries — are hand-written slotted classes
with plain ``__init__`` bodies: every heartbeat tick and every replication
response constructs one, and a frozen dataclass pays ~4× the construction
cost (one ``object.__setattr__`` per field) for immutability the simulator
enforces by convention anyway (payloads are shared between sender and
in-process receiver and must never be mutated; leaders re-send *the same*
cached heartbeat object to a follower while term and commit are stable).

The cold payloads — the two vote pairs and the client RPCs — stay frozen
slotted dataclasses: they are constructed a handful of times per election
or per client op, and the extra safety is free there.

Heartbeats carry the optional Dynatune metadata of §III-C; the baseline
Raft policy leaves those fields ``None``, so the two systems exchange
byte-compatible traffic apart from the metadata — matching the paper's "no
additional communication overheads" framing.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.dynatune.metadata import HeartbeatMeta, HeartbeatResponseMeta
from repro.raft.log import LogEntry

__all__ = [
    "PreVoteRequest",
    "PreVoteResponse",
    "VoteRequest",
    "VoteResponse",
    "AppendEntriesRequest",
    "AppendEntriesResponse",
    "InstallSnapshotRequest",
    "InstallSnapshotResponse",
    "HeartbeatRequest",
    "HeartbeatResponse",
    "ReadIndexProbe",
    "ReadIndexAck",
    "ClientRequest",
    "ClientReadRequest",
    "ClientResponse",
]


@dataclasses.dataclass(slots=True, frozen=True)
class PreVoteRequest:
    """Pre-vote poll: *would* you vote for me at ``term``?

    ``term`` is the candidate's ``currentTerm + 1``; the candidate has not
    actually moved to that term yet, and receivers never adopt it.
    """

    term: int
    candidate: str
    last_log_index: int
    last_log_term: int


@dataclasses.dataclass(slots=True, frozen=True)
class PreVoteResponse:
    term: int  # echoes the proposed term on grant; voter's term on reject
    voter: str
    granted: bool


@dataclasses.dataclass(slots=True, frozen=True)
class VoteRequest:
    term: int
    candidate: str
    last_log_index: int
    last_log_term: int


@dataclasses.dataclass(slots=True, frozen=True)
class VoteResponse:
    term: int
    voter: str
    granted: bool


class AppendEntriesRequest:
    """Replication RPC (hot path — see module docstring).  Immutable by
    convention."""

    __slots__ = (
        "term",
        "leader",
        "prev_log_index",
        "prev_log_term",
        "entries",
        "leader_commit",
    )

    def __init__(
        self,
        term: int,
        leader: str,
        prev_log_index: int,
        prev_log_term: int,
        entries: tuple[LogEntry, ...],
        leader_commit: int,
    ) -> None:
        self.term = term
        self.leader = leader
        self.prev_log_index = prev_log_index
        self.prev_log_term = prev_log_term
        self.entries = entries
        self.leader_commit = leader_commit

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AppendEntriesRequest(term={self.term}, leader={self.leader!r}, "
            f"prev=({self.prev_log_index},{self.prev_log_term}), "
            f"n_entries={len(self.entries)}, commit={self.leader_commit})"
        )


class AppendEntriesResponse:
    """Replication ack (hot path).  Immutable by convention.

    ``prev_log_index`` echoes the request's ``prev_log_index`` so a
    pipelining leader can tell which in-flight append a *rejection*
    answers: once it has backed ``next_index`` off below an echoed prev,
    later rejections of the same doomed window are stale and must not
    back off again (``None`` only from pre-echo senders; treated as
    "unknown, apply the rejection").
    """

    __slots__ = (
        "term",
        "follower",
        "success",
        "match_index",
        "conflict_index",
        "prev_log_index",
    )

    def __init__(
        self,
        term: int,
        follower: str,
        success: bool,
        match_index: int,
        conflict_index: int | None = None,
        prev_log_index: int | None = None,
    ) -> None:
        self.term = term
        self.follower = follower
        self.success = success
        self.match_index = match_index
        self.conflict_index = conflict_index
        self.prev_log_index = prev_log_index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AppendEntriesResponse(term={self.term}, follower={self.follower!r}, "
            f"success={self.success}, match={self.match_index}, "
            f"conflict={self.conflict_index}, prev={self.prev_log_index})"
        )


class InstallSnapshotRequest:
    """Snapshot transfer (§7 of the Raft paper; etcd ``MsgSnap``).

    Sent when a follower's ``next_index`` has fallen below the leader's
    ``log.first_index`` — the entries it needs are compacted away, so the
    leader ships its durable state-machine snapshot instead.  Warm path,
    not hot (one per far-behind follower per catch-up), but slotted like
    the other replication payloads: a recovering follower can trigger a
    burst of them.  Immutable by convention — ``data`` is the leader's
    snapshot image and must never be mutated by the receiver (it
    ``restore()``\\ s a copy).

    ``config`` carries the cluster configuration as of the snapshot index
    (``None`` only from membership-unaware senders): a learner that joins
    through the snapshot path must learn the membership the discarded
    prefix established, not just the state-machine image.
    """

    __slots__ = (
        "term",
        "leader",
        "last_included_index",
        "last_included_term",
        "data",
        "config",
    )

    def __init__(
        self,
        term: int,
        leader: str,
        last_included_index: int,
        last_included_term: int,
        data: Any,
        config: Any = None,
    ) -> None:
        self.term = term
        self.leader = leader
        self.last_included_index = last_included_index
        self.last_included_term = last_included_term
        self.data = data
        self.config = config

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InstallSnapshotRequest(term={self.term}, leader={self.leader!r}, "
            f"last=({self.last_included_index},{self.last_included_term}))"
        )


class InstallSnapshotResponse:
    """Snapshot transfer ack.  ``last_included_index`` echoes the installed
    (or already-covered) snapshot frontier so the leader can advance
    ``match_index``/``next_index`` past the transfer.  Immutable by
    convention."""

    __slots__ = ("term", "follower", "last_included_index")

    def __init__(self, term: int, follower: str, last_included_index: int) -> None:
        self.term = term
        self.follower = follower
        self.last_included_index = last_included_index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InstallSnapshotResponse(term={self.term}, "
            f"follower={self.follower!r}, last={self.last_included_index})"
        )


class HeartbeatRequest:
    """Leader liveness beacon (etcd ``MsgHeartbeat``; hot path).

    ``commit`` is clamped by the sender to the follower's match index so a
    follower can never be told to commit entries it might not hold.

    Immutable by convention: leaders cache and re-send the same instance
    to a follower while ``(term, commit)`` are unchanged and no metadata
    is attached.
    """

    __slots__ = ("term", "leader", "commit", "meta")

    def __init__(
        self,
        term: int,
        leader: str,
        commit: int,
        meta: HeartbeatMeta | None = None,
    ) -> None:
        self.term = term
        self.leader = leader
        self.commit = commit
        self.meta = meta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeartbeatRequest(term={self.term}, leader={self.leader!r}, "
            f"commit={self.commit}, meta={self.meta!r})"
        )


class HeartbeatResponse:
    """Follower liveness ack (etcd ``MsgHeartbeatResp``; hot path).
    Immutable by convention."""

    __slots__ = ("term", "follower", "last_log_index", "meta")

    def __init__(
        self,
        term: int,
        follower: str,
        last_log_index: int,
        meta: HeartbeatResponseMeta | None = None,
    ) -> None:
        self.term = term
        self.follower = follower
        self.last_log_index = last_log_index
        self.meta = meta

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"HeartbeatResponse(term={self.term}, follower={self.follower!r}, "
            f"last_log_index={self.last_log_index}, meta={self.meta!r})"
        )


class ReadIndexProbe:
    """Leader → follower leadership confirmation for a ReadIndex round.

    A batch of registered reads is served from the leader's state machine
    *without a log entry* once a quorum acks the probe (etcd's
    ``MsgReadIndex`` round).  The probe must be broadcast **after** the
    reads register — an ack only proves the follower had not adopted a
    newer term when it answered, so acks to earlier probes prove nothing
    about reads registered since.  ``seq`` ties acks to their round.
    Warm path (one broadcast per read batch), slotted like the other
    replication payloads; immutable by convention.
    """

    __slots__ = ("term", "leader", "seq")

    def __init__(self, term: int, leader: str, seq: int) -> None:
        self.term = term
        self.leader = leader
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReadIndexProbe(term={self.term}, leader={self.leader!r}, seq={self.seq})"


class ReadIndexAck:
    """Follower → leader ReadIndex confirmation.  ``term`` is the
    follower's term at answer time: the leader counts the ack toward the
    quorum only when it equals its own — a higher term deposes it
    instead.  Immutable by convention."""

    __slots__ = ("term", "follower", "seq")

    def __init__(self, term: int, follower: str, seq: int) -> None:
        self.term = term
        self.follower = follower
        self.seq = seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ReadIndexAck(term={self.term}, follower={self.follower!r}, seq={self.seq})"


@dataclasses.dataclass(slots=True, frozen=True)
class ClientRequest:
    """A state-machine command submitted by a client process."""

    request_id: int
    command: Any


@dataclasses.dataclass(slots=True, frozen=True)
class ClientReadRequest:
    """A read-only command a client asks to be served via the leader's
    read fast path (ReadIndex quorum round, or the leader lease when
    enabled) instead of log serialization.  Answered with an ordinary
    :class:`ClientResponse`; a non-leader redirects exactly like a write.
    """

    request_id: int
    command: Any


@dataclasses.dataclass(slots=True, frozen=True)
class ClientResponse:
    request_id: int
    ok: bool
    result: Any = None
    leader_hint: str | None = None
