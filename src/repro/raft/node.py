"""The Raft node: the complete protocol state machine.

This is the etcd-raft substitute the Dynatune layer plugs into.  It
implements, per the Raft paper and etcd's extensions the paper relies on:

* leader election with **randomized timeouts** drawn uniformly from
  ``[Et, 2·Et)`` of the policy-supplied base timeout (etcd's policy; the
  paper's measured randomizedTimeout means — 1454 ms for Et = 1000 ms,
  152 ms for a tuned Et ≈ 100 ms — pin this distribution down);
* the **pre-vote** phase (§II-A): a node that suspects the leader polls the
  cluster *without* incrementing its term, and reverts to follower if the
  supposedly-dead leader speaks up mid-poll — the exact mechanism behind
  Fig. 6b's "false detection but no OTS" result;
* **lease-protected voting** (etcd ``CheckQuorum``): a server that heard
  from a live leader within its election timeout rejects (pre-)votes, so a
  single confused node cannot depose a healthy leader;
* **leader quorum check**: a leader that loses contact with a majority
  steps down after one election timeout;
* log replication with conflict back-off, majority commit restricted to
  current-term entries (§5.4.2), and in-order application to the state
  machine;
* **per-follower heartbeat timers** — in stock Raft these all share one
  interval; Dynatune requires one interval per leader-follower path
  (§III-B), so the timer structure is per peer from the start.

Election parameters are never read from constants: every arm of the
election timer and every heartbeat scheduling decision asks the node's
:class:`~repro.dynatune.policy.TuningPolicy`.  Swapping the policy object
is the *only* difference between the paper's Raft, Raft-Low, Fix-K and
Dynatune systems, mirroring the paper's claim that Dynatune leaves Raft's
mechanisms untouched.

Hot-path structure (the protocol layer dominates large-cluster wall time):

* commit advancement is **incremental** — a
  :class:`~repro.raft.commit.CommitTracker` replaces the classic
  sort-all-match-indices scan, making each AppendEntries response O(1)
  amortized regardless of cluster size;
* the heartbeat exchange is **allocation-light** — request/response
  objects are cached per peer and re-sent while ``(term, commit)`` /
  ``(term, last_log_index)`` are stable and no tuning metadata rides
  along (the baseline-Raft steady state allocates no message objects at
  all);
* message dispatch is a type-indexed table rather than an isinstance
  cascade, and election randomization draws come from a buffered block of
  the node's RNG stream (bit-identical values, a fraction of the numpy
  per-call overhead).
"""

from __future__ import annotations

import functools
import math
from typing import Any, Callable, ClassVar

import numpy as np

from repro.dynatune.policy import TuningPolicy
from repro.raft.commit import CommitTracker
from repro.raft.log import RaftLog, Snapshot
from repro.raft.membership import ClusterConfig, ConfigChange
from repro.raft.messages import (
    AppendEntriesRequest,
    AppendEntriesResponse,
    ClientReadRequest,
    ClientRequest,
    ClientResponse,
    HeartbeatRequest,
    HeartbeatResponse,
    InstallSnapshotRequest,
    InstallSnapshotResponse,
    PreVoteRequest,
    PreVoteResponse,
    ReadIndexAck,
    ReadIndexProbe,
    VoteRequest,
    VoteResponse,
)
from repro.raft.metrics import NodeMetrics
from repro.raft.state_machine import StateMachine
from repro.raft.types import RaftConfig, Role
from repro.sim.clock import NodeClock
from repro.sim.loop import EventLoop
from repro.sim.process import Process, ProcessState
from repro.sim.tracing import TraceLog
from repro.storage.base import DiskCorruptionError, RecoveredState, Storage
from repro.storage.ideal import IdealStorage

__all__ = ["RaftNode"]

_NEG_INF = -math.inf

#: Uniform draws fetched from the node's RNG per block (see ``_rand``).
_RAND_BLOCK = 256

#: Module-level alias: ``deliver`` checks this once per delivered message.
_RUNNING = ProcessState.RUNNING


class _ReadBatch:
    """One ReadIndex round: the reads it covers and its quorum progress.

    ``read_index`` is frozen at registration time (max of the leader's
    commit index and its term-start no-op); the batch serves once a
    quorum has acked the round's probe *and* the commit index has
    reached ``read_index``.
    """

    __slots__ = ("seq", "read_index", "reads", "acks", "confirmed")

    def __init__(
        self, seq: int, read_index: int, reads: list[tuple[str, int, Any]]
    ) -> None:
        self.seq = seq
        self.read_index = read_index
        self.reads = reads
        self.acks: set[str] = set()
        self.confirmed = False


class RaftNode(Process):
    """One Raft server.

    Args:
        loop: shared event loop.
        name: unique node name.
        peers: names of **all** cluster members (including this node).
        network: fabric used for sends (anything with ``send()``; the fast
            ``transmit()`` path is used when available).
        config: protocol configuration.
        policy: election-parameter policy (Static / Dynatune / Fix-K).
        state_machine: the replicated application (e.g. ``KVStore``).
        trace: shared structured log.
        rng: this node's random stream (election randomization).
        cost_model: optional CPU cost accounting (``charge(node, kind)``).
        initial_config: starting membership.  Defaults to "every peer is a
            voter" (the static-cluster behaviour).  A node spawned into a
            running cluster passes a learner-only config — it learns the
            real membership from the leader's snapshot/append stream.
        storage: durable-storage backend every hard-state mutation flows
            through.  Defaults to :class:`~repro.storage.ideal.
            IdealStorage` — the idealized always-durable disk, bit-identical
            to the pre-storage behaviour.
        clock: this node's local clock.  Defaults to an identity
            :class:`~repro.sim.clock.NodeClock` (no skew, no drift) —
            bit-identical to reading the loop clock directly.  All
            protocol time reads and timer durations go through it, so
            injected skew/drift affects this node's *view* of time while
            the simulation clock stays the single physical truth.
    """

    def __init__(
        self,
        loop: EventLoop,
        name: str,
        peers: list[str],
        network: Any,
        config: RaftConfig,
        policy: TuningPolicy,
        state_machine: StateMachine,
        trace: TraceLog,
        rng: np.random.Generator,
        cost_model: Any = None,
        initial_config: ClusterConfig | None = None,
        storage: Storage | None = None,
        clock: NodeClock | None = None,
    ) -> None:
        super().__init__(loop, name, trace)
        #: Local clock: every protocol time read and timer duration goes
        #: through it (repolint's ``node-clock-hygiene`` keeps it that way).
        self.clock: NodeClock = clock if clock is not None else NodeClock(loop)
        # Hot-path caches: the local-time read and the local→sim duration
        # conversion are bound methods, one attribute load per use.
        self._now: Callable[[], float] = self.clock.now
        self._clock_scale: Callable[[float], float] = self.clock.scale_duration
        if name not in peers:
            raise ValueError(f"peers must include the node itself ({name!r})")
        if initial_config is None:
            initial_config = ClusterConfig(voters=tuple(peers))
        # Membership is replicated state (one-at-a-time config changes,
        # §4.1 of the Raft dissertation).  ``_base_config`` is the
        # configuration at the log's compaction frontier; ``_config_log``
        # mirrors every config entry in the *retained* log, in index
        # order.  The effective membership is the newest of the two —
        # applied-at-append, not at commit.  ``peers`` / ``cluster_size``
        # / ``quorum`` are caches derived from it (see
        # ``_refresh_membership``), no longer construction-time constants.
        self._base_config = initial_config
        self._config_log: list[tuple[int, ConfigChange]] = []
        self.peers: list[str] = []
        self._voter_peers: list[str] = []
        self._voters: frozenset[str] = frozenset()
        self.cluster_size = 0
        self.quorum = 1
        self._hb_timer_names: dict[str, str] = {}
        self._hb_timer_cbs: dict[str, Any] = {}
        self._refresh_membership()
        self.network = network
        self.config = config
        self.policy = policy
        self.state_machine = state_machine
        self.rng = rng
        self.cost_model = cost_model
        self.metrics = NodeMetrics()

        # Persistent state (survives crash-recovery).
        self.current_term = 0
        self.voted_for: str | None = None
        self.log = RaftLog()
        #: Durable snapshot (§7): the state-machine image crash-recovery
        #: restores and InstallSnapshot ships.  ``None`` until the first
        #: compaction (or installed snapshot); always at or ahead of the
        #: log's compaction frontier.
        self.snapshot: Snapshot | None = None
        #: Storage backend (§5.2): every write to the persistent state
        #: above is mirrored here, and every externalizing reply is
        #: preceded by a ``_sync()`` barrier.
        self.storage: Storage = storage if storage is not None else IdealStorage()
        self.storage.attach(self)
        self.log.journal = self.storage.wal

        # Volatile state.
        self.role = Role.FOLLOWER
        self.leader_id: str | None = None
        self.commit_index = 0
        self.last_applied = 0
        self.last_leader_contact = _NEG_INF

        # Candidate state.
        self._prevotes: set[str] = set()
        self._votes: set[str] = set()

        # Leader state.
        self.next_index: dict[str, int] = {}
        self.match_index: dict[str, int] = {}
        self._last_peer_response: dict[str, float] = {}
        self._pending_client: dict[int, tuple[str, int]] = {}  # log idx -> (client, req)
        # Outstanding AppendEntries per follower (etcd's inflight window):
        # without a cap, every response to a still-behind follower would
        # spawn a fresh full-window resend, and under sustained load those
        # send/response chains accumulate without bound.
        self._inflight_appends: dict[str, int] = {}
        self._last_append_response: dict[str, float] = {}
        #: peer -> send time of an unacknowledged InstallSnapshot transfer.
        self._snapshot_inflight: dict[str, float] = {}
        # Incrementally maintained quorum-match frontier (reset per reign).
        self._commit = CommitTracker(self._acks_needed())

        self._election_timer = self.timers.timer("election", self._on_election_timeout)
        self._started = False

        # -- hot-path caches (all derived, none carries protocol state) --- #
        # Channel names and the network's envelope-free transmit are
        # constant for the node's lifetime.
        self._rpc_channel: str = config.rpc_channel
        self._hb_channel: str = policy.heartbeat_channel
        transmit = getattr(network, "transmit", None)
        if transmit is None and network is not None:
            transmit = lambda src, dst, payload, channel, size: network.send(  # noqa: E731
                src, dst, payload, channel=channel, size_bytes=size
            )
        self._transmit: Callable[..., Any] = transmit
        # Cached outbound heartbeat per peer and the one cached response,
        # valid while their fields are unchanged and no metadata rides
        # along (messages are immutable by convention, so re-sending the
        # same object is safe even with copies still in flight).
        self._hb_cache: dict[str, HeartbeatRequest] = {}
        self._hb_resp_cache: HeartbeatResponse | None = None
        # Buffered uniform draws (bit-identical to per-call rng.random()).
        self._rand_buf: list[float] | None = None
        self._rand_pos = 0
        # Frozen-config compaction knobs, read after every apply batch.
        self._compaction_threshold: int = config.compaction_threshold
        self._compaction_margin: int = config.compaction_retain_margin
        # Frozen-config membership knobs.
        self._auto_promote: bool = config.auto_promote_learners
        self._learner_margin: int = config.learner_catchup_margin
        # Frozen-config flags read on every beat.
        self._hb_consolidated: bool = config.consolidated_heartbeat_timer
        self._hb_stagger: bool = config.heartbeat_phase_stagger
        self._hb_jitter_ms: float = config.heartbeat_timer_jitter_ms
        self._hb_catchup: bool = config.heartbeat_response_catchup
        # Per-peer heartbeat Timer objects (mirrors the TimerService entry;
        # cleared on step-down together with the service's).
        self._hb_timers: dict[str, Any] = {}
        # -- client-serving fast path (all knobs default off) ------------- #
        # Frozen-config knobs, read per client op / per append.
        self._batching: bool = config.client_batching
        self._batch_max: int = config.client_batch_max
        self._batch_window_ms: float = config.client_batch_window_ms
        self._pipelining: bool = config.replication_pipelining
        self._max_inflight: int = config.max_inflight_appends
        self._lease_reads: bool = config.lease_reads
        self._lease_margin_ms: float = config.lease_drift_margin_ms
        #: Buffered client writes awaiting one batched log append.
        self._batch_buf: list[tuple[str, int, Any]] = []
        #: Reads waiting for the *next* ReadIndex round: a probe must
        #: broadcast after its reads register, so reads arriving while a
        #: round is in flight queue here.
        self._read_buf: list[tuple[str, int, Any]] = []
        #: The in-flight ReadIndex round, if any.
        self._read_round: _ReadBatch | None = None
        self._read_seq = 0
        #: Followers whose append pipeline collapsed to one-probe-at-a-time
        #: after a rejection (replication_pipelining only).
        self._append_probe: set[str] = set()
        #: Log index of this term's no-op entry while leader (0 otherwise);
        #: the read fast path gates on it being committed.
        self._term_start_index = 0

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Arm the initial election timer; call once after wiring."""
        if self._started:
            raise RuntimeError(f"node {self.name!r} already started")
        self._started = True
        self._arm_election_timer()

    def on_recover(self) -> None:
        """Crash-recovery: volatile state resets; persistent state — the
        term/vote pair, the log, and the durable snapshot — is rebuilt
        from :attr:`storage` (for the ideal backend that hands the live
        objects straight back; for the simulated disk it replays the
        synced WAL region, possibly minus a torn tail).

        Without a snapshot the state machine restarts empty and the whole
        log replays as the commit index re-advances (the pre-compaction
        behaviour).  With one, recovery is *history-independent*: the
        machine restores the snapshot image and only the retained tail
        beyond it replays — entries below the log's first index no longer
        exist, so this path is what makes compaction crash-safe.
        """
        was_leader = self.role is Role.LEADER
        try:
            durable = self.storage.recover()
        except DiskCorruptionError as exc:
            # Acked state the disk can no longer reproduce: refuse to
            # rejoin and stay down (etcd's strict WAL policy) — silently
            # truncating here could un-commit acknowledged entries.
            self.trace.record(
                self._now(), self.name, "disk_corruption", error=str(exc)
            )
            self.crash()
            return
        self._restore_durable(durable)
        if was_leader:
            # The crash skipped _teardown_leadership: flush the leader
            # half of the policy state (lease/report bookkeeping) so no
            # pre-crash leadership leaks into the new incarnation.
            self.policy.on_step_down(self._now())
        self.role = Role.FOLLOWER
        self.leader_id = None
        self.last_leader_contact = _NEG_INF
        self._prevotes = set()
        self._votes = set()
        self.next_index = {}
        self.match_index = {}
        self._last_peer_response = {}
        self._pending_client = {}
        self._inflight_appends = {}
        self._last_append_response = {}
        self._snapshot_inflight = {}
        self._hb_cache = {}
        self._hb_resp_cache = None
        # Drop cached heartbeat-timer handles: they belong to the dead
        # incarnation (crash cancelled them) and must not be re-armed.
        self._hb_timers = {}
        self._batch_buf = []
        self._read_buf = []
        self._read_round = None
        self._read_seq = 0
        self._append_probe = set()
        self._term_start_index = 0
        self.state_machine.reset()
        snap = self.snapshot
        if snap is not None:
            # The snapshot only ever covers applied (hence committed)
            # entries, so its index is a sound post-restart commit floor —
            # the same initialisation etcd performs from its snapshot file.
            self.state_machine.restore(snap.data)
            self.commit_index = snap.last_included_index
            self.last_applied = snap.last_included_index
        else:
            self.commit_index = 0
            self.last_applied = 0
        # Rebuild the membership record from durable state alone: the
        # committed configuration comes from the snapshot, then every
        # config entry still in the (durable) log re-applies on top —
        # Raft's "use the latest configuration in the log" rule, so an
        # uncommitted config entry that survived the crash stays in force.
        if snap is not None and snap.config is not None:
            self._base_config = snap.config
            floor = snap.last_included_index
        else:
            floor = self.log.last_included_index
        self._config_log = [
            (entry.index, entry.command)
            for entry in self.log.entries()
            if entry.index > floor and entry.command.__class__ is ConfigChange
        ]
        self._refresh_membership()
        self._commit = CommitTracker(self._acks_needed())
        self.policy.on_leader_change(None, self._now())
        self._arm_election_timer()
        if self.storage.kind != "ideal":
            # Traced only for fallible backends so the ideal default stays
            # byte-identical to the pre-storage goldens.
            if durable.wal_truncated:
                self.trace.record(
                    self._now(),
                    self.name,
                    "wal_truncated",
                    records=durable.wal_truncated,
                )
            self.trace.record(
                self._now(),
                self.name,
                "disk_recover",
                term=self.current_term,
                last_index=self.log.last_index,
                snapshot_index=(
                    snap.last_included_index if snap is not None else 0
                ),
                truncated=durable.wal_truncated,
                replayed=durable.replayed,
            )

    def _restore_durable(self, durable: RecoveredState) -> None:
        """Adopt what the disk actually holds (the designated recovery
        mutator for the persistent fields — see repolint's
        ``durable-write-hygiene``).

        For the ideal backend ``durable`` aliases the live objects, so
        every assignment is a no-op.  For a fallible disk the log/snapshot
        pair may be *older* than the pre-crash live state (unsynced tail
        lost) — and the snapshot may run ahead of the log frontier when a
        crash ate the log reset that followed an InstallSnapshot; the
        image covers everything the lost reset would have dropped, so
        recovery adopts its frontier.
        """
        self.current_term = durable.term
        self.voted_for = durable.voted_for
        self.log = durable.log
        self.snapshot = durable.snapshot
        snap = durable.snapshot
        if snap is not None and self.log.last_index < snap.last_included_index:
            self.log.install_snapshot(
                snap.last_included_index, snap.last_included_term
            )

    def crash(self) -> None:
        """Crash override: after the process dies, tell storage — the
        unsynced WAL tail is lost there (and disk faults may additionally
        tear the tail record or flip a durable bit)."""
        if self._state in (ProcessState.CRASHED, ProcessState.STOPPED):
            return  # mirror Process.crash's no-op states exactly
        super().crash()
        self.storage.on_crash()

    def _sync(self) -> bool:
        """The ack-after-sync barrier (§5.2): flush pending durable writes
        before anything externalizes them.

        ``False`` means the node crashed (or fail-stopped) at the persist
        point — the caller must return immediately without sending the
        response/grant/ack the barrier was protecting.
        """
        return self.storage.sync()

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def is_leader(self) -> bool:
        return self.role is Role.LEADER and self.alive

    @property
    def current_randomized_timeout_ms(self) -> float:
        """The currently armed randomizedTimeout (Fig. 6's sampled series)."""
        return self.metrics.current_randomized_timeout_ms

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"RaftNode({self.name!r}, {self.role.value}, term={self.current_term}, "
            f"commit={self.commit_index})"
        )

    # ------------------------------------------------------------------ #
    # membership (one-at-a-time configuration changes, dissertation §4.1)
    # ------------------------------------------------------------------ #

    @property
    def membership(self) -> ClusterConfig:
        """The configuration currently in force (applied-at-append)."""
        return self._membership

    @property
    def is_voter(self) -> bool:
        return self.name in self._voters

    def _refresh_membership(self) -> None:
        """Recompute every membership-derived cache from the config record.

        The effective configuration is the newest config entry in the
        retained log, falling back to the base (frontier) config.  Stale
        heartbeat-timer name/callback cache entries for departed peers are
        deliberately kept — they are tiny, and keeping the dicts
        append-only means the hot per-beat lookups never miss.
        """
        stack = self._config_log
        cfg: ClusterConfig = stack[-1][1].config if stack else self._base_config
        self._membership = cfg
        name = self.name
        self.peers = [p for p in cfg.members if p != name]
        self._voters = frozenset(cfg.voters)
        self._voter_peers = [p for p in cfg.voters if p != name]
        self.cluster_size = len(cfg.voters)
        self.quorum = cfg.quorum
        names = self._hb_timer_names
        cbs = self._hb_timer_cbs
        for peer in self.peers:
            if peer not in names:
                names[peer] = f"hb/{peer}"
                cbs[peer] = functools.partial(self._heartbeat_tick, peer)

    def _acks_needed(self) -> int:
        """Follower acks required to commit: quorum minus the leader's own
        log — which only counts while the leader is itself a voter (it is
        not, between appending its own removal and that entry committing)."""
        return self.quorum - (1 if self.name in self._voters else 0)

    def _config_at(self, index: int) -> ClusterConfig:
        """The configuration in force at log position ``index``."""
        cfg = self._base_config
        for idx, change in self._config_log:
            if idx > index:
                break
            cfg = change.config
        return cfg

    def config_change_in_flight(self) -> bool:
        """True while a config entry is appended but not yet committed."""
        return bool(self._config_log) and self._config_log[-1][0] > self.commit_index

    def propose_config_change(self, kind: str, node: str) -> bool:
        """Leader API: append one membership change (``add_learner`` /
        ``promote`` / ``remove``) as a log entry.

        Applied-at-append: the leader runs under the new configuration the
        moment the entry is in its log.  At most one change may be in
        flight — a second proposal is rejected until the first commits,
        which is what makes one-at-a-time changes safe without joint
        consensus.

        Returns:
            True if the change was appended; False if this node is not the
            leader, a change is already in flight, or the change is
            invalid for the current membership (double add, unknown
            removal target, promoting a non-learner).
        """
        if self.role is not Role.LEADER:
            return False
        now = self._now()
        reason: str | None = None
        new_cfg: ClusterConfig | None = None
        if self.config_change_in_flight():
            reason = "config change already in flight"
        else:
            try:
                current = self._membership
                if kind == "add_learner":
                    new_cfg = current.with_learner(node)
                elif kind == "promote":
                    new_cfg = current.with_promoted(node)
                elif kind == "remove":
                    new_cfg = current.without(node)
                else:
                    reason = f"unknown config-change kind {kind!r}"
            except ValueError as exc:
                reason = str(exc)
        if reason is not None or new_cfg is None:
            self.metrics.config_changes_rejected += 1
            self.trace.record(
                now,
                self.name,
                "config_rejected",
                change=kind,
                target=node,
                reason=reason,
                term=self.current_term,
            )
            return False
        change = ConfigChange(kind=kind, node=node, config=new_cfg)
        old_cfg = self._membership
        entry = self.log.append_new(self.current_term, change)
        self._config_log.append((entry.index, change))
        self._refresh_membership()
        self.metrics.config_changes_appended += 1
        self.trace.record(
            now,
            self.name,
            "config_append",
            index=entry.index,
            term=entry.term,
            change=kind,
            target=node,
            voters=list(new_cfg.voters),
            learners=list(new_cfg.learners),
            prev_voters=list(old_cfg.voters),
        )
        if not self._sync():
            return False  # crashed persisting the config entry
        self._apply_membership_change(old_cfg, new_cfg)
        if self.role is Role.LEADER:  # may have stepped down committing a self-remove
            for peer in self.peers:
                self._send_append(peer)
        return True

    def _pop_stale_config_records(self) -> bool:
        """Drop config records whose log entries no longer exist (conflict
        truncation or a wholesale snapshot install).  Records at or below
        the compaction frontier are committed and stay by construction."""
        log = self.log
        stack = self._config_log
        changed = False
        while stack:
            idx, change = stack[-1]
            if idx <= log.last_included_index:
                break
            if idx <= log.last_index and log.entry_at(idx).command is change:
                break
            stack.pop()
            changed = True
        return changed

    def _reconcile_membership(self, entries: tuple[Any, ...]) -> None:
        """Follower-side applied-at-append: sync the config record with the
        log after an AppendEntries batch (new config entries adopted, a
        truncated suffix's records dropped)."""
        log = self.log
        stack = self._config_log
        changed = self._pop_stale_config_records()
        top = stack[-1][0] if stack else 0
        base = log.last_included_index
        for entry in entries:
            cmd = entry.command
            if (
                cmd is not None
                and cmd.__class__ is ConfigChange
                and entry.index > top
                and entry.index > base
                and entry.index <= log.last_index
                and log.entry_at(entry.index).command is cmd
            ):
                stack.append((entry.index, cmd))
                top = entry.index
                changed = True
        if changed:
            old = self._membership
            self._refresh_membership()
            self._apply_membership_change(old, self._membership)

    def _rebase_config(self, upto: int, config: ClusterConfig | None) -> None:
        """Fold config records at or below ``upto`` into the base config
        (compaction / snapshot install moved the frontier there).  With an
        explicit ``config`` (from an installed snapshot) it becomes the
        new base; otherwise the newest folded record does."""
        stack = self._config_log
        while stack and stack[0][0] <= upto:
            folded = stack.pop(0)
            if config is None:
                self._base_config = folded[1].config
        if config is not None:
            self._base_config = config

    def _apply_membership_change(
        self, old: ClusterConfig, new: ClusterConfig
    ) -> None:
        """React to the effective configuration moving ``old → new``
        (caches are already refreshed; this handles the side effects)."""
        if old == new:
            return
        name = self.name
        old_members = set(old.members)
        new_members = set(new.members)
        removed = old_members - new_members
        if removed:
            hook = getattr(self.policy, "on_peer_removed", None)
            if hook is not None:
                for peer in removed:
                    if peer != name:
                        hook(peer)
        if name in new.voters and name not in old.voters:
            self.metrics.promoted_to_voter += 1
        if self.role is Role.LEADER:
            now = self._now()
            for peer in sorted(new_members - old_members):
                if peer == name:
                    continue
                self.next_index[peer] = self.log.last_index + 1
                self.match_index[peer] = 0
                self._last_peer_response[peer] = now
                self._inflight_appends[peer] = 0
                self._last_append_response[peer] = now
                self._send_append(peer)
                self._schedule_heartbeat(peer, first=True)
            for peer in removed:
                if peer == name:
                    continue
                self.timers.drop(self._hb_timer_names.get(peer, f"hb/{peer}"))
                self._hb_timers.pop(peer, None)
                self._hb_cache.pop(peer, None)
                self.next_index.pop(peer, None)
                self.match_index.pop(peer, None)
                self._last_peer_response.pop(peer, None)
                self._inflight_appends.pop(peer, None)
                self._last_append_response.pop(peer, None)
                self._snapshot_inflight.pop(peer, None)
            if old.voters != new.voters:
                # The quorum arithmetic changed mid-reign: rebuild the
                # incremental tracker from the surviving voters' match
                # indices, floored at what is already committed, then
                # re-check — removing a straggler can make the smaller
                # quorum instantly satisfied by the acks already in hand.
                tracker = CommitTracker(self._acks_needed())
                tracker.discard_through(self.commit_index)
                for peer in self._voter_peers:
                    tracker.advance(0, self.match_index.get(peer, 0))
                self._commit = tracker
                self._recheck_commit()
        elif name not in self._voters and self.role in (
            Role.PRECANDIDATE,
            Role.CANDIDATE,
        ):
            # A campaign by a non-voter can no longer win; stand down
            # without disturbing the term further.
            self.role = Role.FOLLOWER
            self._prevotes = set()
            self._votes = set()

    def _recheck_commit(self) -> None:
        """Advance the commit index from already-held evidence (used after
        a quorum-size change; the §5.4.2 term restriction still applies)."""
        if self.role is not Role.LEADER:
            return
        if self._commit.acks_needed == 0:
            candidate = self.log.last_index if self.name in self._voters else 0
        else:
            candidate = self._commit.frontier
        if candidate > self.commit_index and self.log.term_at(candidate) == self.current_term:
            self.commit_index = candidate
            self._commit.discard_through(candidate)
            self.metrics.commit_advances += 1
            self._apply_committed()

    def _on_config_committed(self, index: int, change: ConfigChange) -> None:
        """Commit-time duties of a config entry (its *effect* started at
        append time): trace for the safety checker, step down after
        committing our own removal (dissertation §4.2.2)."""
        self.metrics.config_changes_committed += 1
        self.trace.record(
            self._now(),
            self.name,
            "config_commit",
            index=index,
            change=change.kind,
            target=change.node,
            term=self.current_term,
            voters=list(change.config.voters),
            learners=list(change.config.learners),
            prev_voters=list(self._config_at(index - 1).voters),
        )
        if (
            change.kind == "remove"
            and change.node == self.name
            and self.role is Role.LEADER
        ):
            self._become_follower(self.current_term, None)
        elif self.role is Role.LEADER and change.config.learners:
            # A committed change unblocks the one-in-flight gate; any
            # learner that finished catching up in the meantime can now
            # have its promotion proposed.
            for learner in change.config.learners:
                if self.match_index.get(learner, 0) >= self.log.last_index:
                    self._maybe_promote(learner)

    def _maybe_promote(self, follower: str) -> None:
        """Auto-promote a caught-up learner to voter (leader side).

        Fires from replication acks: once the learner's match index is
        within the configured margin of the leader's commit index — i.e.
        it has been caught up, through the snapshot path if it started
        behind the leader's first retained entry — the leader proposes the
        ``promote`` entry, provided no other change is in flight.
        """
        if not self._auto_promote or self.role is not Role.LEADER:
            return
        if follower not in self._membership.learners:
            return
        if self.config_change_in_flight():
            return
        if self.match_index.get(follower, 0) + self._learner_margin < self.commit_index:
            return
        if self.propose_config_change("promote", follower):
            self.metrics.learner_promotions += 1

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #

    def _charge(self, kind: str, units: int = 1) -> None:
        if self.cost_model is not None:
            self.cost_model.charge(self.name, kind, units)

    def _send(self, dst: str, payload: Any, *, channel: str, size: int = 96) -> None:
        self._transmit(self.name, dst, payload, channel, size)

    def _rpc(self, dst: str, payload: Any, size: int = 96) -> None:
        self._transmit(self.name, dst, payload, self._rpc_channel, size)

    def _rand(self) -> float:
        """One uniform draw from this node's stream, served from a block.

        ``rng.random(n)`` consumes the underlying bit stream exactly like
        ``n`` scalar ``rng.random()`` calls, so buffering changes no drawn
        value — only the per-call numpy overhead (the stream is private to
        this node; nothing else can observe the read-ahead).  The block is
        held as a Python list so serving a draw is one index, no
        ``np.float64 → float`` conversion.
        """
        pos = self._rand_pos
        buf = self._rand_buf
        if buf is None or pos >= _RAND_BLOCK:
            buf = self._rand_buf = self.rng.random(_RAND_BLOCK).tolist()
            pos = 0
        self._rand_pos = pos + 1
        return buf[pos]

    def _arm_election_timer(self) -> None:
        """(Re-)arm with a fresh randomized draw from ``[Et, 2·Et)``.

        Cold-path arm (start, recovery, role changes, vote grants); the
        per-heartbeat reset lives inlined in ``_on_heartbeat``.
        """
        base = self.policy.election_timeout_ms(self.leader_id)
        randomized = base * (1.0 + self._rand())
        self.metrics.current_randomized_timeout_ms = randomized
        self._election_timer.reset(self._clock_scale(randomized))

    def _lease_valid(self) -> bool:
        """etcd's ``inLease``: protected contact with a live leader."""
        if not self.config.check_quorum:
            return False
        if self.role is Role.LEADER:
            return True
        if self.leader_id is None:
            return False
        et = self.policy.election_timeout_ms(self.leader_id)
        return (self._now() - self.last_leader_contact) < et

    # ------------------------------------------------------------------ #
    # role transitions
    # ------------------------------------------------------------------ #

    def _grant_vote(self, candidate: str) -> None:
        """Designated mutator for granting our vote this term.

        ``voted_for`` is persistent state (§5.2): every write is a
        durability point, and the election-safety argument depends on a
        node never granting two different candidates in one term.  All
        grant-path writes go through here so the invariant has exactly
        one place to live (the other writers — term adoption clearing the
        vote, and self-voting on candidacy — are the two role
        transitions below; ``tools/repolint`` enforces the set).
        """
        self.voted_for = candidate
        self.storage.save_hard_state(self.current_term, candidate)

    def _become_follower(self, term: int, leader: str | None) -> None:
        was_leader = self.role is Role.LEADER
        if term > self.current_term:
            self.current_term = term
            self.voted_for = None
            # Lazy write: the next externalizing reply's barrier syncs it.
            self.storage.save_hard_state(term, None)
        self.role = Role.FOLLOWER
        self._prevotes = set()
        self._votes = set()
        if was_leader:
            self._teardown_leadership()
        prev_leader = self.leader_id
        self.leader_id = leader
        if prev_leader != leader:
            self.policy.on_leader_change(leader, self._now())
        self._arm_election_timer()

    def _teardown_leadership(self) -> None:
        self.metrics.step_downs += 1
        self.trace.record(
            self._now(), self.name, "step_down", term=self.current_term
        )
        names = self._hb_timer_names
        for peer in self.peers:
            self.timers.drop(names.get(peer, f"hb/{peer}"))
        self.timers.drop("hb")
        self.timers.drop("quorum")
        self._hb_timers = {}
        self._hb_cache = {}
        self.policy.on_step_down(self._now())
        # Pending proposals can no longer be confirmed by this node.
        # (Keys are appended in increasing log-index order, so sorting is
        # a no-op today — it pins the response order against any future
        # change to how the dict is populated.)
        pending, self._pending_client = self._pending_client, {}
        for _idx, (client, req_id) in sorted(pending.items()):
            self._send(
                client,
                ClientResponse(request_id=req_id, ok=False, leader_hint=None),
                channel=self._rpc_channel,
            )
        # Buffered-but-unappended commands and pending reads fail the same
        # way: the client's retry path re-submits them to the new leader.
        self.timers.drop("batch")
        buffered, self._batch_buf = self._batch_buf, []
        for client, req_id, _command in buffered:
            self._send(
                client,
                ClientResponse(request_id=req_id, ok=False, leader_hint=None),
                channel=self._rpc_channel,
            )
        round_, self._read_round = self._read_round, None
        reads, self._read_buf = self._read_buf, []
        if round_ is not None:
            reads = round_.reads + reads
        for client, req_id, _command in reads:
            self.metrics.reads_failed += 1
            self._send(
                client,
                ClientResponse(request_id=req_id, ok=False, leader_hint=None),
                channel=self._rpc_channel,
            )
        self._append_probe = set()
        self._term_start_index = 0

    def _on_election_timeout(self) -> None:
        if self.role is Role.LEADER:
            return  # leaders do not run an election timer
        if self.name not in self._voters:
            # Learners and removed nodes never campaign — they keep the
            # timer armed only so a later promotion needs no special case.
            self._arm_election_timer()
            return
        had_leader = self.leader_id
        self.metrics.election_timeouts += 1
        self.trace.record(
            self._now(),
            self.name,
            "election_timeout",
            term=self.current_term,
            role=self.role.value,
            leader=had_leader,
            randomized_timeout_ms=self.metrics.current_randomized_timeout_ms,
        )
        # Fallback rule (§III-B): discard measurements, revert to defaults.
        self.policy.on_election_timeout(self._now())
        self.leader_id = None
        if self.config.prevote:
            self._start_prevote()
        else:
            self._become_candidate()

    def _start_prevote(self) -> None:
        self.role = Role.PRECANDIDATE
        self._prevotes = {self.name}
        self.metrics.prevote_rounds += 1
        self.trace.record(
            self._now(), self.name, "prevote_start", term=self.current_term
        )
        if len(self._prevotes) >= self.quorum:
            self._become_candidate()
            return
        req = PreVoteRequest(
            term=self.current_term + 1,
            candidate=self.name,
            last_log_index=self.log.last_index,
            last_log_term=self.log.last_term,
        )
        for peer in self._voter_peers:
            self._rpc(peer, req)
        self._arm_election_timer()  # retry the poll if it stalls

    def _become_candidate(self) -> None:
        self.role = Role.CANDIDATE
        self.current_term += 1
        self.voted_for = self.name
        self.storage.save_hard_state(self.current_term, self.name)
        self._votes = {self.name}
        self._prevotes = set()
        self.metrics.elections_started += 1
        self.trace.record(
            self._now(), self.name, "election_start", term=self.current_term
        )
        if not self._sync():
            return  # crashed persisting our own vote: never campaign on it
        if len(self._votes) >= self.quorum:
            self._become_leader()
            return
        req = VoteRequest(
            term=self.current_term,
            candidate=self.name,
            last_log_index=self.log.last_index,
            last_log_term=self.log.last_term,
        )
        for peer in self._voter_peers:
            self._rpc(peer, req)
        self._arm_election_timer()  # retry with a fresh draw on split vote

    def _become_leader(self) -> None:
        self.role = Role.LEADER
        self.leader_id = self.name
        self.metrics.times_leader += 1
        self.trace.record(
            self._now(), self.name, "become_leader", term=self.current_term
        )
        self._election_timer.cancel()
        self.policy.on_become_leader(self._now())
        self.next_index = {p: self.log.last_index + 1 for p in self.peers}
        self.match_index = {p: 0 for p in self.peers}
        self._last_peer_response = {p: self._now() for p in self.peers}
        self._inflight_appends = {p: 0 for p in self.peers}
        self._last_append_response = {p: self._now() for p in self.peers}
        self._snapshot_inflight = {}
        self._commit = CommitTracker(self._acks_needed())
        self._hb_cache = {}
        # No-op entry: lets this leader commit its predecessors' tail
        # (commit is restricted to current-term entries, §5.4.2).  Reads
        # gate on this index committing (the ReadIndex precondition).
        noop = self.log.append_new(self.current_term, None)
        self._term_start_index = noop.index
        self._append_probe = set()
        if not self._sync():
            return  # crashed persisting the no-op: nothing was sent yet
        for peer in self.peers:
            self._send_append(peer)
            self._schedule_heartbeat(peer, first=True)
        self._schedule_quorum_check()

    # ------------------------------------------------------------------ #
    # leader duties
    # ------------------------------------------------------------------ #

    def _schedule_heartbeat(self, peer: str, *, first: bool = False) -> None:
        if self._hb_consolidated:
            if not self.peers:
                return  # every peer removed mid-reign; nothing to beat
            # §IV-E feature 2: one timer for everyone at the minimum h.
            interval = min(
                self.policy.heartbeat_interval_ms(p) for p in self.peers
            )
            if first and self._hb_stagger:
                interval *= self._rand()
            if self._hb_jitter_ms > 0.0:
                interval += self._hb_jitter_ms * self._rand()
            self.timers.timer("hb", self._heartbeat_tick_all).reset(
                self._clock_scale(interval)
            )
            return
        interval = self.policy.heartbeat_interval_ms(peer)
        if first and self._hb_stagger:
            # Independent initial phase per follower loop (see RaftConfig).
            interval *= self._rand()
        if self._hb_jitter_ms > 0.0:
            interval += self._hb_jitter_ms * self._rand()
        timer = self._hb_timers.get(peer)
        if timer is None:
            timer = self.timers.timer(
                self._hb_timer_names[peer], self._hb_timer_cbs[peer]
            )
            self._hb_timers[peer] = timer
        timer.reset(self._clock_scale(interval))

    def _send_heartbeat_to(self, peer: str) -> None:
        meta = self.policy.heartbeat_meta(peer, self._now())
        term = self.current_term
        commit = self.commit_index
        match = self.match_index.get(peer, 0)
        if match < commit:
            commit = match
        if meta is None:
            # Baseline-Raft steady state: term and clamped commit change
            # rarely, so the same immutable request is re-sent as-is.
            req = self._hb_cache.get(peer)
            if req is None or req.term != term or req.commit != commit:
                req = HeartbeatRequest(term, self.name, commit)
                self._hb_cache[peer] = req
            size = 64
        else:
            req = HeartbeatRequest(term, self.name, commit, meta)
            size = 88
        self._transmit(self.name, peer, req, self._hb_channel, size)
        self.metrics.heartbeats_sent += 1
        cm = self.cost_model
        if cm is not None:
            cm.charge(self.name, "heartbeat_send")
            if meta is not None:
                cm.charge(self.name, "tuning")

    def _heartbeat_tick(self, peer: str) -> None:
        """Per-follower beat: send + re-arm.

        This fires once per heartbeat per follower — the leader's hottest
        callback — so the send half (a fused copy of
        :meth:`_send_heartbeat_to`; keep the two in sync) and the re-arm
        half share one set of attribute loads.
        """
        if self.role is not Role.LEADER:
            return
        if self._batch_buf:
            self._flush_batch()  # beat-bounded latency for buffered writes
            if self._state is not _RUNNING:
                return  # crashed at the batch's persist point
        policy = self.policy
        meta = policy.heartbeat_meta(peer, self._now())
        term = self.current_term
        commit = self.commit_index
        match = self.match_index.get(peer, 0)
        if match < commit:
            commit = match
        if meta is None:
            req = self._hb_cache.get(peer)
            if req is None or req.term != term or req.commit != commit:
                req = HeartbeatRequest(term, self.name, commit)
                self._hb_cache[peer] = req
            size = 64
        else:
            req = HeartbeatRequest(term, self.name, commit, meta)
            size = 88
        self._transmit(self.name, peer, req, self._hb_channel, size)
        self.metrics.heartbeats_sent += 1
        cm = self.cost_model
        if cm is not None:
            cm.charge(self.name, "heartbeat_send")
            if meta is not None:
                cm.charge(self.name, "tuning")
        if self._hb_consolidated:
            self._schedule_heartbeat(peer)
            return
        interval = policy.heartbeat_interval_ms(peer)
        if self._hb_jitter_ms > 0.0:
            interval += self._hb_jitter_ms * self._rand()
        timer = self._hb_timers.get(peer)
        if timer is None:
            timer = self.timers.timer(
                self._hb_timer_names[peer], self._hb_timer_cbs[peer]
            )
            self._hb_timers[peer] = timer
        timer.reset(self._clock_scale(interval))

    def _heartbeat_tick_all(self) -> None:
        """Consolidated-timer beat: heartbeat every follower at once."""
        if self.role is not Role.LEADER:
            return
        if self._batch_buf:
            self._flush_batch()  # beat-bounded latency for buffered writes
            if self._state is not _RUNNING:
                return  # crashed at the batch's persist point
        for peer in self.peers:
            self._send_heartbeat_to(peer)
        if self.peers:
            self._schedule_heartbeat(self.peers[0])

    def _schedule_quorum_check(self) -> None:
        if not self.config.check_quorum:
            return
        et = self.policy.election_timeout_ms(None)
        # Keep the sampled randomizedTimeout meaningful for leaders too:
        # this is the value the leader would arm if it stepped down now.
        self.metrics.current_randomized_timeout_ms = et * (1.0 + self._rand())
        self.timers.timer("quorum", self._quorum_tick).reset(self._clock_scale(et))

    def _quorum_tick(self) -> None:
        if self.role is not Role.LEADER:
            return
        et = self.policy.election_timeout_ms(None)
        now = self._now()
        active = 1 if self.name in self._voters else 0
        last = self._last_peer_response
        get = last.get
        for p in self._voter_peers:
            if now - get(p, _NEG_INF) <= et:
                active += 1
        if active < self.quorum:
            self.metrics.quorum_step_downs += 1
            self.trace.record(
                self._now(),
                self.name,
                "quorum_lost",
                term=self.current_term,
                active=active,
            )
            self._become_follower(self.current_term, None)
            return
        self._schedule_quorum_check()

    #: Maximum unacknowledged AppendEntries per follower.
    MAX_INFLIGHT_APPENDS = 4
    #: An append pipeline with no ack for this long is considered lost.
    APPEND_PIPELINE_STALL_MS = 1_000.0

    def _send_append(self, peer: str, *, force: bool = False) -> None:
        sent_at = self._snapshot_inflight.get(peer)
        if sent_at is not None:
            if self._now() - sent_at <= self.APPEND_PIPELINE_STALL_MS:
                return  # snapshot transfer in flight; wait for its ack
            del self._snapshot_inflight[peer]  # transfer presumed lost
        if self._pipelining and peer in self._append_probe:
            # A rejection knocked the pipe back: one append at a time
            # until a success re-anchors next_index (etcd StateProbe).
            cap = 1
        else:
            cap = self._max_inflight
        if not force and self._inflight_appends.get(peer, 0) >= cap:
            return  # pipeline full; the next response will pull more
        while True:
            next_i = self.next_index.get(peer, self.log.last_index + 1)
            if next_i > self.log.last_index + 1:
                next_i = self.log.last_index + 1
                self.next_index[peer] = next_i
            if next_i < self.log.first_index:
                # The entries this follower needs are compacted away — fall
                # back to shipping the durable snapshot (§7).
                self._send_snapshot(peer)
                return
            self._inflight_appends[peer] = self._inflight_appends.get(peer, 0) + 1
            prev = next_i - 1
            entries = self.log.slice_from(next_i, self.config.max_entries_per_append)
            self._rpc(
                peer,
                AppendEntriesRequest(
                    term=self.current_term,
                    leader=self.name,
                    prev_log_index=prev,
                    prev_log_term=self.log.term_at(prev),
                    entries=entries,
                    leader_commit=self.commit_index,
                ),
                size=64 + 96 * len(entries),
            )
            self.metrics.appends_sent += 1
            self._charge("append_send", units=max(1, len(entries)))
            if not entries or not self._pipelining or peer in self._append_probe:
                break
            # Optimistic advance (etcd StateReplicate): assume this window
            # lands and stream the next suffix without waiting for the
            # ack; a rejection resets next_index from the conflict hint.
            self.next_index[peer] = next_i + len(entries)
            if (
                self.next_index[peer] > self.log.last_index
                or self._inflight_appends.get(peer, 0) >= self._max_inflight
            ):
                break
        if self.config.suppress_heartbeats_under_load and self.role is Role.LEADER:
            # §IV-E feature 1: this replication message is the heartbeat;
            # push the dedicated one out by a full interval.
            self._schedule_heartbeat(peer)

    def _send_snapshot(self, peer: str) -> None:
        """Ship a snapshot to a follower behind ``log.first_index``.

        The durable snapshot is refreshed at transfer time when it lags
        ``last_applied`` by more than the retain margin (etcd builds its
        ``MsgSnap`` payload from applied state the same way): the receiver
        then replays at most a margin-scale tail afterwards, keeping
        catch-up cost independent of both history length and compaction
        phase.  One transfer per follower at a time (tracked in
        ``_snapshot_inflight``); a transfer unacknowledged past the append
        stall window is presumed lost and retried by ``_send_append``.
        """
        snap = self.snapshot
        applied = self.last_applied
        if snap is None or applied - snap.last_included_index > self._compaction_margin:
            snap = self.snapshot = Snapshot(
                applied,
                self.log.term_at(applied),
                self.state_machine.snapshot(),
                self._config_at(applied),
            )
            self.storage.save_snapshot(snap)
            self.metrics.snapshots_taken += 1
        self._snapshot_inflight[peer] = self._now()
        req = InstallSnapshotRequest(
            self.current_term,
            self.name,
            snap.last_included_index,
            snap.last_included_term,
            snap.data,
            snap.config,
        )
        try:
            n_items = len(snap.data)
        except TypeError:
            n_items = 0
        self._rpc(peer, req, size=128 + 32 * n_items)
        self.metrics.snapshots_sent += 1
        self._charge("snapshot_send")
        self.trace.record(
            self._now(),
            self.name,
            "snapshot_send",
            to=peer,
            snapshot_index=snap.last_included_index,
            term=self.current_term,
        )

    def _advance_commit(self, old_match: int, new_match: int) -> None:
        """Majority-match commit, restricted to current-term entries.

        Fed one follower's ``match_index`` progression at a time; the
        tracker keeps the quorum frontier incrementally, so this is O(1)
        amortized per acknowledged entry (the seed implementation sorted
        every match index on every response — O(n log n) each).
        """
        if self.role is not Role.LEADER:
            return
        candidate = self._commit.advance(old_match, new_match)
        if candidate > self.commit_index and self.log.term_at(candidate) == self.current_term:
            self.commit_index = candidate
            self._commit.discard_through(candidate)
            self.metrics.commit_advances += 1
            self._apply_committed()

    def _apply_committed(self) -> None:
        while self.last_applied < self.commit_index:
            self.last_applied += 1
            entry = self.log.entry_at(self.last_applied)
            command = entry.command
            if command is None:
                result = None
            elif command.__class__ is ConfigChange:
                # Membership changes took effect at append time; commit
                # only finalizes them (trace + self-removal step-down).
                result = None
                self._on_config_committed(entry.index, command)
            else:
                result = self.state_machine.apply(command)
            self.metrics.entries_applied += 1
            self._charge("apply")
            pending = self._pending_client.pop(entry.index, None)
            if pending is not None and self.role is Role.LEADER:
                client, req_id = pending
                self._send(
                    client,
                    ClientResponse(request_id=req_id, ok=True, result=result),
                    channel=self._rpc_channel,
                )
        # A quorum-confirmed ReadIndex round may have been waiting for the
        # commit index to reach its read_index (fresh leaders: the round
        # registers before the term-start no-op commits).
        round_ = self._read_round
        if (
            round_ is not None
            and round_.confirmed
            and self.commit_index >= round_.read_index
        ):
            self._read_round = None
            self._serve_read_batch(round_)
            if self._read_buf:
                self._start_read_round()
        if self._compaction_threshold > 0:
            self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Snapshot + compact once the retained log exceeds the threshold.

        Policy (checked after every apply batch):

        * trigger on the *retained* entry count (``last_index − frontier``)
          crossing ``compaction_threshold`` — the quantity the memory
          bound is stated in;
        * snapshot the state machine at ``last_applied`` (the image and
          the frontier candidate are exactly in sync there);
        * compact to ``last_applied − compaction_retain_margin``, keeping
          a catch-up margin of already-snapshotted entries in the log;
        * a leader additionally never compacts past the match index of a
          *live* follower (one that responded within an election timeout)
          — those catch up from the log for free; an unresponsive one
          stops gating memory and is served a snapshot on return;
        * the frontier only moves in chunks larger than the margin: a
          snapshot is a full O(state) copy, so when the compactable window
          merely *creeps* (a live follower persistently behind, or a
          threshold configured at or below the margin) the work is
          deferred until a margin's worth of progress has accumulated
          instead of re-snapshotting on every apply batch.
        """
        log = self.log
        if log.last_index - log.last_included_index <= self._compaction_threshold:
            return
        upto = self.last_applied - self._compaction_margin
        if self.role is Role.LEADER:
            now = self._now()
            et = self.policy.election_timeout_ms(None)
            last = self._last_peer_response
            match = self.match_index
            for p in self.peers:
                if now - last.get(p, _NEG_INF) <= et:
                    m = match.get(p, 0)
                    if m < upto:
                        upto = m
        if upto - log.last_included_index <= self._compaction_margin:
            return
        applied = self.last_applied
        self.snapshot = Snapshot(
            applied,
            log.term_at(applied),
            self.state_machine.snapshot(),
            self._config_at(applied),
        )
        # WAL order makes snapshot-then-compact atomic across a crash: the
        # snapshot record precedes the compact record in the same pending
        # tail, so recovery sees both, the snapshot alone, or neither —
        # never a moved log frontier without its covering image.
        self.storage.save_snapshot(self.snapshot)
        dropped = log.compact(upto)
        self._rebase_config(upto, None)
        self.metrics.snapshots_taken += 1
        self.metrics.compactions += 1
        self.metrics.entries_compacted += dropped
        self.trace.record(
            self._now(),
            self.name,
            "log_compact",
            upto=upto,
            snapshot_index=applied,
            dropped=dropped,
            retained=log.last_index - upto,
        )

    # ------------------------------------------------------------------ #
    # message dispatch
    # ------------------------------------------------------------------ #

    #: Exact-type dispatch table (payload classes are never subclassed);
    #: populated after the class body, once the handlers exist.
    _DISPATCH: ClassVar[dict[type, Callable[["RaftNode", str, Any], None]]] = {}

    def deliver(self, sender: str, payload: Any) -> None:
        """Fabric entry point; overrides Process.deliver to dispatch
        directly (one call layer fewer on the per-message path)."""
        if self._state is not _RUNNING:
            return
        handler = _DISPATCH_GET(payload.__class__)
        if handler is None:
            raise TypeError(
                f"{self.name}: unknown payload {type(payload).__name__}"
            )
        handler(self, sender, payload)

    def on_message(self, sender: str, payload: Any) -> None:
        handler = self._DISPATCH.get(payload.__class__)
        if handler is None:
            raise TypeError(
                f"{self.name}: unknown payload {type(payload).__name__}"
            )
        handler(self, sender, payload)

    # -- leader liveness ---------------------------------------------------- #

    def _observe_leader_message(self, term: int, leader: str) -> None:
        """Common handling for any message from a node claiming leadership."""
        if self.role is Role.LEADER:
            if term > self.current_term:
                self._become_follower(term, leader)
            elif leader != self.name:
                # Two leaders in one term would break election safety; the
                # trace record lets invariant tests catch it loudly.
                self.trace.record(
                    self._now(),
                    self.name,
                    "safety_violation_two_leaders",
                    term=term,
                    other=leader,
                )
                self._become_follower(term, leader)
        elif term > self.current_term or self.role in (
            Role.PRECANDIDATE,
            Role.CANDIDATE,
        ):
            # Equal-term case: a live leader spoke while we were polling or
            # campaigning — abort and fall back in line (Fig. 6b's saviour).
            self._become_follower(term, leader)
        if self.leader_id != leader:
            prev = self.leader_id
            self.leader_id = leader
            self.policy.on_leader_change(leader, self._now())
            self.trace.record(
                self._now(),
                self.name,
                "leader_observed",
                term=term,
                leader=leader,
                previous=prev,
            )
        self.last_leader_contact = self._now()

    # -- heartbeats ----------------------------------------------------------- #

    def _on_heartbeat(self, sender: str, m: HeartbeatRequest) -> None:
        self.metrics.heartbeats_received += 1
        cm = self.cost_model
        if cm is not None:
            cm.charge(self.name, "heartbeat_recv")
        term = m.term
        leader = m.leader
        if term < self.current_term:
            self._send(
                leader,
                HeartbeatResponse(
                    term=self.current_term,
                    follower=self.name,
                    last_log_index=self.log.last_index,
                ),
                channel=self._hb_channel,
            )
            return
        now = self._now()
        if (
            term == self.current_term
            and self.role is Role.FOLLOWER
            and self.leader_id == leader
        ):
            # Steady-state fast path of _observe_leader_message: nothing
            # to transition, only the lease freshness to stamp.
            self.last_leader_contact = now
        else:
            self._observe_leader_message(term, leader)
        if m.commit > self.commit_index:
            self.commit_index = min(m.commit, self.log.last_index)
            self._apply_committed()
        hb_meta = m.meta
        policy = self.policy
        meta = policy.on_heartbeat(leader, hb_meta, now)
        if cm is not None and hb_meta is not None:
            cm.charge(self.name, "tuning")
        # Inline of _arm_election_timer (keep in sync): this reset happens
        # on every received heartbeat, the follower's hottest operation.
        base = policy.election_timeout_ms(self.leader_id)
        pos = self._rand_pos
        buf = self._rand_buf
        if buf is None or pos >= _RAND_BLOCK:
            buf = self._rand_buf = self.rng.random(_RAND_BLOCK).tolist()
            pos = 0
        self._rand_pos = pos + 1
        randomized = base * (1.0 + buf[pos])
        self.metrics.current_randomized_timeout_ms = randomized
        self._election_timer.reset(self._clock_scale(randomized))
        term = self.current_term
        lli = self.log.last_index
        if meta is None:
            # Baseline-Raft steady state: re-use the cached immutable
            # response while (term, last_log_index) are stable.
            resp = self._hb_resp_cache
            if resp is None or resp.term != term or resp.last_log_index != lli:
                resp = HeartbeatResponse(term, self.name, lli)
                self._hb_resp_cache = resp
            size = 64
        else:
            resp = HeartbeatResponse(term, self.name, lli, meta)
            size = 88
        self._transmit(self.name, leader, resp, self._hb_channel, size)
        if cm is not None:
            cm.charge(self.name, "heartbeat_resp_send")

    def _on_heartbeat_response(self, sender: str, m: HeartbeatResponse) -> None:
        self.metrics.heartbeat_responses_received += 1
        cm = self.cost_model
        if cm is not None:
            cm.charge(self.name, "heartbeat_resp_recv")
        if m.term > self.current_term:
            self._become_follower(m.term, None)
            return
        if self.role is not Role.LEADER or m.term < self.current_term:
            return
        follower = m.follower
        if follower not in self.next_index:
            return  # straggler ack from a peer removed this reign
        now = self._now()
        self._last_peer_response[follower] = now
        self.policy.on_heartbeat_response(follower, m.meta, now)
        if cm is not None and m.meta is not None:
            cm.charge(self.name, "tuning")
        if (
            self._hb_catchup
            and self.match_index.get(follower, 0) < self.log.last_index
        ):
            # Recovery path for a *stalled* pipeline only: either nothing
            # is in flight, or the in-flight messages' acks were lost long
            # ago (e.g. across a follower pause).  A live pipeline keeps
            # its own accounting — resetting it here would mint phantom
            # send slots and the send/response chains would multiply.
            inflight = self._inflight_appends.get(follower, 0)
            stale = (
                self._now() - self._last_append_response.get(follower, _NEG_INF)
                > self.APPEND_PIPELINE_STALL_MS
            )
            if inflight == 0 or stale:
                self._inflight_appends[follower] = 0
                self._send_append(follower, force=True)

    # -- replication ------------------------------------------------------------ #

    def _on_append_entries(self, sender: str, m: AppendEntriesRequest) -> None:
        self.metrics.appends_received += 1
        self._charge("append_recv", units=max(1, len(m.entries)))
        if m.term < self.current_term:
            self._rpc(
                m.leader,
                AppendEntriesResponse(
                    term=self.current_term,
                    follower=self.name,
                    success=False,
                    match_index=0,
                ),
            )
            return
        self._observe_leader_message(m.term, m.leader)
        ok, match, conflict = self.log.try_append(
            m.prev_log_index, m.prev_log_term, m.entries
        )
        if ok and (m.entries or self._config_log):
            # Applied-at-append: adopt (or retract, after a conflict
            # truncation) config entries before the commit index moves.
            self._reconcile_membership(m.entries)
        if ok and m.leader_commit > self.commit_index:
            self.commit_index = max(self.commit_index, min(m.leader_commit, match))
            self._apply_committed()
        # Ack-after-sync (§5.2): the appended entries — and any lazily
        # pending term bump — must be durable before the response leaves.
        if not self._sync():
            return  # crashed at the persist point
        self._arm_election_timer()
        self._rpc(
            m.leader,
            AppendEntriesResponse(
                term=self.current_term,
                follower=self.name,
                success=ok,
                match_index=match,
                conflict_index=conflict,
                prev_log_index=m.prev_log_index,
            ),
        )

    def _on_append_response(self, sender: str, m: AppendEntriesResponse) -> None:
        self._charge("append_resp_recv")
        if m.term > self.current_term:
            self._become_follower(m.term, None)
            return
        if self.role is not Role.LEADER or m.term < self.current_term:
            return
        follower = m.follower
        if follower not in self.next_index:
            return  # straggler ack from a peer removed this reign
        now = self._now()
        self._last_peer_response[follower] = now
        self._last_append_response[follower] = now
        inflight = self._inflight_appends.get(follower, 0)
        if inflight > 0:
            self._inflight_appends[follower] = inflight - 1
        if m.success:
            if self._pipelining:
                self._append_probe.discard(follower)
            old = self.match_index.get(follower, 0)
            if m.match_index > old:
                self.match_index[follower] = m.match_index
                nxt = m.match_index + 1
                if self._pipelining:
                    # Optimistic sends may have pushed next_index past
                    # this ack already; never roll the stream back.
                    if nxt > self.next_index.get(follower, 1):
                        self.next_index[follower] = nxt
                else:
                    self.next_index[follower] = nxt
                self._advance_commit(old, m.match_index)
            if self.match_index.get(follower, 0) < self.log.last_index:
                self._send_append(follower)
            else:
                self._maybe_promote(follower)
        else:
            if self._pipelining:
                echoed = m.prev_log_index
                if echoed is not None and echoed >= self.next_index.get(follower, 1):
                    # Stale rejection: a pipelined window rejects as a
                    # volley, and we already backed next_index off below
                    # this probe's prev — re-applying the hint would
                    # thrash the stream backwards.
                    self._send_append(follower)
                    return
                self._append_probe.add(follower)
            hint = m.conflict_index
            fallback = max(1, self.next_index.get(follower, 2) - 1)
            self.next_index[follower] = hint if hint is not None else fallback
            self._send_append(follower)

    # -- snapshot transfer --------------------------------------------------- #

    def _on_install_snapshot(self, sender: str, m: InstallSnapshotRequest) -> None:
        self._charge("snapshot_recv")
        if m.term < self.current_term:
            self._rpc(
                m.leader,
                InstallSnapshotResponse(self.current_term, self.name, 0),
            )
            return
        self._observe_leader_message(m.term, m.leader)
        s_index = m.last_included_index
        if s_index > self.commit_index:
            # The received image becomes this node's own durable snapshot:
            # a crash right after installation must not lose it.  WAL
            # order matters — the snapshot record goes down *before* the
            # log reset, so a crash that eats the reset still leaves the
            # covering image (recovery adopts its frontier).
            snap = Snapshot(s_index, m.last_included_term, m.data, m.config)
            self.storage.save_snapshot(snap)
            self.log.install_snapshot(s_index, m.last_included_term)
            self.state_machine.restore(m.data)
            self.snapshot = snap
            self.commit_index = s_index
            self.last_applied = s_index
            if m.config is not None or self._config_log:
                # The snapshot replaces the log prefix, so it also settles
                # the membership that prefix established: its config is
                # the new base, records it covers fold away, and records
                # for entries the install discarded are retracted.
                old = self._membership
                self._rebase_config(s_index, m.config)
                self._pop_stale_config_records()
                self._refresh_membership()
                self._apply_membership_change(old, self._membership)
            self.metrics.snapshots_installed += 1
            self.trace.record(
                self._now(),
                self.name,
                "snapshot_install",
                snapshot_index=s_index,
                term=self.current_term,
                leader=m.leader,
            )
        # else: stale transfer — our commit already covers it; still ack
        # with its index so the leader resumes appends past the transfer
        # (entries at or below our commit index match the leader's).
        if not self._sync():
            return  # crashed persisting the snapshot: the ack must not leave
        self._arm_election_timer()
        self._rpc(
            m.leader,
            InstallSnapshotResponse(self.current_term, self.name, s_index),
        )

    def _on_install_snapshot_response(
        self, sender: str, m: InstallSnapshotResponse
    ) -> None:
        self._charge("snapshot_resp_recv")
        if m.term > self.current_term:
            self._become_follower(m.term, None)
            return
        if self.role is not Role.LEADER or m.term < self.current_term:
            return
        follower = m.follower
        if follower not in self.next_index:
            return  # straggler ack from a peer removed this reign
        now = self._now()
        self._last_peer_response[follower] = now
        self._last_append_response[follower] = now
        self._snapshot_inflight.pop(follower, None)
        s_index = m.last_included_index
        if s_index > 0:
            old = self.match_index.get(follower, 0)
            if s_index > old:
                self.match_index[follower] = s_index
                self.next_index[follower] = s_index + 1
                self._advance_commit(old, s_index)
            elif self.next_index.get(follower, 1) <= s_index:
                self.next_index[follower] = s_index + 1
        if self.match_index.get(follower, 0) < self.log.last_index:
            self._send_append(follower)
        else:
            self._maybe_promote(follower)

    # -- pre-vote ------------------------------------------------------------- #

    def _on_prevote_request(self, sender: str, m: PreVoteRequest) -> None:
        granted = (
            m.term >= self.current_term
            and self.log.up_to_date(m.last_log_index, m.last_log_term)
            and not self._lease_valid()
        )
        if granted:
            self.metrics.prevotes_granted += 1
        else:
            self.metrics.prevotes_rejected += 1
        self._rpc(
            m.candidate,
            PreVoteResponse(
                term=m.term if granted else self.current_term,
                voter=self.name,
                granted=granted,
            ),
        )

    def _on_prevote_response(self, sender: str, m: PreVoteResponse) -> None:
        if not m.granted and m.term > self.current_term:
            self._become_follower(m.term, None)
            return
        if self.role is not Role.PRECANDIDATE:
            return
        if m.granted and m.term == self.current_term + 1 and m.voter in self._voters:
            self._prevotes.add(m.voter)
            if len(self._prevotes) >= self.quorum:
                self._become_candidate()

    # -- votes ----------------------------------------------------------------- #

    def _on_vote_request(self, sender: str, m: VoteRequest) -> None:
        if m.term < self.current_term:
            self._rpc(
                m.candidate,
                VoteResponse(term=self.current_term, voter=self.name, granted=False),
            )
            self.metrics.votes_rejected += 1
            return
        if m.term > self.current_term:
            if self._lease_valid():
                # etcd's lease protection: a healthy leader is in charge, so
                # we neither adopt the bigger term nor grant the vote.
                self._rpc(
                    m.candidate,
                    VoteResponse(
                        term=self.current_term, voter=self.name, granted=False
                    ),
                )
                self.metrics.votes_rejected += 1
                return
            self._become_follower(m.term, None)
        granted = self.voted_for in (None, m.candidate) and self.log.up_to_date(
            m.last_log_index, m.last_log_term
        )
        if granted:
            self._grant_vote(m.candidate)
            self.metrics.votes_granted += 1
        else:
            self.metrics.votes_rejected += 1
        # Ack-after-sync (§5.2): the grant — or just the adopted term —
        # must be durable before the response leaves the node.
        if not self._sync():
            return  # crashed at the persist point
        if granted:
            self._arm_election_timer()  # granting defers our own candidacy
        self._rpc(
            m.candidate,
            VoteResponse(term=self.current_term, voter=self.name, granted=granted),
        )

    def _on_vote_response(self, sender: str, m: VoteResponse) -> None:
        if m.term > self.current_term:
            self._become_follower(m.term, None)
            return
        if self.role is not Role.CANDIDATE or m.term < self.current_term:
            return
        if m.granted and m.voter in self._voters:
            self._votes.add(m.voter)
            if len(self._votes) >= self.quorum:
                self._become_leader()

    # -- clients ----------------------------------------------------------------- #

    def _on_client_request(self, sender: str, m: ClientRequest) -> None:
        self.metrics.client_requests += 1
        self._charge("client_request")
        if self.role is not Role.LEADER:
            self.metrics.client_redirects += 1
            self._send(
                sender,
                ClientResponse(
                    request_id=m.request_id, ok=False, leader_hint=self.leader_id
                ),
                channel=self._rpc_channel,
            )
            return
        if self._batching:
            buf = self._batch_buf
            buf.append((sender, m.request_id, m.command))
            n = len(buf)
            if n >= self._batch_max:
                self._flush_batch()
            elif n == 1 and self._batch_window_ms > 0.0:
                # First command of a fresh batch arms the window timer;
                # with window 0 the next heartbeat beat flushes instead.
                self.timers.timer("batch", self._flush_batch).reset(
                    self._clock_scale(self._batch_window_ms)
                )
            return
        entry = self.log.append_new(self.current_term, m.command)
        self._pending_client[entry.index] = (sender, m.request_id)
        # The leader's own log counts toward the quorum, so its append
        # must be durable before replication fans out (§5.2).
        if not self._sync():
            return  # crashed persisting the append
        if self._commit.acks_needed == 0:
            # Sole-voter fast path: the leader's own log is the quorum.
            # Learners (if any) still get the entry via the loop below.
            self.commit_index = entry.index
            self._apply_committed()
        for peer in self.peers:
            self._send_append(peer)

    def _flush_batch(self) -> None:
        """Drain buffered client commands: one log append per command but
        a single AppendEntries volley per follower — the leader-side
        batching half of the client-serving fast path."""
        buf = self._batch_buf
        if not buf or self.role is not Role.LEADER:
            return
        self._batch_buf = []
        term = self.current_term
        log = self.log
        pending = self._pending_client
        for client, req_id, command in buf:
            entry = log.append_new(term, command)
            pending[entry.index] = (client, req_id)
        self.metrics.batches_flushed += 1
        self.metrics.batched_commands += len(buf)
        if not self._sync():
            return  # crashed persisting the batch
        if self._commit.acks_needed == 0:
            # Sole-voter fast path (mirrors _on_client_request).
            self.commit_index = log.last_index
            self._apply_committed()
        for peer in self.peers:
            self._send_append(peer)

    # -- read fast path (ReadIndex quorum round / leader lease) ------------ #

    def _on_client_read(self, sender: str, m: ClientReadRequest) -> None:
        self.metrics.client_reads += 1
        self._charge("client_request")
        if self.role is not Role.LEADER:
            self.metrics.client_redirects += 1
            self._send(
                sender,
                ClientResponse(
                    request_id=m.request_id, ok=False, leader_hint=self.leader_id
                ),
                channel=self._rpc_channel,
            )
            return
        if self._lease_reads:
            if self._lease_valid_for_reads():
                self.metrics.reads_served_lease += 1
                self._send(
                    sender,
                    ClientResponse(
                        request_id=m.request_id,
                        ok=True,
                        result=self.state_machine.read(m.command),
                    ),
                    channel=self._rpc_channel,
                )
                return
            self.metrics.lease_fallbacks += 1
            self.trace.record(
                self._now(), self.name, "lease_fallback", term=self.current_term
            )
        if self._commit.acks_needed == 0:
            # Sole-voter: this log IS the quorum.  The current-term no-op
            # sits at last_index, so committing through it is exactly the
            # §5.4.2-sanctioned commit; the read serves right after.
            if self.commit_index < self.log.last_index:
                self.commit_index = self.log.last_index
                self._apply_committed()
            self.metrics.reads_served_readindex += 1
            self._send(
                sender,
                ClientResponse(
                    request_id=m.request_id,
                    ok=True,
                    result=self.state_machine.read(m.command),
                ),
                channel=self._rpc_channel,
            )
            return
        self._read_buf.append((sender, m.request_id, m.command))
        if self._read_round is None:
            self._start_read_round()

    def _lease_valid_for_reads(self) -> bool:
        """Leader-lease check for the read fast path (cold: called once
        per lease read, so all lease arithmetic stays off the heartbeat
        hot path).

        The lease anchors at the ``acks_needed``-th freshest voter-peer
        response: at that instant this leader plus those peers formed a
        quorum that had all heard from it, and — with check-quorum's
        lease-protected voting on — none of them grants a vote for
        ``policy.lease_bound_ms()`` after *its own* contact.  Any rival
        leader needs a vote from that quorum, so no newer write can
        commit before the lease expires.  ``lease_drift_margin_ms``
        absorbs what the anchor timestamp does not see: the response's
        one-way flight plus the one-beat staleness of the piggybacked
        tuned-Et report.

        Serving additionally requires this term's no-op committed — the
        same precondition as ReadIndex (§6.4): before that, the state
        machine may miss commits from previous terms.
        """
        if not self.config.check_quorum:
            return False  # voters would not refuse rivals; no exclusivity
        if self.commit_index < self._term_start_index:
            return False
        bound = self.policy.lease_bound_ms()
        if bound is None:
            return False  # some voter may still be on its default Et
        duration = bound - self._lease_margin_ms
        if duration <= 0.0:
            return False
        needed = self._acks_needed()
        if needed == 0:
            return True  # sole voter: exclusivity is unconditional
        last = self._last_peer_response
        times = sorted(
            (last.get(p, _NEG_INF) for p in self._voter_peers), reverse=True
        )
        if needed > len(times):
            return False
        return self._now() - times[needed - 1] < duration

    def _start_read_round(self) -> None:
        """Open a ReadIndex round covering everything in the read buffer.

        The probe broadcasts strictly *after* its reads register (see
        ReadIndexProbe's docstring for why the order is load-bearing);
        reads arriving while this round is in flight queue for the next.
        """
        seq = self._read_seq = self._read_seq + 1
        read_index = self.commit_index
        if self._term_start_index > read_index:
            read_index = self._term_start_index
        batch = _ReadBatch(seq, read_index, self._read_buf)
        self._read_buf = []
        self._read_round = batch
        probe = ReadIndexProbe(self.current_term, self.name, seq)
        for peer in self._voter_peers:
            self._rpc(peer, probe, size=64)
        self.metrics.read_probes_sent += 1
        self._charge("read_probe_send", units=len(self._voter_peers))

    def _on_read_probe(self, sender: str, m: ReadIndexProbe) -> None:
        self._charge("read_probe_recv")
        if m.term >= self.current_term:
            self._observe_leader_message(m.term, m.leader)
        # A stale probe still gets an answer: the higher term deposes the
        # old leader, aborting any round it was counting.
        self._rpc(m.leader, ReadIndexAck(self.current_term, self.name, m.seq), size=64)

    def _on_read_ack(self, sender: str, m: ReadIndexAck) -> None:
        self._charge("read_ack_recv")
        if m.term > self.current_term:
            self._become_follower(m.term, None)
            return
        if self.role is not Role.LEADER or m.term < self.current_term:
            return
        follower = m.follower
        if follower in self.next_index:
            # An equal-term ack is leader-contact evidence like any other
            # response; it feeds check-quorum and the lease anchor.
            self._last_peer_response[follower] = self._now()
        round_ = self._read_round
        if round_ is None or round_.seq != m.seq:
            return  # ack for an already-settled round
        if follower not in self._voters:
            return
        round_.acks.add(follower)
        if len(round_.acks) < self._acks_needed():
            return
        round_.confirmed = True
        if self.commit_index >= round_.read_index:
            self._read_round = None
            self._serve_read_batch(round_)
            if self._read_buf:
                self._start_read_round()
        # else: _apply_committed serves the round once commit catches up.

    def _serve_read_batch(self, batch: _ReadBatch) -> None:
        read = self.state_machine.read
        n = 0
        for client, req_id, command in batch.reads:
            n += 1
            self._send(
                client,
                ClientResponse(request_id=req_id, ok=True, result=read(command)),
                channel=self._rpc_channel,
            )
        self.metrics.reads_served_readindex += n


RaftNode._DISPATCH = {
    HeartbeatRequest: RaftNode._on_heartbeat,
    HeartbeatResponse: RaftNode._on_heartbeat_response,
    AppendEntriesRequest: RaftNode._on_append_entries,
    AppendEntriesResponse: RaftNode._on_append_response,
    InstallSnapshotRequest: RaftNode._on_install_snapshot,
    InstallSnapshotResponse: RaftNode._on_install_snapshot_response,
    PreVoteRequest: RaftNode._on_prevote_request,
    PreVoteResponse: RaftNode._on_prevote_response,
    VoteRequest: RaftNode._on_vote_request,
    VoteResponse: RaftNode._on_vote_response,
    ClientRequest: RaftNode._on_client_request,
    ClientReadRequest: RaftNode._on_client_read,
    ReadIndexProbe: RaftNode._on_read_probe,
    ReadIndexAck: RaftNode._on_read_ack,
}
#: Module-level bound lookup: saves the class-attribute hop per message.
_DISPATCH_GET = RaftNode._DISPATCH.get
