"""A complete Raft implementation (the etcd substitute).

See :mod:`repro.raft.node` for the protocol state machine and DESIGN.md §1
for why a faithful Raft with per-follower heartbeat timers is the right
substrate for reproducing Dynatune.
"""

from repro.raft.client import CompletedRequest, RaftClient
from repro.raft.log import LogEntry, RaftLog
from repro.raft.messages import (
    AppendEntriesRequest,
    AppendEntriesResponse,
    ClientRequest,
    ClientResponse,
    HeartbeatRequest,
    HeartbeatResponse,
    PreVoteRequest,
    PreVoteResponse,
    VoteRequest,
    VoteResponse,
)
from repro.raft.metrics import NodeMetrics
from repro.raft.node import RaftNode
from repro.raft.state_machine import KVCommand, KVStore, StateMachine, kv_delete, kv_get, kv_put
from repro.raft.types import RaftConfig, Role

__all__ = [
    "AppendEntriesRequest",
    "AppendEntriesResponse",
    "ClientRequest",
    "ClientResponse",
    "CompletedRequest",
    "HeartbeatRequest",
    "HeartbeatResponse",
    "KVCommand",
    "KVStore",
    "LogEntry",
    "NodeMetrics",
    "PreVoteRequest",
    "PreVoteResponse",
    "RaftClient",
    "RaftConfig",
    "RaftLog",
    "RaftNode",
    "Role",
    "StateMachine",
    "VoteRequest",
    "VoteResponse",
    "kv_delete",
    "kv_get",
    "kv_put",
]
