"""Fault injection: container sleep, crash, and operational stalls.

Three fault shapes cover the paper's evaluation:

* :func:`pause_for` — "putting the container to sleep" (§IV-B1): the node
  keeps all state but executes nothing and drops traffic until resumed.
* :func:`crash` / :func:`recover_node` — crash-recovery (§III-A): volatile
  state is lost; term, vote and log survive.
* :class:`StallInjector` — short correlated processing stalls (GC,
  scheduler preemption, CPU contention on the shared host).  The paper's
  testbed runs dozens of containers on one machine under a traffic-shaping
  script; this is the operational noise that makes a 100 ms election
  timeout (Raft-Low) fragile in practice while leaving Et = 1000 ms Raft
  untouched (Fig. 6a's narrative).  Stall durations are lognormal with a
  hard cap well below the default election timeout.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.raft.node import RaftNode
from repro.sim.events import PRIORITY_CONTROL
from repro.sim.loop import EventLoop
from repro.sim.process import ProcessState
from repro.sim.tracing import TraceLog

__all__ = ["pause_for", "crash", "recover_node", "StallProfile", "StallInjector"]


def pause_for(
    loop: EventLoop,
    node: RaftNode,
    duration_ms: float,
    *,
    kind: str = "fault_pause",
) -> None:
    """Sleep ``node`` for ``duration_ms`` (the §IV-B1 leader-failure shape).

    Emits ``kind`` at pause time — the failure timestamp the measurement
    layer keys on — and resumes the node afterwards.  The resume is
    generation-guarded: if the node was resumed manually and paused *again*
    before this call's timer fires, only the latest pause's resume applies.
    A bare ``state is PAUSED`` check would let the first (stale) timer cut
    the second pause short.
    """
    if duration_ms <= 0:
        raise ValueError(f"duration must be > 0 ms, got {duration_ms!r}")
    # The kind is scenario-configurable by design; every value reaching it
    # is registered via extra_trace_kinds in tools/repolint/config.py.
    node.trace.record(loop.now, node.name, kind, duration_ms=duration_ms)  # repolint: disable=trace-dynamic-kind
    node.pause()
    token = getattr(node, "_pause_generation", 0) + 1
    node._pause_generation = token

    def _resume() -> None:
        if (
            node.state is ProcessState.PAUSED
            and getattr(node, "_pause_generation", 0) == token
        ):
            node.resume()

    loop.schedule(duration_ms, _resume, priority=PRIORITY_CONTROL)


def crash(node: RaftNode) -> None:
    """Crash ``node`` (volatile state will be lost on recovery).

    Bumps the node's crash generation so any auto-recovery timer armed for
    an *earlier* crash (e.g. by a Churn scenario step) recognises itself as
    stale and leaves this crash's downtime intact.
    """
    node.trace.record(node.loop.now, node.name, "fault_crash")
    node._crash_generation = getattr(node, "_crash_generation", 0) + 1
    node.crash()


def recover_node(node: RaftNode) -> None:
    """Restart a crashed node."""
    node.trace.record(node.loop.now, node.name, "fault_recover")
    node.recover()


@dataclasses.dataclass(slots=True, frozen=True)
class StallProfile:
    """Distribution of operational stalls for one node.

    Attributes:
        mean_interval_ms: mean of the exponential inter-stall gap.
        duration_median_ms: median stall length (lognormal).
        duration_sigma: lognormal shape parameter.  The default heavy-ish
            tail (σ = 0.85) puts a few 400–700 ms stalls into a half-hour
            run — the events that break a 100 ms election timeout
            (Raft-Low) while staying harmless for Et = 1000 ms.
        max_duration_ms: hard cap; keeps stalls well under the default
            1000 ms election timeout so baseline Raft never false-detects,
            matching the paper's Fig. 6a (Raft flat, Raft-Low thrashing).
    """

    mean_interval_ms: float = 40_000.0
    duration_median_ms: float = 120.0
    duration_sigma: float = 0.85
    max_duration_ms: float = 700.0

    def __post_init__(self) -> None:
        if self.mean_interval_ms <= 0:
            raise ValueError("mean_interval_ms must be > 0")
        if self.duration_median_ms <= 0:
            raise ValueError("duration_median_ms must be > 0")
        if self.duration_sigma < 0:
            raise ValueError("duration_sigma must be >= 0")
        if self.max_duration_ms < self.duration_median_ms:
            raise ValueError("max_duration_ms must be >= duration_median_ms")


class StallInjector:
    """Poisson-process stalls on a set of nodes.

    Each node gets an independent stream derived from the experiment seed,
    so enabling stalls on one node never shifts another's schedule.
    """

    def __init__(
        self,
        loop: EventLoop,
        nodes: list[RaftNode],
        profile: StallProfile,
        rng_factory,
        *,
        trace: TraceLog | None = None,
    ) -> None:
        self.loop = loop
        self.profile = profile
        self.trace = trace
        self.stall_count = 0
        self._nodes = list(nodes)
        self._rngs: dict[str, np.random.Generator] = {
            n.name: rng_factory(f"stall/{n.name}") for n in nodes
        }

    def install(self) -> None:
        """Arm the first stall for every node."""
        for node in self._nodes:
            self._schedule_next(node)

    def _schedule_next(self, node: RaftNode) -> None:
        rng = self._rngs[node.name]
        gap = float(rng.exponential(self.profile.mean_interval_ms))
        self.loop.schedule(
            gap, lambda n=node: self._fire(n), priority=PRIORITY_CONTROL
        )

    def _fire(self, node: RaftNode) -> None:
        rng = self._rngs[node.name]
        if node.state is ProcessState.RUNNING:
            duration = float(
                np.exp(rng.normal(np.log(self.profile.duration_median_ms), self.profile.duration_sigma))
            )
            duration = min(duration, self.profile.max_duration_ms)
            self.stall_count += 1
            if self.trace is not None:
                self.trace.record(
                    self.loop.now, node.name, "stall", duration_ms=duration
                )
            pause_for(self.loop, node, duration, kind="stall_pause")
        # If the node is paused/crashed by another injector, skip this one.
        self._schedule_next(node)
