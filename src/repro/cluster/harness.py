"""Scenario driver: repeated leader kills, samplers, stabilisation.

:class:`ClusterHarness` scripts the experiment loops of §IV:

* ``run_leader_failure_loop`` — the §IV-B1 / §IV-D protocol: stabilise,
  put the leader's container to sleep, wait for re-election, wake it,
  repeat N times;
* ``install_randomized_timeout_sampler`` — the Fig. 6 per-second probe of
  every node's randomizedTimeout;
* ``install_rtt_probe`` — records the schedule's ground-truth RTT next to
  the samples so figures can overlay them.
"""

from __future__ import annotations

from repro.cluster.builder import Cluster
from repro.cluster.faults import pause_for
from repro.cluster.measurements import LEADER_FAILURE_KIND
from repro.sim.clock import SECOND
from repro.sim.events import PRIORITY_CONTROL

__all__ = ["ClusterHarness"]


class ClusterHarness:
    """Drives one cluster through scripted fault/measurement scenarios."""

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self.loop = cluster.loop
        self.trace = cluster.trace
        self.failures_injected = 0

    # ------------------------------------------------------------------ #
    # samplers
    # ------------------------------------------------------------------ #

    def install_randomized_timeout_sampler(self, *, interval_ms: float = SECOND) -> None:
        """Record every node's current randomizedTimeout each interval.

        Paused nodes are skipped (their timers are frozen; the paper's
        probe also reads only live servers).
        """

        def _tick() -> None:
            now = self.loop.now
            for node in self.cluster.nodes.values():
                if node.alive:
                    self.trace.record(
                        now,
                        node.name,
                        "rt_sample",
                        value=node.current_randomized_timeout_ms,
                        role=node.role.value,
                    )
            self.loop.schedule(interval_ms, _tick, priority=PRIORITY_CONTROL)

        self.loop.schedule(interval_ms, _tick, priority=PRIORITY_CONTROL)

    def install_rtt_probe(self, *, interval_ms: float = SECOND) -> None:
        """Record the current nominal RTT of an arbitrary pair each interval."""
        links = self.cluster.network.links()
        if not links:
            return
        probe_link = links[0]

        def _tick() -> None:
            self.trace.record(
                self.loop.now, "net", "rtt_probe", rtt_ms=probe_link.rtt_ms
            )
            self.loop.schedule(interval_ms, _tick, priority=PRIORITY_CONTROL)

        self.loop.schedule(interval_ms, _tick, priority=PRIORITY_CONTROL)

    # ------------------------------------------------------------------ #
    # failure loops
    # ------------------------------------------------------------------ #

    def kill_leader_once(
        self,
        *,
        sleep_ms: float,
        election_timeout_guard_ms: float = 120_000.0,
    ) -> str:
        """Pause the current leader and wait for a successor.

        Returns:
            The new leader's name.

        Raises:
            TimeoutError: if no leader exists to kill or no successor
                emerges — either means the experiment is broken and should
                fail loudly rather than record garbage.
        """
        leader = self.cluster.run_until_leader(timeout_ms=election_timeout_guard_ms)
        node = self.cluster.node(leader)
        # Snapshot every follower's armed randomizedTimeout at the failure
        # instant — the quantity §IV-B1 reports as "the mean
        # randomizedTimeout at the time of failure detection".
        self.trace.record(
            self.loop.now,
            "harness",
            "rt_snapshot",
            values={
                n.name: n.current_randomized_timeout_ms
                for n in self.cluster.nodes.values()
                if n.alive and n.name != leader
            },
        )
        pause_for(self.loop, node, sleep_ms, kind=LEADER_FAILURE_KIND)
        self.failures_injected += 1
        return self.cluster.run_until_leader(
            timeout_ms=election_timeout_guard_ms, exclude=leader
        )

    def run_leader_failure_loop(
        self,
        n_failures: int,
        *,
        warmup_ms: float = 8_000.0,
        sleep_ms: float = 6_000.0,
        settle_ms: float = 8_000.0,
    ) -> None:
        """The §IV-B1 protocol: ``n_failures`` leader kills.

        Args:
            warmup_ms: initial run time before the first kill — long enough
                for the first election *and* for Dynatune to collect
                ``minListSize`` samples and tune (≈ 1 s at the default
                100 ms heartbeat interval, §IV-A).
            sleep_ms: how long the failed leader stays asleep.  Must exceed
                the worst-case re-election so the old leader never votes.
            settle_ms: run time after each re-election before the next
                kill, so the new regime re-measures and re-tunes.
        """
        if n_failures < 1:
            raise ValueError(f"n_failures must be >= 1, got {n_failures!r}")
        self.cluster.run_for(warmup_ms)
        for _ in range(n_failures):
            self.kill_leader_once(sleep_ms=sleep_ms)
            self.cluster.run_for(settle_ms)
