"""CPU cost accounting — the ``docker stats`` substitute (DESIGN.md §1).

Every message a node sends/receives debits a fixed CPU cost against that
node.  Utilisation over a sampling window is then
``100 × busy_ms / window_ms`` — *percent of one core*, exactly the unit
``docker stats`` reports (so a 2-core container saturates at 200 %, as the
Fig. 7b caption notes).

The per-operation costs below are calibrated once, against a single anchor:
an etcd-like leader exchanging ~3 000 heartbeat pairs per second (Fix-K,
N = 65, h ≈ 20 ms) should sit around one full core (Fig. 7b, N = 65).
Everything else the model reports — follower-vs-leader asymmetry, the
Dynatune/Fix-K ordering, CPU tracking the loss staircase — follows from
message *rates*, which the simulation produces mechanistically.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict

from repro.sim.events import PRIORITY_CONTROL
from repro.sim.loop import EventLoop

__all__ = ["DEFAULT_COSTS_MS", "CostModel", "UtilizationSample"]

#: CPU milliseconds per operation (see module docstring for calibration).
DEFAULT_COSTS_MS: dict[str, float] = {
    "heartbeat_send": 0.18,
    "heartbeat_recv": 0.10,
    "heartbeat_resp_send": 0.08,
    "heartbeat_resp_recv": 0.14,
    "tuning": 0.02,  # Dynatune metadata handling, per metadata-carrying msg
    "append_send": 0.06,
    "append_recv": 0.06,
    "append_resp_recv": 0.03,
    "client_request": 0.08,
    "apply": 0.05,
}


@dataclasses.dataclass(slots=True, frozen=True)
class UtilizationSample:
    """One sampling-window observation for one node."""

    time_ms: float
    node: str
    percent_of_core: float


class CostModel:
    """Accumulates per-node CPU busy time and samples utilisation.

    Args:
        costs_ms: per-operation CPU cost table; unknown kinds cost 0 so new
            trace points never crash old experiments.
        cores: cores per node — only used to report
            :meth:`saturated` (busy beyond ``cores × wall``), the
            utilisation unit itself is percent-of-one-core.
    """

    def __init__(
        self,
        costs_ms: dict[str, float] | None = None,
        *,
        cores: float = 2.0,
    ) -> None:
        self.costs_ms = dict(DEFAULT_COSTS_MS if costs_ms is None else costs_ms)
        self.cores = float(cores)
        self.busy_ms: dict[str, float] = defaultdict(float)
        self.busy_by_kind: dict[str, float] = defaultdict(float)
        self.op_counts: dict[str, int] = defaultdict(int)
        self.samples: list[UtilizationSample] = []
        self._last_sampled_busy: dict[str, float] = defaultdict(float)

    # -- accounting -------------------------------------------------------- #

    def charge(self, node: str, kind: str, units: int = 1) -> None:
        """Debit ``units`` operations of ``kind`` against ``node``."""
        cost = self.costs_ms.get(kind, 0.0) * units
        if cost:
            self.busy_ms[node] += cost
            self.busy_by_kind[kind] += cost
        self.op_counts[kind] += units

    # -- sampling (docker stats every N seconds, §IV-C2) -------------------- #

    def start_sampling(
        self,
        loop: EventLoop,
        nodes: list[str],
        *,
        interval_ms: float = 5000.0,
    ) -> None:
        """Begin periodic utilisation sampling for ``nodes``.

        The sampler reschedules itself forever; ``run_until`` bounds it.
        """
        if interval_ms <= 0:
            raise ValueError(f"interval must be > 0 ms, got {interval_ms!r}")

        def _tick() -> None:
            now = loop.now
            for node in nodes:
                busy = self.busy_ms[node]
                delta = busy - self._last_sampled_busy[node]
                self._last_sampled_busy[node] = busy
                self.samples.append(
                    UtilizationSample(
                        time_ms=now,
                        node=node,
                        percent_of_core=100.0 * delta / interval_ms,
                    )
                )
            loop.schedule(interval_ms, _tick, priority=PRIORITY_CONTROL)

        loop.schedule(interval_ms, _tick, priority=PRIORITY_CONTROL)

    def utilization_series(self, node: str) -> tuple[list[float], list[float]]:
        """``(times_ms, percent_of_core)`` for one node."""
        times = [s.time_ms for s in self.samples if s.node == node]
        vals = [s.percent_of_core for s in self.samples if s.node == node]
        return times, vals

    def saturated(self, node: str, wall_ms: float) -> bool:
        """Whether ``node`` accumulated more CPU than its cores provide."""
        return self.busy_ms[node] > self.cores * wall_ms

    def mean_utilization(self, node: str) -> float:
        """Mean sampled utilisation (percent of one core)."""
        vals = [s.percent_of_core for s in self.samples if s.node == node]
        return sum(vals) / len(vals) if vals else 0.0
