"""Cluster assembly: wire sim + net + raft + policy into a runnable system.

``build_cluster`` is the single entry point every experiment, example and
integration test uses.  The *only* thing that differs between the paper's
four systems is the ``policy_factory`` argument:

====================  =====================================================
System                policy_factory
====================  =====================================================
Raft (baseline)       ``lambda name: StaticPolicy.raft_default()``
Raft-Low              ``lambda name: StaticPolicy.raft_low()``
Dynatune              ``lambda name: DynatunePolicy(DynatuneConfig())``
Fix-K                 ``lambda name: DynatunePolicy(DynatuneConfig(fixed_k=10))``
====================  =====================================================
"""

from __future__ import annotations

import dataclasses
from typing import Callable

from repro.cluster.capacity import CostModel
from repro.dynatune.policy import TuningPolicy
from repro.net.delay_models import NormalJitterDelay
from repro.net.link import Link
from repro.net.loss_models import BernoulliLoss
from repro.net.network import Network
from repro.net.topology import ClockModel, aws_geo_topology, uniform_topology
from repro.raft.client import RaftClient
from repro.raft.membership import ClusterConfig as MembershipConfig
from repro.raft.node import RaftNode
from repro.raft.state_machine import KVStore
from repro.raft.types import RaftConfig
from repro.sim.clock import NodeClock
from repro.sim.events import PRIORITY_CONTROL
from repro.sim.loop import EventLoop
from repro.sim.process import ProcessState
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceLog, TraceRecord
from repro.storage import DiskFaultConfig, SimDiskStorage, Storage

__all__ = ["ClusterConfig", "Cluster", "build_cluster"]


@dataclasses.dataclass(slots=True, frozen=True)
class ClusterConfig:
    """Shape and environment of a simulated cluster.

    Attributes:
        n_nodes: cluster size (paper uses 5, 17, 65).
        seed: experiment seed — every random stream derives from it.
        rtt_ms: uniform pairwise RTT (ignored for the AWS topology).
        jitter_sigma_ms: Gaussian one-way jitter; 0 disables.  Default
            0.1 ms matches a netem constant-delay path (§IV-B injects no
            intentional jitter; kernel queueing leaves ~0.1 ms).  This
            matters: Dynatune at zero loss sends exactly one heartbeat per
            election timeout (K = 1, h = Et), so the false-timeout rate is
            roughly ``jitter / Et`` per heartbeat — 1 ms of jitter would be
            an order of magnitude noisier than the paper's testbed.
        loss: initial per-direction loss rate.
        duplicate_p: UDP duplication probability.
        raft: protocol configuration shared by all nodes.
        topology: ``"uniform"`` (single-host testbed) or ``"aws"``
            (five-region geo deployment, §IV-D).
        cores_per_node: container CPU allocation (4 in §IV-A, 2 in §IV-C2).
        with_cost_model: enable CPU accounting (small overhead; the
            election-focused experiments leave it off).
        storage: durable-storage backend — ``"ideal"`` (the always-durable
            default; bit-identical to the pre-storage behaviour) or
            ``"simdisk"`` (checksummed WAL with seeded fault injection,
            one ``disk/<name>`` RNG stream per node).
        disk_faults: fault knobs for the simdisk backend (ignored for
            ideal storage).
        clock_skew_ms: per-node clock offset bound — each node's local
            clock starts ``uniform(-skew, +skew)`` ms off simulation
            time, drawn from a dedicated ``clock/<name>`` stream.  The
            default 0.0 builds identity clocks and **consumes nothing
            from any stream** (bit-identical to pre-clock seeds).
        clock_drift: per-node fractional rate-error bound — each node's
            clock runs at ``1 + uniform(-drift, +drift)`` relative to
            simulation time (0.01 ≈ a 1 % fast/slow crystal).  Same
            zero-draw default as ``clock_skew_ms``.
    """

    n_nodes: int = 5
    seed: int = 1
    rtt_ms: float = 100.0
    jitter_sigma_ms: float = 0.1
    loss: float = 0.0
    duplicate_p: float = 0.0
    raft: RaftConfig = dataclasses.field(default_factory=RaftConfig)
    topology: str = "uniform"
    cores_per_node: float = 4.0
    with_cost_model: bool = False
    storage: str = "ideal"
    disk_faults: DiskFaultConfig | None = None
    clock_skew_ms: float = 0.0
    clock_drift: float = 0.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError(f"n_nodes must be >= 1, got {self.n_nodes!r}")
        if self.topology not in ("uniform", "aws"):
            raise ValueError(f"topology must be 'uniform' or 'aws', got {self.topology!r}")
        if self.storage not in ("ideal", "simdisk"):
            raise ValueError(
                f"storage must be 'ideal' or 'simdisk', got {self.storage!r}"
            )
        if self.clock_skew_ms < 0.0:
            raise ValueError(
                f"clock_skew_ms must be >= 0, got {self.clock_skew_ms!r}"
            )
        if not 0.0 <= self.clock_drift < 1.0:
            raise ValueError(
                f"clock_drift must be in [0, 1), got {self.clock_drift!r}"
            )


class Cluster:
    """A wired, runnable cluster (returned by :func:`build_cluster`)."""

    def __init__(
        self,
        config: ClusterConfig,
        loop: EventLoop,
        rngs: RngRegistry,
        trace: TraceLog,
        network: Network,
        nodes: dict[str, RaftNode],
        cost_model: CostModel | None,
        placement: dict[str, str] | None,
        policy_factory: Callable[[str], TuningPolicy] | None = None,
    ) -> None:
        self.config = config
        self.loop = loop
        self.rngs = rngs
        self.trace = trace
        self.network = network
        self.nodes = nodes
        self.cost_model = cost_model
        #: node → AWS region (``None`` for the uniform topology).
        self.placement = placement
        #: Kept so :meth:`spawn_node` can mint a policy for a joiner.
        self._policy_factory = policy_factory
        self._clients: list[RaftClient] = []
        self._started = False
        self._membership_enabled = False
        #: Removal targets already scheduled for decommissioning (the
        #: ``config_commit`` record fires once per node that applies it).
        self._finalized: set[str] = set()

    # -- lifecycle ----------------------------------------------------------- #

    @property
    def names(self) -> list[str]:
        return list(self.nodes)

    def start(self) -> None:
        """Arm every node's initial election timer."""
        if self._started:
            raise RuntimeError("cluster already started")
        self._started = True
        for node in self.nodes.values():
            node.start()

    def run_until(self, t_ms: float) -> None:
        self.loop.run_until(t_ms)

    def run_for(self, duration_ms: float) -> None:
        self.loop.run_until(self.loop.now + duration_ms)

    # -- queries ----------------------------------------------------------------- #

    def node(self, name: str) -> RaftNode:
        return self.nodes[name]

    def add_client(
        self,
        name: str,
        *,
        rtt_ms: float | None = None,
        retry_timeout_ms: float = 1000.0,
        history: object | None = None,
        resubmit_on_timeout: bool = True,
    ) -> RaftClient:
        """Attach a client endpoint with links to every cluster node.

        Args:
            rtt_ms: client↔server RTT; defaults to the cluster's pairwise
                RTT (clients co-located with the service, as in §IV-B2).
            history: optional operation recorder (see
                :class:`repro.fuzz.history.OpHistory`).
            resubmit_on_timeout: pass ``False`` for the at-most-once client
                the linearizability oracle requires.
        """
        rtt = self.config.rtt_ms if rtt_ms is None else rtt_ms
        client = RaftClient(
            self.loop,
            name,
            self.network,
            self.names,
            retry_timeout_ms=retry_timeout_ms,
            trace=self.trace,
            history=history,
            resubmit_on_timeout=resubmit_on_timeout,
        )
        for peer in self.names:
            for src, dst in ((name, peer), (peer, name)):
                self.network.add_link(
                    Link(
                        src,
                        dst,
                        delay=NormalJitterDelay(
                            rtt / 2.0, self.config.jitter_sigma_ms
                        ),
                        loss=BernoulliLoss(self.config.loss),
                        rng=self.rngs.stream(f"net/{src}->{dst}"),
                    )
                )
        self.network.attach(client)
        self._clients.append(client)
        return client

    def leader(self) -> str | None:
        """The live leader with the highest term, or ``None``.

        Transiently two nodes can believe they lead (a deposed leader that
        has not yet heard of its successor); the higher term is the real
        one by election safety.  A decommissioned ex-leader still carries
        its old role attribute but is no part of the cluster.
        """
        leaders = [
            n
            for n in self.nodes.values()
            if n.is_leader and n.state is not ProcessState.STOPPED
        ]
        if not leaders:
            return None
        return max(leaders, key=lambda n: n.current_term).name

    def alive_nodes(self) -> list[RaftNode]:
        return [n for n in self.nodes.values() if n.alive]

    def run_until_leader(
        self, *, timeout_ms: float = 60_000.0, exclude: str | None = None
    ) -> str:
        """Advance the simulation until a leader (≠ ``exclude``) exists.

        Raises:
            TimeoutError: if no leader emerges within ``timeout_ms``.
        """
        deadline = self.loop.now + timeout_ms
        while self.loop.now < deadline:
            leader = self.leader()
            if leader is not None and leader != exclude:
                return leader
            if not self.loop.step():
                break
            # step() may overshoot many events at the same instant; the
            # loop above re-checks after every single event for precision.
        leader = self.leader()
        if leader is not None and leader != exclude:
            return leader
        raise TimeoutError(
            f"no leader (excluding {exclude!r}) within {timeout_ms} ms "
            f"(t={self.loop.now})"
        )

    # -- dynamic membership -------------------------------------------------- #

    def members(self) -> list[str]:
        """Names of nodes not decommissioned (spawned nodes included,
        removed nodes excluded).  ``nodes`` itself keeps every node ever
        part of the cluster so post-run verifiers can inspect the departed.
        """
        return [
            n.name for n in self.nodes.values() if n.state is not ProcessState.STOPPED
        ]

    def enable_membership(self) -> None:
        """Arm the decommissioning hook for dynamic-membership runs.

        Subscribes a trace listener that watches for committed ``remove``
        config entries and — as the operator would — stops the departed
        node and unplugs it from the fabric.  Opt-in (and idempotent)
        because a live trace listener forces record construction for every
        event kind; static-cluster runs keep the trace fast path.
        :meth:`spawn_node` and the membership scenario steps call this
        automatically.
        """
        if self._membership_enabled:
            return
        self._membership_enabled = True
        self.trace.subscribe(self._on_trace_record)

    def _on_trace_record(self, rec: TraceRecord) -> None:
        # Trace listeners must not re-enter the log, and stop()/detach()
        # both trace — so decommissioning is deferred to a control event.
        # First sighting wins: every member that applies the entry emits
        # its own config_commit record.
        if rec.kind != "config_commit" or rec.fields.get("change") != "remove":
            return
        target = rec.fields.get("target")
        if target is None or target in self._finalized:
            return
        self._finalized.add(target)
        self.loop.schedule(
            0.0,
            lambda name=target: self._finalize_removal(name),
            priority=PRIORITY_CONTROL,
        )

    def _finalize_removal(self, name: str) -> None:
        """Decommission a removed node: stop it (terminal — stale timers and
        in-flight deliveries become no-ops), detach its endpoint (sends to
        it become silent drops), and drop it from client rotations."""
        node = self.nodes.get(name)
        if node is not None:
            node.stop()
        self.network.detach(name)
        for client in self._clients:
            client.forget_server(name)
        self.trace.record(self.loop.now, "cluster", "node_decommissioned", target=name)

    def spawn_node(self, name: str) -> RaftNode:
        """Add a fresh node to a running cluster as a non-voting learner.

        Wires full-mesh links between the newcomer and every attached
        endpoint (nodes *and* clients), attaches and starts it, and adds it
        to client rotations.  The node starts with a learner-only
        configuration — it learns the real membership from the leader's
        append/snapshot stream once some member proposes ``add_learner``
        for it; until then it cannot campaign or vote.

        Names are never reused: a decommissioned node's identity stays
        retired (its old links remain as dead wiring).
        """
        if name in self.nodes:
            raise ValueError(f"node name {name!r} already used (names are not reused)")
        if self._policy_factory is None:
            raise RuntimeError("cluster was built without a policy_factory")
        if self.config.topology != "uniform":
            raise ValueError("spawn_node supports the uniform topology only")
        self.enable_membership()
        cfg = self.config
        for peer in self.network.node_names():
            for src, dst in ((name, peer), (peer, name)):
                self.network.add_link(
                    Link(
                        src,
                        dst,
                        delay=NormalJitterDelay(cfg.rtt_ms / 2.0, cfg.jitter_sigma_ms),
                        loss=BernoulliLoss(cfg.loss),
                        duplicate_p=cfg.duplicate_p,
                        rng=self.rngs.stream(f"net/{src}->{dst}"),
                    )
                )
        node = RaftNode(
            loop=self.loop,
            name=name,
            peers=[name],
            network=self.network,
            config=cfg.raft,
            policy=self._policy_factory(name),
            state_machine=KVStore(),
            trace=self.trace,
            rng=self.rngs.stream(f"raft/{name}"),
            cost_model=self.cost_model,
            initial_config=MembershipConfig(voters=(), learners=(name,)),
            storage=_node_storage(cfg, self.rngs, name),
            clock=_node_clock(cfg, self.rngs, self.loop, name),
        )
        self.network.attach(node)
        self.nodes[name] = node
        for client in self._clients:
            client.add_server(name)
        if self._started:
            node.start()
        return node


def _node_storage(
    config: ClusterConfig, rngs: RngRegistry, name: str
) -> Storage | None:
    """Mint one node's storage backend (``None`` → the node's own ideal
    default).  Simdisk draws from a dedicated ``disk/<name>`` stream so
    fault draws never perturb the raft/net streams existing seeds pin."""
    if config.storage == "ideal":
        return None
    return SimDiskStorage(rngs.stream(f"disk/{name}"), config.disk_faults)


def _node_clock(
    config: ClusterConfig, rngs: RngRegistry, loop: EventLoop, name: str
) -> NodeClock | None:
    """Mint one node's local clock (``None`` → the node's own identity
    default).  Skew/drift draw from a dedicated ``clock/<name>`` stream so
    clock draws never perturb the raft/net/disk streams existing seeds
    pin; both knobs at 0.0 touch no stream at all (zero-draw)."""
    if config.clock_skew_ms == 0.0 and config.clock_drift == 0.0:
        return None
    rng = rngs.stream(f"clock/{name}")
    skew = config.clock_skew_ms
    offset = float(rng.uniform(-skew, skew)) if skew > 0.0 else 0.0
    bound = config.clock_drift
    drift = float(rng.uniform(-bound, bound)) if bound > 0.0 else 0.0
    return NodeClock(loop, offset_ms=offset, drift=drift)


def build_cluster(
    config: ClusterConfig,
    policy_factory: Callable[[str], TuningPolicy],
    *,
    node_prefix: str = "n",
) -> Cluster:
    """Construct a cluster per ``config`` with one policy per node."""
    loop = EventLoop()
    rngs = RngRegistry(config.seed)
    trace = TraceLog()
    network = Network(loop, rngs)
    names = [f"{node_prefix}{i}" for i in range(1, config.n_nodes + 1)]

    placement: dict[str, str] | None = None
    if config.topology == "uniform":
        uniform_topology(
            network,
            names,
            rtt_ms=config.rtt_ms,
            jitter_sigma_ms=config.jitter_sigma_ms,
            loss=config.loss,
            duplicate_p=config.duplicate_p,
        )
    else:
        placement = aws_geo_topology(network, names, loss=config.loss)

    cost_model = (
        CostModel(cores=config.cores_per_node) if config.with_cost_model else None
    )

    nodes: dict[str, RaftNode] = {}
    for name in names:
        node = RaftNode(
            loop=loop,
            name=name,
            peers=names,
            network=network,
            config=config.raft,
            policy=policy_factory(name),
            state_machine=KVStore(),
            trace=trace,
            rng=rngs.stream(f"raft/{name}"),
            cost_model=cost_model,
            storage=_node_storage(config, rngs, name),
            clock=_node_clock(config, rngs, loop, name),
        )
        network.attach(node)
        nodes[name] = node

    return Cluster(
        config=config,
        loop=loop,
        rngs=rngs,
        trace=trace,
        network=network,
        nodes=nodes,
        cost_model=cost_model,
        placement=placement,
        policy_factory=policy_factory,
    )
