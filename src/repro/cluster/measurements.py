"""Measurement extraction — the paper's log-scraping step (§IV-A).

The paper computes, from server log timestamps:

* **detection time** — leader failure → first follower election timeout;
* **OTS time** — leader failure → new leader elected;
* **election time** — their difference (discussed in §IV-E);
* the **randomizedTimeout** in force at detection (§IV-B1);
* **leaderless (OTS) intervals** for the Fig. 6 background shading;
* per-second **randomizedTimeout samples** for the Fig. 6 main series.

All extraction works on the shared :class:`~repro.sim.tracing.TraceLog`.
For the AWS experiment (Fig. 8) a :class:`~repro.net.topology.ClockModel`
can be supplied: every timestamp is then read through the emitting node's
skewed clock, reproducing the "tens of milliseconds" NTP measurement error
the paper warns about.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.net.topology import ClockModel
from repro.sim.tracing import TraceLog, TraceRecord

__all__ = [
    "FailureEpisode",
    "extract_failure_episodes",
    "leaderless_intervals",
    "total_interval_length",
    "randomized_timeout_matrix",
    "kth_smallest_series",
]

#: Trace kind emitted by the harness when it fails the leader.
LEADER_FAILURE_KIND = "fault_leader_pause"


@dataclasses.dataclass(slots=True, frozen=True)
class FailureEpisode:
    """One induced leader failure and its resolution.

    All ``*_ms`` values are as *measured from logs* — i.e. after clock-model
    skew when one is in use.
    """

    failed_leader: str
    failure_time_ms: float
    detection_time_ms: float | None
    new_leader_time_ms: float | None
    detector: str | None
    new_leader: str | None
    randomized_timeout_at_detection_ms: float | None
    #: Time the (f+1)-th *distinct* node detected — the instant a majority
    #: has lost sight of the leader, which is what lets a pre-vote succeed
    #: (the paper's Fig. 6 uses the same f+1 logic for its sampled series).
    majority_detection_time_ms: float | None = None
    #: Mean of all followers' armed randomizedTimeouts at the failure
    #: instant (the §IV-B1 "mean randomizedTimeout" statistic; the
    #: per-detector value above is min-biased by construction).
    randomized_timeout_cluster_mean_ms: float | None = None

    @property
    def detection_latency_ms(self) -> float | None:
        if self.detection_time_ms is None:
            return None
        return self.detection_time_ms - self.failure_time_ms

    @property
    def majority_detection_latency_ms(self) -> float | None:
        if self.majority_detection_time_ms is None:
            return None
        return self.majority_detection_time_ms - self.failure_time_ms

    @property
    def ots_ms(self) -> float | None:
        if self.new_leader_time_ms is None:
            return None
        return self.new_leader_time_ms - self.failure_time_ms

    @property
    def election_latency_ms(self) -> float | None:
        """Detection → new leader (the §IV-E decomposition)."""
        if self.detection_time_ms is None or self.new_leader_time_ms is None:
            return None
        return self.new_leader_time_ms - self.detection_time_ms

    @property
    def resolved(self) -> bool:
        return self.detection_time_ms is not None and self.new_leader_time_ms is not None


def _read(clock: ClockModel | None, rec: TraceRecord) -> float:
    return rec.time if clock is None else clock.read(rec.node, rec.time)


def _snapshot_mean(snapshots: list[TraceRecord], t: float) -> float | None:
    """Mean follower randomizedTimeout from the snapshot at instant ``t``."""
    best: TraceRecord | None = None
    for rec in snapshots:
        if rec.time > t:
            break
        best = rec
    if best is None:
        return None
    values = list(best.get("values", {}).values())
    return float(sum(values) / len(values)) if values else None


def extract_failure_episodes(
    trace: TraceLog,
    *,
    clock: ClockModel | None = None,
    cluster_size: int | None = None,
) -> list[FailureEpisode]:
    """Pair every induced leader failure with its detection and re-election.

    Detection is the first ``election_timeout`` by any *other* node after
    the failure instant; resolution is the first ``become_leader`` by any
    other node.  Both searches are bounded by the next induced failure so
    episodes never bleed into each other.
    """
    failures = trace.of_kind(LEADER_FAILURE_KIND)
    timeouts = trace.of_kind("election_timeout")
    leaders = trace.of_kind("become_leader")
    snapshots = trace.of_kind("rt_snapshot")
    if cluster_size is None:
        members = {r.node for r in timeouts} | {r.node for r in leaders}
        members |= {r.node for r in failures}
        cluster_size = len(members)
    need = cluster_size // 2 + 1

    episodes: list[FailureEpisode] = []
    for i, failure in enumerate(failures):
        window_end = failures[i + 1].time if i + 1 < len(failures) else math.inf
        detection = next(
            (
                r
                for r in timeouts
                if failure.time <= r.time < window_end and r.node != failure.node
            ),
            None,
        )
        # (f+1)-th distinct detector: walk timeouts until a majority of the
        # cluster (counting the dead leader as "lost") has detected.
        majority_rec: TraceRecord | None = None
        if detection is not None:
            seen: set[str] = {failure.node}
            for r in timeouts:
                if failure.time <= r.time < window_end and r.node != failure.node:
                    seen.add(r.node)
                    if len(seen) >= need:
                        majority_rec = r
                        break
        new_leader = next(
            (
                r
                for r in leaders
                if failure.time <= r.time < window_end and r.node != failure.node
            ),
            None,
        )
        episodes.append(
            FailureEpisode(
                failed_leader=failure.node,
                failure_time_ms=_read(clock, failure),
                detection_time_ms=_read(clock, detection) if detection else None,
                new_leader_time_ms=_read(clock, new_leader) if new_leader else None,
                detector=detection.node if detection else None,
                new_leader=new_leader.node if new_leader else None,
                randomized_timeout_at_detection_ms=(
                    detection.get("randomized_timeout_ms") if detection else None
                ),
                majority_detection_time_ms=(
                    _read(clock, majority_rec) if majority_rec else None
                ),
                randomized_timeout_cluster_mean_ms=_snapshot_mean(
                    snapshots, failure.time
                ),
            )
        )
    return episodes


def leaderless_intervals(
    trace: TraceLog,
    *,
    t_start: float = 0.0,
    t_end: float,
) -> list[tuple[float, float]]:
    """Periods with no acting leader (the Fig. 6 OTS shading).

    The timeline starts leaderless.  ``become_leader`` installs a leader;
    the leadership ends when that node steps down, loses quorum, crashes,
    or is failed by the harness (``fault_leader_pause``).  A *newer*
    ``become_leader`` transfers leadership without a gap (by election
    safety the old leader is already deposed or about to learn it is).

    Sub-election-timeout operational stalls (``stall_pause``) are *not*
    leadership ends: the paper's OTS shading is derived from election
    events in server logs, which a 100–700 ms scheduler stall never
    reaches unless it actually triggers an election (in which case the
    resulting ``step_down``/``become_leader`` records are captured here).
    """
    relevant = trace.of_kinds(
        "become_leader",
        "step_down",
        "quorum_lost",
        "process_crashed",
        LEADER_FAILURE_KIND,
    )
    intervals: list[tuple[float, float]] = []
    leader: str | None = None
    gap_start = t_start
    for rec in relevant:
        if rec.time > t_end:
            break
        if rec.kind == "become_leader":
            if leader is None and rec.time > gap_start:
                intervals.append((gap_start, rec.time))
            leader = rec.node
        elif rec.node == leader:
            leader = None
            gap_start = rec.time
    if leader is None and t_end > gap_start:
        intervals.append((gap_start, t_end))
    return intervals


def total_interval_length(intervals: list[tuple[float, float]]) -> float:
    """Sum of interval lengths (total OTS over a run)."""
    return float(sum(b - a for a, b in intervals))


def randomized_timeout_matrix(
    trace: TraceLog,
    node_names: list[str],
) -> tuple[np.ndarray, np.ndarray]:
    """Collect the harness sampler's ``rt_sample`` records into arrays.

    Returns:
        ``(times_ms, values)`` where ``values[i, j]`` is node ``j``'s
        randomizedTimeout at sample instant ``i``.  Samples where a node
        was paused carry ``NaN``.
    """
    samples = trace.of_kind("rt_sample")
    by_time: dict[float, dict[str, float]] = {}
    for rec in samples:
        by_time.setdefault(rec.time, {})[rec.node] = rec.get("value", math.nan)
    times = np.array(sorted(by_time), dtype=np.float64)
    values = np.full((len(times), len(node_names)), np.nan)
    index = {n: j for j, n in enumerate(node_names)}
    for i, t in enumerate(times):
        for node, v in by_time[t].items():
            j = index.get(node)
            if j is not None:
                values[i, j] = v
    return times, values


def kth_smallest_series(values: np.ndarray, k: int) -> np.ndarray:
    """Per-row k-th smallest (1-based), ignoring NaNs.

    Fig. 6 plots the ``f+1``-smallest (3rd of 5) randomizedTimeout: the
    value at which a *majority* of servers would have lost sight of the
    leader, which is what gates a successful pre-vote.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k!r}")
    out = np.full(values.shape[0], np.nan)
    for i in range(values.shape[0]):
        row = values[i]
        finite = np.sort(row[~np.isnan(row)])
        if len(finite) >= k:
            out[i] = finite[k - 1]
    return out
