"""Experiment harness: cluster wiring, faults, workloads, measurements.

This package plays the role of the paper's experiment scripts: it builds
clusters (§IV-A), injects leader failures by "putting the container to
sleep" (§IV-B1), replays network schedules, samples randomizedTimeout and
CPU utilisation, and extracts detection/OTS times from the trace the same
way the paper greps server logs.
"""

from repro.cluster.builder import Cluster, ClusterConfig, build_cluster
from repro.cluster.capacity import DEFAULT_COSTS_MS, CostModel
from repro.cluster.faults import StallInjector, StallProfile, pause_for
from repro.cluster.harness import ClusterHarness
from repro.cluster.measurements import (
    FailureEpisode,
    extract_failure_episodes,
    leaderless_intervals,
    randomized_timeout_matrix,
)
from repro.cluster.workload import (
    FluidWorkloadConfig,
    LoadLevelResult,
    OpenLoopDriver,
    run_rps_staircase,
)

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterHarness",
    "CostModel",
    "DEFAULT_COSTS_MS",
    "FailureEpisode",
    "FluidWorkloadConfig",
    "LoadLevelResult",
    "OpenLoopDriver",
    "StallInjector",
    "StallProfile",
    "build_cluster",
    "extract_failure_episodes",
    "leaderless_intervals",
    "pause_for",
    "randomized_timeout_matrix",
    "run_rps_staircase",
]
