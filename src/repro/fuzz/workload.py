"""Concurrent-client KV workload whose operations form a checkable history.

The driver attaches a handful of at-most-once clients
(``resubmit_on_timeout=False`` — see :class:`~repro.raft.client.RaftClient`)
to a cluster and runs each as a sequential loop: submit one operation,
wait for its completion *or* its abandonment, think, submit the next.
Every operation lands in a shared :class:`~repro.fuzz.history.OpHistory`
the linearizability checker consumes afterwards.

Design constraints, all load-bearing for the oracle:

* **sequential clients** — a client never has two of its own ops open by
  choice (an abandoned op may still complete late; that only tightens the
  history), matching the sequential-process model linearizability assumes;
* **contended keys** — the key space is tiny by default so concurrent
  clients collide, which is where linearizability violations live;
* **unique put values** — every put writes ``"<client>:<seq>"``, so the
  checker can distinguish every write (the Jepsen register recipe);
* **determinism** — all randomness comes from named streams of the
  cluster's :class:`~repro.sim.rng.RngRegistry`, so a (seed, scenario)
  pair replays bit-for-bit.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.builder import Cluster
from repro.fuzz.history import OpHistory
from repro.raft.state_machine import kv_delete, kv_get, kv_put
from repro.sim.events import PRIORITY_CONTROL

__all__ = ["WorkloadConfig", "WorkloadDriver"]


@dataclasses.dataclass(slots=True, frozen=True)
class WorkloadConfig:
    """Shape of the fuzz workload.

    Attributes:
        n_clients: concurrent sequential clients.
        n_keys: size of the (deliberately small) key space.
        op_timeout_ms: client abandon timeout per operation.
        think_min_ms / think_max_ms: uniform gap between an op settling
            and the next submission.
        p_put / p_get: op mix (the remainder are deletes).
        start_ms: first submissions (staggered per client).
        max_ops_per_client: hard cap keeping per-key sub-histories small
            enough for the checker.
        read_fastpath: route gets over the leader's read fast path
            (ReadIndex / lease serving) instead of log serialization.
            ``False`` is the default and what every existing reproducer
            file implies — fast-path reads are *claimed* linearizable,
            and this knob puts that claim in front of the checker.
        read_only_clients: the first this-many clients issue only gets
            (monitors/dashboards — the consumers read leases exist for).
            A read-only client never hits the write path's timeouts, so
            it stays parked on whichever node keeps answering — exactly
            the observer that notices a fenced-off leader serving stale
            lease reads.  ``0`` is the default and what every existing
            reproducer file implies.
        client_rtt_ms: client↔server RTT; ``None`` (the default, and what
            every existing reproducer file implies) keeps the cluster's
            pairwise RTT.  The serving bench sets it low to model clients
            co-located with the serving edge of a geo-replicated cluster.
    """

    n_clients: int = 3
    n_keys: int = 2
    op_timeout_ms: float = 1200.0
    think_min_ms: float = 40.0
    think_max_ms: float = 260.0
    p_put: float = 0.5
    p_get: float = 0.35
    start_ms: float = 400.0
    max_ops_per_client: int = 40
    read_fastpath: bool = False
    read_only_clients: int = 0
    client_rtt_ms: float | None = None

    def __post_init__(self) -> None:
        if self.n_clients < 1 or self.n_keys < 1:
            raise ValueError("workload needs >= 1 client and >= 1 key")
        if not (0 <= self.read_only_clients <= self.n_clients):
            raise ValueError("need 0 <= read_only_clients <= n_clients")
        if self.op_timeout_ms <= 0.0:
            raise ValueError("op_timeout_ms must be > 0")
        if not (0.0 <= self.p_put and 0.0 <= self.p_get and self.p_put + self.p_get <= 1.0):
            raise ValueError("op mix probabilities must be in [0, 1] and sum <= 1")
        if self.think_min_ms < 0.0 or self.think_max_ms < self.think_min_ms:
            raise ValueError("need 0 <= think_min_ms <= think_max_ms")

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "WorkloadConfig":
        return cls(**data)


class WorkloadDriver:
    """Runs the closed-loop clients of one fuzz trial."""

    def __init__(
        self,
        cluster: Cluster,
        config: WorkloadConfig,
        history: OpHistory,
        *,
        stop_ms: float,
    ) -> None:
        self.cluster = cluster
        self.config = config
        self.history = history
        self.stop_ms = stop_ms
        self.clients = []
        #: per-client issued-op counter; doubles as the chaining token.
        self._issued: list[int] = []
        self._settled: list[bool] = []
        self._rngs = []

    def install(self) -> None:
        """Attach the clients and schedule their first submissions."""
        cfg = self.config
        loop = self.cluster.loop
        for i in range(cfg.n_clients):
            name = f"fc{i + 1}"
            client = self.cluster.add_client(
                name,
                rtt_ms=cfg.client_rtt_ms,
                retry_timeout_ms=cfg.op_timeout_ms,
                history=self.history,
                resubmit_on_timeout=False,
            )
            self.clients.append(client)
            self._issued.append(0)
            self._settled.append(True)
            self._rngs.append(self.cluster.rngs.stream(f"fuzz/client/{name}"))
            # Stagger the first ops so clients do not march in lockstep.
            first = cfg.start_ms + float(self._rngs[i].uniform(0.0, cfg.think_max_ms))
            loop.schedule_at(
                first, _IssueOp(self, i, 0), priority=PRIORITY_CONTROL
            )

    # ------------------------------------------------------------------ #
    # per-client loop
    # ------------------------------------------------------------------ #

    def _issue(self, ci: int, token: int) -> None:
        if token != self._issued[ci]:
            return  # a newer op already superseded this chain link
        cfg = self.config
        now = self.cluster.loop.now
        if now >= self.stop_ms or self._issued[ci] >= cfg.max_ops_per_client:
            return
        rng = self._rngs[ci]
        client = self.clients[ci]
        key = f"k{int(rng.integers(cfg.n_keys)) + 1}"
        seq = self._issued[ci]
        is_read = False
        if ci < cfg.read_only_clients:
            command = kv_get(key)
            is_read = cfg.read_fastpath
        else:
            draw = float(rng.random())
            if draw < cfg.p_put:
                command = kv_put(key, f"{client.name}:{seq}")
            elif draw < cfg.p_put + cfg.p_get:
                command = kv_get(key)
                is_read = cfg.read_fastpath
            else:
                command = kv_delete(key)
        self._issued[ci] = seq + 1
        self._settled[ci] = False
        client.submit(
            command,
            on_complete=lambda done, c=ci, t=seq + 1: self._settle(c, t),
            read=is_read,
        )
        # Fallback: if the op neither completes nor is superseded by the
        # time the client has abandoned it, move on regardless.
        self.cluster.loop.schedule(
            cfg.op_timeout_ms + cfg.think_max_ms,
            _Settle(self, ci, seq + 1),
            priority=PRIORITY_CONTROL,
        )

    def _settle(self, ci: int, token: int) -> None:
        """An op completed or timed out; chain the next submission once."""
        if token != self._issued[ci] or self._settled[ci]:
            return
        self._settled[ci] = True
        rng = self._rngs[ci]
        think = float(rng.uniform(self.config.think_min_ms, self.config.think_max_ms))
        self.cluster.loop.schedule(
            think, _IssueOp(self, ci, token), priority=PRIORITY_CONTROL
        )

    # -- stats ----------------------------------------------------------- #

    @property
    def ops_issued(self) -> int:
        return sum(self._issued)


class _IssueOp:
    """Bound issue callback (no late-binding closures in the event loop)."""

    __slots__ = ("_driver", "_ci", "_token")

    def __init__(self, driver: WorkloadDriver, ci: int, token: int) -> None:
        self._driver = driver
        self._ci = ci
        self._token = token

    def __call__(self) -> None:
        self._driver._issue(self._ci, self._token)


class _Settle:
    __slots__ = ("_driver", "_ci", "_token")

    def __init__(self, driver: WorkloadDriver, ci: int, token: int) -> None:
        self._driver = driver
        self._ci = ci
        self._token = token

    def __call__(self) -> None:
        self._driver._settle(self._ci, self._token)
