"""Seeded random scenario generation.

:class:`ScenarioGen` composes random typed steps into *valid*
:class:`~repro.scenarios.scenario.Scenario` timelines: every generated
scenario passes the step constructors' validation, references only nodes
the cluster has (plus the ``"@leader"`` selector), and round-trips
byte-identically through ``to_dict``/``from_dict`` — the fuzz campaign's
workers regenerate scenarios from seeds alone.

Two biases aim the randomness at the regimes where adaptive election
parameters break:

* **conflict windows** — step times cluster around *other* steps' times,
  offset by fractions of the election timeout, so faults land exactly
  where detection/election races live (BALLAST's observation: adversarial
  schedules, not uniform noise, break learned timeouts);
* **wreckage with recovery** — a generated partition usually (not always)
  gets a later heal and a crash usually gets a recover, so most timelines
  return to a configuration where liveness — and therefore a non-trivial
  client history — is possible, while a tail of scenarios still probes
  permanent damage.

All drawn numbers are rounded to fixed decimal grids and converted to
built-in Python types, keeping JSON round-trips exact and diffs readable.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.scenarios.scenario import Scenario
from repro.scenarios.steps import (
    LEADER_SELECTOR,
    AddNode,
    BlockLink,
    Churn,
    Crash,
    DiskFault,
    Flap,
    GrayLink,
    Heal,
    Partition,
    Pause,
    Recover,
    RemoveNode,
    Repeat,
    SetClock,
    SetLoss,
    SetRtt,
    Step,
)

__all__ = ["GenConfig", "ScenarioGen"]

#: Step kinds and their relative draw weights.
_KIND_WEIGHTS: tuple[tuple[str, float], ...] = (
    ("partition", 0.22),
    ("flap", 0.13),
    ("set_rtt", 0.13),
    ("set_loss", 0.10),
    ("pause", 0.16),
    ("crash", 0.10),
    ("churn", 0.08),
    ("heal", 0.08),
)


@dataclasses.dataclass(slots=True, frozen=True)
class GenConfig:
    """Knobs of the scenario generator.

    Attributes:
        n_nodes: cluster size the scenarios target (nodes ``n1..nN``).
        horizon_ms: steps are placed in ``[0, horizon_ms]``.
        min_steps / max_steps: primary step count range (paired
            heal/recover follow-ups may exceed ``max_steps``).
        et_ms: election-timeout scale used for conflict-window offsets.
        conflict_bias: probability a step time is drawn near an existing
            step (offset by a fraction of ``et_ms``) instead of uniformly.
        p_leader_selector: probability a node reference is ``"@leader"``.
        p_repair: probability a partition/crash gets a heal/recover.
        rtt_range_ms / loss_range / pause_range_ms / flap_down_range_ms:
            parameter ranges for the corresponding step kinds.
        p_compaction_lag: probability a scenario additionally carries a
            *compaction-pressure* pattern — one concrete node crashed
            early and recovered only after a long lag window
            (``lag_range_ms``), so a cluster running with small
            compaction thresholds is forced to compact past the lagger's
            match index and serve it a snapshot on return.  ``0.0`` (the
            default) draws **nothing** from the stream, keeping every
            existing seed's scenario byte-identical.
        lag_range_ms: crash→recover gap of the compaction-pressure lagger.
        p_membership: probability a scenario additionally carries a
            *membership-churn* pattern — one fresh node joins
            (learner → voter) and, usually, one original member is removed
            afterwards, so the faults above land across live
            reconfigurations.  Same zero-draw guarantee as
            ``p_compaction_lag``: ``0.0`` (the default) consumes nothing
            from the stream, so every existing seed replays unchanged.
        membership_gap_range_ms: add→remove gap of the membership pair
            (long enough for the join to commit before the removal races
            the rest of the timeline).
        p_disk_fault: probability a scenario additionally carries a
            *disk-fault* pattern — one or two :class:`~repro.scenarios.
            steps.DiskFault` windows turning on crash-point / torn-tail /
            bit-flip / IO-error / stall injection for a stretch of the
            run (trials on ideal storage skip them).  Same zero-draw
            guarantee as the other optional patterns: ``0.0`` (the
            default) consumes nothing from the stream.
        p_gray: probability a scenario additionally carries a *gray
            fault* — an asymmetric link impairment (a one-direction
            :class:`~repro.scenarios.steps.BlockLink`, or a
            :class:`~repro.scenarios.steps.GrayLink` with heavy loss and
            delay) over a finite window.  Same zero-draw guarantee:
            ``0.0`` (the default) consumes nothing from the stream.
        gray_loss_range: loss-rate range of a generated gray degradation.
        gray_window_range_ms: duration range of a gray/one-way window.
        p_clock_skew: probability a scenario additionally carries a
            *clock-skew* pattern — :class:`~repro.scenarios.steps.
            SetClock` steps giving one or two nodes an offset and drift,
            usually snapped back to true later.  Offsets/drifts are kept
            small enough (see ``clock_offset_range_ms`` /
            ``clock_drift_max``) that un-injected campaigns stay inside
            the lease drift margin — skew shifts timings without making
            correct protocols fail.  Same zero-draw guarantee.
        clock_offset_range_ms: absolute clock-step range (sign is drawn).
        clock_drift_max: absolute drift-rate bound (sign is drawn).
    """

    n_nodes: int = 5
    horizon_ms: float = 25_000.0
    min_steps: int = 2
    max_steps: int = 8
    et_ms: float = 1_000.0
    conflict_bias: float = 0.5
    p_leader_selector: float = 0.25
    p_repair: float = 0.8
    rtt_range_ms: tuple[float, float] = (10.0, 400.0)
    loss_range: tuple[float, float] = (0.0, 0.25)
    pause_range_ms: tuple[float, float] = (100.0, 3_500.0)
    flap_down_range_ms: tuple[float, float] = (50.0, 1_500.0)
    p_compaction_lag: float = 0.0
    lag_range_ms: tuple[float, float] = (6_000.0, 15_000.0)
    p_membership: float = 0.0
    membership_gap_range_ms: tuple[float, float] = (4_000.0, 12_000.0)
    p_disk_fault: float = 0.0
    p_gray: float = 0.0
    gray_loss_range: tuple[float, float] = (0.6, 0.98)
    gray_window_range_ms: tuple[float, float] = (2_000.0, 12_000.0)
    p_clock_skew: float = 0.0
    clock_offset_range_ms: tuple[float, float] = (10.0, 100.0)
    clock_drift_max: float = 0.02

    def __post_init__(self) -> None:
        if self.n_nodes < 3:
            raise ValueError(f"fuzz scenarios need >= 3 nodes, got {self.n_nodes!r}")
        if not (1 <= self.min_steps <= self.max_steps):
            raise ValueError("need 1 <= min_steps <= max_steps")
        if self.horizon_ms <= 0.0 or self.et_ms <= 0.0:
            raise ValueError("horizon_ms and et_ms must be > 0")
        if not (0.0 <= self.conflict_bias <= 1.0):
            raise ValueError("conflict_bias must be in [0, 1]")
        if not (0.0 <= self.p_compaction_lag <= 1.0):
            raise ValueError("p_compaction_lag must be in [0, 1]")
        if not (0.0 <= self.p_membership <= 1.0):
            raise ValueError("p_membership must be in [0, 1]")
        if not (0.0 <= self.p_disk_fault <= 1.0):
            raise ValueError("p_disk_fault must be in [0, 1]")
        if not (0.0 <= self.p_gray <= 1.0):
            raise ValueError("p_gray must be in [0, 1]")
        if not (0.0 <= self.p_clock_skew <= 1.0):
            raise ValueError("p_clock_skew must be in [0, 1]")
        g_lo, g_hi = self.gray_loss_range
        if not (0.0 <= g_lo <= g_hi <= 1.0):
            raise ValueError(
                f"gray_loss_range must be an ascending range inside [0, 1], "
                f"got {self.gray_loss_range!r}"
            )
        if not (0.0 <= self.clock_drift_max < 1.0):
            raise ValueError(
                f"clock_drift_max must be in [0, 1), got {self.clock_drift_max!r}"
            )
        lo, hi = self.membership_gap_range_ms
        if not (0.0 < lo <= hi):
            raise ValueError(
                f"membership_gap_range_ms must be an ascending positive "
                f"range, got {self.membership_gap_range_ms!r}"
            )

    @property
    def node_names(self) -> tuple[str, ...]:
        return tuple(f"n{i}" for i in range(1, self.n_nodes + 1))

    _TUPLE_FIELDS = (
        "rtt_range_ms",
        "loss_range",
        "pause_range_ms",
        "flap_down_range_ms",
        "lag_range_ms",
        "membership_gap_range_ms",
        "gray_loss_range",
        "gray_window_range_ms",
        "clock_offset_range_ms",
    )

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        for field in self._TUPLE_FIELDS:
            d[field] = list(d[field])
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "GenConfig":
        payload = dict(data)
        for field in cls._TUPLE_FIELDS:
            if field in payload:
                payload[field] = tuple(payload[field])
        return cls(**payload)


def _grid(value: float, decimals: int = 1) -> float:
    """Snap a draw to a fixed decimal grid as a plain Python float."""
    return float(round(float(value), decimals))


class ScenarioGen:
    """Deterministic scenario factory: ``generate(seed)`` is a pure function."""

    def __init__(self, config: GenConfig | None = None) -> None:
        self.config = config if config is not None else GenConfig()

    # ------------------------------------------------------------------ #
    # draws
    # ------------------------------------------------------------------ #

    def _draw_time(self, rng: np.random.Generator, anchors: list[float]) -> float:
        cfg = self.config
        if anchors and float(rng.random()) < cfg.conflict_bias:
            # Conflict window: land within ~[-Et/2, +1.5 Et) of an existing
            # step — where its detection/election race is still in flight.
            anchor = anchors[int(rng.integers(len(anchors)))]
            t = anchor + float(rng.uniform(-0.5, 1.5)) * cfg.et_ms
        else:
            t = float(rng.uniform(0.0, cfg.horizon_ms))
        return _grid(min(max(t, 0.0), cfg.horizon_ms))

    def _draw_node(self, rng: np.random.Generator) -> str:
        cfg = self.config
        if float(rng.random()) < cfg.p_leader_selector:
            return LEADER_SELECTOR
        return cfg.node_names[int(rng.integers(cfg.n_nodes))]

    def _draw_pair(self, rng: np.random.Generator) -> tuple[str, str]:
        names = self.config.node_names
        i, j = rng.choice(len(names), size=2, replace=False)
        a, b = names[int(i)], names[int(j)]
        if float(rng.random()) < self.config.p_leader_selector:
            a = LEADER_SELECTOR
        return a, b

    def _maybe_repeat(
        self, rng: np.random.Generator, *, min_every_ms: float, p: float = 0.35
    ) -> Repeat | None:
        if float(rng.random()) >= p:
            return None
        every = _grid(min_every_ms * float(rng.uniform(1.2, 4.0)))
        times = int(rng.integers(2, 6))
        return Repeat(every_ms=every, times=times)

    # ------------------------------------------------------------------ #
    # step constructors
    # ------------------------------------------------------------------ #

    def _gen_partition(
        self, rng: np.random.Generator, t: float, steps: list[Step]
    ) -> None:
        cfg = self.config
        names = list(cfg.node_names)
        # Island 1..n-1 victims, listed; the rest (and the clients) stay
        # in the implicit group, so the majority side usually keeps its
        # client-facing connectivity.
        k = int(rng.integers(1, cfg.n_nodes))
        victims = [names[int(i)] for i in rng.choice(cfg.n_nodes, size=k, replace=False)]
        if float(rng.random()) < cfg.p_leader_selector:
            victims[0] = LEADER_SELECTOR
        if k >= 2 and float(rng.random()) < 0.4:
            cut = int(rng.integers(1, k))
            groups: tuple[tuple[str, ...], ...] = (
                tuple(victims[:cut]),
                tuple(victims[cut:]),
            )
        else:
            groups = (tuple(victims),)
        steps.append(Partition(at_ms=t, groups=groups))
        if float(rng.random()) < cfg.p_repair:
            heal_at = _grid(t + float(rng.uniform(500.0, 8_000.0)))
            steps.append(Heal(at_ms=heal_at))

    def _gen_crash(self, rng: np.random.Generator, t: float, steps: list[Step]) -> None:
        cfg = self.config
        node = self._draw_node(rng)
        steps.append(Crash(at_ms=t, node=node))
        if float(rng.random()) < cfg.p_repair:
            back_at = _grid(t + float(rng.uniform(500.0, 6_000.0)))
            # "@leader" at recovery time rarely resolves to the crashed
            # node; recover a concrete node instead so the repair lands.
            target = (
                node
                if node != LEADER_SELECTOR
                else cfg.node_names[int(rng.integers(cfg.n_nodes))]
            )
            steps.append(Recover(at_ms=back_at, node=target))

    def _gen_step(self, rng: np.random.Generator, t: float, steps: list[Step]) -> None:
        cfg = self.config
        draw = float(rng.random())
        acc = 0.0
        kind = _KIND_WEIGHTS[-1][0]
        total = sum(w for _, w in _KIND_WEIGHTS)
        for name, weight in _KIND_WEIGHTS:
            acc += weight / total
            if draw < acc:
                kind = name
                break
        if kind == "partition":
            self._gen_partition(rng, t, steps)
        elif kind == "flap":
            a, b = self._draw_pair(rng)
            lo, hi = cfg.flap_down_range_ms
            down = _grid(float(rng.uniform(lo, hi)))
            steps.append(
                Flap(
                    at_ms=t,
                    a=a,
                    b=b,
                    down_ms=down,
                    repeat=self._maybe_repeat(rng, min_every_ms=down + 50.0, p=0.5),
                )
            )
        elif kind == "set_rtt":
            lo, hi = cfg.rtt_range_ms
            rtt = _grid(float(rng.uniform(lo, hi)))
            pair = self._draw_pair(rng) if float(rng.random()) < 0.5 else None
            steps.append(
                SetRtt(
                    at_ms=t,
                    rtt_ms=rtt,
                    pair=pair,
                    repeat=self._maybe_repeat(rng, min_every_ms=cfg.et_ms, p=0.25),
                )
            )
        elif kind == "set_loss":
            lo, hi = cfg.loss_range
            loss = float(round(float(rng.uniform(lo, hi)), 3))
            pair = self._draw_pair(rng) if float(rng.random()) < 0.5 else None
            steps.append(SetLoss(at_ms=t, loss=loss, pair=pair))
        elif kind == "pause":
            lo, hi = cfg.pause_range_ms
            duration = _grid(float(rng.uniform(lo, hi)))
            steps.append(
                Pause(
                    at_ms=t,
                    node=self._draw_node(rng),
                    duration_ms=duration,
                    repeat=self._maybe_repeat(rng, min_every_ms=duration + 100.0, p=0.3),
                )
            )
        elif kind == "crash":
            self._gen_crash(rng, t, steps)
        elif kind == "churn":
            names = list(cfg.node_names)
            size = int(rng.integers(2, cfg.n_nodes + 1))
            chosen = tuple(
                names[int(i)] for i in rng.choice(cfg.n_nodes, size=size, replace=False)
            )
            down = _grid(float(rng.uniform(300.0, 3_000.0)))
            fault = "crash" if float(rng.random()) < 0.5 else "pause"
            steps.append(
                Churn(
                    at_ms=t,
                    nodes=chosen,
                    down_ms=down,
                    fault=fault,
                    repeat=self._maybe_repeat(rng, min_every_ms=down + 200.0, p=0.7),
                )
            )
        else:  # heal
            steps.append(Heal(at_ms=t))

    # ------------------------------------------------------------------ #
    # entry point
    # ------------------------------------------------------------------ #

    def _gen_compaction_lag(self, rng: np.random.Generator, steps: list[Step]) -> None:
        """Compaction pressure: a concrete node crashes early and stays
        down across a long committed-history window, then recovers —
        under a small compaction threshold the leader must compact past
        its match index and the return is served via InstallSnapshot."""
        cfg = self.config
        node = cfg.node_names[int(rng.integers(cfg.n_nodes))]
        down_at = _grid(float(rng.uniform(0.0, cfg.horizon_ms * 0.3)))
        lo, hi = cfg.lag_range_ms
        back_at = _grid(down_at + float(rng.uniform(lo, hi)))
        steps.append(Crash(at_ms=down_at, node=node))
        steps.append(Recover(at_ms=back_at, node=node))

    def _gen_membership(self, rng: np.random.Generator, steps: list[Step]) -> None:
        """Membership churn: one fresh node joins (learner, caught up,
        auto-promoted) and — usually — one original member is removed a
        while later, pairing the add with a remove so the timeline ends
        near its starting size.  The joiner's name extends past the
        static name space (``n<N+1>``), so it never collides with a
        concrete fault target drawn elsewhere in the scenario."""
        cfg = self.config
        fresh = f"n{cfg.n_nodes + 1}"
        add_at = _grid(float(rng.uniform(0.0, cfg.horizon_ms * 0.4)))
        steps.append(AddNode(at_ms=add_at, node=fresh))
        if float(rng.random()) < cfg.p_repair:
            lo, hi = cfg.membership_gap_range_ms
            rem_at = _grid(add_at + float(rng.uniform(lo, hi)))
            victim = (
                LEADER_SELECTOR
                if float(rng.random()) < cfg.p_leader_selector
                else cfg.node_names[int(rng.integers(cfg.n_nodes))]
            )
            steps.append(RemoveNode(at_ms=rem_at, node=victim))

    def _gen_disk_fault(self, rng: np.random.Generator, steps: list[Step]) -> None:
        """Disk-fault windows: one or two nodes get fallible disks for a
        stretch of the run.  Crash-point probability dominates (it is the
        durability oracle's bread and butter); torn tails and bit flips
        ride along at lower rates, and an occasional stall/IO-error mixes
        fail-stop and freeze semantics into the same window."""
        cfg = self.config
        n_windows = int(rng.integers(1, 3))
        for _ in range(n_windows):
            node = cfg.node_names[int(rng.integers(cfg.n_nodes))]
            at = _grid(float(rng.uniform(0.0, cfg.horizon_ms * 0.7)))
            duration = _grid(float(rng.uniform(2_000.0, cfg.horizon_ms * 0.6)))
            steps.append(
                DiskFault(
                    at_ms=at,
                    node=node,
                    p_crash_point=float(round(float(rng.uniform(0.02, 0.25)), 3)),
                    p_io_error=float(round(float(rng.uniform(0.0, 0.03)), 3)),
                    p_stall=float(round(float(rng.uniform(0.0, 0.08)), 3)),
                    p_torn_tail=float(round(float(rng.uniform(0.0, 0.5)), 3)),
                    p_bitflip=float(round(float(rng.uniform(0.0, 0.05)), 3)),
                    duration_ms=duration,
                )
            )

    def _gen_gray_split(
        self, rng: np.random.Generator, at: float, duration: float, steps: list[Step]
    ) -> None:
        """Gray split: two concrete nodes lose every server↔server link to
        the rest of the cluster (both directions) while all client links
        stay perfect — the fenced pair cannot tell it has been cut off.
        When the fire-time leader lands inside the pair this is the
        stale-leader shape: the fenced leader keeps hearing one fresh
        follower while the shielded majority elects a rival and commits,
        which is exactly the window a broken lease check serves stale
        reads into."""
        cfg = self.config
        names = cfg.node_names
        i, j = rng.choice(cfg.n_nodes, size=2, replace=False)
        fenced = {names[int(i)], names[int(j)]}
        for inner in sorted(fenced):
            for outer in names:
                if outer in fenced:
                    continue
                steps.append(
                    BlockLink(
                        at_ms=at,
                        a=inner,
                        b=outer,
                        direction="both",
                        duration_ms=duration,
                    )
                )

    def _gen_gray_fault(self, rng: np.random.Generator, steps: list[Step]) -> None:
        """Asymmetric link faults: a one-direction block (can send, cannot
        hear) or a gray degradation (heavy loss + delay, still trickling)
        on one ordered pair, over a finite window — or, sometimes, a full
        gray split (see :meth:`_gen_gray_split`)."""
        cfg = self.config
        lo, hi = cfg.gray_window_range_ms
        at = _grid(float(rng.uniform(0.0, cfg.horizon_ms * 0.7)))
        duration = _grid(float(rng.uniform(lo, hi)))
        if float(rng.random()) < 0.35:
            self._gen_gray_split(rng, at, duration, steps)
            return
        a, b = self._draw_pair(rng)
        direction = ("a_to_b", "b_to_a")[int(rng.integers(2))]
        if float(rng.random()) < 0.5:
            steps.append(
                BlockLink(
                    at_ms=at,
                    a=a,
                    b=b,
                    direction=direction,
                    duration_ms=duration,
                )
            )
        else:
            g_lo, g_hi = cfg.gray_loss_range
            steps.append(
                GrayLink(
                    at_ms=at,
                    a=a,
                    b=b,
                    direction=direction,
                    loss=float(round(float(rng.uniform(g_lo, g_hi)), 3)),
                    one_way_ms=_grid(float(rng.uniform(20.0, 250.0))),
                    duration_ms=duration,
                )
            )

    def _gen_clock_skew(self, rng: np.random.Generator, steps: list[Step]) -> None:
        """Clock skew: one or two concrete nodes get an offset + drift,
        each usually snapped back to true before the horizon.  Magnitudes
        stay under the lease drift margin so skew alone never makes a
        correct protocol fail — it only moves the timings that planted
        clock bugs hide behind."""
        cfg = self.config
        n_victims = int(rng.integers(1, 3))
        picks = rng.choice(cfg.n_nodes, size=n_victims, replace=False)
        for i in picks:
            node = cfg.node_names[int(i)]
            at = _grid(float(rng.uniform(0.0, cfg.horizon_ms * 0.5)))
            o_lo, o_hi = cfg.clock_offset_range_ms
            sign = 1.0 if float(rng.random()) < 0.5 else -1.0
            offset = _grid(sign * float(rng.uniform(o_lo, o_hi)))
            drift = float(
                round(float(rng.uniform(-cfg.clock_drift_max, cfg.clock_drift_max)), 4)
            )
            steps.append(SetClock(at_ms=at, node=node, offset_ms=offset, drift=drift))
            if float(rng.random()) < cfg.p_repair:
                back_at = _grid(at + float(rng.uniform(2_000.0, 10_000.0)))
                steps.append(SetClock(at_ms=back_at, node=node))

    def generate(self, seed: int) -> Scenario:
        """Generate the scenario for ``seed`` (pure: same seed, same bytes)."""
        cfg = self.config
        rng = np.random.default_rng(seed)
        n_primary = int(rng.integers(cfg.min_steps, cfg.max_steps + 1))
        steps: list[Step] = []
        anchors: list[float] = []
        for _ in range(n_primary):
            t = self._draw_time(rng, anchors)
            anchors.append(t)
            self._gen_step(rng, t, steps)
        # Guarded so the default (0.0) consumes no draw: every pre-existing
        # seed keeps producing exactly the same scenario bytes.
        if cfg.p_compaction_lag > 0.0 and float(rng.random()) < cfg.p_compaction_lag:
            self._gen_compaction_lag(rng, steps)
        if cfg.p_membership > 0.0 and float(rng.random()) < cfg.p_membership:
            self._gen_membership(rng, steps)
        if cfg.p_disk_fault > 0.0 and float(rng.random()) < cfg.p_disk_fault:
            self._gen_disk_fault(rng, steps)
        if cfg.p_gray > 0.0 and float(rng.random()) < cfg.p_gray:
            self._gen_gray_fault(rng, steps)
        if cfg.p_clock_skew > 0.0 and float(rng.random()) < cfg.p_clock_skew:
            self._gen_clock_skew(rng, steps)
        scenario = Scenario(
            f"fuzz-{seed}",
            steps,
            description=f"generated by ScenarioGen(seed={seed})",
        )
        scenario.validate_against(set(cfg.node_names))
        return scenario
