"""Deterministic scenario fuzzing with a linearizability oracle.

The scenario library covers the failure regimes we *anticipated*; this
package generates the ones we did not.  Its pieces compose into one
machine-checked property per run:

* :mod:`repro.fuzz.generator` — a seeded :class:`ScenarioGen` producing
  random-but-valid :class:`~repro.scenarios.scenario.Scenario` timelines,
  biased toward the conflict windows around election timeouts;
* :mod:`repro.fuzz.history` / :mod:`repro.fuzz.workload` — concurrent
  at-most-once KV clients whose invocations and completions form an
  operation history;
* :mod:`repro.fuzz.linearizability` — a Wing & Gong-style checker that
  decides whether that history is linearizable against the KV spec;
* :mod:`repro.fuzz.oracle` — one trial: cluster + scenario + workload +
  :class:`~repro.scenarios.safety.SafetyChecker` (event-hooked) +
  linearizability verdict;
* :mod:`repro.fuzz.shrinker` — delta debugging from a failing
  ``(config, scenario)`` pair down to a minimal JSON reproducer;
* :mod:`repro.fuzz.bugs` — deterministic safety-bug injectors used to
  prove, in tests and CI, that the oracle and shrinker actually fire.

:mod:`repro.experiments.fuzz_campaign` fans trials across processes with
the same determinism contract as every other experiment: results are
byte-identical for any ``REPRO_JOBS``.
"""

from repro.fuzz.generator import GenConfig, ScenarioGen
from repro.fuzz.history import KVOp, OpHistory
from repro.fuzz.linearizability import LinearizabilityResult, check_history
from repro.fuzz.oracle import FuzzTrialConfig, TrialResult, run_trial
from repro.fuzz.shrinker import ShrinkResult, shrink

__all__ = [
    "GenConfig",
    "ScenarioGen",
    "KVOp",
    "OpHistory",
    "LinearizabilityResult",
    "check_history",
    "FuzzTrialConfig",
    "TrialResult",
    "run_trial",
    "ShrinkResult",
    "shrink",
]
