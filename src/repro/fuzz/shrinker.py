"""Delta-debugging shrinker: failing scenario → minimal JSON reproducer.

Given a ``(FuzzTrialConfig, Scenario)`` pair whose trial reports
violations, :func:`shrink` deterministically searches for a smaller
scenario that still fails:

1. **ddmin over steps** — the classic Zeller/Hildebrandt loop: try
   dropping progressively finer chunks of the step list, keeping any
   reduction that still reproduces a violation;
2. **per-step simplification** — for each surviving step, try a fixed
   menu of simpler variants (drop ``repeat``, halve its ``times``, shrink
   durations, widen a per-pair impairment to global) and keep those that
   still fail;

both repeated to a fixpoint or the evaluation budget.  Every candidate is
evaluated by re-running the full trial — same seed, same oracle — so the
process is as deterministic as the simulator itself.

"Still fails" means *any* violation, not the identical message: shrinking
often simplifies one safety violation into a cleaner one, and pinning the
exact string would forbid exactly the simplifications we want.

:func:`write_reproducer` / :func:`load_reproducer` define the reproducer
JSON format the regression harness (``tests/fuzz/test_regressions.py``)
replays.  A reproducer's trial config never carries an injected bug —
the injection (if any) that revealed the scenario is recorded as metadata
only, so regression replays assert the *fixed* system stays clean on the
minimized timeline.
"""

from __future__ import annotations

import dataclasses
import json
import os
from typing import Any, Callable

from repro.fuzz.oracle import FuzzTrialConfig, TrialResult, run_trial
from repro.scenarios.scenario import Scenario
from repro.scenarios.steps import Step

__all__ = [
    "ShrinkResult",
    "shrink",
    "reproducer_dict",
    "write_reproducer",
    "load_reproducer",
]

REPRODUCER_FORMAT = "dynatune-fuzz-reproducer-v1"


@dataclasses.dataclass(slots=True, frozen=True)
class ShrinkResult:
    """Outcome of one shrink run.

    Attributes:
        scenario: the minimized scenario (still failing).
        violations: the minimized scenario's violations.
        evaluations: oracle runs spent.
        initial_steps / final_steps: step counts before/after.
    """

    scenario: Scenario
    violations: tuple[str, ...]
    evaluations: int
    initial_steps: int
    final_steps: int


def _step_variants(step: Step) -> list[Step]:
    """Simpler candidate replacements for one step, most aggressive first."""
    variants: list[Step] = []
    repeat = getattr(step, "repeat", None)
    if repeat is not None:
        variants.append(dataclasses.replace(step, repeat=None))
        if repeat.times > 2:
            variants.append(
                dataclasses.replace(
                    step,
                    repeat=dataclasses.replace(repeat, times=max(2, repeat.times // 2)),
                )
            )
    for field, floor in (("duration_ms", 100.0), ("down_ms", 100.0)):
        value = getattr(step, field, None)
        if value is not None and value > 2.0 * floor:
            try:
                variants.append(dataclasses.replace(step, **{field: float(value) / 2.0}))
            except ValueError:
                pass  # e.g. a Flap whose repeat period forbids the new down_ms
    if getattr(step, "pair", None) is not None:
        variants.append(dataclasses.replace(step, pair=None))
    if step.at_ms != round(step.at_ms, -2):
        rounded = max(0.0, float(round(step.at_ms, -2)))
        variants.append(dataclasses.replace(step, at_ms=rounded))
    return variants


def shrink(
    config: FuzzTrialConfig,
    scenario: Scenario,
    *,
    max_evals: int = 160,
    oracle: Callable[[FuzzTrialConfig, Scenario], TrialResult] = run_trial,
) -> ShrinkResult:
    """Minimize ``scenario`` while ``oracle(config, scenario)`` still fails.

    Raises:
        ValueError: if the initial pair does not fail (nothing to shrink).
    """
    evals = 0

    def fails(candidate: Scenario) -> bool:
        nonlocal evals
        evals += 1
        return bool(oracle(config, candidate).violations)

    if not fails(scenario):
        raise ValueError("shrink needs a failing (config, scenario) pair")
    initial_steps = len(scenario.steps)
    current = scenario

    # -- phase 1: ddmin over the step list ------------------------------- #
    steps = list(current.steps)
    granularity = 2
    while len(steps) >= 1 and evals < max_evals:
        chunk = max(1, len(steps) // granularity)
        reduced = False
        start = 0
        while start < len(steps) and evals < max_evals:
            candidate_steps = steps[:start] + steps[start + chunk :]
            if len(candidate_steps) == len(steps):
                break
            if fails(current.with_steps(candidate_steps)):
                steps = candidate_steps
                reduced = True
                # Same position now holds the next chunk; do not advance.
            else:
                start += chunk
        if reduced:
            granularity = max(2, granularity - 1)
        elif chunk == 1:
            break
        else:
            granularity = min(len(steps), granularity * 2)
    current = current.with_steps(steps)

    # -- phase 2: per-step simplification to a fixpoint ------------------- #
    improved = True
    while improved and evals < max_evals:
        improved = False
        for i, step in enumerate(list(current.steps)):
            for variant in _step_variants(step):
                if evals >= max_evals:
                    break
                candidate_steps = list(current.steps)
                candidate_steps[i] = variant
                candidate = current.with_steps(candidate_steps)
                if fails(candidate):
                    current = candidate
                    improved = True
                    break  # re-derive variants from the simpler step

    # Re-establish the minimized scenario's own verdict (cheap relative
    # to the search; determinism guarantees it still fails).
    final = oracle(config, current)
    evals += 1
    return ShrinkResult(
        scenario=current,
        violations=final.violations,
        evaluations=evals,
        initial_steps=initial_steps,
        final_steps=len(current.steps),
    )


# --------------------------------------------------------------------- #
# reproducer files
# --------------------------------------------------------------------- #


def reproducer_dict(
    config: FuzzTrialConfig,
    scenario: Scenario,
    violations: tuple[str, ...],
    *,
    meta: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """The canonical reproducer payload (strips any injected bug)."""
    trial = config.to_dict()
    injected = trial.pop("inject", None)
    trial["inject"] = None
    full_meta = dict(meta or {})
    if injected is not None:
        full_meta["found_with_injected_bug"] = injected
    return {
        "format": REPRODUCER_FORMAT,
        "trial": trial,
        "scenario": scenario.to_dict(),
        "violations_when_found": list(violations),
        "meta": full_meta,
    }


def write_reproducer(
    path: str,
    config: FuzzTrialConfig,
    scenario: Scenario,
    violations: tuple[str, ...],
    *,
    meta: dict[str, Any] | None = None,
) -> str:
    """Write a reproducer JSON file; returns ``path``."""
    payload = reproducer_dict(config, scenario, violations, meta=meta)
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_reproducer(path: str) -> tuple[FuzzTrialConfig, Scenario, dict[str, Any]]:
    """Load a reproducer file → ``(trial config, scenario, raw payload)``."""
    with open(path, encoding="utf-8") as fh:
        payload = json.load(fh)
    if payload.get("format") != REPRODUCER_FORMAT:
        raise ValueError(
            f"{path}: unknown reproducer format {payload.get('format')!r}"
        )
    config = FuzzTrialConfig.from_dict(payload["trial"])
    scenario = Scenario.from_dict(payload["scenario"])
    return config, scenario, payload
