"""Operation histories: what the clients observed, ready for checking.

A history is the client-side ground truth of a run: one :class:`KVOp` per
logical KV operation with its invocation time, completion time (if any)
and observed result.  :class:`OpHistory` is the recorder the
:class:`~repro.raft.client.RaftClient` feeds through its ``history`` hook;
the linearizability checker consumes the finished list.

Completion semantics mirror what a real client can know:

* **completed** — a success response arrived; the operation definitely
  took effect, and its linearization point lies inside
  ``[invoke_ms, return_ms]``.
* **open** — no response (timed out, gave up, or still in flight at the
  end of the run).  The operation *may* have taken effect at any time
  after its invocation, or never; the checker must consider both.  An
  open operation can still be completed by a late response — the tighter
  fact wins.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.raft.state_machine import KVCommand

__all__ = ["KVOp", "OpHistory"]


@dataclasses.dataclass(slots=True)
class KVOp:
    """One logical KV operation as the issuing client saw it.

    Attributes:
        client: issuing client name (each client is sequential).
        req_id: the client's request id (unique per client).
        op: ``"put"`` / ``"get"`` / ``"delete"``.
        key: target key.
        value: the argument of a put (``None`` otherwise).
        invoke_ms: submission time.
        return_ms: success-response time, or ``None`` while open.
        result: the observed result (meaningful only when completed).
    """

    client: str
    req_id: int
    op: str
    key: str
    value: Any
    invoke_ms: float
    return_ms: float | None = None
    result: Any = None

    @property
    def completed(self) -> bool:
        return self.return_ms is not None


class OpHistory:
    """Recorder for client operations (the ``history`` client hook)."""

    def __init__(self) -> None:
        self._ops: dict[tuple[str, int], KVOp] = {}

    # -- client hook protocol ------------------------------------------- #

    def invoke(self, client: str, req_id: int, command: Any, t: float) -> None:
        if not isinstance(command, KVCommand):
            raise TypeError(
                f"history can only record KVCommand ops, got {type(command).__name__}"
            )
        key = (client, req_id)
        if key in self._ops:
            raise ValueError(f"duplicate invocation for {key}")
        self._ops[key] = KVOp(
            client=client,
            req_id=req_id,
            op=command.op,
            key=command.key,
            value=command.value,
            invoke_ms=t,
        )

    def complete(self, client: str, req_id: int, result: Any, t: float) -> None:
        op = self._ops[(client, req_id)]
        op.return_ms = t
        op.result = result

    def abandon(self, client: str, req_id: int, t: float) -> None:
        """No-op marker: the op stays open (maybe applied, maybe not)."""
        # The KVOp is already in the open state; nothing to record.  The
        # method exists so the client hook protocol is explicit.
        if (client, req_id) not in self._ops:
            raise KeyError(f"abandon for unknown op {(client, req_id)}")

    # -- inspection ------------------------------------------------------ #

    def ops(self) -> list[KVOp]:
        """All operations in invocation order (client then id order ties)."""
        return sorted(self._ops.values(), key=lambda o: (o.invoke_ms, o.client, o.req_id))

    def completed_ops(self) -> list[KVOp]:
        return [o for o in self.ops() if o.completed]

    def open_ops(self) -> list[KVOp]:
        return [o for o in self.ops() if not o.completed]

    def __len__(self) -> int:
        return len(self._ops)
