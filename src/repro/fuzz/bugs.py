"""Deterministic safety-bug injection — the oracle's proof of life.

A fuzzer whose oracle has never caught anything is indistinguishable from
one that cannot.  These injectors plant known, deterministic safety bugs
into an otherwise healthy cluster so tests and CI can assert the whole
pipeline — generation, workload, safety checking, linearizability
checking, shrinking — actually fires end to end:

* ``commit_rewrite`` — at a fixed virtual time, rewrite the term of the
  entry at the victim's current commit index (a committed slot).  This is
  the "commit-index regression / committed-entry loss" bug class; the
  :class:`~repro.scenarios.safety.SafetyChecker`'s no-committed-entry-loss
  property catches it.
* ``stale_apply`` — every replica's state machine silently drops the
  N-th put while acknowledging it (replicas stay identical, so no safety
  property trips).  Only the *client-facing* oracle sees it: a later get
  returns the overwritten value and the history stops being linearizable.
* ``ack_before_sync`` — every node's persist barrier (``RaftNode._sync``)
  starts lying: it reports success without ever reaching the disk, so
  vote grants, append acks and commit decisions all externalize state
  that only exists in the volatile WAL tail.  Two seconds later a
  cluster-wide power loss fires (every node crashes at once) and the lie
  comes due: entries whose acknowledgements were counted into quorums
  vanish from every replica — the §5.2 bug class the durable-storage
  engine's ack-after-sync discipline exists to prevent, in its classic
  real-world shape (lying-fsync firmware + fleet power event).  The
  linearizability oracle catches the acked-then-lost writes, and the
  :class:`~repro.scenarios.safety.SafetyChecker`'s no-committed-entry-loss
  property the overwritten slots; on ideal storage it is vacuous (the
  trial must run ``disk=True``).
* ``stale_lease_under_skew`` — every leader's quorum-freshness
  bookkeeping starts anchoring at its single *freshest* peer response
  instead of the ``acks_needed``-th freshest; both consumers inherit the
  bug (check-quorum never steps the leader down, and the lease check —
  which additionally drops its drift margin — never lapses).  One chatty
  peer is not a quorum: fence the leader off from everyone *but* that
  peer (the gray-failure split) and the leader keeps serving lease reads
  indefinitely while the majority elects a rival and commits new
  writes — every lease read in that window returns stale data.  Clock
  skew widens the exposure (a skewed anchor ages at the wrong rate),
  which is what the dropped margin existed to absorb.  No safety
  property trips — replicas never diverge; only the client-facing
  linearizability oracle sees the stale read.  Vacuous unless the trial
  runs ``lease_reads=True``.
* ``greedy_remove`` — whenever a leader appends a ``remove`` config
  change, the resulting configuration silently sheds one *extra* voter,
  turning a one-at-a-time change into a two-at-a-time change whose old
  and new quorums need not intersect.  It fires only through the
  reconfiguration path, so shrinking a trial it fails keeps the
  membership step in the minimal scenario; the
  :class:`~repro.scenarios.safety.SafetyChecker`'s membership invariants
  (one-at-a-time, quorum overlap) catch it.

Injectors mutate one concrete cluster instance; they are installed inside
the trial worker, never pickled.
"""

from __future__ import annotations

import dataclasses
from typing import Any

from repro.cluster.builder import Cluster
from repro.raft.log import LogEntry
from repro.raft.state_machine import KVCommand, KVStore
from repro.raft.types import Role
from repro.sim.events import PRIORITY_CONTROL
from repro.sim.process import ProcessState

__all__ = ["BUG_KINDS", "install_bug"]

BUG_KINDS: tuple[str, ...] = (
    "commit_rewrite",
    "stale_apply",
    "greedy_remove",
    "ack_before_sync",
    "stale_lease_under_skew",
)

_NEG_INF = float("-inf")


def _commit_rewrite(cluster: Cluster) -> None:
    """Rewrite the committed tail of one running node's log.

    Every entry from the victim's commit index to its log end gets its
    term bumped by 1000, and the victim's ``current_term`` follows suit —
    keeping the *structural* log invariants (term monotonicity) intact so
    the protocol keeps running, while the *semantic* one (committed
    entries are immutable) is now broken.  The inflated log tends to win
    the next election and replicate the corruption, which is exactly how
    a real commit-safety bug metastasizes.
    """
    for name in sorted(cluster.nodes):
        node = cluster.nodes[name]
        if node.state is ProcessState.RUNNING and node.commit_index >= 1:
            index = node.commit_index
            if index <= node.log.last_included_index:
                # The slot is inside the compacted prefix; corrupt from the
                # first physically present entry instead.
                index = node.log.first_index
                if index > node.log.last_index:
                    continue  # fully compacted log: nothing to rewrite
            old_term = node.log.term_at(index)
            # Reach into the log the way real corruption would: no API
            # grows a "rewrite committed entries" method for a bug injector.
            entries = node.log._entries
            for i in range(index - node.log.last_included_index - 1, len(entries)):
                e = entries[i]
                entries[i] = LogEntry(
                    term=e.term + 1_000, index=e.index, command=e.command
                )
            # Deliberate protocol-state corruption: this injector exists to
            # prove the commit-safety oracle bites.
            node.current_term += 1_000  # repolint: disable=state-protected-write
            cluster.trace.record(
                cluster.loop.now,
                name,
                "bug_commit_rewrite",
                index=index,
                old_term=old_term,
            )
            return
    # Nobody committed anything yet: the bug has nothing to corrupt and
    # this trial is vacuously clean.


class _LossyKV(KVStore):
    """A KVStore that silently drops its ``drop_nth`` put (1-based)."""

    def __init__(self, drop_nth: int) -> None:
        super().__init__()
        self._drop_nth = drop_nth
        self._puts_seen = 0

    def apply(self, command: Any) -> Any:
        if isinstance(command, KVCommand) and command.op == "put":
            self._puts_seen += 1
            if self._puts_seen == self._drop_nth:
                # Acknowledge without storing.  Every replica counts the
                # same committed puts in the same order, so the divergence
                # from the spec is identical cluster-wide.
                self.applied_count += 1
                return command.value
        return super().apply(command)

    def reset(self) -> None:
        super().reset()
        self._puts_seen = 0


def _ack_before_sync(cluster: Cluster, crash_after_ms: float = 2_000.0) -> None:
    """Make every persist barrier lie, then collect with a power loss.

    The wrapped ``_sync`` returns ``True`` without calling
    ``storage.sync()``, so every vote grant, append ack and commit
    decision from here on externalizes state that lives only in the
    unsynced WAL tail.  ``crash_after_ms`` later the whole cluster loses
    power at once — every replica's volatile tail evaporates, taking
    acked (and typically committed) client writes with it.  Nodes come
    back via the simdisk auto-recovery the disk trials configure, and the
    post-recovery cluster serves reads that contradict the pre-crash
    acks.  Vacuous on ideal storage (there is nothing volatile to lose);
    the trial must run ``disk=True``.
    """
    victims = []
    for name in sorted(cluster.nodes):
        node = cluster.nodes[name]
        if node.storage.kind == "ideal":
            continue

        def broken_sync() -> bool:
            return True

        node._sync = broken_sync  # type: ignore[method-assign]
        victims.append(node)
        cluster.trace.record(
            cluster.loop.now, name, "bug_ack_before_sync", crash_after_ms=crash_after_ms
        )
    if not victims:
        return  # ideal storage everywhere: the lie has nothing to lose

    def power_loss() -> None:
        for node in victims:
            if node.state is ProcessState.RUNNING:
                node.crash()

    cluster.loop.schedule_at(
        cluster.loop.now + crash_after_ms, power_loss, priority=PRIORITY_CONTROL
    )


def _stale_lease_under_skew(cluster: Cluster) -> None:
    """Break every node's quorum-freshness judgment at its root.

    The (conceptual) bug is one line of bookkeeping: the leader judges
    "am I still in contact with a quorum?" by its single *freshest*
    voter-peer response instead of the ``acks_needed``-th freshest.  Both
    consumers of that judgment inherit it — the check-quorum step-down
    never fires while one chatty peer keeps acking heartbeats, and the
    read lease (which additionally drops its drift margin) never lapses.
    A leader fenced off from everyone but one peer therefore keeps
    serving lease reads indefinitely while the shielded majority elects
    a rival and commits past it; under clock skew even the honest
    anchor ages at the wrong rate, which is what the dropped margin
    existed to absorb.  No safety property trips — replicas never
    diverge; only the client-facing linearizability oracle sees the
    stale reads.  Vacuous unless the trial runs ``lease_reads=True``.
    """
    for name in sorted(cluster.nodes):
        node = cluster.nodes[name]

        def _freshest_ms(_node=node) -> float:
            last = _node._last_peer_response
            return max(
                (last.get(p, _NEG_INF) for p in _node._voter_peers),
                default=_NEG_INF,
            )

        def buggy_lease(_node=node, _freshest=_freshest_ms) -> bool:
            if not _node.config.check_quorum:
                return False
            if _node.commit_index < _node._term_start_index:
                return False
            bound = _node.policy.lease_bound_ms()
            if bound is None:
                return False
            if _node._acks_needed() == 0:
                return True
            # BUG: one fresh peer is not a quorum, and skipping the
            # margin stops absorbing response flight time and skew.
            return _node._now() - _freshest() < bound

        def buggy_quorum_tick(
            _node=node, _orig=node._quorum_tick, _freshest=_freshest_ms
        ) -> None:
            if _node.role is not Role.LEADER:
                return
            # BUG: the same freshest-anchor bookkeeping keeps check-quorum
            # convinced the quorum is intact as long as anyone answers.
            et = _node.policy.election_timeout_ms(None)
            if _node._acks_needed() > 0 and _node._now() - _freshest() <= et:
                _node._schedule_quorum_check()
                return
            _orig()

        node._lease_valid_for_reads = buggy_lease  # type: ignore[method-assign]
        node._quorum_tick = buggy_quorum_tick  # type: ignore[method-assign]
        cluster.trace.record(cluster.loop.now, name, "bug_stale_lease_under_skew")


def _greedy_remove(cluster: Cluster) -> None:
    """Make every leader's ``remove`` proposal shed one extra voter.

    The wrapped ``propose_config_change`` lets the real one-at-a-time
    change append, then rewrites the fresh config entry in place so its
    resulting configuration drops a second voter too — the appended
    entry replicates and commits carrying a two-voter jump.  The node's
    own name is never the extra victim (the corrupted leader must keep
    running to spread the entry), mirroring how a real bookkeeping bug
    in the reconfiguration path would metastasize.
    """
    for name in sorted(cluster.nodes):
        node = cluster.nodes[name]
        orig = node.propose_config_change

        def wrapped(kind: str, target: str, _node=node, _orig=orig) -> bool:
            ok = _orig(kind, target)
            if ok and kind == "remove":
                index, change = _node._config_log[-1]
                extras = [
                    v for v in sorted(change.config.voters) if v != _node.name
                ]
                if extras:
                    corrupted = dataclasses.replace(
                        change, config=change.config.without(extras[0])
                    )
                    entries = _node.log._entries
                    pos = index - _node.log.last_included_index - 1
                    e = entries[pos]
                    entries[pos] = LogEntry(
                        term=e.term, index=e.index, command=corrupted
                    )
                    # Deliberate config-record corruption (two-at-a-time
                    # removal): only the membership oracle may catch it.
                    _node._config_log[-1] = (index, corrupted)  # repolint: disable=state-protected-write
                    _node._refresh_membership()
                    cluster.trace.record(
                        cluster.loop.now,
                        _node.name,
                        "bug_greedy_remove",
                        index=index,
                        target=target,
                        extra=extras[0],
                    )
            return ok

        node.propose_config_change = wrapped  # type: ignore[method-assign]


def install_bug(cluster: Cluster, kind: str, at_ms: float) -> None:
    """Install bug ``kind`` on ``cluster`` (call before ``start()``).

    ``commit_rewrite`` fires at virtual time ``at_ms``; ``stale_apply``
    replaces every node's state machine immediately (``at_ms`` selects
    nothing for it — the N-th committed put is the trigger).
    """
    if kind == "commit_rewrite":
        cluster.loop.schedule_at(
            at_ms, lambda: _commit_rewrite(cluster), priority=PRIORITY_CONTROL
        )
        return
    if kind == "stale_apply":
        for node in cluster.nodes.values():
            node.state_machine = _LossyKV(drop_nth=3)
        return
    if kind == "greedy_remove":
        # Armed immediately; ``at_ms`` selects nothing — the trigger is
        # the scenario's own remove proposal.
        _greedy_remove(cluster)
        return
    if kind == "ack_before_sync":
        cluster.loop.schedule_at(
            at_ms, lambda: _ack_before_sync(cluster), priority=PRIORITY_CONTROL
        )
        return
    if kind == "stale_lease_under_skew":
        # Armed immediately; ``at_ms`` selects nothing — the trigger is a
        # lease read served while gray-isolated from the quorum.
        _stale_lease_under_skew(cluster)
        return
    raise ValueError(f"unknown bug kind {kind!r}; expected one of {BUG_KINDS}")
