"""Wing & Gong-style linearizability checking for KV histories.

Given the operation history a run's clients recorded, decide whether
there exists a total order of the operations that (a) respects real time
— an operation that returned before another was invoked must precede it —
and (b) is legal for the KV register spec: a ``get`` returns the latest
``put`` value (``None`` if absent), a ``delete`` returns the value it
removed.

Two structural facts keep the search tractable:

* **per-key independence** — KV operations on different keys commute and
  the store's per-key state is independent, so the history factors into
  one sub-history per key, each checked alone (the standard Knossos /
  Porcupine partitioning optimisation);
* **memoized DFS** — the classic Wing & Gong search over "which ops are
  already linearized" with Lowe's caching: a ``(linearized-set, state)``
  configuration reached twice is pruned the second time.

Open operations (no response observed) are handled soundly: each may be
linearized at any point after its invocation *or* never — both branches
are explored.  The search carries an explicit budget; a history that
exhausts it is reported as undecided rather than silently passed.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Hashable

from repro.fuzz.history import KVOp

__all__ = ["LinearizabilityResult", "check_history", "check_key_history"]

#: Default cap on DFS configurations explored per key.
DEFAULT_BUDGET = 500_000


@dataclasses.dataclass(slots=True, frozen=True)
class LinearizabilityResult:
    """Verdict for one history.

    Attributes:
        ok: the history is linearizable (only meaningful when decided).
        decided: the search finished within budget.
        key: the first offending key (``None`` when ok).
        reason: human-readable description of the failure.
        configs_explored: DFS configurations visited across all keys.
    """

    ok: bool
    decided: bool = True
    key: str | None = None
    reason: str | None = None
    configs_explored: int = 0

    def __bool__(self) -> bool:
        return self.ok and self.decided


def _hashable(value: Any) -> Hashable:
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


def _apply(state: Any, op: str, value: Any) -> tuple[Any, Any]:
    """KV register spec: ``state, op -> new_state, expected_result``."""
    if op == "put":
        return value, value
    if op == "get":
        return state, state
    if op == "delete":
        return None, state
    raise ValueError(f"unknown KV op {op!r}")


def check_key_history(
    ops: list[KVOp], *, budget: int = DEFAULT_BUDGET
) -> tuple[bool, bool, int]:
    """Check one key's sub-history.

    Returns:
        ``(ok, decided, configs_explored)``.
    """
    n = len(ops)
    if n == 0:
        return True, True, 0
    inv = [o.invoke_ms for o in ops]
    ret = [o.return_ms if o.completed else None for o in ops]
    kind = [o.op for o in ops]
    val = [_hashable(o.value) for o in ops]
    res = [_hashable(o.result) for o in ops]
    completed_mask = 0
    for i, r in enumerate(ret):
        if r is not None:
            completed_mask |= 1 << i

    seen: set[tuple[int, Hashable]] = set()
    explored = 0
    exhausted = False

    def dfs(mask: int, state: Hashable) -> bool:
        nonlocal explored, exhausted
        if mask & completed_mask == completed_mask:
            return True  # every completed op linearized; open ones optional
        cfg = (mask, state)
        if cfg in seen:
            return False
        if explored >= budget:
            exhausted = True
            return False
        seen.add(cfg)
        explored += 1
        # An op is a legal next linearization point iff no *other*
        # unlinearized completed op returned before it was invoked.
        bound = None
        for j in range(n):
            if not (mask >> j) & 1 and ret[j] is not None:
                if bound is None or ret[j] < bound:
                    bound = ret[j]
        for i in range(n):
            bit = 1 << i
            if mask & bit:
                continue
            if bound is not None and inv[i] > bound:
                continue
            new_state, expected = _apply(state, kind[i], val[i])
            if ret[i] is not None and expected != res[i]:
                continue  # completed op's observed result contradicts spec
            if dfs(mask | bit, new_state):
                return True
            if exhausted:
                return False
        return False

    ok = dfs(0, None)
    return ok, not exhausted, explored


def check_history(
    ops: list[KVOp], *, budget: int = DEFAULT_BUDGET
) -> LinearizabilityResult:
    """Check a full multi-key history (per-key factorization)."""
    by_key: dict[str, list[KVOp]] = {}
    for op in ops:
        by_key.setdefault(op.key, []).append(op)
    total = 0
    for key in sorted(by_key):
        sub = sorted(by_key[key], key=lambda o: (o.invoke_ms, o.client, o.req_id))
        ok, decided, explored = check_key_history(sub, budget=budget)
        total += explored
        if not decided:
            return LinearizabilityResult(
                ok=False,
                decided=False,
                key=key,
                reason=(
                    f"key {key!r}: undecided, search budget exhausted after "
                    f"{explored} configurations ({len(sub)} ops)"
                ),
                configs_explored=total,
            )
        if not ok:
            n_completed = sum(1 for o in sub if o.completed)
            return LinearizabilityResult(
                ok=False,
                key=key,
                reason=(
                    f"key {key!r}: no linearization of {len(sub)} ops "
                    f"({n_completed} completed) is consistent with the KV spec"
                ),
                configs_explored=total,
            )
    return LinearizabilityResult(ok=True, configs_explored=total)
