"""One fuzz trial: cluster + scenario + workload + the full oracle.

``run_trial(config, scenario)`` is the pure function everything else —
campaign workers, the shrinker, the regression harness — is built from:
it builds a cluster from the explicit seed, installs the scenario, an
event-hooked :class:`~repro.scenarios.safety.SafetyChecker` and the
at-most-once client workload, runs to a deterministic end time, and
reduces the run to a picklable :class:`TrialResult` whose ``violations``
tuple is empty iff every checked property held:

* the partition-safety properties (one leader per term — sampled *and*
  event-driven —, monotone commit, no committed-entry loss), and
* linearizability of the recorded client history against the KV spec.

An undecided linearizability search (budget exhausted) is reported via
``lin_undecided`` rather than folded into ``violations`` — an oracle must
not cry wolf on timeouts.
"""

from __future__ import annotations

import dataclasses

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.storage import DiskFaultConfig
from repro.experiments.common import make_policy_factory
from repro.fuzz.bugs import install_bug
from repro.fuzz.history import OpHistory
from repro.fuzz.linearizability import DEFAULT_BUDGET, check_history
from repro.fuzz.workload import WorkloadConfig, WorkloadDriver
from repro.raft.types import RaftConfig
from repro.scenarios.safety import SafetyChecker
from repro.scenarios.scenario import Scenario

__all__ = ["FuzzTrialConfig", "TrialResult", "run_trial"]


@dataclasses.dataclass(slots=True, frozen=True)
class FuzzTrialConfig:
    """Everything one trial needs besides the scenario itself.

    The pair ``(config, scenario)`` fully determines a trial — that is
    what the shrinker holds fixed (config) and minimizes (scenario), and
    what a reproducer file serializes.
    """

    system: str = "raft"
    n_nodes: int = 5
    seed: int = 1
    rtt_ms: float = 50.0
    loss: float = 0.0
    #: Run past the scenario's last effect (heal + converge window).
    settle_ms: float = 6_000.0
    #: Floor on total run time, so shrinking steps away cannot shrink the
    #: run under an injected bug's fire time.
    min_run_ms: float = 12_000.0
    safety_interval_ms: float = 250.0
    workload: WorkloadConfig = dataclasses.field(default_factory=WorkloadConfig)
    lin_budget: int = DEFAULT_BUDGET
    #: Optional injected bug (see :mod:`repro.fuzz.bugs`) — used to
    #: validate the oracle; reproducer files never carry it.
    inject: str | None = None
    inject_at_ms: float = 9_000.0
    #: Log-compaction pressure: with a small threshold the cluster keeps
    #: snapshotting under the fuzz workload and any lagging/recovered node
    #: exercises the InstallSnapshot path under the full oracle.  ``0``
    #: (the default, and what every existing reproducer file implies)
    #: disables compaction — bit-identical to the pre-compaction trials.
    compaction_threshold: int = 0
    compaction_margin: int = 8
    #: Dynamic membership: when ``True`` the scenario's AddNode/RemoveNode/
    #: ReplaceNode steps actually reconfigure the cluster (and the
    #: reconfiguration invariants join the oracle); when ``False`` (the
    #: default, and what every existing reproducer file implies) membership
    #: steps are traced no-ops — pre-membership timelines replay
    #: bit-identically.
    membership: bool = False
    #: Client-serving fast path under the oracle.  All three default off
    #: (what every existing reproducer file implies — pre-fast-path
    #: timelines replay bit-identically).  ``batching`` turns on
    #: leader-side append batching (2 ms window), ``pipelining`` the
    #: optimistic per-follower append stream, and ``lease_reads`` lease
    #: serving for fast-path gets (the workload's ``read_fastpath`` knob
    #: controls whether gets take the fast path at all).
    batching: bool = False
    pipelining: bool = False
    lease_reads: bool = False
    #: Durable storage under the oracle.  ``True`` runs every node on the
    #: simdisk backend (checksummed WAL, auto-recovery 1.5 s) so the
    #: scenario's DiskFault windows actually inject, and the durability
    #: invariant (synced committed state survives recovery) joins the
    #: oracle.  ``False`` (the default, and what every existing
    #: reproducer file implies) keeps ideal storage — pre-storage
    #: timelines replay bit-identically.
    disk: bool = False

    def __post_init__(self) -> None:
        if self.settle_ms < 0.0 or self.min_run_ms < 0.0:
            raise ValueError("settle_ms and min_run_ms must be >= 0")
        if self.compaction_threshold < 0 or self.compaction_margin < 0:
            raise ValueError("compaction_threshold and compaction_margin must be >= 0")

    def end_ms(self, scenario: Scenario) -> float:
        return max(scenario.end_ms + self.settle_ms, self.min_run_ms)

    def to_dict(self) -> dict:
        d = dataclasses.asdict(self)
        d["workload"] = self.workload.to_dict()
        return d

    @classmethod
    def from_dict(cls, data: dict) -> "FuzzTrialConfig":
        payload = dict(data)
        if "workload" in payload:
            payload["workload"] = WorkloadConfig.from_dict(payload["workload"])
        return cls(**payload)


@dataclasses.dataclass(slots=True, frozen=True)
class TrialResult:
    """One trial reduced to its oracle verdict and coverage counters."""

    violations: tuple[str, ...]
    lin_undecided: bool
    n_ops: int
    n_completed: int
    n_open: int
    steps_applied: int
    steps_skipped: int
    first_leader_ms: float | None
    duration_ms: float
    lin_configs: int
    #: Compaction coverage (0 when compaction is disabled).
    compactions: int = 0
    snapshots_installed: int = 0
    #: Membership coverage (all 0 when the membership knob is off).
    config_commits: int = 0
    nodes_added: int = 0
    nodes_removed: int = 0
    #: Fast-path coverage (all 0 with batching/read knobs off).
    batches_flushed: int = 0
    reads_readindex: int = 0
    reads_lease: int = 0
    #: Disk-fault coverage (all 0 with the disk knob off).
    disk_crash_points: int = 0
    disk_recoveries: int = 0
    wal_truncations: int = 0
    disk_corruptions: int = 0
    #: Gray-fault / clock-skew coverage (0 with the gray knobs off):
    #: applied one-way blocks + gray degradations, and applied clock sets.
    gray_faults: int = 0
    clock_skews: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


def run_trial(config: FuzzTrialConfig, scenario: Scenario) -> TrialResult:
    """Run one (config, scenario) trial and return its oracle verdict."""
    cluster = build_cluster(
        ClusterConfig(
            n_nodes=config.n_nodes,
            seed=config.seed,
            rtt_ms=config.rtt_ms,
            loss=config.loss,
            raft=RaftConfig(
                compaction_threshold=config.compaction_threshold,
                compaction_retain_margin=config.compaction_margin,
                client_batching=config.batching,
                client_batch_window_ms=2.0 if config.batching else 0.0,
                replication_pipelining=config.pipelining,
                lease_reads=config.lease_reads,
            ),
            storage="simdisk" if config.disk else "ideal",
            disk_faults=(
                # Fault probabilities stay 0 until a DiskFault step turns
                # them on; auto-recovery keeps crash-point kills from
                # becoming permanent node loss (the oracle wants the
                # recovery path exercised, not an ever-shrinking cluster).
                DiskFaultConfig(auto_recover_ms=1_500.0) if config.disk else None
            ),
        ),
        make_policy_factory(config.system),
    )
    checker = SafetyChecker(cluster, interval_ms=config.safety_interval_ms)
    checker.install(event_hooks=True)
    scenario.install(cluster, membership_enabled=config.membership)

    end = config.end_ms(scenario)
    history = OpHistory()
    driver = WorkloadDriver(
        cluster,
        config.workload,
        history,
        # Stop issuing early enough that the tail of ops can settle (or
        # be abandoned) before the run ends.
        stop_ms=max(
            config.workload.start_ms, end - 2.0 * config.workload.op_timeout_ms
        ),
    )
    driver.install()
    if config.inject is not None:
        install_bug(cluster, config.inject, config.inject_at_ms)

    cluster.start()
    cluster.run_until(end)

    violations = list(checker.verify())
    lin = check_history(history.ops(), budget=config.lin_budget)
    if lin.decided and not lin.ok:
        violations.append(f"linearizability: {lin.reason}")

    leaders = cluster.trace.of_kind("become_leader")
    steps = cluster.trace.of_kind("scenario_step")
    skipped = sum(1 for r in steps if r.get("skipped"))
    applied_kinds = [r.get("step") for r in steps if not r.get("skipped")]
    ops = history.ops()
    return TrialResult(
        violations=tuple(violations),
        lin_undecided=not lin.decided,
        n_ops=len(ops),
        n_completed=sum(1 for o in ops if o.completed),
        n_open=sum(1 for o in ops if not o.completed),
        steps_applied=len(steps) - skipped,
        steps_skipped=skipped,
        first_leader_ms=leaders[0].time if leaders else None,
        duration_ms=end,
        lin_configs=lin.configs_explored,
        compactions=len(cluster.trace.of_kind("log_compact")),
        snapshots_installed=len(cluster.trace.of_kind("snapshot_install")),
        config_commits=len(
            {r.get("index") for r in cluster.trace.of_kind("config_commit")}
        ),
        nodes_added=len(
            {
                r.get("index")
                for r in cluster.trace.of_kind("config_commit")
                if r.get("change") == "promote"
            }
        ),
        nodes_removed=len(cluster.trace.of_kind("node_decommissioned")),
        batches_flushed=sum(
            cluster.node(n).metrics.batches_flushed for n in cluster.names
        ),
        reads_readindex=sum(
            cluster.node(n).metrics.reads_served_readindex for n in cluster.names
        ),
        reads_lease=sum(
            cluster.node(n).metrics.reads_served_lease for n in cluster.names
        ),
        disk_crash_points=len(cluster.trace.of_kind("disk_crash_point"))
        + len(cluster.trace.of_kind("disk_io_error")),
        disk_recoveries=len(cluster.trace.of_kind("disk_recover")),
        wal_truncations=len(cluster.trace.of_kind("wal_truncated")),
        disk_corruptions=len(cluster.trace.of_kind("disk_corruption")),
        gray_faults=sum(1 for k in applied_kinds if k in ("block_link", "gray_link")),
        clock_skews=sum(1 for k in applied_kinds if k == "set_clock"),
    )
