"""The paper's primary contribution, re-exported under the canonical name.

The implementation lives in :mod:`repro.dynatune`; this alias package
exists so the repository layout exposes the contribution at
``repro.core`` as well.
"""

from repro.dynatune import *  # noqa: F401,F403
from repro.dynatune import __all__  # noqa: F401
