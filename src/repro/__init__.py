"""repro — reproduction of *Dynatune: Dynamic Tuning of Raft Election
Parameters Using Network Measurement* (Shiozaki & Nakamura, IPPS 2025,
arXiv:2507.15154).

Subpackages
-----------
``repro.sim``
    Deterministic discrete-event substrate (clock, loop, timers, RNG,
    tracing).
``repro.net``
    Network fabric: links, delay/loss models, UDP/TCP channel semantics,
    scripted schedules, topologies (the ``tc``/Docker substitute).
``repro.raft``
    Complete Raft: elections with pre-vote and lease protection, log
    replication, KV state machine, clients (the etcd substitute).
``repro.dynatune`` (alias ``repro.core``)
    The paper's contribution: heartbeat-based RTT/loss measurement and
    dynamic tuning of election timeout and heartbeat interval.
``repro.cluster``
    Experiment harness: cluster builder, fault injection, workloads, CPU
    cost model, measurement extraction.
``repro.analysis``
    CDFs, summary statistics, time-series utilities.
``repro.experiments``
    One module per paper figure; each regenerates the corresponding
    series/rows (see DESIGN.md §3 and EXPERIMENTS.md).

Quickstart
----------
>>> from repro import build_cluster, ClusterConfig, DynatunePolicy
>>> cluster = build_cluster(ClusterConfig(n_nodes=5, rtt_ms=100.0),
...                         lambda name: DynatunePolicy())
>>> cluster.start()
>>> leader = cluster.run_until_leader()
"""

from repro.cluster import (
    Cluster,
    ClusterConfig,
    ClusterHarness,
    CostModel,
    build_cluster,
    extract_failure_episodes,
)
from repro.dynatune import DynatuneConfig, DynatunePolicy, StaticPolicy
from repro.net import Network, NetworkSchedule
from repro.raft import KVStore, RaftClient, RaftConfig, RaftNode, Role, kv_get, kv_put
from repro.sim import EventLoop, TraceLog

__version__ = "1.0.0"

__all__ = [
    "Cluster",
    "ClusterConfig",
    "ClusterHarness",
    "CostModel",
    "DynatuneConfig",
    "DynatunePolicy",
    "EventLoop",
    "KVStore",
    "Network",
    "NetworkSchedule",
    "RaftClient",
    "RaftConfig",
    "RaftNode",
    "Role",
    "StaticPolicy",
    "TraceLog",
    "build_cluster",
    "extract_failure_episodes",
    "kv_get",
    "kv_put",
    "__version__",
]
