"""Network substrate: the simulator's replacement for Docker veth + ``tc``.

The paper shapes inter-container traffic with ``tc``/netem (delay and loss on
each container's interface, §IV-A) and switches Dynatune's heartbeats from
TCP to UDP (§III-E).  This package models the same stack:

* :mod:`~repro.net.delay_models` / :mod:`~repro.net.loss_models` — per-link
  delay distributions and loss processes (Bernoulli and bursty
  Gilbert–Elliott);
* :class:`~repro.net.link.Link` — a directed channel with delay, loss,
  duplication and reordering;
* :class:`~repro.net.network.Network` — the fabric: node registry, links,
  partitions;
* :mod:`~repro.net.transport` — ``udp`` (lossy, unordered) and ``tcp``
  (reliable, FIFO; loss shows up as retransmission delay) channel semantics;
* :class:`~repro.net.schedule.NetworkSchedule` — scripted, time-varying RTT
  and loss (the gradual/radical RTT patterns of §IV-C1 and the loss
  staircase of §IV-C2);
* :mod:`~repro.net.topology` — uniform meshes and the 5-region AWS geo
  topology of §IV-D, plus the NTP clock-offset model.
"""

from repro.net.delay_models import (
    ConstantDelay,
    DelayModel,
    LognormalJitterDelay,
    NormalJitterDelay,
    UniformJitterDelay,
)
from repro.net.link import Link
from repro.net.loss_models import BernoulliLoss, GilbertElliottLoss, LossModel, NoLoss
from repro.net.message import Message
from repro.net.network import Network
from repro.net.schedule import (
    NetworkSchedule,
    constant_profile,
    gradual_rtt_profile,
    loss_staircase_profile,
    radical_rtt_profile,
)
from repro.net.stats import LinkStats
from repro.net.topology import (
    AWS_REGIONS,
    AWS_RTT_MATRIX_MS,
    ClockModel,
    aws_geo_topology,
    uniform_topology,
)
from repro.net.transport import CHANNEL_TCP, CHANNEL_UDP, TcpChannelState

__all__ = [
    "AWS_REGIONS",
    "AWS_RTT_MATRIX_MS",
    "BernoulliLoss",
    "CHANNEL_TCP",
    "CHANNEL_UDP",
    "ClockModel",
    "ConstantDelay",
    "DelayModel",
    "GilbertElliottLoss",
    "Link",
    "LinkStats",
    "LognormalJitterDelay",
    "LossModel",
    "Message",
    "Network",
    "NetworkSchedule",
    "NoLoss",
    "NormalJitterDelay",
    "TcpChannelState",
    "UniformJitterDelay",
    "aws_geo_topology",
    "constant_profile",
    "gradual_rtt_profile",
    "loss_staircase_profile",
    "radical_rtt_profile",
    "uniform_topology",
]
