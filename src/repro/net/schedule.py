"""Scripted, time-varying network conditions (the ``tc`` scripts of §IV-C).

A :class:`NetworkSchedule` is a list of timed actions against the
:class:`~repro.net.network.Network`.  The three profile builders reproduce
the exact patterns of the paper:

* :func:`gradual_rtt_profile` — §IV-C1 pattern 1: RTT 50 → 200 → 50 ms in
  10 ms increments, one minute per value;
* :func:`radical_rtt_profile` — §IV-C1 pattern 2: 50 ms for one minute, step
  to 500 ms for one minute, back to 50 ms;
* :func:`loss_staircase_profile` — §IV-C2: loss 0 → 5 → 10 → 15 → 20 → 25 →
  30 → 25 → … → 0 %, three minutes per level, RTT pinned at 200 ms.

Actions mutate link parameters in place, exactly like ``tc qdisc change``:
packets already in flight keep the delay they sampled at send time.
"""

from __future__ import annotations

import bisect
import dataclasses
from typing import Callable

from repro.net.network import Network
from repro.sim.clock import MINUTE, SECOND
from repro.sim.events import PRIORITY_CONTROL
from repro.sim.loop import EventLoop

__all__ = [
    "ScheduleAction",
    "NetworkSchedule",
    "constant_profile",
    "gradual_rtt_profile",
    "radical_rtt_profile",
    "loss_staircase_profile",
]


@dataclasses.dataclass(slots=True, frozen=True)
class ScheduleAction:
    """One timed mutation of the network.

    The original form drove only the paper's global ``tc`` knobs (every
    pair's RTT/loss); the scenario engine needs the rest of what the fabric
    can do, so an action may also target one pair or mutate partitions.

    Attributes:
        at_ms: absolute virtual time the action applies.
        rtt_ms: if set, retarget the RTT — of every pair, or of ``pair``.
        loss: if set, retarget the loss rate — globally, or of ``pair``.
        pair: when set, ``rtt_ms``/``loss`` apply to this (a, b) path only
            (both directions, like targeted ``tc`` on one container pair).
        partitions: when set, install these partition groups (nodes absent
            from every group form the implicit final group).
        heal: when True, clear all partitions.
        label: human-readable description (shows up in traces).
    """

    at_ms: float
    rtt_ms: float | None = None
    loss: float | None = None
    pair: tuple[str, str] | None = None
    partitions: tuple[frozenset[str], ...] | None = None
    heal: bool = False
    label: str = ""

    def __post_init__(self) -> None:
        if self.pair is not None and self.rtt_ms is None and self.loss is None:
            raise ValueError("pair-targeted action needs rtt_ms and/or loss")
        if self.partitions is not None and self.heal:
            raise ValueError("an action cannot both partition and heal")


class NetworkSchedule:
    """A replayable sequence of network mutations.

    The schedule is *installed* onto a loop + network, which registers one
    control-priority event per action.  The same schedule object can be
    installed onto many independent runs (it holds no run state).
    """

    def __init__(self, actions: list[ScheduleAction]) -> None:
        self.actions = sorted(actions, key=lambda a: a.at_ms)
        # Precomputed lookup tables for value_at(): sorted action times plus
        # the latest non-None rtt/loss as of each action index, so a query
        # is one bisect instead of a scan over the whole schedule.
        self._times: list[float] = [a.at_ms for a in self.actions]
        self._rtt_at: list[float | None] = []
        self._loss_at: list[float | None] = []
        rtt: float | None = None
        loss: float | None = None
        for action in self.actions:
            # Only global actions move the ground-truth line; a pair-level
            # tweak leaves every other path at the previous target.
            if action.pair is None:
                if action.rtt_ms is not None:
                    rtt = action.rtt_ms
                if action.loss is not None:
                    loss = action.loss
            self._rtt_at.append(rtt)
            self._loss_at.append(loss)

    def __len__(self) -> int:
        return len(self.actions)

    @property
    def end_ms(self) -> float:
        """Time of the last action (ms); runs usually extend past this."""
        return self.actions[-1].at_ms if self.actions else 0.0

    def install(
        self,
        loop: EventLoop,
        network: Network,
        *,
        on_apply: Callable[[ScheduleAction], None] | None = None,
    ) -> None:
        """Register every action as a future event on ``loop``.

        Args:
            on_apply: optional observer invoked after each action applies
                (experiments use it to trace the active RTT/loss level).
        """
        for action in self.actions:
            loop.schedule_at(
                action.at_ms,
                _Applier(network, action, on_apply),
                priority=PRIORITY_CONTROL,
            )

    def value_at(self, t_ms: float) -> tuple[float | None, float | None]:
        """The (rtt, loss) targets in force at time ``t_ms``.

        Returns the most recent non-``None`` value of each dimension;
        useful for plotting the ground-truth line of Fig. 6.  O(log n) via
        bisect over the precomputed sorted action times.
        """
        i = bisect.bisect_right(self._times, t_ms) - 1
        if i < 0:
            return None, None
        return self._rtt_at[i], self._loss_at[i]


class _Applier:
    """Bound callback for one action (avoids late-binding closure bugs)."""

    __slots__ = ("_network", "_action", "_observer")

    def __init__(
        self,
        network: Network,
        action: ScheduleAction,
        observer: Callable[[ScheduleAction], None] | None,
    ) -> None:
        self._network = network
        self._action = action
        self._observer = observer

    def __call__(self) -> None:
        action = self._action
        network = self._network
        if action.pair is not None:
            a, b = action.pair
            if action.rtt_ms is not None:
                network.set_rtt(a, b, action.rtt_ms)
            if action.loss is not None:
                network.set_loss(a, b, action.loss)
        else:
            if action.rtt_ms is not None:
                network.set_all_rtt(action.rtt_ms)
            if action.loss is not None:
                network.set_all_loss(action.loss)
        if action.partitions is not None:
            network.set_partitions([set(g) for g in action.partitions])
        elif action.heal:
            network.clear_partitions()
        if self._observer is not None:
            self._observer(action)


# ---------------------------------------------------------------------- #
# profile builders
# ---------------------------------------------------------------------- #


def constant_profile(*, rtt_ms: float, loss: float = 0.0) -> NetworkSchedule:
    """Fixed conditions from t=0 (the §IV-B stable-network setting)."""
    return NetworkSchedule(
        [ScheduleAction(at_ms=0.0, rtt_ms=rtt_ms, loss=loss, label="constant")]
    )


def gradual_rtt_profile(
    *,
    low_ms: float = 50.0,
    high_ms: float = 200.0,
    step_ms: float = 10.0,
    dwell_ms: float = MINUTE,
    start_ms: float = 0.0,
) -> NetworkSchedule:
    """§IV-C1 gradual pattern: low → high → low in ``step_ms`` increments.

    Each RTT value is held for ``dwell_ms`` (one minute in the paper).  The
    descending leg does not repeat the peak value, matching "from 50 to
    200 ms and back to 50 ms".
    """
    if high_ms < low_ms:
        raise ValueError("high_ms must be >= low_ms")
    if step_ms <= 0:
        raise ValueError("step_ms must be > 0")
    values: list[float] = []
    v = low_ms
    while v < high_ms:
        values.append(v)
        v += step_ms
    values.append(high_ms)
    values.extend(reversed(values[:-1]))  # descend without repeating the peak

    actions = [
        ScheduleAction(
            at_ms=start_ms + i * dwell_ms,
            rtt_ms=val,
            label=f"rtt={val:g}ms",
        )
        for i, val in enumerate(values)
    ]
    return NetworkSchedule(actions)


def radical_rtt_profile(
    *,
    base_ms: float = 50.0,
    spike_ms: float = 500.0,
    dwell_ms: float = MINUTE,
    start_ms: float = 0.0,
) -> NetworkSchedule:
    """§IV-C1 radical pattern: base for one dwell, spike for one dwell, back."""
    return NetworkSchedule(
        [
            ScheduleAction(at_ms=start_ms, rtt_ms=base_ms, label="base"),
            ScheduleAction(at_ms=start_ms + dwell_ms, rtt_ms=spike_ms, label="spike"),
            ScheduleAction(
                at_ms=start_ms + 2 * dwell_ms, rtt_ms=base_ms, label="recover"
            ),
        ]
    )


def loss_staircase_profile(
    *,
    rtt_ms: float = 200.0,
    levels: tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30),
    dwell_ms: float = 3 * MINUTE,
    start_ms: float = 0.0,
) -> NetworkSchedule:
    """§IV-C2 staircase: loss up the levels then back down, RTT pinned.

    The descending leg omits the peak (matching "increased ... to 30 %, and
    then decreased it back to 25 %, ..., 0 %").
    """
    seq = list(levels) + list(reversed(levels[:-1]))
    actions = [
        ScheduleAction(at_ms=start_ms, rtt_ms=rtt_ms, loss=seq[0], label="loss start")
    ]
    actions += [
        ScheduleAction(
            at_ms=start_ms + i * dwell_ms,
            loss=p,
            label=f"loss={p:.0%}",
        )
        for i, p in enumerate(seq)
        if i > 0
    ]
    return NetworkSchedule(actions)


# re-export for convenience in experiment configs
__seconds__ = SECOND
