"""A directed network link: delay + loss + duplication.

Each ordered node pair ``(a, b)`` has its own :class:`Link`, mirroring the
per-interface ``tc`` shaping of the paper's testbed (delay and loss are set
per container, i.e. per direction).  A link is transport-agnostic: it
answers "would this packet drop?" and "how long would one transmission
take?"; :mod:`repro.net.transport` composes those primitives into UDP and
TCP semantics.
"""

from __future__ import annotations

import numpy as np

from repro.net.delay_models import ConstantDelay, DelayModel
from repro.net.loss_models import LossModel, NoLoss
from repro.net.stats import LinkStats

__all__ = ["Link"]


class Link:
    """One directed link with mutable impairment parameters.

    Args:
        src, dst: endpoint names (for diagnostics).
        delay: one-way delay model.  Defaults to a constant 0.5 ms.
        loss: loss process.  Defaults to lossless.
        duplicate_p: probability a *delivered* UDP packet is duplicated
            (netem ``duplicate``).  The paper's measurement design handles
            duplicates explicitly (§III-C2), so tests exercise this.
        rng: random stream for this link's draws.
    """

    __slots__ = (
        "src",
        "dst",
        "_delay",
        "_loss",
        "duplicate_p",
        "rng",
        "stats",
        "up",
        "should_drop",
        "sample_delay",
    )

    def __init__(
        self,
        src: str,
        dst: str,
        *,
        delay: DelayModel | None = None,
        loss: LossModel | None = None,
        duplicate_p: float = 0.0,
        rng: np.random.Generator | None = None,
    ) -> None:
        if not (0.0 <= duplicate_p <= 1.0):
            raise ValueError(f"duplicate_p must be in [0,1], got {duplicate_p!r}")
        self.src = src
        self.dst = dst
        # The delay/loss setters also (re)bind the hot-path methods below.
        self.delay = delay if delay is not None else ConstantDelay(0.5)
        self.loss = loss if loss is not None else NoLoss()
        self.duplicate_p = float(duplicate_p)
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.stats = LinkStats()
        #: Administrative state; a downed link drops everything (partitions).
        self.up = True

    # -- models ------------------------------------------------------------ #
    # ``should_drop`` / ``sample_delay`` are the models' bound methods,
    # cached so the per-message fast path pays one attribute load instead
    # of two plus a wrapper call.  Impairment *changes* mutate the model
    # objects in place (set_rtt / set_loss_rate), which needs no rebind;
    # model *replacement* goes through these setters, which rebind.

    @property
    def delay(self) -> DelayModel:
        return self._delay

    @delay.setter
    def delay(self, model: DelayModel) -> None:
        self._delay = model
        self.sample_delay = model.sample

    @property
    def loss(self) -> LossModel:
        return self._loss

    @loss.setter
    def loss(self, model: LossModel) -> None:
        self._loss = model
        self.should_drop = model.should_drop

    # -- impairment control (NetworkSchedule hooks) ----------------------- #

    def set_rtt(self, rtt_ms: float) -> None:
        """Set the round-trip time of the *path* this link belongs to.

        One directed link contributes half the RTT; schedules usually call
        this symmetrically on both directions via the Network helper.
        """
        if rtt_ms < 0.0:
            raise ValueError(f"rtt must be >= 0 ms, got {rtt_ms!r}")
        self.delay.set_base(rtt_ms / 2.0)

    def set_loss_rate(self, p: float) -> None:
        self.loss.set_rate(p)

    @property
    def one_way_ms(self) -> float:
        """Current base one-way delay (ms)."""
        return self.delay.base_ms

    @property
    def rtt_ms(self) -> float:
        """Nominal path RTT implied by this link's base delay."""
        return self.delay.base_ms * 2.0

    # -- primitives used by the transports --------------------------------- #

    def draw_drop(self) -> bool:
        """Sample the loss process once (one physical transmission)."""
        return self.loss.should_drop(self.rng)

    def draw_delay(self) -> float:
        """Sample a one-way propagation delay (ms)."""
        return self.delay.sample(self.rng)

    def draw_duplicate(self) -> bool:
        if self.duplicate_p <= 0.0:
            return False
        return bool(self.rng.random() < self.duplicate_p)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "up" if self.up else "DOWN"
        return (
            f"Link({self.src}->{self.dst}, {self.delay!r}, {self.loss!r}, {state})"
        )
