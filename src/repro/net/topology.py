"""Cluster topologies: uniform meshes and the AWS geo-replicated layout.

Two builders cover every experiment:

* :func:`uniform_topology` — full mesh with one RTT/loss/jitter setting for
  all pairs (the single-host Docker testbed of §IV-A—§IV-C);
* :func:`aws_geo_topology` — the five-region deployment of §IV-D (Tokyo,
  London, California, Sydney, São Paulo) with a representative inter-region
  RTT matrix and per-node clock offsets standing in for NTP error.

The RTT matrix is assembled from publicly reported inter-region medians
(cloudping-style measurements, rounded to 5 ms).  The paper does not print
its measured matrix, so these are *representative* values; what Fig. 8
tests is behaviour on a strongly heterogeneous RTT distribution, which any
realistic matrix for these five regions provides.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.net.delay_models import NormalJitterDelay
from repro.net.link import Link
from repro.net.loss_models import BernoulliLoss
from repro.net.network import Network
from repro.sim.rng import RngRegistry

__all__ = [
    "AWS_REGIONS",
    "AWS_RTT_MATRIX_MS",
    "ClockModel",
    "uniform_topology",
    "aws_geo_topology",
]

#: Region order used by the paper (§IV-D).
AWS_REGIONS: tuple[str, ...] = (
    "tokyo",
    "london",
    "california",
    "sydney",
    "saopaulo",
)

#: Representative inter-region RTTs in ms (symmetric, diagonal zero).
AWS_RTT_MATRIX_MS: dict[tuple[str, str], float] = {
    ("tokyo", "london"): 210.0,
    ("tokyo", "california"): 105.0,
    ("tokyo", "sydney"): 105.0,
    ("tokyo", "saopaulo"): 255.0,
    ("london", "california"): 135.0,
    ("london", "sydney"): 270.0,
    ("london", "saopaulo"): 185.0,
    ("california", "sydney"): 140.0,
    ("california", "saopaulo"): 170.0,
    ("sydney", "saopaulo"): 310.0,
}


def region_rtt(a: str, b: str) -> float:
    """Look up the symmetric RTT between two regions (0 for a==b)."""
    if a == b:
        return 0.0
    key = (a, b) if (a, b) in AWS_RTT_MATRIX_MS else (b, a)
    try:
        return AWS_RTT_MATRIX_MS[key]
    except KeyError:
        raise KeyError(f"no RTT entry for regions {a!r}, {b!r}") from None


def uniform_topology(
    network: Network,
    names: list[str],
    *,
    rtt_ms: float,
    jitter_sigma_ms: float = 0.0,
    loss: float = 0.0,
    duplicate_p: float = 0.0,
) -> None:
    """Install a full mesh of identical links between ``names``.

    Every directed pair gets its own link object and RNG stream, so loss
    and jitter draws are independent per direction — the same independence
    ``tc`` gives each container interface.
    """
    for a in names:
        for b in names:
            if a == b:
                continue
            link = Link(
                a,
                b,
                delay=NormalJitterDelay(rtt_ms / 2.0, jitter_sigma_ms),
                loss=BernoulliLoss(loss),
                duplicate_p=duplicate_p,
                rng=network.rngs.stream(f"net/{a}->{b}"),
            )
            network.add_link(link)


def aws_geo_topology(
    network: Network,
    names: list[str],
    *,
    regions: tuple[str, ...] = AWS_REGIONS,
    jitter_fraction: float = 0.02,
    loss: float = 0.0,
) -> dict[str, str]:
    """Install the five-region mesh of §IV-D.

    Node ``names[i]`` is placed in ``regions[i % len(regions)]``.  Each
    directed link gets Gaussian jitter with
    ``sigma = jitter_fraction × one-way delay`` — WAN paths jitter roughly
    proportionally to their length.

    Returns:
        Mapping node name → region.
    """
    placement = {name: regions[i % len(regions)] for i, name in enumerate(names)}
    for a in names:
        for b in names:
            if a == b:
                continue
            rtt = region_rtt(placement[a], placement[b])
            if rtt <= 0.0:
                rtt = 2.0  # same-region pair: ~1 ms one way
            one_way = rtt / 2.0
            link = Link(
                a,
                b,
                delay=NormalJitterDelay(one_way, jitter_fraction * one_way),
                loss=BernoulliLoss(loss),
                rng=network.rngs.stream(f"net/{a}->{b}"),
            )
            network.add_link(link)
    return placement


@dataclasses.dataclass(slots=True)
class ClockModel:
    """Per-node clock offsets standing in for NTP synchronisation error.

    The single-host experiments measure times on one hardware clock (zero
    error); the AWS experiment (§IV-D) reads logs from five machines whose
    clocks are NTP-synchronised, which the paper says introduces "tens of
    milliseconds" of error.  ``offset_ms[node]`` is drawn once per node
    (``N(0, offset_sigma_ms)``); :meth:`read` adds the offset plus white
    read noise to a true timestamp.

    The simulator itself always runs on true time — only the *measurement
    extraction* in :mod:`repro.cluster.measurements` passes timestamps
    through this model, mirroring how NTP skews logs, not physics.
    """

    offset_ms: dict[str, float]
    read_noise_sigma_ms: float
    _rng: np.random.Generator

    @classmethod
    def synchronized(cls, names: list[str]) -> "ClockModel":
        """Perfect clocks (the single-host setup)."""
        return cls(
            offset_ms={n: 0.0 for n in names},
            read_noise_sigma_ms=0.0,
            _rng=np.random.default_rng(0),
        )

    @classmethod
    def ntp(
        cls,
        names: list[str],
        rngs: RngRegistry,
        *,
        offset_sigma_ms: float = 15.0,
        read_noise_sigma_ms: float = 2.0,
    ) -> "ClockModel":
        """NTP-grade clocks: per-node offsets of tens of ms."""
        rng = rngs.stream("clock/ntp")
        offsets = {n: float(rng.normal(0.0, offset_sigma_ms)) for n in names}
        return cls(
            offset_ms=offsets,
            read_noise_sigma_ms=read_noise_sigma_ms,
            _rng=rng,
        )

    def read(self, node: str, true_time_ms: float) -> float:
        """Timestamp ``true_time_ms`` as ``node``'s log would record it."""
        noise = (
            float(self._rng.normal(0.0, self.read_noise_sigma_ms))
            if self.read_noise_sigma_ms > 0.0
            else 0.0
        )
        return true_time_ms + self.offset_ms.get(node, 0.0) + noise
