"""The network fabric connecting simulated processes.

One :class:`Network` instance is the cluster's switch + kernel stacks:

* it owns one :class:`~repro.net.link.Link` per ordered node pair;
* ``send()`` pushes a message through the link's channel semantics
  (:mod:`repro.net.transport`) and schedules the delivery event;
* partitions and per-pair impairment setters expose the same knobs the
  paper drives through ``tc`` and Docker network surgery.
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.net.link import Link
from repro.net.message import Message
from repro.net.stats import LinkStats
from repro.net.transport import (
    CHANNEL_TCP,
    CHANNEL_UDP,
    TcpChannelState,
    tcp_transmission_plan,
    udp_transmission_plan,
)
from repro.sim.events import PRIORITY_MESSAGE
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry

__all__ = ["Network", "Endpoint"]


class Endpoint(Protocol):
    """What the fabric needs from an attached process."""

    name: str

    def deliver(self, sender: str, payload: Any) -> None: ...


class Network:
    """Message fabric with per-pair links, partitions, and channel semantics.

    Args:
        loop: the shared event loop.
        rngs: registry used to derive one stream per link (``net/<a>-><b>``),
            so adding links never perturbs other components' randomness.
    """

    def __init__(self, loop: EventLoop, rngs: RngRegistry) -> None:
        self.loop = loop
        self.rngs = rngs
        self._endpoints: dict[str, Endpoint] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._tcp_state: dict[tuple[str, str], TcpChannelState] = {}
        self._partition_of: dict[str, int] | None = None
        #: Messages dropped because of partitions (diagnostics).
        self.partition_drops = 0

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def attach(self, endpoint: Endpoint) -> None:
        """Register a process under its name."""
        if endpoint.name in self._endpoints:
            raise ValueError(f"endpoint {endpoint.name!r} already attached")
        self._endpoints[endpoint.name] = endpoint

    def endpoint(self, name: str) -> Endpoint:
        return self._endpoints[name]

    def node_names(self) -> list[str]:
        return sorted(self._endpoints)

    def add_link(self, link: Link) -> None:
        """Install a directed link (overwrites any previous one)."""
        self._links[(link.src, link.dst)] = link

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src!r} -> {dst!r} installed") from None

    def links(self) -> list[Link]:
        return [self._links[k] for k in sorted(self._links)]

    # ------------------------------------------------------------------ #
    # impairment control (what `tc` does in the paper)
    # ------------------------------------------------------------------ #

    def set_rtt(self, a: str, b: str, rtt_ms: float) -> None:
        """Set the path RTT between ``a`` and ``b`` (both directions)."""
        self.link(a, b).set_rtt(rtt_ms)
        self.link(b, a).set_rtt(rtt_ms)

    def set_loss(self, a: str, b: str, p: float) -> None:
        """Set the per-direction loss rate between ``a`` and ``b``."""
        self.link(a, b).set_loss_rate(p)
        self.link(b, a).set_loss_rate(p)

    def set_all_rtt(self, rtt_ms: float) -> None:
        """Uniform RTT for every pair (the §IV-B / §IV-C configuration)."""
        for link in self._links.values():
            link.set_rtt(rtt_ms)

    def set_all_loss(self, p: float) -> None:
        for link in self._links.values():
            link.set_loss_rate(p)

    # ------------------------------------------------------------------ #
    # partitions
    # ------------------------------------------------------------------ #

    def set_partitions(self, groups: list[set[str]]) -> None:
        """Partition the cluster: traffic only flows within a group.

        Nodes not mentioned in any group form an implicit final group.
        """
        partition_of: dict[str, int] = {}
        for gid, group in enumerate(groups):
            for name in group:
                if name in partition_of:
                    raise ValueError(f"node {name!r} appears in two groups")
                partition_of[name] = gid
        rest = [n for n in self._endpoints if n not in partition_of]
        for name in rest:
            partition_of[name] = len(groups)
        self._partition_of = partition_of

    def clear_partitions(self) -> None:
        self._partition_of = None

    def partitioned(self, a: str, b: str) -> bool:
        if self._partition_of is None:
            return False
        return self._partition_of.get(a) != self._partition_of.get(b)

    # ------------------------------------------------------------------ #
    # send path
    # ------------------------------------------------------------------ #

    def send(
        self,
        src: str,
        dst: str,
        payload: Any,
        *,
        channel: str = CHANNEL_TCP,
        size_bytes: int = 128,
    ) -> Message:
        """Transmit ``payload`` from ``src`` to ``dst``.

        Returns the :class:`Message` envelope (mostly for tests); delivery,
        if any, happens via scheduled loop events.
        """
        msg = Message(
            src=src,
            dst=dst,
            payload=payload,
            channel=channel,
            size_bytes=size_bytes,
            send_time=self.loop.now,
        )
        link = self.link(src, dst)
        link.stats.sent += 1
        link.stats.bytes_sent += size_bytes

        if not link.up or self.partitioned(src, dst):
            self.partition_drops += 1
            link.stats.dropped += 1
            return msg

        if channel == CHANNEL_UDP:
            plan = udp_transmission_plan(link)
        elif channel == CHANNEL_TCP:
            state = self._tcp_state.setdefault((src, dst), TcpChannelState())
            plan = tcp_transmission_plan(link, state, self.loop.now)
        else:
            raise ValueError(f"unknown channel {channel!r}")

        if not plan.deliver:
            link.stats.dropped += 1
            return msg

        link.stats.retransmits += plan.retransmits
        self._schedule_delivery(msg, plan.delay_ms)
        for extra_delay in plan.duplicates:
            link.stats.duplicated += 1
            self._schedule_delivery(msg, extra_delay)
        return msg

    def broadcast(
        self,
        src: str,
        dsts: list[str],
        payload: Any,
        *,
        channel: str = CHANNEL_TCP,
        size_bytes: int = 128,
    ) -> None:
        """Send the same payload to several peers (independent link draws)."""
        for dst in dsts:
            self.send(src, dst, payload, channel=channel, size_bytes=size_bytes)

    def _schedule_delivery(self, msg: Message, delay_ms: float) -> None:
        def _deliver() -> None:
            endpoint = self._endpoints.get(msg.dst)
            if endpoint is None:
                return
            link = self._links.get((msg.src, msg.dst))
            if link is not None:
                link.stats.delivered += 1
            endpoint.deliver(msg.src, msg.payload)

        self.loop.schedule(delay_ms, _deliver, priority=PRIORITY_MESSAGE)

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #

    def total_stats(self) -> LinkStats:
        """Cluster-wide counter totals."""
        total = LinkStats()
        for link in self._links.values():
            total = total.merge(link.stats)
        return total
