"""The network fabric connecting simulated processes.

One :class:`Network` instance is the cluster's switch + kernel stacks:

* it owns one :class:`~repro.net.link.Link` per ordered node pair;
* ``send()`` pushes a message through the link's channel semantics
  (:mod:`repro.net.transport`) and schedules the delivery event;
* partitions and per-pair impairment setters expose the same knobs the
  paper drives through ``tc`` and Docker network surgery.
"""

from __future__ import annotations

from typing import Any, Protocol

from repro.net.link import Link
from repro.net.message import Message
from repro.net.stats import LinkStats
from repro.net.transport import (
    CHANNEL_TCP,
    CHANNEL_UDP,
    TcpChannelState,
    tcp_transmission_plan,
)
from repro.sim.events import PRIORITY_MESSAGE
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry

__all__ = ["Network", "Endpoint"]


class _Delivery(tuple):
    """Allocation-light delivery callback (replaces a per-send closure).

    A ``tuple`` subclass laid out as ``(endpoint, stats, src, payload)``:
    construction is one C-level call (``__init__``-based slotted classes
    pay an interpreter frame per message), and the only Python-level work
    left is ``__call__`` at delivery time.  Binds the endpoint and the
    link's stats object at send time.  A binding can outlive a
    ``detach()`` of its endpoint (dynamic membership removes nodes at
    runtime); that is safe because a removed node is stopped first, so
    the late delivery dies at the process's liveness gate.
    """

    __slots__ = ()

    def __call__(self) -> None:
        self[1].delivered += 1
        self[0].deliver(self[2], self[3])


class Endpoint(Protocol):
    """What the fabric needs from an attached process."""

    name: str

    def deliver(self, sender: str, payload: Any) -> None: ...


class Network:
    """Message fabric with per-pair links, partitions, and channel semantics.

    Args:
        loop: the shared event loop.
        rngs: registry used to derive one stream per link (``net/<a>-><b>``),
            so adding links never perturbs other components' randomness.
    """

    def __init__(self, loop: EventLoop, rngs: RngRegistry) -> None:
        self.loop = loop
        self.rngs = rngs
        #: Bound once: the UDP fast path schedules one event per message.
        self._push_event = loop._push_event
        self._endpoints: dict[str, Endpoint] = {}
        self._links: dict[tuple[str, str], Link] = {}
        #: Same links keyed src → dst → Link: the hot path avoids building
        #: a key tuple per message (kept in sync by add_link).
        self._links_from: dict[str, dict[str, Link]] = {}
        self._tcp_state: dict[tuple[str, str], TcpChannelState] = {}
        self._partition_of: dict[str, int] | None = None
        self._implicit_group = 0
        #: Messages dropped because of partitions (diagnostics).
        self.partition_drops = 0

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #

    def attach(self, endpoint: Endpoint) -> None:
        """Register a process under its name.

        Attaching while a partition is in force places the newcomer in the
        implicit final group — the same group un-listed nodes landed in when
        :meth:`set_partitions` ran.  Without this, a late endpoint had no
        group id at all and ``partitioned()`` compared ``None`` != gid: cut
        off from every grouped node yet fully connected to other late nodes.
        """
        if endpoint.name in self._endpoints:
            raise ValueError(f"endpoint {endpoint.name!r} already attached")
        self._endpoints[endpoint.name] = endpoint
        if self._partition_of is not None and endpoint.name not in self._partition_of:
            self._partition_of[endpoint.name] = self._implicit_group

    def detach(self, name: str) -> None:
        """Unregister a removed node's endpoint.  Idempotent.

        The mirror of the :meth:`attach`-during-partition rule for the
        *detach* direction: the departing node's partition-group entry is
        dropped with it, so a name later re-attached is a genuinely fresh
        endpoint (it lands in the implicit group like any newcomer) rather
        than inheriting the removed node's group id.

        Links stay installed as dead wiring.  Members that have not yet
        learned of the removal — or that process in-flight traffic *from*
        the departed node — still route replies through those links; with
        the endpoint gone the send-time lookup misses and the fabric
        skips the delivery event entirely, so such sends become silent
        drops (the departed-host semantics of a real network) instead of
        ``KeyError``.  In-flight deliveries bound the endpoint object at
        send time and will still fire — inertness there is the endpoint's
        job (a stopped process drops everything at its liveness gate),
        not the fabric's.
        """
        self._endpoints.pop(name, None)
        if self._partition_of is not None:
            self._partition_of.pop(name, None)

    def endpoint(self, name: str) -> Endpoint:
        return self._endpoints[name]

    def node_names(self) -> list[str]:
        return sorted(self._endpoints)

    def add_link(self, link: Link) -> None:
        """Install a directed link (overwrites any previous one)."""
        self._links[(link.src, link.dst)] = link
        by_dst = self._links_from.get(link.src)
        if by_dst is None:
            by_dst = self._links_from[link.src] = {}
        by_dst[link.dst] = link

    def link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise KeyError(f"no link {src!r} -> {dst!r} installed") from None

    def links(self) -> list[Link]:
        return [self._links[k] for k in sorted(self._links)]

    # ------------------------------------------------------------------ #
    # impairment control (what `tc` does in the paper)
    # ------------------------------------------------------------------ #

    def set_rtt(self, a: str, b: str, rtt_ms: float) -> None:
        """Set the path RTT between ``a`` and ``b`` (both directions)."""
        self.link(a, b).set_rtt(rtt_ms)
        self.link(b, a).set_rtt(rtt_ms)

    def set_loss(self, a: str, b: str, p: float) -> None:
        """Set the per-direction loss rate between ``a`` and ``b``."""
        self.link(a, b).set_loss_rate(p)
        self.link(b, a).set_loss_rate(p)

    def set_all_rtt(self, rtt_ms: float) -> None:
        """Uniform RTT for every pair (the §IV-B / §IV-C configuration)."""
        for link in self._links.values():
            link.set_rtt(rtt_ms)

    def set_all_loss(self, p: float) -> None:
        for link in self._links.values():
            link.set_loss_rate(p)

    def set_duplicate(self, a: str, b: str, p: float) -> None:
        """Set the per-direction duplication probability between ``a``
        and ``b`` (netem ``duplicate``, both directions)."""
        self.link(a, b).duplicate_p = float(p)
        self.link(b, a).duplicate_p = float(p)

    def set_all_duplicate(self, p: float) -> None:
        for link in self._links.values():
            link.duplicate_p = float(p)

    # -- asymmetric (gray) faults -------------------------------------- #
    # A real gray failure is usually directional: a NIC that still sends
    # but cannot hear, a congested egress queue, an asymmetric route.
    # These helpers manipulate ONE directed link, unlike the symmetric
    # pair-wise setters above.  Blocking reuses the link's administrative
    # ``up`` flag, so the transmit hot path pays nothing new.

    def block_direction(self, src: str, dst: str) -> None:
        """Drop everything flowing ``src → dst`` (the ``dst → src``
        direction is untouched — that is the whole point)."""
        self.link(src, dst).up = False

    def unblock_direction(self, src: str, dst: str) -> None:
        self.link(src, dst).up = True

    def degrade_direction(
        self,
        src: str,
        dst: str,
        *,
        loss: float | None = None,
        one_way_ms: float | None = None,
    ) -> tuple[float, float]:
        """Gray-degrade one direction: set its loss rate and/or base
        one-way delay, returning the previous ``(loss_rate, one_way_ms)``
        pair so the caller can restore them when the window closes."""
        link = self.link(src, dst)
        prev = (link.loss.rate(), link.one_way_ms)
        if loss is not None:
            link.set_loss_rate(loss)
        if one_way_ms is not None:
            link.delay.set_base(one_way_ms)
        return prev

    def connected(self, a: str, b: str) -> bool:
        """Whether ``a`` and ``b`` are *mutually* connected: both directed
        links installed and administratively up, neither direction fully
        lossy, and no partition between them.  This is the liveness
        oracle's notion of "could these two exchange a round trip" —
        degraded-but-possible (loss < 1) still counts as connected, which
        is exactly what makes gray failures gray."""
        if self.partitioned(a, b):
            return False
        la = self._links.get((a, b))
        lb = self._links.get((b, a))
        if la is None or lb is None:
            return False
        return (
            la.up and lb.up and la.loss.rate() < 1.0 and lb.loss.rate() < 1.0
        )

    # ------------------------------------------------------------------ #
    # partitions
    # ------------------------------------------------------------------ #

    def set_partitions(self, groups: list[set[str]]) -> None:
        """Partition the cluster: traffic only flows within a group.

        Nodes not mentioned in any group form an implicit final group.
        """
        partition_of: dict[str, int] = {}
        for gid, group in enumerate(groups):
            for name in group:
                if name in partition_of:
                    raise ValueError(f"node {name!r} appears in two groups")
                partition_of[name] = gid
        rest = [n for n in self._endpoints if n not in partition_of]
        for name in rest:
            partition_of[name] = len(groups)
        self._partition_of = partition_of
        self._implicit_group = len(groups)

    def clear_partitions(self) -> None:
        self._partition_of = None

    def partitioned(self, a: str, b: str) -> bool:
        if self._partition_of is None:
            return False
        return self._partition_of.get(a) != self._partition_of.get(b)

    # ------------------------------------------------------------------ #
    # send path
    # ------------------------------------------------------------------ #

    def send(
        self,
        src: str,
        dst: str,
        payload: Any,
        *,
        channel: str = CHANNEL_TCP,
        size_bytes: int = 128,
    ) -> Message:
        """Transmit ``payload`` from ``src`` to ``dst``.

        Returns the :class:`Message` envelope (mostly for tests); delivery,
        if any, happens via scheduled loop events.  Protocol hot paths that
        never look at the envelope use :meth:`transmit` instead, which
        skips building it.
        """
        msg = Message(src, dst, payload, channel, size_bytes, self.loop.now)
        self.transmit(src, dst, payload, channel, size_bytes)
        return msg

    def transmit(
        self,
        src: str,
        dst: str,
        payload: Any,
        channel: str = CHANNEL_TCP,
        size_bytes: int = 128,
    ) -> None:
        """Envelope-free :meth:`send`: the per-message hot path.

        Link, stats and endpoint are each looked up once, the delivery
        callback is a slotted :class:`_Delivery` rather than a fresh
        closure, partition checks short-circuit on the (common)
        unpartitioned case, and no :class:`Message` object is built —
        every Raft node send goes through here.
        """
        now = self.loop.now
        by_dst = self._links_from.get(src)
        link = by_dst.get(dst) if by_dst is not None else None
        if link is None:
            raise KeyError(f"no link {src!r} -> {dst!r} installed")
        stats = link.stats
        stats.sent += 1
        stats.bytes_sent += size_bytes

        partition_of = self._partition_of
        if not link.up or (
            partition_of is not None
            and partition_of.get(src) != partition_of.get(dst)
        ):
            self.partition_drops += 1
            stats.dropped += 1
            return

        if channel == CHANNEL_UDP:
            # Inlined udp_transmission_plan: the datagram path is the
            # heartbeat hot path, and the common deliver-no-duplicate case
            # needs no TransmissionPlan allocation.  Draw order (drop,
            # delay, duplicate) must match the transport module exactly —
            # it defines the per-link RNG stream consumption.  The loss and
            # delay models are invoked directly (same calls Link.draw_drop
            # / draw_delay make) to skip one wrapper frame per draw.
            rng = link.rng
            if link.should_drop(rng):
                stats.dropped += 1
                return
            delay_ms = link.sample_delay(rng)
            endpoint = self._endpoints.get(dst)
            if link.duplicate_p <= 0.0:
                if endpoint is not None:
                    # delay models clamp samples >= 0, so the internal
                    # validation-free push is safe here.
                    self._push_event(
                        now + delay_ms,
                        _Delivery((endpoint, stats, src, payload)),
                        PRIORITY_MESSAGE,
                    )
                return
            # Duplicate draw (and its delay draw) must happen before any
            # scheduling so the RNG stream matches the transport module;
            # the primary is scheduled first so it keeps the lower seq.
            dup_delay = None
            if link.draw_duplicate():
                dup_delay = link.draw_delay()
            if endpoint is not None:
                self._push_event(
                    now + delay_ms,
                    _Delivery((endpoint, stats, src, payload)),
                    PRIORITY_MESSAGE,
                )
            if dup_delay is not None:
                stats.duplicated += 1
                if endpoint is not None:
                    self._push_event(
                        now + dup_delay,
                        _Delivery((endpoint, stats, src, payload)),
                        PRIORITY_MESSAGE,
                    )
            return
        if channel == CHANNEL_TCP:
            state = self._tcp_state.get((src, dst))
            if state is None:
                state = self._tcp_state[(src, dst)] = TcpChannelState()
            plan = tcp_transmission_plan(link, state, now)
        else:
            raise ValueError(f"unknown channel {channel!r}")

        if not plan.deliver:
            stats.dropped += 1
            return

        stats.retransmits += plan.retransmits
        endpoint = self._endpoints.get(dst)
        if endpoint is None:
            # No attached endpoint: delivery would be a no-op, so skip the
            # event entirely (counters match the delivery-time-lookup path).
            stats.duplicated += len(plan.duplicates)
            return
        self.loop.schedule(
            plan.delay_ms,
            _Delivery((endpoint, stats, src, payload)),
            priority=PRIORITY_MESSAGE,
        )
        for extra_delay in plan.duplicates:
            stats.duplicated += 1
            self.loop.schedule(
                extra_delay,
                _Delivery((endpoint, stats, src, payload)),
                priority=PRIORITY_MESSAGE,
            )

    def broadcast(
        self,
        src: str,
        dsts: list[str],
        payload: Any,
        *,
        channel: str = CHANNEL_TCP,
        size_bytes: int = 128,
    ) -> None:
        """Send the same payload to several peers (independent link draws)."""
        for dst in dsts:
            self.send(src, dst, payload, channel=channel, size_bytes=size_bytes)

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #

    def total_stats(self) -> LinkStats:
        """Cluster-wide counter totals."""
        total = LinkStats()
        for link in self._links.values():
            total = total.merge(link.stats)
        return total
