"""Packet-loss processes for directed links.

Two processes are provided:

* :class:`BernoulliLoss` — i.i.d. loss with probability ``p`` (netem
  ``loss p%``); this is what the paper's ``tc`` setup uses for the §IV-C2
  staircase, so it is the default everywhere.
* :class:`GilbertElliottLoss` — two-state bursty loss (netem ``loss gemodel``)
  for the robustness tests and the WAN example; real Internet loss is bursty
  (Haq et al., §II-C2), and burstiness is the adversarial case for
  Dynatune's ``K``-heartbeat redundancy, which assumes independence.

Loss rates are mutable so :class:`~repro.net.schedule.NetworkSchedule` can
replay the staircase pattern.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = ["LossModel", "NoLoss", "BernoulliLoss", "GilbertElliottLoss"]


def _check_prob(p: float, name: str) -> float:
    if not (0.0 <= p <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {p!r}")
    return float(p)


@runtime_checkable
class LossModel(Protocol):
    """Protocol for loss processes."""

    def should_drop(self, rng: np.random.Generator) -> bool:
        """Decide the fate of one packet."""
        ...

    def set_rate(self, p: float) -> None:
        """Retarget the (marginal) loss rate (schedule hook)."""
        ...

    def rate(self) -> float:
        """Current marginal loss probability."""
        ...


class NoLoss:
    """Lossless link (the §IV-B stable-network configuration)."""

    __slots__ = ()

    def should_drop(self, rng: np.random.Generator) -> bool:  # noqa: ARG002
        return False

    def set_rate(self, p: float) -> None:
        if p != 0.0:
            raise ValueError("NoLoss cannot be retargeted; use BernoulliLoss")

    def rate(self) -> float:
        return 0.0

    def __repr__(self) -> str:
        return "NoLoss()"


class BernoulliLoss:
    """Independent loss with probability ``p`` per packet."""

    __slots__ = ("p",)

    def __init__(self, p: float = 0.0) -> None:
        self.p = _check_prob(p, "loss probability")

    def should_drop(self, rng: np.random.Generator) -> bool:
        if self.p <= 0.0:
            return False
        if self.p >= 1.0:
            return True
        return bool(rng.random() < self.p)

    def set_rate(self, p: float) -> None:
        self.p = _check_prob(p, "loss probability")

    def rate(self) -> float:
        return self.p

    def __repr__(self) -> str:
        return f"BernoulliLoss(p={self.p})"


class GilbertElliottLoss:
    """Two-state Markov (Gilbert–Elliott) bursty loss.

    States: *good* (loss prob ``loss_good``, usually ~0) and *bad* (loss
    prob ``loss_bad``, usually high).  Transition probabilities are
    evaluated per packet.  The marginal loss rate is::

        pi_bad  = p_gb / (p_gb + p_bg)
        rate    = (1 - pi_bad) * loss_good + pi_bad * loss_bad

    ``set_rate`` rescales ``p_gb`` to hit a requested marginal rate while
    keeping the mean burst length (``1/p_bg``) fixed, so schedules can sweep
    the marginal rate of a bursty process just like a Bernoulli one.
    """

    __slots__ = ("p_gb", "p_bg", "loss_good", "loss_bad", "_bad")

    def __init__(
        self,
        p_gb: float,
        p_bg: float,
        loss_good: float = 0.0,
        loss_bad: float = 1.0,
    ) -> None:
        self.p_gb = _check_prob(p_gb, "p_gb")
        self.p_bg = _check_prob(p_bg, "p_bg")
        if self.p_bg <= 0.0:
            raise ValueError("p_bg must be > 0 or the bad state is absorbing")
        self.loss_good = _check_prob(loss_good, "loss_good")
        self.loss_bad = _check_prob(loss_bad, "loss_bad")
        self._bad = False

    def should_drop(self, rng: np.random.Generator) -> bool:
        # Transition first, then sample loss in the (possibly new) state.
        if self._bad:
            if rng.random() < self.p_bg:
                self._bad = False
        else:
            if rng.random() < self.p_gb:
                self._bad = True
        p = self.loss_bad if self._bad else self.loss_good
        if p <= 0.0:
            return False
        if p >= 1.0:
            return True
        return bool(rng.random() < p)

    def rate(self) -> float:
        denom = self.p_gb + self.p_bg
        pi_bad = self.p_gb / denom if denom > 0 else 0.0
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad

    def set_rate(self, p: float) -> None:
        """Rescale the transition rates so the marginal rate equals ``p``.

        Solves ``pi_bad`` from ``p = (1-pi)*lg + pi*lb`` and retargets
        ``p_gb = pi * p_bg / (1 - pi)``.  If the required ``p_gb`` exceeds
        1 (very high targets), ``p_gb`` is pinned at 1 and ``p_bg`` is
        reduced instead — the marginal is hit exactly at the cost of a
        longer mean burst.  Requires ``loss_good <= p < loss_bad``.
        """
        p = _check_prob(p, "marginal rate")
        span = self.loss_bad - self.loss_good
        if span <= 0.0:
            raise ValueError("loss_bad must exceed loss_good to retarget rate")
        pi = (p - self.loss_good) / span
        if not (0.0 <= pi < 1.0):
            raise ValueError(
                f"requested rate {p} outside achievable "
                f"[{self.loss_good}, {self.loss_bad})"
            )
        if pi == 0.0:
            self.p_gb = 0.0
            return
        required = pi * self.p_bg / (1.0 - pi)
        if required <= 1.0:
            self.p_gb = required
        else:
            self.p_gb = 1.0
            self.p_bg = (1.0 - pi) / pi  # pi = p_gb/(p_gb+p_bg) with p_gb=1

    @property
    def in_bad_state(self) -> bool:
        return self._bad

    def __repr__(self) -> str:
        return (
            f"GilbertElliottLoss(p_gb={self.p_gb:.4g}, p_bg={self.p_bg:.4g}, "
            f"lg={self.loss_good}, lb={self.loss_bad})"
        )
