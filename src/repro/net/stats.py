"""Per-link delivery counters.

Used by tests to verify loss/duplication rates and by experiments to report
message overheads (the paper argues Dynatune adds *no additional
communication*, §I — the counter totals let us check that claim directly in
:mod:`repro.experiments`).
"""

from __future__ import annotations

import dataclasses

__all__ = ["LinkStats"]


@dataclasses.dataclass(slots=True)
class LinkStats:
    """Counters for one directed link."""

    sent: int = 0
    delivered: int = 0
    dropped: int = 0
    duplicated: int = 0
    retransmits: int = 0
    bytes_sent: int = 0

    def observed_loss_rate(self) -> float:
        """Fraction of offered packets that were dropped."""
        if self.sent == 0:
            return 0.0
        return self.dropped / self.sent

    def merge(self, other: "LinkStats") -> "LinkStats":
        """Return a new LinkStats with summed counters."""
        return LinkStats(
            sent=self.sent + other.sent,
            delivered=self.delivered + other.delivered,
            dropped=self.dropped + other.dropped,
            duplicated=self.duplicated + other.duplicated,
            retransmits=self.retransmits + other.retransmits,
            bytes_sent=self.bytes_sent + other.bytes_sent,
        )
