"""Message envelope carried by the network fabric."""

from __future__ import annotations

import dataclasses
import itertools
from typing import Any

__all__ = ["Message"]

_msg_counter = itertools.count()


@dataclasses.dataclass(slots=True)
class Message:
    """A single datagram/segment travelling between two processes.

    Attributes:
        src: sender node name.
        dst: destination node name.
        payload: application payload (a Raft RPC dataclass).
        channel: ``"udp"`` or ``"tcp"`` — selects transport semantics.
        size_bytes: nominal wire size; only used by link byte counters.
        send_time: virtual time the sender handed the message to the network.
        uid: globally unique id (diagnostics, duplicate tracking in tests).
    """

    src: str
    dst: str
    payload: Any
    channel: str
    size_bytes: int = 128
    send_time: float = 0.0
    uid: int = dataclasses.field(default_factory=_msg_counter.__next__)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = type(self.payload).__name__
        return (
            f"Message(#{self.uid} {self.src}->{self.dst} {kind} "
            f"via {self.channel} @ {self.send_time})"
        )
