"""Channel semantics: UDP datagrams and TCP streams.

The paper's etcd baseline carries *all* Raft traffic over TCP; Dynatune
moves heartbeats to UDP so losses are visible to the estimator instead of
being masked by retransmission (§III-E).  Both behaviours matter for the
evaluation:

* **UDP** — packets can be dropped (the loss process decides), reordered
  (independent per-packet jitter) and duplicated.  This is what exercises
  Dynatune's ids-list dedup/ordering logic and the loss-rate estimator.
* **TCP** — every segment is eventually delivered, in FIFO order per
  directed pair.  A loss costs one retransmission timeout (RTO), and FIFO
  ordering converts that into *head-of-line blocking*: every message behind
  the lost one stalls too.  This is exactly why TCP-heartbeat Raft suffers
  correlated heartbeat gaps under loss (§II-C2) — the behaviour emerges here
  rather than being scripted.

The RTO model is deliberately minimal but shaped like the kernel's:
``RTO = max(rto_min, 2 × path RTT)`` with exponential backoff per retry and
Linux's default ``rto_min`` of 200 ms.
"""

from __future__ import annotations

import dataclasses

from repro.net.link import Link

__all__ = [
    "CHANNEL_UDP",
    "CHANNEL_TCP",
    "TcpChannelState",
    "udp_transmission_plan",
    "tcp_transmission_plan",
    "TransmissionPlan",
]

CHANNEL_UDP = "udp"
CHANNEL_TCP = "tcp"

#: Linux default minimum retransmission timeout (ms).
RTO_MIN_MS = 200.0
#: Give-up bound on retransmissions per segment.  In practice unreachable for
#: the loss rates in the paper (<= 50 %); it guards the simulator against a
#: schedule that sets loss = 1.0 on a TCP link.
MAX_TCP_ATTEMPTS = 30


@dataclasses.dataclass(slots=True)
class TransmissionPlan:
    """Outcome of pushing one message through a channel.

    Attributes:
        deliver: whether the message reaches the destination at all.
        delay_ms: total latency from send to delivery (ms).
        duplicates: extra delivery delays (UDP duplication).
        retransmits: number of TCP retries that were needed.
    """

    deliver: bool
    delay_ms: float = 0.0
    duplicates: tuple[float, ...] = ()
    retransmits: int = 0


def udp_transmission_plan(link: Link) -> TransmissionPlan:
    """Datagram semantics: one shot, may drop, may duplicate, may reorder."""
    if link.draw_drop():
        return TransmissionPlan(deliver=False)
    delay = link.draw_delay()
    duplicates: tuple[float, ...] = ()
    if link.draw_duplicate():
        # The duplicate takes its own independent path delay.
        duplicates = (link.draw_delay(),)
    return TransmissionPlan(deliver=True, delay_ms=delay, duplicates=duplicates)


class TcpChannelState:
    """Per-directed-pair TCP stream state: FIFO horizon and RTT estimate.

    One instance exists per ``(src, dst)`` pair (per direction), matching
    one TCP connection in etcd's peer transport.
    """

    __slots__ = ("last_delivery_ms", "srtt_ms")

    def __init__(self) -> None:
        #: Latest delivery time already promised on this stream; later
        #: segments may not be delivered before it (FIFO).
        self.last_delivery_ms = 0.0
        #: Smoothed RTT estimate; seeded lazily from the link's nominal RTT.
        self.srtt_ms: float | None = None

    def observe_rtt(self, rtt_ms: float) -> None:
        """EWMA update, alpha = 1/8 as in RFC 6298."""
        if self.srtt_ms is None:
            self.srtt_ms = rtt_ms
        else:
            self.srtt_ms += (rtt_ms - self.srtt_ms) / 8.0

    def rto_ms(self, nominal_rtt_ms: float) -> float:
        rtt = self.srtt_ms if self.srtt_ms is not None else nominal_rtt_ms
        return max(RTO_MIN_MS, 2.0 * rtt)


def tcp_transmission_plan(
    link: Link, state: TcpChannelState, now_ms: float
) -> TransmissionPlan:
    """Reliable-stream semantics: always delivers, loss becomes delay.

    The segment is (re)transmitted until the loss process lets it through;
    each failed attempt costs one RTO with exponential backoff.  Delivery
    time is then clamped to the stream's FIFO horizon.
    """
    waited = 0.0
    retransmits = 0
    rto = state.rto_ms(link.rtt_ms)
    while link.draw_drop():
        waited += rto * (2.0**retransmits)
        retransmits += 1
        if retransmits >= MAX_TCP_ATTEMPTS:
            break
    delay = waited + link.draw_delay()
    state.observe_rtt(link.rtt_ms)

    # FIFO: cannot overtake the previous segment on this stream.
    deliver_at = now_ms + delay
    if deliver_at < state.last_delivery_ms:
        deliver_at = state.last_delivery_ms
        delay = deliver_at - now_ms
    state.last_delivery_ms = deliver_at
    return TransmissionPlan(deliver=True, delay_ms=delay, retransmits=retransmits)
