"""One-way delay models for directed links.

``tc``/netem expresses link impairment as *delay distributions*; these
classes are the in-simulator equivalents.  All models sample a one-way delay
in **milliseconds**.  A link's *base* one-way delay is ``rtt/2`` and is held
by the model as a mutable attribute so that :class:`~repro.net.schedule.
NetworkSchedule` can retarget it mid-run exactly like ``tc qdisc change``.

Every model guarantees a strictly positive sample (clamped at
``min_delay``), because a zero or negative network delay would let a message
arrive before it was sent and break event causality.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np

__all__ = [
    "DelayModel",
    "ConstantDelay",
    "UniformJitterDelay",
    "NormalJitterDelay",
    "LognormalJitterDelay",
]

#: Smallest one-way delay any model will return (ms).  Keeps causality and
#: mirrors the fact that even loopback traffic is not instantaneous.
MIN_DELAY_MS: float = 1e-3


@runtime_checkable
class DelayModel(Protocol):
    """Protocol for one-way delay samplers."""

    base_ms: float

    def sample(self, rng: np.random.Generator) -> float:
        """Draw one one-way delay (ms)."""
        ...

    def set_base(self, base_ms: float) -> None:
        """Retarget the base one-way delay (schedule hook)."""
        ...


class _BaseDelay:
    """Shared plumbing: base-delay storage and validation."""

    __slots__ = ("base_ms",)

    def __init__(self, base_ms: float) -> None:
        if not (base_ms >= 0.0):
            raise ValueError(f"base delay must be >= 0 ms, got {base_ms!r}")
        self.base_ms = float(base_ms)

    def set_base(self, base_ms: float) -> None:
        if not (base_ms >= 0.0):
            raise ValueError(f"base delay must be >= 0 ms, got {base_ms!r}")
        self.base_ms = float(base_ms)


class ConstantDelay(_BaseDelay):
    """Deterministic delay: every message takes exactly ``base_ms``."""

    def sample(self, rng: np.random.Generator) -> float:  # noqa: ARG002 - protocol
        return max(self.base_ms, MIN_DELAY_MS)

    def __repr__(self) -> str:
        return f"ConstantDelay({self.base_ms} ms)"


class UniformJitterDelay(_BaseDelay):
    """``base ± jitter`` uniform — netem's default jitter distribution."""

    __slots__ = ("jitter_ms",)

    def __init__(self, base_ms: float, jitter_ms: float) -> None:
        super().__init__(base_ms)
        if jitter_ms < 0.0:
            raise ValueError(f"jitter must be >= 0 ms, got {jitter_ms!r}")
        self.jitter_ms = float(jitter_ms)

    def sample(self, rng: np.random.Generator) -> float:
        d = self.base_ms + rng.uniform(-self.jitter_ms, self.jitter_ms)
        return max(d, MIN_DELAY_MS)

    def __repr__(self) -> str:
        return f"UniformJitterDelay({self.base_ms} ± {self.jitter_ms} ms)"


class NormalJitterDelay(_BaseDelay):
    """Gaussian jitter around the base delay (netem ``distribution normal``).

    This is the default model in the experiment configs: the paper injects
    no *intentional* jitter (§IV-B) but a real kernel/bridge path always has
    a small variance, and Dynatune's ``σ_RTT`` safety term exists precisely
    because of it.
    """

    __slots__ = ("sigma_ms",)

    def __init__(self, base_ms: float, sigma_ms: float) -> None:
        super().__init__(base_ms)
        if sigma_ms < 0.0:
            raise ValueError(f"sigma must be >= 0 ms, got {sigma_ms!r}")
        self.sigma_ms = float(sigma_ms)

    def sample(self, rng: np.random.Generator) -> float:
        # sigma * standard_normal() is bit-identical to normal(0, sigma)
        # (that is exactly how Generator.normal derives the value) but
        # skips the loc/scale dispatch overhead — this draw happens once
        # per simulated message.
        if self.sigma_ms:
            d = self.base_ms + self.sigma_ms * rng.standard_normal()
        else:
            d = self.base_ms
        return max(d, MIN_DELAY_MS)

    def __repr__(self) -> str:
        return f"NormalJitterDelay({self.base_ms} ms, sigma={self.sigma_ms} ms)"


class LognormalJitterDelay(_BaseDelay):
    """Heavy-tailed delay: ``base + lognormal`` excess.

    Internet paths show right-skewed delay with occasional large excursions
    (Høiland-Jørgensen et al., cited in §II-C1).  Used by the WAN example
    and the robustness tests; the excess has median
    ``exp(mu_log)`` ms and shape ``sigma_log``.
    """

    __slots__ = ("mu_log", "sigma_log")

    def __init__(self, base_ms: float, mu_log: float, sigma_log: float) -> None:
        super().__init__(base_ms)
        if sigma_log < 0.0:
            raise ValueError(f"sigma_log must be >= 0, got {sigma_log!r}")
        self.mu_log = float(mu_log)
        self.sigma_log = float(sigma_log)

    def sample(self, rng: np.random.Generator) -> float:
        excess = rng.lognormal(self.mu_log, self.sigma_log)
        return max(self.base_ms + excess, MIN_DELAY_MS)

    def __repr__(self) -> str:
        return (
            f"LognormalJitterDelay({self.base_ms} ms + LN({self.mu_log}, "
            f"{self.sigma_log}))"
        )
