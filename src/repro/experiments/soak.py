"""Long-horizon soak: bounded memory and history-independent catch-up.

The compaction subsystem's two promises, measured end to end on a live
cluster under sustained client load with periodic leader churn:

* **bounded memory** — with compaction enabled, the peak *retained* log
  entry count (``last_index − last_included_index``, sampled cluster-wide
  on a fixed cadence) stays below ``compaction_threshold +
  compaction_retain_margin + RETAINED_SLACK`` no matter how long the run
  is.  Without compaction it grows linearly with the op count — the exact
  O(total-ops) behaviour that blocked long-horizon runs.

* **flat catch-up** — a follower that crashed early and returns after the
  cluster committed N more ops catches up via one InstallSnapshot plus
  the retained tail: the number of entries it replays (and the virtual
  catch-up time) is independent of N.  The control runs the same timeline
  with compaction off, where the follower replays the entire history —
  the soak reports the replay ratio, which must be ≥ 10× at the default
  durations.

Every run also carries an event-hooked
:class:`~repro.scenarios.safety.SafetyChecker`, so the soak doubles as a
long-window safety gate for the compaction path (election safety, monotone
commit, no-committed-entry-loss with the frontier rules).

Runs fan out across ``REPRO_JOBS`` via :func:`~repro.experiments.runner.
run_tasks`; each is an independent simulation keyed by the config, so
results are byte-identical for any job count.

CLI::

    python -m repro.experiments.soak             # quick grid (~1 min)
    python -m repro.experiments.soak --smoke     # CI budget: one short pair
    REPRO_SCALE=paper python -m repro.experiments.soak
"""

from __future__ import annotations

import dataclasses
import sys

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.experiments.common import get_scale, make_policy_factory
from repro.experiments.runner import run_tasks
from repro.fuzz.history import OpHistory
from repro.fuzz.workload import WorkloadConfig, WorkloadDriver
from repro.raft.types import RaftConfig
from repro.scenarios.safety import SafetyChecker
from repro.scenarios.scenario import Scenario
from repro.scenarios.steps import Pause, Repeat
from repro.sim.events import PRIORITY_CONTROL

__all__ = [
    "RETAINED_SLACK",
    "SoakConfig",
    "SoakRunResult",
    "SoakResult",
    "run_one",
    "run",
    "check",
    "main",
]

#: Transient headroom above ``threshold + margin`` the memory bound grants:
#: an apply batch can overshoot the trigger by up to one replication batch
#: (``max_entries_per_append``) before ``_maybe_compact`` runs, and a
#: leaderless churn window buffers a handful of uncommitted client entries.
RETAINED_SLACK = 128


@dataclasses.dataclass(slots=True, frozen=True)
class SoakConfig:
    """One soak run (the grid in :func:`run` derives variants from this)."""

    system: str = "raft"
    n_nodes: int = 5
    seed: int = 42
    rtt_ms: float = 50.0
    #: Load window before the lagging follower returns.
    duration_ms: float = 60_000.0
    #: Compaction knobs; ``compaction_threshold=0`` is the full-replay control.
    compaction_threshold: int = 800
    compaction_margin: int = 32
    #: Sustained closed-loop client load.
    n_clients: int = 4
    n_keys: int = 8
    think_min_ms: float = 5.0
    think_max_ms: float = 40.0
    op_timeout_ms: float = 1_500.0
    #: Periodic leader churn (container sleep on whoever currently leads).
    churn_every_ms: float = 12_000.0
    churn_down_ms: float = 1_500.0
    #: The deliberately lagging follower: crashed here, recovered at
    #: ``duration_ms``, then timed until it reaches the commit frontier.
    lag_start_ms: float = 5_000.0
    catchup_timeout_ms: float = 30_000.0
    settle_ms: float = 2_000.0
    sample_interval_ms: float = 250.0

    def __post_init__(self) -> None:
        if self.duration_ms <= self.lag_start_ms:
            raise ValueError("duration_ms must exceed lag_start_ms")
        if self.compaction_threshold < 0 or self.compaction_margin < 0:
            raise ValueError("compaction knobs must be >= 0")

    @property
    def memory_bound(self) -> int:
        """Peak retained entries a compaction-enabled run must stay under."""
        return self.compaction_threshold + self.compaction_margin + RETAINED_SLACK


@dataclasses.dataclass(slots=True, frozen=True)
class SoakRunResult:
    """One run reduced to the soak's headline numbers (picklable)."""

    system: str
    compaction: bool
    duration_ms: float
    #: Client throughput over the load window.
    ops_completed: int
    sustained_ops_per_s: float
    #: Memory trajectory (entry counts; cluster-wide maxima).
    peak_retained: int
    final_retained: int
    compactions: int
    snapshots_taken: int
    memory_bound: int
    #: Catch-up of the lagging follower.
    lagger: str
    committed_at_recover: int
    lagger_match_at_recover: int
    catchup_ms: float
    caught_up: bool
    replayed_entries: int
    snapshot_installs: int
    #: Safety verdict over the whole run.
    violations: tuple[str, ...]


@dataclasses.dataclass(slots=True, frozen=True)
class SoakResult:
    runs: tuple[SoakRunResult, ...]

    def find(self, system: str, *, compaction: bool, duration_ms: float) -> SoakRunResult:
        for r in self.runs:
            if (
                r.system == system
                and r.compaction is compaction
                and r.duration_ms == duration_ms
            ):
                return r
        raise KeyError(f"no soak run ({system}, compaction={compaction}, {duration_ms})")


def _churn_scenario(cfg: SoakConfig) -> Scenario | None:
    horizon = cfg.duration_ms + cfg.catchup_timeout_ms
    every = cfg.churn_every_ms
    times = int((horizon - cfg.churn_down_ms - 2_000.0) // every)
    if times < 1:
        return None
    repeat = Repeat(every_ms=every, times=times) if times > 1 else None
    return Scenario(
        "soak-churn",
        [
            Pause(
                at_ms=every,
                node="@leader",
                duration_ms=cfg.churn_down_ms,
                repeat=repeat,
            )
        ],
        description="periodic container-sleep of the current leader",
    )


class _RetainedSampler:
    """Samples the cluster-wide retained-entry maximum on a fixed cadence."""

    __slots__ = ("cluster", "interval_ms", "peak")

    def __init__(self, cluster, interval_ms: float) -> None:
        self.cluster = cluster
        self.interval_ms = interval_ms
        self.peak = 0

    def install(self) -> None:
        self.cluster.loop.schedule(
            self.interval_ms, self, priority=PRIORITY_CONTROL
        )

    def __call__(self) -> None:
        peak = self.peak
        for node in self.cluster.nodes.values():
            log = node.log
            retained = log.last_index - log.last_included_index
            if retained > peak:
                peak = retained
        self.peak = peak
        self.cluster.loop.schedule(
            self.interval_ms, self, priority=PRIORITY_CONTROL
        )


def run_one(cfg: SoakConfig) -> SoakRunResult:
    """Run one soak variant end to end (module-level: run_tasks worker)."""
    compaction = cfg.compaction_threshold > 0
    cluster = build_cluster(
        ClusterConfig(
            n_nodes=cfg.n_nodes,
            seed=cfg.seed,
            rtt_ms=cfg.rtt_ms,
            raft=RaftConfig(
                compaction_threshold=cfg.compaction_threshold,
                compaction_retain_margin=cfg.compaction_margin,
            ),
        ),
        make_policy_factory(cfg.system),
    )
    checker = SafetyChecker(cluster)
    checker.install(event_hooks=True)
    scenario = _churn_scenario(cfg)
    if scenario is not None:
        scenario.install(cluster)
    history = OpHistory()
    horizon = cfg.duration_ms + cfg.catchup_timeout_ms + cfg.settle_ms
    driver = WorkloadDriver(
        cluster,
        WorkloadConfig(
            n_clients=cfg.n_clients,
            n_keys=cfg.n_keys,
            op_timeout_ms=cfg.op_timeout_ms,
            think_min_ms=cfg.think_min_ms,
            think_max_ms=cfg.think_max_ms,
            start_ms=400.0,
            max_ops_per_client=1_000_000,
        ),
        history,
        stop_ms=cfg.duration_ms + cfg.catchup_timeout_ms,
    )
    driver.install()
    sampler = _RetainedSampler(cluster, cfg.sample_interval_ms)
    sampler.install()

    cluster.start()
    leader = cluster.run_until_leader()
    cluster.run_until(cfg.lag_start_ms)

    # Crash the deliberately lagging follower (first non-leader by name).
    current = cluster.leader() or leader
    lagger = next(n for n in cluster.names if n != current)
    cluster.node(lagger).crash()

    cluster.run_until(cfg.duration_ms)

    # Recover and time the catch-up to the commit frontier of this instant.
    target = max(
        n.commit_index for n in cluster.nodes.values() if n.name != lagger
    )
    follower = cluster.node(lagger)
    match_at_recover = max(
        (n.match_index.get(lagger, 0) for n in cluster.nodes.values() if n.is_leader),
        default=0,
    )
    # Throughput over the load window proper: ops completed up to the
    # recovery instant, over the time it took — the catch-up and settle
    # tails would otherwise dilute the denominator by a duration-dependent
    # amount and make the D vs 2D rows incomparable.
    ops_at_recover = sum(1 for o in history.ops() if o.completed)
    applied_before = follower.metrics.entries_applied
    installs_before = follower.metrics.snapshots_installed
    recover_at = cluster.loop.now
    follower.recover()
    deadline = recover_at + cfg.catchup_timeout_ms
    caught_up = False
    while cluster.loop.now < deadline:
        if follower.last_applied >= target:
            caught_up = True
            break
        cluster.run_for(25.0)
    catchup_ms = cluster.loop.now - recover_at
    replayed = follower.metrics.entries_applied - applied_before
    installs = follower.metrics.snapshots_installed - installs_before

    cluster.run_for(cfg.settle_ms)
    violations = tuple(checker.verify())

    final_retained = max(
        n.log.last_index - n.log.last_included_index for n in cluster.nodes.values()
    )
    return SoakRunResult(
        system=cfg.system,
        compaction=compaction,
        duration_ms=cfg.duration_ms,
        ops_completed=ops_at_recover,
        sustained_ops_per_s=ops_at_recover / (recover_at / 1_000.0),
        peak_retained=sampler.peak,
        final_retained=final_retained,
        compactions=sum(n.metrics.compactions for n in cluster.nodes.values()),
        snapshots_taken=sum(n.metrics.snapshots_taken for n in cluster.nodes.values()),
        memory_bound=cfg.memory_bound,
        lagger=lagger,
        committed_at_recover=target,
        lagger_match_at_recover=match_at_recover,
        catchup_ms=catchup_ms,
        caught_up=caught_up,
        replayed_entries=replayed,
        snapshot_installs=installs,
        violations=violations,
    )


def _grid(base: SoakConfig, systems: tuple[str, ...]) -> list[SoakConfig]:
    """The soak grid: per system, compaction at D and 2D plus the
    full-replay control at D."""
    tasks: list[SoakConfig] = []
    for system in systems:
        cfg = dataclasses.replace(base, system=system)
        tasks.append(cfg)  # compaction on, duration D
        tasks.append(
            dataclasses.replace(cfg, duration_ms=2.0 * base.duration_ms)
        )  # compaction on, duration 2D — the flatness probe
        tasks.append(
            dataclasses.replace(cfg, compaction_threshold=0)
        )  # full-replay control at D
    return tasks


def run(
    config: SoakConfig | None = None,
    *,
    systems: tuple[str, ...] = ("raft", "dynatune"),
    jobs: int | None = None,
) -> SoakResult:
    """Run the soak grid (parallel across ``REPRO_JOBS``, bit-stable)."""
    base = config if config is not None else SoakConfig(
        duration_ms=get_scale().soak_duration_ms
    )
    results = run_tasks(run_one, _grid(base, systems), jobs=jobs)
    return SoakResult(runs=tuple(results))


#: Required replay advantage of snapshot catch-up over full replay.
MIN_REPLAY_RATIO = 10.0

#: Headroom the catch-up *time* flatness gate grants the longer run: the
#: recovery instant can land inside a churn window, adding one leaderless
#: interval (churn down time + detection + re-election) that has nothing
#: to do with history length.  The replayed-entry gate is the strict
#: history-independence check; the time gate only has to catch O(N) decay.
CATCHUP_TIME_SLACK_MS = 6_000.0


def check(result: SoakResult, *, min_replay_ratio: float = MIN_REPLAY_RATIO) -> list[str]:
    """The soak's acceptance gates; empty list means all held."""
    problems: list[str] = []
    for r in result.runs:
        tag = f"{r.system}/{'compact' if r.compaction else 'replay'}@{r.duration_ms:g}ms"
        if r.violations:
            problems.append(f"{tag}: safety violations: {r.violations[:3]}")
        if not r.caught_up:
            problems.append(
                f"{tag}: lagger failed to catch up within the window "
                f"(replayed {r.replayed_entries}/{r.committed_at_recover})"
            )
        if r.compaction:
            if r.compactions < 1:
                problems.append(f"{tag}: compaction never triggered")
            if r.peak_retained > r.memory_bound:
                problems.append(
                    f"{tag}: peak retained {r.peak_retained} exceeds the "
                    f"bound {r.memory_bound}"
                )
            if r.snapshot_installs < 1:
                problems.append(f"{tag}: lagger caught up without a snapshot")

    systems = sorted({r.system for r in result.runs})
    durations = sorted({r.duration_ms for r in result.runs if r.compaction})
    if not durations:
        # e.g. --threshold 0 turned every grid cell into a control run:
        # there is nothing to gate, which is itself a gate failure.
        problems.append("no compaction-enabled runs in the soak grid")
        return problems
    for system in systems:
        short = result.find(system, compaction=True, duration_ms=durations[0])
        try:
            control = result.find(
                system, compaction=False, duration_ms=durations[0]
            )
        except KeyError:
            control = None
        if control is not None and control.caught_up:
            # max(1, ·): replaying *zero* entries (the snapshot covered
            # everything) is the best case, not a division hazard.
            ratio = control.replayed_entries / max(1, short.replayed_entries)
            if ratio < min_replay_ratio:
                problems.append(
                    f"{system}: snapshot catch-up replayed only {ratio:.1f}x "
                    f"fewer entries than full replay (need >= {min_replay_ratio:g}x)"
                )
        if len(durations) > 1:
            long = result.find(system, compaction=True, duration_ms=durations[-1])
            # Flatness: doubling the history must not scale the catch-up.
            if long.replayed_entries > 2 * short.replayed_entries + 100:
                problems.append(
                    f"{system}: catch-up replay grew with history "
                    f"({short.replayed_entries} -> {long.replayed_entries})"
                )
            if long.catchup_ms > 2.0 * short.catchup_ms + CATCHUP_TIME_SLACK_MS:
                problems.append(
                    f"{system}: catch-up time grew with history "
                    f"({short.catchup_ms:.0f} -> {long.catchup_ms:.0f} ms)"
                )
    return problems


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--duration-ms", type=float, default=None, help="load window (default: scale preset)"
    )
    parser.add_argument(
        "--threshold",
        type=int,
        default=None,
        help="compaction threshold (entries; default 800, or 250 with --smoke)",
    )
    parser.add_argument(
        "--margin",
        type=int,
        default=None,
        help="retain margin (entries; default 32)",
    )
    parser.add_argument(
        "--system", action="append", default=None, help="restrict systems (repeatable)"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI budget: short windows, small threshold — still asserts "
            "compaction triggers, the memory bound holds, and the lagger "
            "returns via snapshot"
        ),
    )
    args = parser.parse_args(argv)

    if args.smoke:
        # Explicit flags still win over the smoke preset — silently
        # ignoring them would report gates against knobs the operator
        # never chose.
        base = SoakConfig(
            seed=args.seed,
            duration_ms=(
                args.duration_ms if args.duration_ms is not None else 15_000.0
            ),
            compaction_threshold=(
                args.threshold if args.threshold is not None else 250
            ),
            compaction_margin=args.margin if args.margin is not None else 32,
            churn_every_ms=6_000.0,
            lag_start_ms=3_000.0,
        )
        min_ratio = 4.0  # the short smoke history caps the achievable ratio
    else:
        base = SoakConfig(
            seed=args.seed,
            duration_ms=(
                args.duration_ms
                if args.duration_ms is not None
                else get_scale().soak_duration_ms
            ),
            compaction_threshold=(
                args.threshold if args.threshold is not None else 800
            ),
            compaction_margin=args.margin if args.margin is not None else 32,
        )
        min_ratio = MIN_REPLAY_RATIO
    systems = tuple(args.system) if args.system else ("raft", "dynatune")
    result = run(base, systems=systems)

    print(
        f"# soak — {base.duration_ms / 1000.0:g}s/{2 * base.duration_ms / 1000.0:g}s "
        f"windows, threshold {base.compaction_threshold}, margin "
        f"{base.compaction_margin}, seed {base.seed}"
    )
    header = (
        f"{'run':<26} {'ops/s':>7} {'peak ret':>9} {'bound':>6} {'compact':>8} "
        f"{'catchup':>9} {'replayed':>9} {'history':>8} {'snap':>5}"
    )
    print(header)
    for r in result.runs:
        tag = f"{r.system}/{'compact' if r.compaction else 'replay '}@{r.duration_ms / 1000.0:g}s"
        print(
            f"{tag:<26} {r.sustained_ops_per_s:>7.1f} {r.peak_retained:>9} "
            f"{r.memory_bound if r.compaction else '-':>6} {r.compactions:>8} "
            f"{r.catchup_ms:>7.0f}ms {r.replayed_entries:>9} "
            f"{r.committed_at_recover:>8} {r.snapshot_installs:>5}"
        )
    for system in systems:
        try:
            short = result.find(system, compaction=True, duration_ms=base.duration_ms)
            control = result.find(system, compaction=False, duration_ms=base.duration_ms)
        except KeyError:
            continue
        print(
            f"{system}: snapshot catch-up replays "
            f"{control.replayed_entries / max(1, short.replayed_entries):.1f}x fewer "
            f"entries than full replay ({short.replayed_entries} vs "
            f"{control.replayed_entries})"
        )

    problems = check(result, min_replay_ratio=min_ratio)
    if problems:
        print(f"\n{len(problems)} soak gate(s) failed:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print("\nall soak gates held (bounded memory, flat catch-up, safety clean).")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
