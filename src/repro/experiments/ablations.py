"""Ablation studies for Dynatune's design choices (DESIGN.md §4).

The paper fixes ``s = 2``, ``x = 0.999``, ``minListSize = 10``,
``maxListSize = 1000``, pre-vote on, and the discard-on-timeout fallback,
without measuring the alternatives.  These sweeps quantify each choice:

* :func:`prevote_ablation` — Fig. 6b's zero-OTS result with and without
  the pre-vote phase;
* :func:`safety_factor_sweep` — detection speed vs false-detection rate
  as ``s`` varies;
* :func:`arrival_probability_sweep` — heartbeat cost vs missed-heartbeat
  fallbacks as ``x`` varies under loss;
* :func:`min_list_size_sweep` — warm-up length vs time-to-first-tune;
* :func:`window_sweep` — ``maxListSize`` vs adaptation lag after an RTT
  step;
* :func:`fallback_ablation` — the §III-B discard rule vs keeping tuned
  state through suspected failures, under the radical RTT spike.
"""

from __future__ import annotations

import dataclasses
import math

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.cluster.harness import ClusterHarness
from repro.cluster.measurements import extract_failure_episodes, leaderless_intervals, total_interval_length
from repro.dynatune.config import DynatuneConfig
from repro.dynatune.policy import DynatunePolicy
from repro.net.schedule import radical_rtt_profile
from repro.raft.types import RaftConfig

__all__ = [
    "AblationPoint",
    "prevote_ablation",
    "safety_factor_sweep",
    "arrival_probability_sweep",
    "min_list_size_sweep",
    "window_sweep",
    "fallback_ablation",
]


@dataclasses.dataclass(slots=True, frozen=True)
class AblationPoint:
    """One configuration point of a sweep with its measured outcomes."""

    label: str
    value: float
    metrics: dict[str, float]


def _dynatune_cluster(
    *,
    n: int = 5,
    seed: int = 21,
    rtt_ms: float = 100.0,
    jitter_sigma_ms: float = 0.1,
    loss: float = 0.0,
    dynatune: DynatuneConfig | None = None,
    raft: RaftConfig | None = None,
):
    cfg = dynatune if dynatune is not None else DynatuneConfig()
    cluster = build_cluster(
        ClusterConfig(
            n_nodes=n,
            seed=seed,
            rtt_ms=rtt_ms,
            jitter_sigma_ms=jitter_sigma_ms,
            loss=loss,
            raft=raft if raft is not None else RaftConfig(),
        ),
        lambda name: DynatunePolicy(cfg),
    )
    cluster.start()
    return cluster


# --------------------------------------------------------------------- #
# pre-vote
# --------------------------------------------------------------------- #


def prevote_ablation(*, dwell_ms: float = 12_000.0, seed: int = 21) -> list[AblationPoint]:
    """Radical RTT spike with pre-vote on vs off.

    With pre-vote, false detections abort when the live leader speaks up
    (Fig. 6b).  Without it, the first false-detecting candidate increments
    its term, which deposes the leader and forces a real election — OTS.
    """
    points = []
    for prevote in (True, False):
        cluster = _dynatune_cluster(
            raft=RaftConfig(prevote=prevote), seed=seed, rtt_ms=50.0
        )
        schedule = radical_rtt_profile(
            base_ms=50.0, spike_ms=500.0, dwell_ms=dwell_ms, start_ms=10_000.0
        )
        schedule.install(cluster.loop, cluster.network)
        end = schedule.end_ms + dwell_ms
        cluster.run_until(end)
        leaders = cluster.trace.of_kind("become_leader")
        t0 = leaders[0].time if leaders else 0.0
        ots = total_interval_length(
            leaderless_intervals(cluster.trace, t_start=t0, t_end=end)
        )
        elections = [
            r for r in cluster.trace.of_kind("election_start") if r.time > t0
        ]
        points.append(
            AblationPoint(
                label="prevote-on" if prevote else "prevote-off",
                value=float(prevote),
                metrics={
                    "ots_ms": ots,
                    "unnecessary_elections": float(len(elections)),
                    "leader_changes": float(len(leaders) - 1),
                },
            )
        )
    return points


# --------------------------------------------------------------------- #
# safety factor s
# --------------------------------------------------------------------- #


def safety_factor_sweep(
    *,
    factors: tuple[float, ...] = (0.0, 1.0, 2.0, 4.0),
    n_failures: int = 12,
    jitter_sigma_ms: float = 5.0,
    seed: int = 21,
) -> list[AblationPoint]:
    """Tuned Et and detection latency vs ``s``.

    Larger ``s`` widens ``Et = μ + s·σ`` and therefore slows detection —
    the trade the paper describes in §III-D1.  Note that with ``K = 1`` the
    heartbeat interval ``h = Et`` scales *with* Et, so the spurious-timeout
    rate (driven by the ``draw − h`` margin against delivery jitter) is
    only weakly affected by ``s``; the sweep records it for reference.
    Jitter is raised above the testbed default so σ is meaningfully large.
    """
    points = []
    for s in factors:
        cluster = _dynatune_cluster(
            dynatune=DynatuneConfig(safety_factor=s),
            jitter_sigma_ms=jitter_sigma_ms,
            seed=seed,
        )
        harness = ClusterHarness(cluster)
        harness.run_leader_failure_loop(
            n_failures, warmup_ms=8_000.0, sleep_ms=6_000.0, settle_ms=8_000.0
        )
        episodes = [
            e
            for e in extract_failure_episodes(cluster.trace, cluster_size=5)
            if e.resolved
        ]
        detections = [e.detection_latency_ms for e in episodes]
        # Tuned Et across live tuned followers at end of run.
        ets = [
            node.policy.tuned_et_ms
            for node in cluster.nodes.values()
            if isinstance(node.policy, DynatunePolicy)
            and node.policy.tuned_et_ms is not None
        ]
        fallbacks = sum(
            node.policy.fallbacks
            for node in cluster.nodes.values()
            if isinstance(node.policy, DynatunePolicy)
        )
        wall_s = cluster.loop.now / 1000.0
        points.append(
            AblationPoint(
                label=f"s={s:g}",
                value=s,
                metrics={
                    "mean_detection_ms": (
                        sum(detections) / len(detections) if detections else math.nan
                    ),
                    "mean_tuned_et_ms": (
                        sum(ets) / len(ets) if ets else math.nan
                    ),
                    "resolved_episodes": float(len(episodes)),
                    "fallbacks_per_node_minute": fallbacks / 5.0 / (wall_s / 60.0),
                },
            )
        )
    return points


# --------------------------------------------------------------------- #
# arrival probability x
# --------------------------------------------------------------------- #


def arrival_probability_sweep(
    *,
    probabilities: tuple[float, ...] = (0.9, 0.99, 0.999, 0.9999),
    loss: float = 0.2,
    duration_ms: float = 60_000.0,
    seed: int = 21,
) -> list[AblationPoint]:
    """Heartbeat rate vs missed-heartbeat fallbacks as ``x`` varies at a
    fixed 20 % loss rate (RTT 200 ms).

    Lower ``x`` → smaller K → cheaper heartbeats but more windows with no
    arrival → more fallbacks to the conservative defaults.
    """
    points = []
    for x in probabilities:
        cluster = _dynatune_cluster(
            dynatune=DynatuneConfig(arrival_probability=x),
            rtt_ms=200.0,
            loss=loss,
            seed=seed,
        )
        cluster.run_until_leader()
        # Initial formation under loss can take a few split rounds; only
        # count elections after the regime is warmed up and tuned.
        cluster.run_for(10_000.0)
        t_stable = cluster.loop.now
        leader = cluster.run_until_leader()
        leader_node = cluster.node(leader)
        hb_before = leader_node.metrics.heartbeats_sent
        cluster.run_for(duration_ms)
        hb_rate = (leader_node.metrics.heartbeats_sent - hb_before) / (
            duration_ms / 1000.0
        )
        fallbacks = sum(
            node.policy.fallbacks
            for node in cluster.nodes.values()
            if isinstance(node.policy, DynatunePolicy)
        )
        elections = [
            r
            for r in cluster.trace.of_kind("election_start")
            if r.time > t_stable
        ]
        points.append(
            AblationPoint(
                label=f"x={x:g}",
                value=x,
                metrics={
                    "leader_heartbeats_per_s": hb_rate,
                    "fallbacks": float(fallbacks),
                    "unnecessary_elections": float(len(elections)),
                },
            )
        )
    return points


# --------------------------------------------------------------------- #
# minListSize
# --------------------------------------------------------------------- #


def min_list_size_sweep(
    *,
    sizes: tuple[int, ...] = (2, 10, 50, 100),
    seed: int = 21,
) -> list[AblationPoint]:
    """Warm-up cost: virtual time from first leadership to all followers
    tuned, per ``minListSize``."""
    points = []
    for m in sizes:
        cluster = _dynatune_cluster(
            dynatune=DynatuneConfig(min_list_size=m), seed=seed
        )
        leader = cluster.run_until_leader()
        t0 = cluster.loop.now
        followers = [cluster.node(n) for n in cluster.names if n != leader]
        deadline = t0 + 120_000.0
        while cluster.loop.now < deadline:
            if all(f.policy.tuned_et_ms is not None for f in followers):
                break
            cluster.loop.step()
        tuned = all(f.policy.tuned_et_ms is not None for f in followers)
        points.append(
            AblationPoint(
                label=f"minList={m}",
                value=float(m),
                metrics={
                    "time_to_tuned_ms": cluster.loop.now - t0 if tuned else math.inf,
                    "all_tuned": float(tuned),
                },
            )
        )
    return points


# --------------------------------------------------------------------- #
# maxListSize (estimator window)
# --------------------------------------------------------------------- #


def window_sweep(
    *,
    windows: tuple[int, ...] = (30, 100, 1000),
    rtt_step: tuple[float, float] = (50.0, 150.0),
    seed: int = 21,
) -> list[AblationPoint]:
    """Adaptation lag after an RTT step, per ``maxListSize``.

    The window is the paper's only smoothing mechanism: a 1000-sample
    window at h ≈ Et means minutes of memory, so the descending legs of
    Fig. 6a lag.  This sweep measures time until the tuned Et reaches
    within 20 % of the new RTT.
    """
    lo, hi = rtt_step
    points = []
    for w in windows:
        cluster = _dynatune_cluster(
            dynatune=DynatuneConfig(max_list_size=w), rtt_ms=lo, seed=seed
        )
        leader = cluster.run_until_leader()
        cluster.run_for(15_000.0)
        cluster.network.set_all_rtt(hi)
        t_step = cluster.loop.now
        followers = [cluster.node(n) for n in cluster.names if n != leader]
        deadline = t_step + 600_000.0
        converged = None
        while cluster.loop.now < deadline:
            ets = [f.policy.tuned_et_ms for f in followers]
            if all(et is not None and et >= 0.8 * hi for et in ets):
                converged = cluster.loop.now
                break
            cluster.loop.step()
        points.append(
            AblationPoint(
                label=f"window={w}",
                value=float(w),
                metrics={
                    "adaptation_lag_ms": (
                        converged - t_step if converged is not None else math.inf
                    ),
                },
            )
        )
    return points


# --------------------------------------------------------------------- #
# fallback rule
# --------------------------------------------------------------------- #


def fallback_ablation(
    *, dwell_ms: float = 12_000.0, seed: int = 21
) -> list[AblationPoint]:
    """§III-B measurement-discard rule vs keeping data, under the spike.

    Note that one half of the paper's fallback is architectural either
    way: a node that lost sight of its leader arms retry timers from the
    *default* Et because the tuned value is bound to a known leader.  What
    the discard rule adds is throwing away the measurement window — buying
    conservatism (no stale-environment data survives a suspected failure)
    at the price of **time spent untuned** while ``minListSize`` fresh
    samples accumulate.  This sweep quantifies exactly that trade:
    untuned follower-seconds over a radical-spike run, with availability
    (OTS) checked to be unharmed in both variants.
    """
    points = []
    for fallback in (True, False):
        cluster = _dynatune_cluster(
            dynatune=DynatuneConfig(fallback_on_timeout=fallback),
            rtt_ms=50.0,
            seed=seed,
        )
        schedule = radical_rtt_profile(
            base_ms=50.0, spike_ms=500.0, dwell_ms=dwell_ms, start_ms=10_000.0
        )
        schedule.install(cluster.loop, cluster.network)
        end = schedule.end_ms + dwell_ms
        leader = cluster.run_until_leader()
        untuned_seconds = 0.0
        while cluster.loop.now < end:
            cluster.run_for(1_000.0)
            current = cluster.leader()
            for name in cluster.names:
                node = cluster.node(name)
                if (
                    name != current
                    and node.alive
                    and isinstance(node.policy, DynatunePolicy)
                    and node.policy.tuned_et_ms is None
                ):
                    untuned_seconds += 1.0
        leaders = cluster.trace.of_kind("become_leader")
        t0 = leaders[0].time if leaders else 0.0
        timeouts = [
            r for r in cluster.trace.of_kind("election_timeout") if r.time > t0
        ]
        ots = total_interval_length(
            leaderless_intervals(cluster.trace, t_start=t0, t_end=end)
        )
        fallbacks = sum(
            node.policy.fallbacks
            for node in cluster.nodes.values()
            if isinstance(node.policy, DynatunePolicy)
        )
        points.append(
            AblationPoint(
                label="fallback-on" if fallback else "fallback-off",
                value=float(fallback),
                metrics={
                    "untuned_follower_seconds": untuned_seconds,
                    "false_detections": float(len(timeouts)),
                    "fallbacks": float(fallbacks),
                    "ots_ms": ots,
                },
            )
        )
    return points
