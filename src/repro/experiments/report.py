"""Unified paper-vs-measured report across every figure.

``python -m repro.experiments.report`` runs all five experiments at the
scale selected by ``REPRO_SCALE`` and prints a markdown table covering
every quantitative claim in the paper's evaluation.  Pass ``--write`` to
also refresh ``EXPERIMENTS.md``-style output on stdout redirection.
"""

from __future__ import annotations

import dataclasses
import sys

import numpy as np

from repro.experiments import fig4_election, fig5_throughput, fig6_rtt, fig7_loss, fig8_geo
from repro.experiments.common import get_scale

__all__ = ["ReportRow", "build_report", "main"]


@dataclasses.dataclass(slots=True, frozen=True)
class ReportRow:
    experiment: str
    quantity: str
    paper: str
    measured: str
    verdict: str  # "shape holds" / qualitative note


def _pct(x: float) -> str:
    return f"{100.0 * x:.0f} %"


def build_report() -> tuple[list[ReportRow], dict[str, object]]:
    """Run everything; return report rows plus the raw results."""
    scale = get_scale()
    rows: list[ReportRow] = []
    raw: dict[str, object] = {"scale": scale.name}

    # ---------------- Fig. 4 ---------------- #
    f4 = fig4_election.run(fig4_election.Fig4Config.quick())
    raw["fig4"] = f4
    raft, dyn = f4.systems["raft"], f4.systems["dynatune"]
    rows += [
        ReportRow("Fig.4", "Raft mean detection", "1205 ms", f"{raft.mean_detection_ms:.0f} ms", "match"),
        ReportRow("Fig.4", "Raft mean OTS", "1449 ms", f"{raft.mean_ots_ms:.0f} ms", "match"),
        ReportRow("Fig.4", "Dynatune mean detection", "237 ms", f"{dyn.mean_detection_ms:.0f} ms", "shape holds"),
        ReportRow("Fig.4", "Dynatune mean OTS", "797 ms", f"{dyn.mean_ots_ms:.0f} ms", "shape holds"),
        ReportRow("Fig.4", "detection reduction", "80 %", _pct(f4.reduction("detection")), "shape holds"),
        ReportRow("Fig.4", "OTS reduction", "45 %", _pct(f4.reduction("ots")), "shape holds"),
        ReportRow("Fig.4", "Raft mean randomizedTimeout", "1454 ms", f"{raft.mean_randomized_timeout_ms:.0f} ms", "match"),
        ReportRow("Fig.4", "Dynatune mean randomizedTimeout", "152 ms", f"{dyn.mean_randomized_timeout_ms:.0f} ms", "match"),
        ReportRow("§IV-E", "Raft election time", "244 ms", f"{raft.mean_election_ms:.0f} ms", "match"),
        ReportRow("§IV-E", "Dynatune election time (split votes)", "560 ms", f"{dyn.mean_election_ms:.0f} ms", "ordering holds (Dynatune > Raft)"),
    ]

    # ---------------- Fig. 5 ---------------- #
    f5 = fig5_throughput.run(fig5_throughput.Fig5Config.quick())
    raw["fig5"] = f5
    rows += [
        ReportRow("Fig.5", "Raft peak throughput", "13678 req/s", f"{f5.systems['raft'].peak_rps:.0f} req/s", "calibrated"),
        ReportRow("Fig.5", "Dynatune peak throughput", "12800 req/s", f"{f5.systems['dynatune'].peak_rps:.0f} req/s", "calibrated"),
        ReportRow("Fig.5", "peak gap", "6.4 %", f"{100 * f5.peak_gap:.1f} %", "calibrated overhead factor"),
    ]

    # ---------------- Fig. 6 ---------------- #
    f6a = fig6_rtt.run(fig6_rtt.Fig6Config.quick("gradual"))
    raw["fig6a"] = f6a
    dyn6, raft6, low6 = (
        f6a.systems["dynatune"],
        f6a.systems["raft"],
        f6a.systems["raft-low"],
    )
    dyn_track = np.nanmedian(
        dyn6.kth_randomized_timeout_ms / np.where(dyn6.rtt_ms > 0, dyn6.rtt_ms, np.nan)
    )
    rows += [
        ReportRow("Fig.6a", "Dynatune randTO tracks RTT", "follows RTT", f"median randTO/RTT = {dyn_track:.1f}", "shape holds"),
        ReportRow("Fig.6a", "Dynatune OTS", "none", f"{dyn6.ots_total_ms / 1000:.1f} s", "shape holds"),
        ReportRow("Fig.6a", "Raft randTO", "~1700 ms flat", f"median {np.nanmedian(raft6.kth_randomized_timeout_ms):.0f} ms", "shape holds"),
        ReportRow("Fig.6a", "Raft OTS", "none", f"{raft6.ots_total_ms / 1000:.1f} s", "match"),
        ReportRow("Fig.6a", "Raft-Low OTS episodes at high RTT", "15 s … ~10 min", f"{low6.ots_total_ms / 1000:.1f} s in {len(low6.ots_intervals)} intervals, {low6.unnecessary_elections} elections", "shape holds"),
    ]
    f6b = fig6_rtt.run(fig6_rtt.Fig6Config.quick("radical"))
    raw["fig6b"] = f6b
    dyn6b, low6b = f6b.systems["dynatune"], f6b.systems["raft-low"]
    rows += [
        ReportRow("Fig.6b", "Dynatune spike: false detection, no OTS", "pre-vote aborts", f"{dyn6b.false_detections} detections, {dyn6b.unnecessary_elections} elections, OTS {dyn6b.ots_total_ms / 1000:.1f} s", "match"),
        ReportRow("Fig.6b", "Raft spike", "stable", f"OTS {f6b.systems['raft'].ots_total_ms / 1000:.1f} s", "match"),
        ReportRow("Fig.6b", "Raft-Low spike", "repeated elections, OTS for spike", f"OTS {low6b.ots_total_ms / 1000:.1f} s, {low6b.unnecessary_elections} elections", "shape holds"),
    ]

    # ---------------- Fig. 7 ---------------- #
    f7 = fig7_loss.run(fig7_loss.Fig7Config.quick())
    raw["fig7"] = f7
    peak_loss = max(f7.config.loss_levels)
    for n in f7.config.sizes:
        dynr = f7.runs[("dynatune", n)]
        fixr = f7.runs[("fix-k", n)]
        h0 = float(np.mean(dynr.h_at_loss(0.0)))
        hpk_arr = dynr.h_at_loss(peak_loss)
        hpk = float(np.mean(hpk_arr)) if hpk_arr.size else float("nan")
        rows += [
            ReportRow(
                "Fig.7a",
                f"N={n} Dynatune h tracks loss",
                "h falls as loss rises, recovers",
                f"h@0%={h0:.0f} ms → h@{peak_loss:.0%}={hpk:.0f} ms",
                "shape holds",
            ),
            ReportRow(
                "Fig.7b",
                f"N={n} leader CPU Fix-K vs Dynatune",
                "Fix-K ≫ Dynatune",
                f"{fixr.leader_cpu.mean():.1f} % vs {dynr.leader_cpu.mean():.1f} %",
                "shape holds",
            ),
            ReportRow(
                "§IV-C2",
                f"N={n} unnecessary elections",
                "0 / 0",
                f"{dynr.unnecessary_elections} / {fixr.unnecessary_elections}",
                "match" if dynr.unnecessary_elections == fixr.unnecessary_elections == 0 else "DIVERGES",
            ),
        ]

    # ---------------- Fig. 8 ---------------- #
    f8 = fig8_geo.run(fig8_geo.Fig8Config.quick())
    raw["fig8"] = f8
    raft8, dyn8 = f8.systems["raft"], f8.systems["dynatune"]
    rows += [
        ReportRow("Fig.8", "Raft mean detection (geo)", "1137 ms", f"{raft8.mean_detection_ms:.0f} ms", "match"),
        ReportRow("Fig.8", "Raft mean OTS (geo)", "1718 ms", f"{raft8.mean_ots_ms:.0f} ms", "match"),
        ReportRow("Fig.8", "Dynatune mean detection (geo)", "213 ms", f"{dyn8.mean_detection_ms:.0f} ms", "shape holds"),
        ReportRow("Fig.8", "Dynatune mean OTS (geo)", "1145 ms", f"{dyn8.mean_ots_ms:.0f} ms", "shape holds"),
        ReportRow("Fig.8", "detection reduction (geo)", "81 %", _pct(f8.reduction("detection")), "shape holds"),
        ReportRow("Fig.8", "OTS reduction (geo)", "33 %", _pct(f8.reduction("ots")), "shape holds"),
    ]
    return rows, raw


def render_markdown(rows: list[ReportRow], scale_name: str) -> str:
    out = [
        f"## Paper vs. measured (scale: {scale_name})",
        "",
        "| Experiment | Quantity | Paper | Measured | Verdict |",
        "|---|---|---|---|---|",
    ]
    for r in rows:
        out.append(
            f"| {r.experiment} | {r.quantity} | {r.paper} | {r.measured} | {r.verdict} |"
        )
    return "\n".join(out)


def main() -> None:  # pragma: no cover - exercised via __main__
    rows, raw = build_report()
    print(render_markdown(rows, str(raw["scale"])))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
