"""Fig. 8 + §IV-D: the real geo-distributed (AWS) experiment.

Protocol: five ``m5.large``-class servers in Tokyo, London, California,
Sydney and São Paulo; the §IV-B1 leader-kill loop repeated on that
topology.  Clocks are NTP-synchronised, so the paper flags its measured
times as carrying tens of milliseconds of error.

Paper means: detection 1137 → 213 ms (−81 %), OTS 1718 → 1145 ms (−33 %).

Reproduction: the AWS RTT matrix of :mod:`repro.net.topology` with
proportional WAN jitter, and a :class:`~repro.net.topology.ClockModel`
applying per-node NTP offsets (σ = 15 ms) *to the measurement extraction
only* — the simulator still runs on exact time, exactly as physics does.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.cdf import empirical_cdf
from repro.analysis.stats import SummaryStats, summarize
from repro.cluster.builder import ClusterConfig, build_cluster
from repro.cluster.harness import ClusterHarness
from repro.cluster.measurements import FailureEpisode, extract_failure_episodes
from repro.experiments.common import get_scale, make_policy_factory
from repro.experiments.runner import run_sharded_trials, run_tasks
from repro.net.topology import ClockModel

__all__ = [
    "Fig8Config",
    "GeoElectionResult",
    "Fig8Result",
    "run",
    "run_trials",
    "main",
]

PAPER_NUMBERS = {
    "raft": {"detection": 1137.0, "ots": 1718.0},
    "dynatune": {"detection": 213.0, "ots": 1145.0},
}


@dataclasses.dataclass(slots=True, frozen=True)
class Fig8Config:
    n_failures: int = 60
    n_nodes: int = 5
    seed: int = 42
    systems: tuple[str, ...] = ("raft", "dynatune")
    ntp_offset_sigma_ms: float = 15.0
    warmup_ms: float = 10_000.0
    sleep_ms: float = 8_000.0
    settle_ms: float = 10_000.0

    @classmethod
    def quick(cls) -> "Fig8Config":
        return cls(n_failures=get_scale().fig4_failures)

    @classmethod
    def paper_scale(cls) -> "Fig8Config":
        return cls(n_failures=1000)


@dataclasses.dataclass(slots=True, frozen=True)
class GeoElectionResult:
    system: str
    episodes: tuple[FailureEpisode, ...]
    detection_ms: np.ndarray
    ots_ms: np.ndarray
    detection_summary: SummaryStats
    ots_summary: SummaryStats
    detection_cdf: tuple[np.ndarray, np.ndarray]
    ots_cdf: tuple[np.ndarray, np.ndarray]
    placement: dict[str, str]

    @property
    def mean_detection_ms(self) -> float:
        return self.detection_summary.mean

    @property
    def mean_ots_ms(self) -> float:
        return self.ots_summary.mean


@dataclasses.dataclass(slots=True, frozen=True)
class Fig8Result:
    config: Fig8Config
    systems: dict[str, GeoElectionResult]

    def reduction(self, metric: str) -> float:
        base = getattr(self.systems["raft"], f"mean_{metric}_ms")
        new = getattr(self.systems["dynatune"], f"mean_{metric}_ms")
        return 1.0 - new / base


def run_system(system: str, config: Fig8Config) -> GeoElectionResult:
    cluster = build_cluster(
        ClusterConfig(
            n_nodes=config.n_nodes,
            seed=config.seed,
            topology="aws",
        ),
        make_policy_factory(system),
    )
    clock = ClockModel.ntp(
        cluster.names, cluster.rngs, offset_sigma_ms=config.ntp_offset_sigma_ms
    )
    cluster.start()
    harness = ClusterHarness(cluster)
    harness.run_leader_failure_loop(
        config.n_failures,
        warmup_ms=config.warmup_ms,
        sleep_ms=config.sleep_ms,
        settle_ms=config.settle_ms,
    )
    episodes = tuple(
        e
        for e in extract_failure_episodes(
            cluster.trace, clock=clock, cluster_size=config.n_nodes
        )
        if e.resolved
    )
    if not episodes:
        raise RuntimeError(f"fig8[{system}]: no resolved failure episodes")
    detection = np.array([e.detection_latency_ms for e in episodes])
    ots = np.array([e.ots_ms for e in episodes])
    return GeoElectionResult(
        system=system,
        episodes=episodes,
        detection_ms=detection,
        ots_ms=ots,
        detection_summary=summarize(detection),
        ots_summary=summarize(ots),
        detection_cdf=empirical_cdf(detection),
        ots_cdf=empirical_cdf(ots),
        placement=dict(cluster.placement or {}),
    )


def _run_system_task(args: tuple[str, Fig8Config]) -> GeoElectionResult:
    """Module-level worker for :func:`repro.experiments.runner.run_tasks`."""
    system, cfg = args
    return run_system(system, cfg)


def _merge_system_results(
    system: str, parts: list[GeoElectionResult]
) -> GeoElectionResult:
    episodes = tuple(e for p in parts for e in p.episodes)
    detection = np.concatenate([p.detection_ms for p in parts])
    ots = np.concatenate([p.ots_ms for p in parts])
    return GeoElectionResult(
        system=system,
        episodes=episodes,
        detection_ms=detection,
        ots_ms=ots,
        detection_summary=summarize(detection),
        ots_summary=summarize(ots),
        detection_cdf=empirical_cdf(detection),
        ots_cdf=empirical_cdf(ots),
        placement=parts[0].placement,
    )


def run(config: Fig8Config | None = None, *, jobs: int | None = None) -> Fig8Result:
    """Run every system (in parallel across systems when ``jobs`` /
    ``REPRO_JOBS`` allows); results are identical for any job count."""
    cfg = config if config is not None else Fig8Config.quick()
    results = run_tasks(_run_system_task, [(s, cfg) for s in cfg.systems], jobs=jobs)
    return Fig8Result(config=cfg, systems=dict(zip(cfg.systems, results)))


def run_trials(
    config: Fig8Config | None = None,
    *,
    n_trials: int,
    jobs: int | None = None,
) -> Fig8Result:
    """Shard the geo failure loop into ``n_trials`` independent trials
    with derived seeds (see :mod:`repro.experiments.runner`)."""
    cfg = config if config is not None else Fig8Config.quick()
    merged = run_sharded_trials(
        _run_system_task,
        cfg.systems,
        cfg,
        n_trials=n_trials,
        merge=_merge_system_results,
        jobs=jobs,
    )
    return Fig8Result(config=cfg, systems=merged)


def main() -> Fig8Result:  # pragma: no cover - exercised via __main__
    result = run(Fig8Config.quick())
    print(
        f"# Fig. 8 — geo-replicated (AWS) election performance, "
        f"{result.config.n_failures} failures, NTP σ={result.config.ntp_offset_sigma_ms} ms"
    )
    any_sys = next(iter(result.systems.values()))
    print("placement:", ", ".join(f"{n}={r}" for n, r in any_sys.placement.items()))
    for name, sysres in result.systems.items():
        paper = PAPER_NUMBERS[name]
        print(
            f"{name:<10} detection {sysres.mean_detection_ms:>6.0f} ms "
            f"(paper {paper['detection']:.0f})   OTS {sysres.mean_ots_ms:>6.0f} ms "
            f"(paper {paper['ots']:.0f})"
        )
    print(
        f"reduction vs Raft: detection {100 * result.reduction('detection'):.0f} % "
        f"(paper 81 %), OTS {100 * result.reduction('ots'):.0f} % (paper 33 %)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
