"""Fig. 6: adaptivity to RTT fluctuations (§IV-C1).

Two patterns, three systems (Dynatune, Raft, Raft-Low), five servers, no
requests, no induced failures.  Every second the harness samples each
server's current ``randomizedTimeout``; the figure plots the third
(``f+1``) smallest — the level at which a majority would declare the
leader dead — plus the ground-truth RTT and OTS shading for leaderless
periods.

* **gradual** (Fig. 6a): RTT 50 → 200 → 50 ms in 10 ms steps, one dwell per
  value.  Expectations: Dynatune's series tracks the RTT; Raft sits near
  1.5 × 1000 ms; Raft-Low thrashes once the RTT approaches/exceeds its
  100 ms timeout, recovering only when randomization draws land above the
  RTT.
* **radical** (Fig. 6b): 50 ms → 500 ms step → back.  Expectations:
  Dynatune's followers false-detect (timers expire), discard measurements
  and fall back to the 1000 ms default, but the pre-vote aborts when the
  live leader's heartbeats arrive — no OTS; Raft rides it out; Raft-Low
  loses the leader for the whole spike.

Operational stalls (short leader pauses, :class:`~repro.cluster.faults.
StallProfile`) model the single-host scheduling noise that triggers
Raft-Low's elections in the paper's testbed; see DESIGN.md §1.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.cluster.faults import StallInjector, StallProfile
from repro.cluster.harness import ClusterHarness
from repro.cluster.measurements import (
    kth_smallest_series,
    leaderless_intervals,
    randomized_timeout_matrix,
    total_interval_length,
)
from repro.experiments.common import get_scale, make_policy_factory
from repro.net.schedule import NetworkSchedule, gradual_rtt_profile, radical_rtt_profile
from repro.sim.clock import SECOND

__all__ = ["Fig6Config", "SystemRttResult", "Fig6Result", "run", "main"]


@dataclasses.dataclass(slots=True, frozen=True)
class Fig6Config:
    pattern: str = "gradual"  # or "radical"
    systems: tuple[str, ...] = ("dynatune", "raft", "raft-low")
    n_nodes: int = 5
    seed: int = 42
    dwell_ms: float = 12_000.0
    warmup_ms: float = 10_000.0
    tail_ms: float = 5_000.0
    stall_profile: StallProfile | None = dataclasses.field(
        default_factory=StallProfile
    )

    def __post_init__(self) -> None:
        if self.pattern not in ("gradual", "radical"):
            raise ValueError(f"pattern must be 'gradual' or 'radical', got {self.pattern!r}")

    @classmethod
    def quick(cls, pattern: str = "gradual") -> "Fig6Config":
        return cls(pattern=pattern, dwell_ms=get_scale().fig6_dwell_ms)

    @classmethod
    def paper_scale(cls, pattern: str = "gradual") -> "Fig6Config":
        return cls(pattern=pattern, dwell_ms=60_000.0)

    def schedule(self) -> NetworkSchedule:
        if self.pattern == "gradual":
            return gradual_rtt_profile(dwell_ms=self.dwell_ms, start_ms=self.warmup_ms)
        return radical_rtt_profile(dwell_ms=self.dwell_ms, start_ms=self.warmup_ms)

    def duration_ms(self) -> float:
        sched = self.schedule()
        return sched.end_ms + self.dwell_ms + self.tail_ms


@dataclasses.dataclass(slots=True, frozen=True)
class SystemRttResult:
    """Per-system Fig. 6 series."""

    system: str
    pattern: str
    #: Sample times (ms).
    times_ms: np.ndarray
    #: f+1-smallest randomizedTimeout per sample (ms) — the plotted line.
    kth_randomized_timeout_ms: np.ndarray
    #: Ground-truth RTT at each sample (ms).
    rtt_ms: np.ndarray
    #: Leaderless periods after the first election (the OTS shading).
    ots_intervals: tuple[tuple[float, float], ...]
    ots_total_ms: float
    #: Term-incrementing elections after the first leader was established.
    unnecessary_elections: int
    #: Election-timer expirations after the first leader (false detections).
    false_detections: int


@dataclasses.dataclass(slots=True, frozen=True)
class Fig6Result:
    config: Fig6Config
    systems: dict[str, SystemRttResult]


def run_system(system: str, config: Fig6Config) -> SystemRttResult:
    schedule = config.schedule()
    first_rtt, _ = schedule.value_at(config.warmup_ms)
    cluster = build_cluster(
        ClusterConfig(
            n_nodes=config.n_nodes,
            seed=config.seed,
            rtt_ms=first_rtt if first_rtt is not None else 50.0,
        ),
        make_policy_factory(system),
    )
    schedule.install(cluster.loop, cluster.network)
    harness = ClusterHarness(cluster)
    harness.install_randomized_timeout_sampler(interval_ms=SECOND)
    harness.install_rtt_probe(interval_ms=SECOND)
    if config.stall_profile is not None:
        StallInjector(
            cluster.loop,
            list(cluster.nodes.values()),
            config.stall_profile,
            cluster.rngs.stream,
            trace=cluster.trace,
        ).install()
    cluster.start()
    end = config.duration_ms()
    cluster.run_until(end)

    times, matrix = randomized_timeout_matrix(cluster.trace, cluster.names)
    k = config.n_nodes // 2 + 1  # f+1
    kth = kth_smallest_series(matrix, k)

    probes = cluster.trace.of_kind("rtt_probe")
    probe_by_time = {p.time: p.get("rtt_ms") for p in probes}
    rtt_series = np.array([probe_by_time.get(t, np.nan) for t in times])

    leaders = cluster.trace.of_kind("become_leader")
    t_first_leader = leaders[0].time if leaders else 0.0
    intervals = tuple(
        leaderless_intervals(cluster.trace, t_start=t_first_leader, t_end=end)
    )
    elections = [
        r for r in cluster.trace.of_kind("election_start") if r.time > t_first_leader
    ]
    timeouts = [
        r for r in cluster.trace.of_kind("election_timeout") if r.time > t_first_leader
    ]
    return SystemRttResult(
        system=system,
        pattern=config.pattern,
        times_ms=times,
        kth_randomized_timeout_ms=kth,
        rtt_ms=rtt_series,
        ots_intervals=intervals,
        ots_total_ms=total_interval_length(list(intervals)),
        unnecessary_elections=len(elections),
        false_detections=len(timeouts),
    )


def run(config: Fig6Config | None = None) -> Fig6Result:
    cfg = config if config is not None else Fig6Config.quick()
    return Fig6Result(
        config=cfg, systems={s: run_system(s, cfg) for s in cfg.systems}
    )


def main(pattern: str | None = None) -> Fig6Result:  # pragma: no cover
    import sys

    if pattern is None:
        pattern = "gradual"
        if "--pattern" in sys.argv:
            pattern = sys.argv[sys.argv.index("--pattern") + 1]
        elif "radical" in sys.argv:
            pattern = "radical"
    result = run(Fig6Config.quick(pattern))
    cfg = result.config
    print(f"# Fig. 6{'a' if pattern == 'gradual' else 'b'} — {pattern} RTT fluctuation, dwell {cfg.dwell_ms/1000:.0f} s")
    for name, sysres in result.systems.items():
        print(
            f"\n{name}: OTS total {sysres.ots_total_ms/1000.0:.1f} s in "
            f"{len(sysres.ots_intervals)} intervals; elections {sysres.unnecessary_elections}; "
            f"false detections {sysres.false_detections}"
        )
        from repro.analysis.asciiplot import line_chart

        print(
            line_chart(
                {
                    "randTO(f+1)": (
                        sysres.times_ms / 1000.0,
                        sysres.kth_randomized_timeout_ms,
                    ),
                    "RTT": (sysres.times_ms / 1000.0, sysres.rtt_ms),
                },
                title=f"Fig. 6 ({name}) — randomizedTimeout vs RTT",
                x_label="s",
                y_label="ms",
                height=12,
            )
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
