"""Experiment modules: one per paper figure.

Each module exposes:

* a frozen config dataclass with ``quick()`` (CI-sized) and
  ``paper_scale()`` (full §IV parameters) constructors;
* ``run(config) -> <Fig*Result>`` — executes the experiment and returns
  structured series/summaries;
* ``main()`` — runs at the scale selected by ``REPRO_SCALE`` (``quick`` |
  ``paper``) and prints the same rows/series the paper reports.

The per-experiment index lives in DESIGN.md §3; measured-vs-paper numbers
are recorded in EXPERIMENTS.md (regenerate with
``python -m repro.experiments.report``).
"""

from repro.experiments.common import SYSTEMS, Scale, get_scale, make_policy_factory

__all__ = ["SYSTEMS", "Scale", "get_scale", "make_policy_factory"]
