"""Shared experiment infrastructure: system registry and scale presets.

The paper evaluates four systems (§IV); they differ *only* in the tuning
policy attached to each node:

* ``raft`` — etcd defaults: Et = 1000 ms, h = 100 ms, heartbeats over TCP;
* ``raft-low`` — the §IV-C1 baseline with parameters at 1/10 of default;
* ``dynatune`` — the paper's system (s = 2, x = 0.999, minList 10,
  maxList 1000, UDP heartbeats);
* ``fix-k`` — Dynatune with ``h``-tuning disabled, K pinned to 10
  (§IV-C2's comparison variant).

Scales: the paper's runs are long (1000 failures; 3-minute loss dwells;
65-server clusters).  ``paper`` reproduces those parameters; ``quick``
shrinks repetition counts and dwells (never the mechanism) so the full
suite runs in CI time.  Select with ``REPRO_SCALE=quick|paper``.
"""

from __future__ import annotations

import dataclasses
import os
from typing import Callable

from repro.dynatune.config import DynatuneConfig
from repro.dynatune.policy import DynatunePolicy, StaticPolicy, TuningPolicy

__all__ = [
    "SYSTEMS",
    "Scale",
    "QUICK",
    "PAPER",
    "get_scale",
    "get_jobs",
    "make_policy_factory",
]

#: The four evaluated systems, by paper name.
SYSTEMS: tuple[str, ...] = ("raft", "raft-low", "dynatune", "fix-k")


def make_policy_factory(system: str) -> Callable[[str], TuningPolicy]:
    """Policy factory for one of the paper's systems (see module docs)."""
    if system == "raft":
        return lambda name: StaticPolicy.raft_default()
    if system == "raft-low":
        return lambda name: StaticPolicy.raft_low()
    if system == "dynatune":
        return lambda name: DynatunePolicy(DynatuneConfig())
    if system == "fix-k":
        return lambda name: DynatunePolicy(DynatuneConfig(fixed_k=10))
    raise ValueError(f"unknown system {system!r}; expected one of {SYSTEMS}")


@dataclasses.dataclass(slots=True, frozen=True)
class Scale:
    """Repetition counts and dwells for one suite scale."""

    name: str
    #: Leader kills for Figs. 4 and 8 (paper: 1000).
    fig4_failures: int
    #: Fig. 5 staircase repeats (paper: 10).
    fig5_repeats: int
    #: Dwell per RTT step in Fig. 6 (paper: 60 s).
    fig6_dwell_ms: float
    #: Dwell per loss level in Fig. 7 (paper: 180 s).
    fig7_dwell_ms: float
    #: Cluster sizes for Fig. 7 (paper: 5, 17, 65).
    fig7_sizes: tuple[int, ...]
    #: Leader kills for the ablation benches.
    ablation_failures: int
    #: Cluster sizes for the large-cluster scaling sweep (fig_scale).
    scale_sizes: tuple[int, ...] = (5, 25, 51)
    #: Leader kills per (system, size) cell in the scaling sweep.
    scale_failures: int = 3
    #: Load window of the compaction soak (experiments/soak.py); the grid
    #: also runs a 2x window per system to probe catch-up flatness.
    soak_duration_ms: float = 60_000.0


QUICK = Scale(
    name="quick",
    fig4_failures=60,
    fig5_repeats=3,
    fig6_dwell_ms=12_000.0,
    fig7_dwell_ms=20_000.0,
    fig7_sizes=(5, 17),
    ablation_failures=25,
    scale_sizes=(5, 25, 51),
    scale_failures=3,
    soak_duration_ms=60_000.0,
)

PAPER = Scale(
    name="paper",
    fig4_failures=1000,
    fig5_repeats=10,
    fig6_dwell_ms=60_000.0,
    fig7_dwell_ms=180_000.0,
    fig7_sizes=(5, 17, 65),
    ablation_failures=200,
    scale_sizes=(5, 25, 51, 101),
    scale_failures=10,
    soak_duration_ms=300_000.0,
)


def get_scale() -> Scale:
    """Scale selected by ``REPRO_SCALE`` (default: quick)."""
    name = os.environ.get("REPRO_SCALE", "quick").strip().lower()
    if name == "paper":
        return PAPER
    if name == "quick":
        return QUICK
    raise ValueError(f"REPRO_SCALE must be 'quick' or 'paper', got {name!r}")


def get_jobs() -> int:
    """Worker processes selected by ``REPRO_JOBS`` (default: 1).

    ``REPRO_JOBS=1`` (or unset) runs everything in-process — the fully
    deterministic, debugger-friendly mode.  ``REPRO_JOBS=N`` fans
    independent runs/trials across ``N`` processes via
    :mod:`repro.experiments.runner`; ``REPRO_JOBS=0`` or ``auto`` uses
    every available core.  Results are independent of the value: the job
    count changes wall-clock, never the trial decomposition or any seed.
    """
    raw = os.environ.get("REPRO_JOBS", "1").strip().lower()
    if raw in ("auto", "0"):
        return os.cpu_count() or 1
    try:
        jobs = int(raw)
    except ValueError:
        raise ValueError(f"REPRO_JOBS must be an integer or 'auto', got {raw!r}") from None
    if jobs < 1:
        raise ValueError(f"REPRO_JOBS must be >= 1 (or 0/'auto'), got {jobs!r}")
    return jobs


def fmt_ms(v: float | None) -> str:
    """Render a millisecond value for report tables."""
    return "-" if v is None else f"{v:.0f} ms"


def fmt_pct(v: float) -> str:
    return f"{100.0 * v:.0f} %"
