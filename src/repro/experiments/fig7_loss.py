"""Fig. 7: adaptivity to packet-loss fluctuations (§IV-C2).

Protocol: RTT pinned at 200 ms; per-direction loss walks the staircase
0 → 5 → … → 30 → … → 5 → 0 %, one dwell per level; cluster sizes
N ∈ {5, 17, 65}; two systems — Dynatune (full tuning) vs **Fix-K**
(Et-tuning kept, ``K`` pinned to 10 so ``h = Et/10``).  Per §IV-C2 the
containers get two cores, and ``docker stats`` is polled every 5 s.

Reported series (paper Figs. 7a/7b + text):

* the leader's applied heartbeat interval ``h`` over time — Dynatune drops
  ``h`` as loss rises and relaxes it back, Fix-K stays pinned;
* leader and follower CPU utilisation (percent of one core) — Fix-K's
  leader burns CPU proportional to ``N``, exceeding 100 % at N = 65, while
  Dynatune stays well under half of that and *peaks with the loss rate*;
* the number of unnecessary elections — zero for both systems at every N.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.cluster.harness import ClusterHarness
from repro.experiments.common import get_scale, make_policy_factory
from repro.experiments.runner import run_tasks
from repro.net.schedule import NetworkSchedule, loss_staircase_profile
from repro.sim.events import PRIORITY_CONTROL

__all__ = ["Fig7Config", "LossRunResult", "Fig7Result", "run", "main"]


@dataclasses.dataclass(slots=True, frozen=True)
class Fig7Config:
    sizes: tuple[int, ...] = (5, 17)
    systems: tuple[str, ...] = ("dynatune", "fix-k")
    rtt_ms: float = 200.0
    loss_levels: tuple[float, ...] = (0.0, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30)
    dwell_ms: float = 20_000.0
    warmup_ms: float = 10_000.0
    seed: int = 42
    cores_per_node: float = 2.0
    sample_interval_ms: float = 5_000.0

    @classmethod
    def quick(cls) -> "Fig7Config":
        scale = get_scale()
        return cls(sizes=scale.fig7_sizes, dwell_ms=scale.fig7_dwell_ms)

    @classmethod
    def paper_scale(cls) -> "Fig7Config":
        return cls(sizes=(5, 17, 65), dwell_ms=180_000.0)

    def schedule(self) -> NetworkSchedule:
        return loss_staircase_profile(
            rtt_ms=self.rtt_ms,
            levels=self.loss_levels,
            dwell_ms=self.dwell_ms,
            start_ms=self.warmup_ms,
        )

    def duration_ms(self) -> float:
        return self.schedule().end_ms + self.dwell_ms


@dataclasses.dataclass(slots=True, frozen=True)
class LossRunResult:
    """One (system, N) staircase run."""

    system: str
    n_nodes: int
    #: Sample times (ms) for the h series.
    h_times_ms: np.ndarray
    #: Leader's mean applied heartbeat interval h across followers (ms).
    h_ms: np.ndarray
    #: Ground-truth loss rate at each h sample.
    loss_rate: np.ndarray
    #: CPU utilisation samples (percent of one core).
    cpu_times_ms: np.ndarray
    leader_cpu: np.ndarray
    follower_cpu: np.ndarray
    #: Term-incrementing elections after the first leader (§IV-C2: zero).
    unnecessary_elections: int
    leader: str

    def h_at_loss(self, loss: float, tol: float = 1e-9) -> np.ndarray:
        """All h samples taken while the staircase sat at ``loss``."""
        mask = np.abs(self.loss_rate - loss) < tol
        return self.h_ms[mask]


@dataclasses.dataclass(slots=True, frozen=True)
class Fig7Result:
    config: Fig7Config
    runs: dict[tuple[str, int], LossRunResult]


def run_one(system: str, n_nodes: int, config: Fig7Config) -> LossRunResult:
    schedule = config.schedule()
    cluster = build_cluster(
        ClusterConfig(
            n_nodes=n_nodes,
            seed=config.seed,
            rtt_ms=config.rtt_ms,
            loss=0.0,
            cores_per_node=config.cores_per_node,
            with_cost_model=True,
        ),
        make_policy_factory(system),
    )
    current_loss = [0.0]
    schedule.install(
        cluster.loop,
        cluster.network,
        on_apply=lambda action: current_loss.__setitem__(
            0, action.loss if action.loss is not None else current_loss[0]
        ),
    )
    harness = ClusterHarness(cluster)
    cluster.start()
    leader = cluster.run_until_leader()
    leader_node = cluster.node(leader)

    # h sampler: the leader's mean applied per-follower heartbeat interval.
    h_samples: list[tuple[float, float, float]] = []

    def _h_tick() -> None:
        if leader_node.is_leader:
            intervals = [
                leader_node.policy.heartbeat_interval_ms(p) for p in leader_node.peers
            ]
            h_samples.append(
                (cluster.loop.now, float(np.mean(intervals)), current_loss[0])
            )
        cluster.loop.schedule(
            config.sample_interval_ms, _h_tick, priority=PRIORITY_CONTROL
        )

    cluster.loop.schedule(config.sample_interval_ms, _h_tick, priority=PRIORITY_CONTROL)

    assert cluster.cost_model is not None
    follower = next(p for p in cluster.names if p != leader)
    cluster.cost_model.start_sampling(
        cluster.loop, [leader, follower], interval_ms=config.sample_interval_ms
    )

    t_first_leader = cluster.loop.now
    cluster.run_until(config.duration_ms())

    elections = [
        r
        for r in cluster.trace.of_kind("election_start")
        if r.time > t_first_leader
    ]
    cpu_t, leader_cpu = cluster.cost_model.utilization_series(leader)
    _, follower_cpu = cluster.cost_model.utilization_series(follower)
    arr = np.asarray(h_samples, dtype=np.float64).reshape(-1, 3)
    return LossRunResult(
        system=system,
        n_nodes=n_nodes,
        h_times_ms=arr[:, 0],
        h_ms=arr[:, 1],
        loss_rate=arr[:, 2],
        cpu_times_ms=np.asarray(cpu_t),
        leader_cpu=np.asarray(leader_cpu),
        follower_cpu=np.asarray(follower_cpu),
        unnecessary_elections=len(elections),
        leader=leader,
    )


def _run_one_task(args: tuple[str, int, Fig7Config]) -> LossRunResult:
    """Module-level worker for :func:`repro.experiments.runner.run_tasks`."""
    system, n_nodes, cfg = args
    return run_one(system, n_nodes, cfg)


def run(config: Fig7Config | None = None, *, jobs: int | None = None) -> Fig7Result:
    """Run the (system × cluster size) grid, in parallel across grid cells
    when ``jobs``/``REPRO_JOBS`` allows; each cell is an independent
    simulation, so results are identical for any job count."""
    cfg = config if config is not None else Fig7Config.quick()
    grid = [(system, n) for n in cfg.sizes for system in cfg.systems]
    results = run_tasks(
        _run_one_task, [(system, n, cfg) for system, n in grid], jobs=jobs
    )
    return Fig7Result(config=cfg, runs=dict(zip(grid, results)))


def main() -> Fig7Result:  # pragma: no cover - exercised via __main__
    result = run(Fig7Config.quick())
    cfg = result.config
    print(
        f"# Fig. 7 — loss staircase {[f'{p:.0%}' for p in cfg.loss_levels]} "
        f"up/down, dwell {cfg.dwell_ms/1000:.0f} s, RTT {cfg.rtt_ms:.0f} ms"
    )
    for (system, n), rr in sorted(result.runs.items(), key=lambda kv: (kv[0][1], kv[0][0])):
        h0 = rr.h_at_loss(0.0)
        hpk = rr.h_at_loss(max(cfg.loss_levels))
        print(
            f"\nN={n:<3} {system:<9} h@0%={np.mean(h0):6.0f} ms  "
            f"h@{max(cfg.loss_levels):.0%}={np.mean(hpk) if hpk.size else float('nan'):6.0f} ms  "
            f"leaderCPU mean={rr.leader_cpu.mean():5.1f}% max={rr.leader_cpu.max():5.1f}%  "
            f"followerCPU mean={rr.follower_cpu.mean():4.1f}%  "
            f"elections={rr.unnecessary_elections}"
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
