"""Elastic-cluster experiment: membership churn under fault pressure.

The reconfiguration subsystem's end-to-end gate.  Each run drives one
membership *family* — grow 3→7, shrink 7→3, or rolling-replace-all —
through a live cluster carrying closed-loop client load while the
environment pushes back: a leader container-sleep (measured as a §IV-A
failure episode), a global RTT spike, and a leader-isolating partition
all land inside the membership window.  Per run the experiment reports:

* **availability** — client op completion ratio and the total leaderless
  time over the run (the OTS shading of Fig. 6, summed);
* **detection time** — leader failure → first follower election timeout
  for the induced leader pause, via the same measurement layer the
  election figures use;
* **config-change latency** — ``config_append`` → first ``config_commit``
  per log index, mean and max across every committed change.

Acceptance gates (:func:`check`): zero safety violations (the event-hooked
:class:`~repro.scenarios.safety.SafetyChecker` runs throughout, including
its membership invariants), zero abandoned membership proposals, every
change committed, every joiner caught up through a snapshot **before**
being promoted to voter (asserted via ``snapshots_installed`` metrics),
every removed node decommissioned, and the final committed voter set
exactly the family's target.

Runs fan out across ``REPRO_JOBS`` via :func:`~repro.experiments.runner.
run_tasks`; each is an independent simulation keyed by the config, so
results — and :func:`digest` — are byte-identical for any job count.

CLI::

    python -m repro.experiments.elastic             # full grid (~1 min)
    python -m repro.experiments.elastic --smoke     # CI budget
    python -m repro.experiments.elastic --digest    # print the result digest
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sys

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.cluster.measurements import (
    extract_failure_episodes,
    leaderless_intervals,
    total_interval_length,
)
from repro.experiments.common import make_policy_factory
from repro.experiments.runner import run_tasks
from repro.fuzz.history import OpHistory
from repro.fuzz.workload import WorkloadConfig, WorkloadDriver
from repro.raft.types import RaftConfig
from repro.scenarios.library import elastic_grow, elastic_replace_all, elastic_shrink
from repro.scenarios.safety import SafetyChecker
from repro.scenarios.scenario import Scenario
from repro.scenarios.steps import Heal, Partition, Pause, SetRtt
from repro.sim.process import ProcessState

__all__ = [
    "FAMILIES",
    "ElasticConfig",
    "ElasticRunResult",
    "ElasticResult",
    "run_one",
    "run",
    "check",
    "digest",
    "main",
]

#: The three membership families the grid covers.
FAMILIES: tuple[str, ...] = ("grow", "shrink", "replace")


@dataclasses.dataclass(slots=True, frozen=True)
class ElasticConfig:
    """One elastic run (the grid in :func:`run` derives variants)."""

    system: str = "raft"
    #: One of :data:`FAMILIES`.
    family: str = "grow"
    #: Cluster size at boot.
    n_start: int = 3
    #: Membership events: joiners for ``grow``, removals for ``shrink``,
    #: members replaced for ``replace`` (= all of them for the default
    #: rolling-replace-all).
    changes: int = 4
    seed: int = 77
    rtt_ms: float = 50.0
    #: First membership event / spacing between events.
    start_ms: float = 5_000.0
    gap_ms: float = 8_000.0
    #: Tail after the last membership event for retries, the final commit
    #: and decommissioning to land.
    settle_ms: float = 10_000.0
    #: Small threshold so every joiner's catch-up *must* go through the
    #: snapshot path (the leader has compacted far past an empty log by
    #: the first join).
    compaction_threshold: int = 60
    compaction_margin: int = 8
    #: Fault pressure inside the membership window (all scaled off the
    #: window length; set ``pressure=False`` to run on a calm network).
    pressure: bool = True
    leader_pause_ms: float = 1_200.0
    rtt_spike_factor: float = 4.0
    partition_heal_ms: float = 1_500.0
    #: Sustained closed-loop client load.
    n_clients: int = 3
    n_keys: int = 4
    think_min_ms: float = 10.0
    think_max_ms: float = 60.0
    op_timeout_ms: float = 1_500.0

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(f"family must be one of {FAMILIES}, got {self.family!r}")
        if self.changes < 1:
            raise ValueError(f"changes must be >= 1, got {self.changes!r}")
        if self.family == "shrink" and self.n_start - self.changes < 1:
            raise ValueError("shrink cannot remove the whole cluster")
        if self.family == "replace" and self.changes > self.n_start:
            raise ValueError("cannot replace more members than the cluster has")

    @property
    def window_ms(self) -> float:
        """Length of the membership window (first event → one gap past the
        last)."""
        return self.changes * self.gap_ms

    @property
    def horizon_ms(self) -> float:
        return self.start_ms + self.window_ms + self.settle_ms

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f"n{i}" for i in range(1, self.n_start + 1))

    @property
    def spawned(self) -> tuple[str, ...]:
        """Names the scenario will spawn (grow joiners / replacements) —
        matches the library builders' fresh-name derivation."""
        if self.family == "shrink":
            return ()
        return tuple(
            f"n{i}"
            for i in range(self.n_start + 1, self.n_start + 1 + self.changes)
        )

    @property
    def expected_final_voters(self) -> tuple[str, ...]:
        if self.family == "grow":
            return self.names + self.spawned
        if self.family == "shrink":
            return self.names[: self.n_start - self.changes]
        # replace: the first ``changes`` originals rotate out.
        return self.names[self.changes :] + self.spawned

    @property
    def expected_removed(self) -> tuple[str, ...]:
        if self.family == "grow":
            return ()
        if self.family == "shrink":
            return self.names[self.n_start - self.changes :]
        return self.names[: self.changes]

    @property
    def expected_config_commits(self) -> int:
        """Distinct committed config entries: a joiner costs add_learner +
        promote, a removal costs one entry."""
        per = {"grow": 2, "shrink": 1, "replace": 3}[self.family]
        return per * self.changes


@dataclasses.dataclass(slots=True, frozen=True)
class ElasticRunResult:
    """One run reduced to its headline numbers and gate inputs (picklable)."""

    system: str
    family: str
    n_start: int
    changes: int
    horizon_ms: float
    first_leader_ms: float | None
    #: Client-visible availability.
    ops_issued: int
    ops_completed: int
    leaderless_ms: float
    #: Detection latency of the induced leader pause (None if no episode).
    detection_ms: float | None
    #: Reconfiguration throughput and latency.
    config_commits: int
    config_commits_expected: int
    giveups: int
    mean_config_latency_ms: float
    max_config_latency_ms: float
    #: Joiner catch-up evidence, aligned with ``joiners``.
    joiners: tuple[str, ...]
    joiner_snapshot_installs: tuple[int, ...]
    #: Final cluster shape.
    final_voters: tuple[str, ...]
    expected_final_voters: tuple[str, ...]
    live_members: tuple[str, ...]
    removed_all_stopped: bool
    #: Safety verdict over the whole run.
    violations: tuple[str, ...]

    @property
    def availability(self) -> float:
        return self.ops_completed / self.ops_issued if self.ops_issued else 0.0

    @property
    def leaderless_frac(self) -> float:
        return self.leaderless_ms / self.horizon_ms if self.horizon_ms else 0.0


@dataclasses.dataclass(slots=True, frozen=True)
class ElasticResult:
    runs: tuple[ElasticRunResult, ...]

    def find(self, system: str, family: str) -> ElasticRunResult:
        for r in self.runs:
            if r.system == system and r.family == family:
                return r
        raise KeyError(f"no elastic run ({system}, {family})")


def _membership_scenario(cfg: ElasticConfig) -> Scenario:
    names = list(cfg.names)
    if cfg.family == "grow":
        base = elastic_grow(
            names, start_ms=cfg.start_ms, gap_ms=cfg.gap_ms, joiners=cfg.changes
        )
    elif cfg.family == "shrink":
        base = elastic_shrink(
            names, start_ms=cfg.start_ms, gap_ms=cfg.gap_ms, removals=cfg.changes
        )
    else:
        base = elastic_replace_all(names, start_ms=cfg.start_ms, gap_ms=cfg.gap_ms)
    steps = list(base.steps)
    if cfg.pressure:
        start, window = cfg.start_ms, cfg.window_ms
        steps.extend(
            [
                # Leader failure inside the first membership gap — measured
                # as a failure episode (detection time) by the §IV-A layer.
                Pause(
                    at_ms=start + 0.10 * window,
                    node="@leader",
                    duration_ms=cfg.leader_pause_ms,
                    trace_kind="fault_leader_pause",
                ),
                # Global RTT spike while a change is typically in flight.
                SetRtt(
                    at_ms=start + 0.35 * window,
                    rtt_ms=cfg.rtt_ms * cfg.rtt_spike_factor,
                ),
                SetRtt(at_ms=start + 0.50 * window, rtt_ms=cfg.rtt_ms),
                # Isolate whoever leads late in the window; the retry
                # machinery must chase the replacement leader.
                Partition(
                    at_ms=start + 0.60 * window, groups=(("@leader",),)
                ),
                Heal(at_ms=start + 0.60 * window + cfg.partition_heal_ms),
            ]
        )
    return Scenario(
        f"elastic-{cfg.family}",
        steps,
        description=(
            f"{cfg.family} {cfg.n_start}->{len(cfg.expected_final_voters)} "
            f"under leader-pause / RTT-spike / partition pressure"
        ),
    )


def _config_latencies(trace) -> list[float]:
    """``config_append`` → first ``config_commit`` per log index."""
    appended: dict[int, float] = {}
    for rec in trace.of_kind("config_append"):
        appended.setdefault(rec.get("index"), rec.time)
    committed: dict[int, float] = {}
    for rec in trace.of_kind("config_commit"):
        committed.setdefault(rec.get("index"), rec.time)
    return [
        committed[i] - appended[i] for i in sorted(committed) if i in appended
    ]


def run_one(cfg: ElasticConfig) -> ElasticRunResult:
    """Run one elastic variant end to end (module-level: run_tasks worker)."""
    cluster = build_cluster(
        ClusterConfig(
            n_nodes=cfg.n_start,
            seed=cfg.seed,
            rtt_ms=cfg.rtt_ms,
            raft=RaftConfig(
                compaction_threshold=cfg.compaction_threshold,
                compaction_retain_margin=cfg.compaction_margin,
            ),
        ),
        make_policy_factory(cfg.system),
    )
    checker = SafetyChecker(cluster)
    checker.install(event_hooks=True)
    _membership_scenario(cfg).install(cluster)
    history = OpHistory()
    horizon = cfg.horizon_ms
    driver = WorkloadDriver(
        cluster,
        WorkloadConfig(
            n_clients=cfg.n_clients,
            n_keys=cfg.n_keys,
            op_timeout_ms=cfg.op_timeout_ms,
            think_min_ms=cfg.think_min_ms,
            think_max_ms=cfg.think_max_ms,
            start_ms=400.0,
            max_ops_per_client=1_000_000,
        ),
        history,
        stop_ms=horizon - 2.0 * cfg.op_timeout_ms,
    )
    driver.install()

    cluster.start()
    cluster.run_until(horizon)

    violations = tuple(checker.verify())
    trace = cluster.trace

    leaders = trace.of_kind("become_leader")
    episodes = extract_failure_episodes(trace)
    detections = [
        e.detection_latency_ms for e in episodes if e.detection_latency_ms is not None
    ]
    latencies = _config_latencies(trace)
    commits = {r.get("index") for r in trace.of_kind("config_commit")}

    final_voters: tuple[str, ...] = ()
    if commits:
        last = max(
            trace.of_kind("config_commit"), key=lambda r: r.get("index")
        )
        final_voters = tuple(sorted(last.get("voters", ())))
    joiners = cfg.spawned
    installs = tuple(
        cluster.nodes[j].metrics.snapshots_installed if j in cluster.nodes else 0
        for j in joiners
    )
    removed_all_stopped = all(
        name in cluster.nodes
        and cluster.nodes[name].state is ProcessState.STOPPED
        for name in cfg.expected_removed
    )
    ops = history.ops()
    return ElasticRunResult(
        system=cfg.system,
        family=cfg.family,
        n_start=cfg.n_start,
        changes=cfg.changes,
        horizon_ms=horizon,
        first_leader_ms=leaders[0].time if leaders else None,
        ops_issued=len(ops),
        ops_completed=sum(1 for o in ops if o.completed),
        leaderless_ms=total_interval_length(
            leaderless_intervals(trace, t_end=horizon)
        ),
        detection_ms=sum(detections) / len(detections) if detections else None,
        config_commits=len(commits),
        config_commits_expected=cfg.expected_config_commits,
        giveups=len(trace.of_kind("membership_giveup")),
        mean_config_latency_ms=(
            sum(latencies) / len(latencies) if latencies else 0.0
        ),
        max_config_latency_ms=max(latencies) if latencies else 0.0,
        joiners=joiners,
        joiner_snapshot_installs=installs,
        final_voters=final_voters,
        expected_final_voters=tuple(sorted(cfg.expected_final_voters)),
        live_members=tuple(sorted(cluster.members())),
        removed_all_stopped=removed_all_stopped,
        violations=violations,
    )


def _grid(base: ElasticConfig, systems: tuple[str, ...]) -> list[ElasticConfig]:
    """Per system: grow 3→3+C, shrink (3+C)→3, rolling-replace-all of a
    C-node cluster (C = ``base.changes``)."""
    tasks: list[ElasticConfig] = []
    for system in systems:
        tasks.append(dataclasses.replace(base, system=system, family="grow"))
        tasks.append(
            dataclasses.replace(
                base,
                system=system,
                family="shrink",
                n_start=base.n_start + base.changes,
            )
        )
        tasks.append(
            dataclasses.replace(
                base,
                system=system,
                family="replace",
                n_start=max(base.n_start, base.changes),
                changes=max(base.n_start, base.changes),
            )
        )
    return tasks


def run(
    config: ElasticConfig | None = None,
    *,
    systems: tuple[str, ...] = ("raft", "dynatune"),
    jobs: int | None = None,
) -> ElasticResult:
    """Run the elastic grid (parallel across ``REPRO_JOBS``, bit-stable)."""
    base = config if config is not None else ElasticConfig()
    results = run_tasks(run_one, _grid(base, systems), jobs=jobs)
    return ElasticResult(runs=tuple(results))


def digest(result: ElasticResult) -> str:
    """SHA-256 over the canonical JSON of every run (REPRO_JOBS-invariant)."""
    payload = [dataclasses.asdict(r) for r in result.runs]
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


#: Client availability floor: membership churn plus the pressure faults may
#: cost ops, but anything below this means the cluster effectively stalled.
MIN_AVAILABILITY = 0.5


def check(result: ElasticResult) -> list[str]:
    """The elastic acceptance gates; empty list means all held."""
    problems: list[str] = []
    for r in result.runs:
        tag = f"{r.system}/{r.family}"
        if r.violations:
            problems.append(f"{tag}: safety violations: {r.violations[:3]}")
        if r.giveups:
            problems.append(f"{tag}: {r.giveups} membership proposal(s) abandoned")
        if r.config_commits != r.config_commits_expected:
            problems.append(
                f"{tag}: {r.config_commits} config entries committed, "
                f"expected {r.config_commits_expected}"
            )
        if r.final_voters != r.expected_final_voters:
            problems.append(
                f"{tag}: final voters {list(r.final_voters)} != expected "
                f"{list(r.expected_final_voters)}"
            )
        for joiner, installs in zip(r.joiners, r.joiner_snapshot_installs):
            if installs < 1:
                problems.append(
                    f"{tag}: joiner {joiner} was promoted without a snapshot "
                    f"catch-up (snapshots_installed={installs})"
                )
            if joiner not in r.final_voters:
                problems.append(f"{tag}: joiner {joiner} never became a voter")
        if not r.removed_all_stopped:
            problems.append(f"{tag}: a removed node was never decommissioned")
        if r.ops_issued == 0 or r.availability < MIN_AVAILABILITY:
            problems.append(
                f"{tag}: availability {r.availability:.2f} below "
                f"{MIN_AVAILABILITY:g} ({r.ops_completed}/{r.ops_issued} ops)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=77)
    parser.add_argument(
        "--changes", type=int, default=None, help="membership events per run (default 4)"
    )
    parser.add_argument(
        "--gap-ms", type=float, default=None, help="spacing between membership events"
    )
    parser.add_argument(
        "--system", action="append", default=None, help="restrict systems (repeatable)"
    )
    parser.add_argument(
        "--calm", action="store_true", help="disable the fault pressure"
    )
    parser.add_argument(
        "--digest", action="store_true", help="print the result digest"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI budget: grow 3->5, shrink 5->3, replace-all of 3 with "
            "short gaps — still asserts every elastic gate"
        ),
    )
    args = parser.parse_args(argv)

    base = ElasticConfig(
        seed=args.seed,
        changes=(
            args.changes
            if args.changes is not None
            else (2 if args.smoke else 4)
        ),
        gap_ms=(
            args.gap_ms if args.gap_ms is not None else (5_000.0 if args.smoke else 8_000.0)
        ),
        settle_ms=8_000.0 if args.smoke else 10_000.0,
        pressure=not args.calm,
    )
    systems = tuple(args.system) if args.system else ("raft", "dynatune")
    result = run(base, systems=systems)

    print(
        f"# elastic — {base.changes} changes/run, gap {base.gap_ms / 1000.0:g}s, "
        f"seed {base.seed}, pressure {'off' if args.calm else 'on'}"
    )
    header = (
        f"{'run':<20} {'avail':>6} {'ots':>8} {'detect':>8} {'commits':>8} "
        f"{'cfg lat':>9} {'max lat':>9} {'voters':>7}"
    )
    print(header)
    for r in result.runs:
        detect = f"{r.detection_ms:.0f}ms" if r.detection_ms is not None else "-"
        print(
            f"{r.system + '/' + r.family:<20} {r.availability:>6.2f} "
            f"{r.leaderless_ms:>6.0f}ms {detect:>8} "
            f"{r.config_commits}/{r.config_commits_expected:<5} "
            f"{r.mean_config_latency_ms:>7.0f}ms {r.max_config_latency_ms:>7.0f}ms "
            f"{len(r.final_voters):>7}"
        )
    if args.digest:
        print(f"digest: {digest(result)}")

    problems = check(result)
    if problems:
        print(f"\n{len(problems)} elastic gate(s) failed:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(
        "\nall elastic gates held (safety clean, every change committed, "
        "joiners snapshot-caught-up, removals decommissioned)."
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
