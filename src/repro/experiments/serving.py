"""Closed-loop serving bench: the client fast path end to end.

Five modes share one workload — N sequential clients hammering a 5-node
cluster with a read-heavy KV mix — and differ only in which fast-path
knobs are on:

* ``baseline`` — the seed serving path: every op (reads included) is one
  log entry, one AppendEntries per follower per request;
* ``batched`` — leader-side append batching + replication pipelining;
  reads still go through the log;
* ``readindex`` — batching/pipelining plus ReadIndex fast-path reads
  (quorum probe round, no log entry);
* ``lease`` — lease serving on top: reads answered locally while the
  leader holds a quorum-anchored lease derived from the policy's Et
  bound (Dynatune's tuned Et under the default system);
* ``lease-drift`` — the safety control: the same lease mode with an
  absurd injected clock-drift margin, under which the lease must *never*
  validate — every read must fall back to ReadIndex and still be served.

The topology is the paper's serving shape: a geo-replicated quorum
(inter-node RTT ``rtt_ms``) with clients co-located at the leader's
serving edge (``client_rtt_ms`` ≪ ``rtt_ms``).  On the seed path every
read pays the full consensus round trip on top of the client hop; the
lease path answers it in one client hop, so closed-loop throughput is
bounded by the fast path, not the WAN.

Each mode runs under the event-hooked
:class:`~repro.scenarios.safety.SafetyChecker`; :func:`check` gates on
zero violations everywhere, full fast-path coverage (batches flushed,
ReadIndex and lease reads actually served, the drift control falling
back every single time), and the headline number: the ``lease`` mode
completing at least :data:`MIN_SPEEDUP` (3×) the ops/sec of
``baseline`` in **simulated** time — a seed-deterministic quantity, so
the gate cannot flake on a loaded CI machine.  Wall-clock throughput is
reported alongside (machine-dependent, excluded from :func:`digest`).

Modes run serially (never fanned out) so the advisory wall-clock
comparison is not distorted by CPU contention between workers.

CLI::

    python -m repro.experiments.serving            # full bench (~1 min)
    python -m repro.experiments.serving --smoke    # CI budget
    python -m repro.experiments.serving --digest   # print the result digest
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sys
import time

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.experiments.common import make_policy_factory
from repro.fuzz.history import OpHistory
from repro.fuzz.workload import WorkloadConfig, WorkloadDriver
from repro.raft.types import RaftConfig
from repro.scenarios.safety import SafetyChecker

__all__ = [
    "MODES",
    "MIN_SPEEDUP",
    "ServingConfig",
    "ServingRunResult",
    "ServingResult",
    "run_one",
    "run",
    "check",
    "digest",
    "main",
]

#: The mode grid, in the order :func:`run` executes it.
MODES: tuple[str, ...] = ("baseline", "batched", "readindex", "lease", "lease-drift")

#: The acceptance gate: ``lease`` simulated ops/sec over ``baseline``.
MIN_SPEEDUP = 3.0

#: A drift margin no real deployment has (an hour of clock skew per
#: beat): with it injected the lease arithmetic must reject every read.
DRIFT_MARGIN_MS = 3_600_000.0


@dataclasses.dataclass(slots=True, frozen=True)
class ServingConfig:
    """One serving bench (the grid in :func:`run` derives the modes)."""

    system: str = "dynatune"
    n_nodes: int = 5
    seed: int = 42
    #: Inter-node RTT: a geo-replicated quorum, the regime where the
    #: Dynatune-tuned Et (and hence the lease bound) is RTT-scale.
    rtt_ms: float = 80.0
    #: Client↔cluster RTT: clients co-located with the serving edge.
    client_rtt_ms: float = 10.0
    #: Closed-loop client pool — large enough that the baseline's
    #: one-append-per-op behaviour is the visible bottleneck.
    n_clients: int = 128
    n_keys: int = 32
    duration_ms: float = 25_000.0
    think_min_ms: float = 1.0
    think_max_ms: float = 8.0
    op_timeout_ms: float = 2_000.0
    #: Read-heavy serving mix (the remainder are deletes).
    p_put: float = 0.12
    p_get: float = 0.85
    #: Fast-path knobs applied in the batched+ modes.
    batch_max: int = 64
    batch_window_ms: float = 5.0
    max_inflight: int = 4

    def __post_init__(self) -> None:
        if self.n_clients < 1:
            raise ValueError(f"n_clients must be >= 1, got {self.n_clients!r}")
        if self.duration_ms <= 0.0:
            raise ValueError(f"duration_ms must be > 0, got {self.duration_ms!r}")

    def raft_config(self, mode: str) -> RaftConfig:
        if mode not in MODES:
            raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
        if mode == "baseline":
            return RaftConfig()
        return RaftConfig(
            client_batching=True,
            client_batch_max=self.batch_max,
            client_batch_window_ms=self.batch_window_ms,
            replication_pipelining=True,
            max_inflight_appends=self.max_inflight,
            lease_reads=mode in ("lease", "lease-drift"),
            lease_drift_margin_ms=(
                DRIFT_MARGIN_MS
                if mode == "lease-drift"
                else RaftConfig().lease_drift_margin_ms
            ),
        )

    def workload(self, mode: str) -> WorkloadConfig:
        return WorkloadConfig(
            n_clients=self.n_clients,
            n_keys=self.n_keys,
            op_timeout_ms=self.op_timeout_ms,
            think_min_ms=self.think_min_ms,
            think_max_ms=self.think_max_ms,
            p_put=self.p_put,
            p_get=self.p_get,
            start_ms=400.0,
            max_ops_per_client=1_000_000,
            read_fastpath=mode in ("readindex", "lease", "lease-drift"),
            client_rtt_ms=self.client_rtt_ms,
        )


@dataclasses.dataclass(slots=True, frozen=True)
class ServingRunResult:
    """One mode reduced to its throughput and coverage numbers."""

    mode: str
    system: str
    n_nodes: int
    n_clients: int
    duration_ms: float
    ops_issued: int
    ops_completed: int
    mean_latency_ms: float
    #: Cluster-wide message/replication load over the run.
    messages_sent: int
    appends_sent: int
    #: Fast-path coverage counters (all zero in ``baseline``).
    batches_flushed: int
    batched_commands: int
    reads_readindex: int
    reads_lease: int
    lease_fallbacks: int
    #: Safety verdict over the whole run.
    violations: tuple[str, ...]
    #: Wall seconds for the run (machine-dependent; not in the digest).
    wall_s: float

    @property
    def availability(self) -> float:
        return self.ops_completed / self.ops_issued if self.ops_issued else 0.0

    @property
    def ops_per_sim_s(self) -> float:
        return self.ops_completed / (self.duration_ms / 1_000.0)

    @property
    def ops_per_wall_s(self) -> float:
        if self.wall_s <= 0.0:
            return float("inf")
        return self.ops_completed / self.wall_s

    @property
    def messages_per_op(self) -> float:
        if not self.ops_completed:
            return float("inf")
        return self.messages_sent / self.ops_completed


@dataclasses.dataclass(slots=True, frozen=True)
class ServingResult:
    config: ServingConfig
    runs: tuple[ServingRunResult, ...]

    def find(self, mode: str) -> ServingRunResult:
        for r in self.runs:
            if r.mode == mode:
                return r
        raise KeyError(f"no serving run for mode {mode!r}")

    @property
    def speedup(self) -> float:
        """``lease`` over ``baseline``, simulated ops/sec — the headline."""
        base = self.find("baseline").ops_per_sim_s
        return self.find("lease").ops_per_sim_s / base if base else float("inf")

    @property
    def wall_speedup(self) -> float:
        """Same ratio in wall-clock ops/sec (advisory, machine-dependent)."""
        base = self.find("baseline").ops_per_wall_s
        return self.find("lease").ops_per_wall_s / base if base else float("inf")


def run_one(config: ServingConfig, mode: str) -> ServingRunResult:
    """Run one serving mode end to end (calm network, full safety oracle)."""
    t0 = time.perf_counter()
    cluster = build_cluster(
        ClusterConfig(
            n_nodes=config.n_nodes,
            seed=config.seed,
            rtt_ms=config.rtt_ms,
            raft=config.raft_config(mode),
        ),
        make_policy_factory(config.system),
    )
    checker = SafetyChecker(cluster)
    checker.install(event_hooks=True)
    history = OpHistory()
    driver = WorkloadDriver(
        cluster,
        config.workload(mode),
        history,
        stop_ms=config.duration_ms - 2.0 * config.op_timeout_ms,
    )
    driver.install()

    cluster.start()
    cluster.run_until(config.duration_ms)
    wall_s = time.perf_counter() - t0

    ops = history.ops()
    latencies = [o.return_ms - o.invoke_ms for o in ops if o.completed]
    nodes = cluster.nodes.values()
    return ServingRunResult(
        mode=mode,
        system=config.system,
        n_nodes=config.n_nodes,
        n_clients=config.n_clients,
        duration_ms=config.duration_ms,
        ops_issued=len(ops),
        ops_completed=len(latencies),
        mean_latency_ms=sum(latencies) / len(latencies) if latencies else 0.0,
        messages_sent=cluster.network.total_stats().sent,
        appends_sent=sum(n.metrics.appends_sent for n in nodes),
        batches_flushed=sum(n.metrics.batches_flushed for n in nodes),
        batched_commands=sum(n.metrics.batched_commands for n in nodes),
        reads_readindex=sum(n.metrics.reads_served_readindex for n in nodes),
        reads_lease=sum(n.metrics.reads_served_lease for n in nodes),
        lease_fallbacks=sum(n.metrics.lease_fallbacks for n in nodes),
        violations=tuple(checker.verify()),
        wall_s=wall_s,
    )


def run(config: ServingConfig | None = None) -> ServingResult:
    """Run every mode, serially (see module docs on wall-clock fairness)."""
    cfg = config if config is not None else ServingConfig()
    return ServingResult(
        config=cfg, runs=tuple(run_one(cfg, mode) for mode in MODES)
    )


def digest(result: ServingResult) -> str:
    """SHA-256 over the canonical JSON of the simulated (deterministic)
    quantities — wall-clock fields are excluded."""
    payload = []
    for r in result.runs:
        d = dataclasses.asdict(r)
        del d["wall_s"]
        payload.append(d)
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


#: Completion-ratio floor on a calm network: anything lower means the
#: serving path dropped requests rather than served them.
MIN_AVAILABILITY = 0.98


def check(result: ServingResult, *, min_speedup: float = MIN_SPEEDUP) -> list[str]:
    """The serving acceptance gates; empty list means all held."""
    problems: list[str] = []
    for r in result.runs:
        tag = r.mode
        if r.violations:
            problems.append(f"{tag}: safety violations: {r.violations[:3]}")
        if r.ops_issued == 0 or r.availability < MIN_AVAILABILITY:
            problems.append(
                f"{tag}: availability {r.availability:.3f} below "
                f"{MIN_AVAILABILITY:g} ({r.ops_completed}/{r.ops_issued} ops)"
            )
    base = result.find("baseline")
    if base.batches_flushed or base.reads_readindex or base.reads_lease:
        problems.append("baseline: fast-path counters moved with all knobs off")
    for mode in ("batched", "readindex", "lease", "lease-drift"):
        r = result.find(mode)
        if r.batches_flushed == 0:
            problems.append(f"{mode}: batching enabled but no batch ever flushed")
        if r.appends_sent >= base.appends_sent:
            problems.append(
                f"{mode}: {r.appends_sent} AppendEntries vs baseline's "
                f"{base.appends_sent} — batching saved nothing"
            )
    for mode in ("readindex", "lease", "lease-drift"):
        if result.find(mode).reads_readindex == 0:
            problems.append(f"{mode}: no read was ever served via ReadIndex")
    lease = result.find("lease")
    if lease.reads_lease == 0:
        problems.append("lease: lease serving never engaged")
    drift = result.find("lease-drift")
    if drift.reads_lease > 0:
        problems.append(
            f"lease-drift: {drift.reads_lease} read(s) served on a lease the "
            f"injected {DRIFT_MARGIN_MS:g} ms drift margin should have killed"
        )
    if drift.lease_fallbacks == 0:
        problems.append("lease-drift: the drift margin never forced a fallback")
    if result.speedup < min_speedup:
        problems.append(
            f"serving speedup {result.speedup:.2f}x below the "
            f"{min_speedup:g}x gate ({lease.ops_per_sim_s:.0f} vs "
            f"{base.ops_per_sim_s:.0f} ops/sim-s)"
        )
    return problems


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--system", default="dynatune")
    parser.add_argument("--clients", type=int, default=None)
    parser.add_argument("--duration-ms", type=float, default=None)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=MIN_SPEEDUP,
        help="simulated ops/sec gate, lease over baseline",
    )
    parser.add_argument(
        "--digest", action="store_true", help="print the result digest"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI budget: fewer clients, shorter run — still asserts every gate",
    )
    args = parser.parse_args(argv)

    config = ServingConfig(
        system=args.system,
        seed=args.seed,
        n_clients=(
            args.clients if args.clients is not None else (64 if args.smoke else 128)
        ),
        duration_ms=(
            args.duration_ms
            if args.duration_ms is not None
            else (18_000.0 if args.smoke else 25_000.0)
        ),
    )
    result = run(config)

    print(
        f"# serving — {config.n_nodes} nodes (RTT {config.rtt_ms:g} ms), "
        f"{config.n_clients} closed-loop clients at {config.client_rtt_ms:g} ms, "
        f"{config.duration_ms / 1_000.0:g}s sim, system {config.system}, "
        f"seed {config.seed}"
    )
    header = (
        f"{'mode':<12} {'ops':>7} {'avail':>6} {'lat':>7} {'op/sim-s':>9} "
        f"{'op/wall-s':>10} {'msg/op':>7} {'batches':>8} {'ri':>6} {'lease':>6}"
    )
    print(header)
    for r in result.runs:
        print(
            f"{r.mode:<12} {r.ops_completed:>7} {r.availability:>6.3f} "
            f"{r.mean_latency_ms:>5.0f}ms {r.ops_per_sim_s:>9.0f} "
            f"{r.ops_per_wall_s:>10.0f} {r.messages_per_op:>7.1f} "
            f"{r.batches_flushed:>8} {r.reads_readindex:>6} {r.reads_lease:>6}"
        )
    print(
        f"\nserving speedup (lease vs baseline): {result.speedup:.2f}x simulated "
        f"(gate: >= {args.min_speedup:g}x), {result.wall_speedup:.2f}x wall-clock"
    )
    if args.digest:
        print(f"digest: {digest(result)}")

    problems = check(result, min_speedup=args.min_speedup)
    if problems:
        print(f"\n{len(problems)} serving gate(s) failed:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(
        "all serving gates held (safety clean, fast paths covered, "
        "drift control fell back, speedup over gate)."
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
