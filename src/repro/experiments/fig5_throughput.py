"""Fig. 5 + §IV-B2: peak throughput without failures.

Protocol (paper §IV-B2): same stable 5-server cluster, no failures; open-
loop clients raise the offered rate by 1000 req/s every 10 s; average
latency and throughput are recorded per level; the run is repeated 10
times.  Paper result: Raft peaks at 13 678 req/s, Dynatune at 12 800 req/s
(−6.4 %), with average latency climbing from ≈ 200 ms to ≈ 700 ms.

The request path runs on the fluid leader-queue model (see
:mod:`repro.cluster.workload` and DESIGN.md §1): the knee position comes
from the CPU capacity model, the Dynatune gap from the calibrated tuning-
overhead factor (§IV-E attributes the gap to tuning-process overhead but
does not decompose it further, so it is a measured parameter here, not a
prediction).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.cluster.workload import (
    FluidWorkloadConfig,
    LoadLevelResult,
    peak_throughput,
    run_rps_staircase,
)
from repro.experiments.common import get_scale
from repro.experiments.runner import run_tasks
from repro.sim.rng import RngRegistry

__all__ = ["Fig5Config", "SystemThroughputResult", "Fig5Result", "run", "main"]

PAPER_NUMBERS = {"raft": 13678.0, "dynatune": 12800.0, "gap": 0.064}

#: Calibrated Dynatune service-cost overhead (reproduces the §IV-B2 gap).
DYNATUNE_OVERHEAD_FACTOR = 1.068


@dataclasses.dataclass(slots=True, frozen=True)
class Fig5Config:
    repeats: int = 3
    seed: int = 42
    dwell_s: float = 10.0
    max_rps: float = 15_000.0
    step_rps: float = 1_000.0
    raft_workload: FluidWorkloadConfig = dataclasses.field(
        default_factory=FluidWorkloadConfig
    )

    @classmethod
    def quick(cls) -> "Fig5Config":
        return cls(repeats=get_scale().fig5_repeats)

    @classmethod
    def paper_scale(cls) -> "Fig5Config":
        return cls(repeats=10)

    def dynatune_workload(self) -> FluidWorkloadConfig:
        return dataclasses.replace(
            self.raft_workload, overhead_factor=DYNATUNE_OVERHEAD_FACTOR
        )

    def levels(self) -> list[float]:
        return [
            self.step_rps * k for k in range(1, int(self.max_rps / self.step_rps) + 1)
        ]


@dataclasses.dataclass(slots=True, frozen=True)
class SystemThroughputResult:
    """Per-system throughput/latency curve averaged over repeats."""

    system: str
    offered_rps: np.ndarray
    throughput_rps: np.ndarray  # mean over repeats, per level
    throughput_std: np.ndarray
    mean_latency_ms: np.ndarray
    peak_rps: float
    runs: tuple[tuple[LoadLevelResult, ...], ...]


@dataclasses.dataclass(slots=True, frozen=True)
class Fig5Result:
    config: Fig5Config
    systems: dict[str, SystemThroughputResult]

    @property
    def peak_gap(self) -> float:
        """Relative peak-throughput deficit of Dynatune vs Raft."""
        raft = self.systems["raft"].peak_rps
        dyn = self.systems["dynatune"].peak_rps
        return 1.0 - dyn / raft


def _run_repeat_task(
    task: tuple[str, FluidWorkloadConfig, Fig5Config, int]
) -> tuple[LoadLevelResult, ...]:
    """Module-level worker: one full staircase repeat.

    A repeat is the parallel unit (not a single load level): the fluid
    backlog deliberately persists across levels — the paper's clients
    never stop — so the levels of one staircase are a sequential chain.
    The RNG stream is derived by name from ``(seed, system, rep)`` exactly
    as the sequential implementation derived it, so the fan-out reproduces
    the sequential numbers bit for bit.
    """
    system, workload, config, rep = task
    rng = RngRegistry(config.seed).stream(f"fig5/{system}/{rep}")
    return tuple(
        run_rps_staircase(
            workload, levels=config.levels(), dwell_s=config.dwell_s, rng=rng
        )
    )


def _collect_system(
    system: str, levels: list[float], runs: list[tuple[LoadLevelResult, ...]]
) -> SystemThroughputResult:
    tp = np.array([[r.throughput_rps for r in rr] for rr in runs])
    lat = np.array([[r.mean_latency_ms for r in rr] for rr in runs])
    return SystemThroughputResult(
        system=system,
        offered_rps=np.asarray(levels),
        throughput_rps=tp.mean(axis=0),
        throughput_std=tp.std(axis=0),
        mean_latency_ms=lat.mean(axis=0),
        peak_rps=float(np.mean([peak_throughput(list(rr)) for rr in runs])),
        runs=tuple(runs),
    )


def run_system(
    system: str,
    workload: FluidWorkloadConfig,
    config: Fig5Config,
    *,
    jobs: int | None = None,
) -> SystemThroughputResult:
    runs = run_tasks(
        _run_repeat_task,
        [(system, workload, config, rep) for rep in range(config.repeats)],
        jobs=jobs,
    )
    return _collect_system(system, config.levels(), runs)


def run(config: Fig5Config | None = None, *, jobs: int | None = None) -> Fig5Result:
    """Run both systems' staircases (every (system, repeat) pair fans out
    across ``REPRO_JOBS``/``jobs``; results are identical for any job
    count — and to the former sequential implementation)."""
    cfg = config if config is not None else Fig5Config.quick()
    systems = [("raft", cfg.raft_workload), ("dynatune", cfg.dynatune_workload())]
    tasks = [
        (system, workload, cfg, rep)
        for system, workload in systems
        for rep in range(cfg.repeats)
    ]
    results = run_tasks(_run_repeat_task, tasks, jobs=jobs)
    return Fig5Result(
        config=cfg,
        systems={
            system: _collect_system(
                system,
                cfg.levels(),
                results[idx * cfg.repeats : (idx + 1) * cfg.repeats],
            )
            for idx, (system, _) in enumerate(systems)
        },
    )


def main() -> Fig5Result:  # pragma: no cover - exercised via __main__
    result = run(Fig5Config.quick())
    print(f"# Fig. 5 — throughput/latency staircase, {result.config.repeats} repeats")
    for name, sysres in result.systems.items():
        print(f"\n{name}: peak {sysres.peak_rps:.0f} req/s (paper {PAPER_NUMBERS[name]:.0f})")
        print(f"  {'offered':>9} {'throughput':>11} {'latency':>9}")
        for off, tp, lat in zip(
            sysres.offered_rps, sysres.throughput_rps, sysres.mean_latency_ms
        ):
            print(f"  {off:>9.0f} {tp:>11.0f} {lat:>7.0f}ms")
    print(
        f"\npeak gap Dynatune vs Raft: {100 * result.peak_gap:.1f} % "
        f"(paper {100 * PAPER_NUMBERS['gap']:.1f} %)"
    )
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
