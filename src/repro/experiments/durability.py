"""Durability experiment: rolling disk-fault storms with a recovery oracle.

The storage subsystem's end-to-end gate.  Each run boots a cluster on the
fallible :class:`~repro.storage.simdisk.SimDiskStorage` backend (or the
ideal backend, as the control), carries closed-loop client load, and
sweeps a *rolling disk storm* across the members: every node gets one
fault window, staggered so the windows are disjoint — a disk-level
rolling-failure drill.  The fault *family* picks what the window does:

* ``ideal`` — control: ideal storage, process-level crash churn.  The
  storage abstraction must be invisible (no disk events traced) and
  recovery from always-durable state must stay clean.
* ``lossy_fsync`` — crash points at persist barriers plus occasional
  fail-stop IO errors: recovery replays the synced WAL region and loses
  only the unsynced tail.
* ``torn_tail`` — every crash-point crash also tears the record being
  written: recovery must detect the torn tail via checksum, truncate it
  (traced as ``wal_truncated``) and rejoin cleanly.
* ``corrupt_tail`` — one designated node's crash flips a bit *below* its
  synced frontier: recovery must refuse (traced as ``disk_corruption``)
  and the node must stay down while the remaining quorum keeps serving.

Throughout, the event-hooked :class:`~repro.scenarios.safety.SafetyChecker`
runs with its crash-recovery durability invariant: synced term/vote/
entries captured at each crash must be reproduced at ``disk_recover``.

Acceptance gates (:func:`check`): zero safety violations, the family's
expected repair events actually traced (and *only* those — the control
must trace none), corruption-refusing nodes stay down, bounded recovery
replay (compaction keeps the replayed tail short), surviving replicas
converge to the same applied state, and a client availability floor.

Runs fan out across ``REPRO_JOBS`` via :func:`~repro.experiments.runner.
run_tasks`; each is an independent simulation keyed by the config, so
results — and :func:`digest` — are byte-identical for any job count.

CLI::

    python -m repro.experiments.durability             # full grid (~1 min)
    python -m repro.experiments.durability --smoke     # CI budget
    python -m repro.experiments.durability --digest    # print the digest
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sys

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.experiments.common import make_policy_factory
from repro.experiments.runner import run_tasks
from repro.fuzz.history import OpHistory
from repro.fuzz.workload import WorkloadConfig, WorkloadDriver
from repro.raft.types import RaftConfig
from repro.scenarios.safety import SafetyChecker
from repro.scenarios.scenario import Scenario
from repro.scenarios.steps import Churn, DiskFault, Repeat, Step
from repro.sim.process import ProcessState
from repro.storage import DiskFaultConfig

__all__ = [
    "FAMILIES",
    "DurabilityConfig",
    "DurabilityRunResult",
    "DurabilityResult",
    "run_one",
    "run",
    "check",
    "digest",
    "main",
]

#: The four fault families the grid covers.
FAMILIES: tuple[str, ...] = ("ideal", "lossy_fsync", "torn_tail", "corrupt_tail")


@dataclasses.dataclass(slots=True, frozen=True)
class DurabilityConfig:
    """One durability run (the grid in :func:`run` derives variants)."""

    system: str = "raft"
    #: One of :data:`FAMILIES`.
    family: str = "lossy_fsync"
    n_nodes: int = 5
    seed: int = 101
    rtt_ms: float = 50.0
    #: Rolling storm shape: node ``i``'s fault window opens at
    #: ``storm_start_ms + i * stagger_ms`` and lasts ``window_ms``.
    #: ``window_ms < stagger_ms`` keeps the windows disjoint — at most one
    #: member is storming at a time.
    storm_start_ms: float = 4_000.0
    window_ms: float = 4_000.0
    stagger_ms: float = 4_500.0
    #: Tail after the last window for auto-recoveries and replication
    #: repair to land.
    settle_ms: float = 8_000.0
    #: Crashed disks reboot this long after the crash (except corruption
    #: refusals, which are fail-fatal and stay down).
    auto_recover_ms: float = 1_200.0
    #: Compaction keeps the recovery replay bounded; the gate below
    #: asserts it actually did.
    compaction_threshold: int = 40
    compaction_margin: int = 8
    max_recovery_replay: int = 150
    #: Sustained closed-loop client load.
    n_clients: int = 3
    n_keys: int = 4
    think_min_ms: float = 10.0
    think_max_ms: float = 60.0
    op_timeout_ms: float = 1_500.0

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise ValueError(f"family must be one of {FAMILIES}, got {self.family!r}")
        if self.n_nodes < 3:
            raise ValueError(f"n_nodes must be >= 3, got {self.n_nodes!r}")
        if self.window_ms >= self.stagger_ms:
            raise ValueError(
                "window_ms must be < stagger_ms (the storm is rolling: "
                f"windows must not overlap), got {self.window_ms!r} >= "
                f"{self.stagger_ms!r}"
            )

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f"n{i}" for i in range(1, self.n_nodes + 1))

    @property
    def corrupt_node(self) -> str:
        """The one member whose window corrupts below the synced frontier
        (``corrupt_tail`` family only) — a single node so the refusal can
        never cost the quorum."""
        return self.names[0]

    @property
    def horizon_ms(self) -> float:
        last_window_end = (
            self.storm_start_ms
            + (self.n_nodes - 1) * self.stagger_ms
            + self.window_ms
        )
        return last_window_end + self.settle_ms


@dataclasses.dataclass(slots=True, frozen=True)
class DurabilityRunResult:
    """One run reduced to its headline numbers and gate inputs (picklable)."""

    system: str
    family: str
    n_nodes: int
    horizon_ms: float
    #: Client-visible availability.
    ops_issued: int
    ops_completed: int
    #: Disk-event counts over the whole run (all zero for the control).
    crash_points: int
    io_errors: int
    recoveries: int
    truncations: int
    corruptions: int
    #: Process-level churn evidence (the control's crash/recover cycle).
    process_crashes: int
    process_recoveries: int
    #: Recovery replay cost (entries re-applied past the snapshot floor)
    #: and the config's bound on it.
    max_replay: int
    mean_replay: float
    replay_bound: int
    #: Corruption-refusing nodes, and whether every one stayed down.
    refused: tuple[str, ...]
    refused_stayed_down: bool
    #: Applied-state agreement across every running replica at horizon.
    machines_consistent: bool
    #: Safety verdict over the whole run (durability invariant included).
    violations: tuple[str, ...]

    @property
    def availability(self) -> float:
        return self.ops_completed / self.ops_issued if self.ops_issued else 0.0


@dataclasses.dataclass(slots=True, frozen=True)
class DurabilityResult:
    runs: tuple[DurabilityRunResult, ...]

    def find(self, system: str, family: str) -> DurabilityRunResult:
        for r in self.runs:
            if r.system == system and r.family == family:
                return r
        raise KeyError(f"no durability run ({system}, {family})")


#: Per-family window knobs (crash probabilities are per fsync, so even a
#: short window sees many draws; 1.0 knobs make the family's signature
#: repair event certain rather than merely likely).
_FAMILY_KNOBS: dict[str, dict[str, float]] = {
    "lossy_fsync": {"p_crash_point": 0.5, "p_io_error": 0.1},
    "torn_tail": {"p_crash_point": 0.8, "p_torn_tail": 1.0},
    "corrupt_tail": {"p_crash_point": 0.5},
}

_CORRUPT_KNOBS: dict[str, float] = {"p_crash_point": 1.0, "p_bitflip": 1.0}


def _storm_scenario(cfg: DurabilityConfig) -> Scenario:
    steps: list[Step] = []
    if cfg.family == "ideal":
        # Process-level rolling crash churn: one occurrence per member,
        # spaced like the disk windows, each down for the same reboot
        # delay the fallible backends use.
        steps.append(
            Churn(
                at_ms=cfg.storm_start_ms,
                nodes=cfg.names,
                down_ms=cfg.auto_recover_ms,
                fault="crash",
                repeat=Repeat(every_ms=cfg.stagger_ms, times=cfg.n_nodes),
            )
        )
    else:
        for i, name in enumerate(cfg.names):
            if cfg.family == "corrupt_tail" and name == cfg.corrupt_node:
                knobs = _CORRUPT_KNOBS
            else:
                knobs = _FAMILY_KNOBS[cfg.family]
            steps.append(
                DiskFault(
                    at_ms=cfg.storm_start_ms + i * cfg.stagger_ms,
                    node=name,
                    duration_ms=cfg.window_ms,
                    **knobs,
                )
            )
    return Scenario(
        f"disk-storm-{cfg.family}",
        steps,
        description=(
            f"rolling {cfg.family} storm over {cfg.n_nodes} nodes, "
            f"{cfg.window_ms:g}ms window every {cfg.stagger_ms:g}ms"
        ),
    )


def run_one(cfg: DurabilityConfig) -> DurabilityRunResult:
    """Run one durability variant end to end (module-level: run_tasks
    worker)."""
    cluster = build_cluster(
        ClusterConfig(
            n_nodes=cfg.n_nodes,
            seed=cfg.seed,
            rtt_ms=cfg.rtt_ms,
            raft=RaftConfig(
                compaction_threshold=cfg.compaction_threshold,
                compaction_retain_margin=cfg.compaction_margin,
            ),
            storage="ideal" if cfg.family == "ideal" else "simdisk",
            disk_faults=(
                None
                if cfg.family == "ideal"
                else DiskFaultConfig(auto_recover_ms=cfg.auto_recover_ms)
            ),
        ),
        make_policy_factory(cfg.system),
    )
    checker = SafetyChecker(cluster)
    checker.install(event_hooks=True)
    _storm_scenario(cfg).install(cluster)
    history = OpHistory()
    horizon = cfg.horizon_ms
    driver = WorkloadDriver(
        cluster,
        WorkloadConfig(
            n_clients=cfg.n_clients,
            n_keys=cfg.n_keys,
            op_timeout_ms=cfg.op_timeout_ms,
            think_min_ms=cfg.think_min_ms,
            think_max_ms=cfg.think_max_ms,
            start_ms=400.0,
            max_ops_per_client=1_000_000,
        ),
        history,
        stop_ms=horizon - 2.0 * cfg.op_timeout_ms,
    )
    driver.install()

    cluster.start()
    cluster.run_until(horizon)

    violations = tuple(checker.verify())
    trace = cluster.trace

    replays = [r.get("replayed", 0) for r in trace.of_kind("disk_recover")]
    refused = tuple(
        sorted({r.node for r in trace.of_kind("disk_corruption")})
    )
    refused_stayed_down = all(
        cluster.nodes[name].state is ProcessState.CRASHED for name in refused
    )
    running_states = [
        json.dumps(node.state_machine.snapshot(), sort_keys=True)
        for node in (cluster.nodes[n] for n in cluster.names)
        if node.state is ProcessState.RUNNING
    ]
    ops = history.ops()
    return DurabilityRunResult(
        system=cfg.system,
        family=cfg.family,
        n_nodes=cfg.n_nodes,
        horizon_ms=horizon,
        ops_issued=len(ops),
        ops_completed=sum(1 for o in ops if o.completed),
        crash_points=len(trace.of_kind("disk_crash_point")),
        io_errors=len(trace.of_kind("disk_io_error")),
        recoveries=len(trace.of_kind("disk_recover")),
        truncations=len(trace.of_kind("wal_truncated")),
        corruptions=len(trace.of_kind("disk_corruption")),
        process_crashes=len(trace.of_kind("process_crashed")),
        process_recoveries=len(trace.of_kind("process_recovered")),
        max_replay=max(replays) if replays else 0,
        mean_replay=sum(replays) / len(replays) if replays else 0.0,
        replay_bound=cfg.max_recovery_replay,
        refused=refused,
        refused_stayed_down=refused_stayed_down,
        machines_consistent=len(set(running_states)) <= 1,
        violations=violations,
    )


def _grid(
    base: DurabilityConfig, systems: tuple[str, ...]
) -> list[DurabilityConfig]:
    return [
        dataclasses.replace(base, system=system, family=family)
        for system in systems
        for family in FAMILIES
    ]


def run(
    config: DurabilityConfig | None = None,
    *,
    systems: tuple[str, ...] = ("raft", "dynatune"),
    jobs: int | None = None,
) -> DurabilityResult:
    """Run the durability grid (parallel across ``REPRO_JOBS``,
    bit-stable)."""
    base = config if config is not None else DurabilityConfig()
    results = run_tasks(run_one, _grid(base, systems), jobs=jobs)
    return DurabilityResult(runs=tuple(results))


def digest(result: DurabilityResult) -> str:
    """SHA-256 over the canonical JSON of every run (REPRO_JOBS-invariant)."""
    payload = [dataclasses.asdict(r) for r in result.runs]
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


#: Client availability floor: a rolling storm takes one member at a time,
#: so the quorum — and client progress — should survive throughout.
MIN_AVAILABILITY = 0.5


def check(result: DurabilityResult) -> list[str]:
    """The durability acceptance gates; empty list means all held."""
    problems: list[str] = []
    for r in result.runs:
        tag = f"{r.system}/{r.family}"
        if r.violations:
            problems.append(f"{tag}: safety violations: {r.violations[:3]}")
        if r.family == "ideal":
            disk_events = (
                r.crash_points + r.io_errors + r.recoveries
                + r.truncations + r.corruptions
            )
            if disk_events:
                problems.append(
                    f"{tag}: control run traced {disk_events} disk event(s) "
                    f"on ideal storage"
                )
            if r.process_crashes < 1 or r.process_recoveries < 1:
                problems.append(f"{tag}: the crash churn never fired")
        else:
            if r.crash_points + r.io_errors < 1:
                problems.append(f"{tag}: the disk storm never crashed a node")
            if r.recoveries < 1:
                problems.append(f"{tag}: no node came back through disk recovery")
        if r.family == "torn_tail" and r.truncations < 1:
            problems.append(f"{tag}: no torn tail was ever truncated")
        if r.family == "corrupt_tail":
            if r.corruptions < 1:
                problems.append(f"{tag}: the corruption window never fired")
            if not r.refused_stayed_down:
                problems.append(
                    f"{tag}: a corruption-refusing node rejoined "
                    f"(refused={list(r.refused)})"
                )
        elif r.corruptions:
            problems.append(
                f"{tag}: {r.corruptions} corruption refusal(s) outside the "
                f"corrupt_tail family"
            )
        if r.family != "corrupt_tail" and r.truncations and r.family != "torn_tail":
            problems.append(
                f"{tag}: {r.truncations} torn-tail truncation(s) without a "
                f"torn window"
            )
        if r.max_replay > r.replay_bound:
            problems.append(
                f"{tag}: recovery replayed {r.max_replay} entries "
                f"(bound {r.replay_bound}) — compaction is not bounding "
                f"the replay"
            )
        if not r.machines_consistent:
            problems.append(f"{tag}: surviving replicas diverged at horizon")
        if r.ops_issued == 0 or r.availability < MIN_AVAILABILITY:
            problems.append(
                f"{tag}: availability {r.availability:.2f} below "
                f"{MIN_AVAILABILITY:g} ({r.ops_completed}/{r.ops_issued} ops)"
            )
    return problems


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=101)
    parser.add_argument(
        "--system", action="append", default=None, help="restrict systems (repeatable)"
    )
    parser.add_argument(
        "--family", action="append", default=None, help="restrict families (repeatable)"
    )
    parser.add_argument(
        "--digest", action="store_true", help="print the result digest"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=(
            "CI budget: 3 nodes, short windows — still asserts every "
            "durability gate"
        ),
    )
    args = parser.parse_args(argv)

    base = DurabilityConfig(
        seed=args.seed,
        n_nodes=3 if args.smoke else 5,
        storm_start_ms=3_000.0 if args.smoke else 4_000.0,
        window_ms=2_500.0 if args.smoke else 4_000.0,
        stagger_ms=3_000.0 if args.smoke else 4_500.0,
        settle_ms=6_000.0 if args.smoke else 8_000.0,
    )
    systems = tuple(args.system) if args.system else ("raft", "dynatune")
    result = run(base, systems=systems)
    if args.family:
        result = DurabilityResult(
            runs=tuple(r for r in result.runs if r.family in set(args.family))
        )

    print(
        f"# durability — {base.n_nodes} nodes, {base.window_ms / 1000.0:g}s "
        f"windows every {base.stagger_ms / 1000.0:g}s, seed {base.seed}"
    )
    header = (
        f"{'run':<24} {'avail':>6} {'crash':>6} {'recov':>6} {'torn':>5} "
        f"{'corrupt':>8} {'replay':>7} {'consistent':>11}"
    )
    print(header)
    for r in result.runs:
        print(
            f"{r.system + '/' + r.family:<24} {r.availability:>6.2f} "
            f"{r.crash_points + r.io_errors + r.process_crashes:>6} "
            f"{r.recoveries + r.process_recoveries:>6} {r.truncations:>5} "
            f"{r.corruptions:>8} {r.max_replay:>7} "
            f"{str(r.machines_consistent):>11}"
        )
    if args.digest:
        print(f"digest: {digest(result)}")

    problems = check(result)
    if problems:
        print(f"\n{len(problems)} durability gate(s) failed:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(
        "\nall durability gates held (safety clean, repair events traced, "
        "refusals stayed down, replay bounded, replicas converged)."
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
