"""Scenario matrix: {Raft-Low, Raft, Dynatune} × the scenario library.

``python -m repro.experiments.scenario_matrix --quick`` drives every
canonical scenario (:mod:`repro.scenarios.library`) against the three
election-parameter policies, in parallel across ``REPRO_JOBS`` processes,
and reports per cell:

* **unavailability** — total/fraction/longest leaderless time after the
  first election (the OTS figure of merit);
* **thrash** — term-incrementing elections and election-timer expirations
  after the first leader (false elections / false detections);
* **safety** — the partition safety properties (one leader per term,
  monotone commit, no committed-entry loss) checked over the whole run.

Determinism contract: each cell is an independent simulation keyed by a
seed derived from ``(config.seed, cell index)``; the decomposition depends
only on the config, so the report is byte-identical for every
``REPRO_JOBS`` value.  The process exits non-zero if any cell violates a
safety property — scenario breakage fails the build.
"""

from __future__ import annotations

import dataclasses
import sys

from repro.analysis.availability import AvailabilityStats, availability_stats
from repro.cluster.builder import ClusterConfig, build_cluster
from repro.cluster.measurements import leaderless_intervals
from repro.experiments.common import make_policy_factory
from repro.experiments.report import ReportRow, render_markdown
from repro.experiments.runner import derive_trial_seed, run_tasks
from repro.scenarios.library import build_scenario, scenario_names
from repro.scenarios.safety import SafetyChecker

__all__ = [
    "ScenarioMatrixConfig",
    "ScenarioCellResult",
    "ScenarioMatrixResult",
    "run",
    "render_rows",
    "main",
]

#: The three systems the matrix compares (Fix-K adds nothing here: the
#: partition scenarios stress Et, not the h/K trade).
MATRIX_SYSTEMS: tuple[str, ...] = ("raft-low", "raft", "dynatune")


@dataclasses.dataclass(slots=True, frozen=True)
class ScenarioMatrixConfig:
    """Shape of one matrix sweep."""

    systems: tuple[str, ...] = MATRIX_SYSTEMS
    scenarios: tuple[str, ...] = dataclasses.field(default_factory=scenario_names)
    n_nodes: int = 5
    seed: int = 21
    rtt_ms: float = 100.0
    #: Run time past the scenario's last effect (heal + converge window).
    settle_ms: float = 10_000.0
    safety_interval_ms: float = 250.0

    def __post_init__(self) -> None:
        if not self.systems or not self.scenarios:
            raise ValueError("matrix needs at least one system and one scenario")
        if self.settle_ms < 0.0:
            raise ValueError(f"settle_ms must be >= 0, got {self.settle_ms!r}")

    @classmethod
    def quick(cls) -> "ScenarioMatrixConfig":
        return cls()

    @classmethod
    def large_cluster_smoke(cls, n_nodes: int = 25) -> "ScenarioMatrixConfig":
        """Bounded large-cluster subset for CI: a partition-heavy slice of
        the library at ``n_nodes`` with the event-hooked SafetyChecker on.

        The subset keeps the scenarios whose dynamics actually change with
        cluster size (splits and leader churn) and drops the per-pair
        impairment ones whose step count is O(N) and whose behaviour is
        size-independent — the goal is a wall-clock-budgeted scaling
        canary, not full coverage (the 5-node matrix remains the coverage
        gate).
        """
        return cls(
            n_nodes=n_nodes,
            scenarios=(
                "symmetric_split",
                "minority_partition",
                "majority_partition",
                "leader_churn_loop",
            ),
        )


@dataclasses.dataclass(slots=True, frozen=True)
class ScenarioCellResult:
    """One (system, scenario) run, reduced to its figures of merit."""

    system: str
    scenario: str
    duration_ms: float
    first_leader_ms: float | None
    availability: AvailabilityStats
    unnecessary_elections: int
    false_detections: int
    steps_applied: int
    steps_skipped: int
    safety_violations: tuple[str, ...]

    @property
    def safe(self) -> bool:
        return not self.safety_violations


@dataclasses.dataclass(slots=True, frozen=True)
class ScenarioMatrixResult:
    config: ScenarioMatrixConfig
    cells: dict[tuple[str, str], ScenarioCellResult]

    def cell(self, system: str, scenario: str) -> ScenarioCellResult:
        return self.cells[(system, scenario)]

    @property
    def all_safe(self) -> bool:
        return all(c.safe for c in self.cells.values())


def _run_cell(task: tuple[str, str, int, ScenarioMatrixConfig]) -> ScenarioCellResult:
    """Worker: one (system, scenario) simulation (module-level, picklable)."""
    system, scenario_name, cell_seed, config = task
    cluster = build_cluster(
        ClusterConfig(n_nodes=config.n_nodes, seed=cell_seed, rtt_ms=config.rtt_ms),
        make_policy_factory(system),
    )
    scenario = build_scenario(scenario_name, cluster.names)
    checker = SafetyChecker(cluster, interval_ms=config.safety_interval_ms)
    checker.install(event_hooks=True)
    scenario.install(cluster)
    cluster.start()
    end = scenario.end_ms + config.settle_ms
    cluster.run_until(end)

    leaders = cluster.trace.of_kind("become_leader")
    t_first = leaders[0].time if leaders else None
    window_start = t_first if t_first is not None else 0.0
    intervals = leaderless_intervals(cluster.trace, t_start=window_start, t_end=end)
    steps = cluster.trace.of_kind("scenario_step")
    skipped = sum(1 for r in steps if r.get("skipped"))
    return ScenarioCellResult(
        system=system,
        scenario=scenario_name,
        duration_ms=end,
        first_leader_ms=t_first,
        availability=availability_stats(
            intervals, t_start=window_start, t_end=end
        ),
        unnecessary_elections=sum(
            1
            for r in cluster.trace.of_kind("election_start")
            if t_first is not None and r.time > t_first
        ),
        false_detections=sum(
            1
            for r in cluster.trace.of_kind("election_timeout")
            if t_first is not None and r.time > t_first
        ),
        steps_applied=len(steps) - skipped,
        steps_skipped=skipped,
        safety_violations=tuple(checker.verify()),
    )


def run(config: ScenarioMatrixConfig | None = None) -> ScenarioMatrixResult:
    """Run the full matrix (parallel across ``REPRO_JOBS``, bit-stable)."""
    cfg = config if config is not None else ScenarioMatrixConfig.quick()
    tasks = [
        (system, scenario, derive_trial_seed(cfg.seed, i), cfg)
        for i, (system, scenario) in enumerate(
            (s, sc) for s in cfg.systems for sc in cfg.scenarios
        )
    ]
    results = run_tasks(_run_cell, tasks)
    return ScenarioMatrixResult(
        config=cfg,
        cells={(r.system, r.scenario): r for r in results},
    )


def render_rows(result: ScenarioMatrixResult) -> list[ReportRow]:
    """Reduce the matrix to the unified report-table row format."""
    rows: list[ReportRow] = []
    for scenario in result.config.scenarios:
        for system in result.config.systems:
            cell = result.cell(system, scenario)
            av = cell.availability
            rows.append(
                ReportRow(
                    experiment=scenario,
                    quantity=system,
                    paper="-",
                    measured=(
                        f"unavail {100.0 * av.unavailable_fraction:.1f} % "
                        f"({av.unavailable_ms / 1000.0:.1f} s / {av.n_outages} outages, "
                        f"worst {av.longest_outage_ms / 1000.0:.1f} s), "
                        f"{cell.unnecessary_elections} elections, "
                        f"{cell.false_detections} detections"
                    ),
                    verdict="safe" if cell.safe else "SAFETY VIOLATION",
                )
            )
    return rows


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="default matrix (alias; always quick)"
    )
    parser.add_argument("--seed", type=int, default=21)
    parser.add_argument(
        "--scenario",
        action="append",
        default=None,
        help="restrict to these scenarios (repeatable; default: whole library)",
    )
    parser.add_argument(
        "--n-nodes",
        type=int,
        default=5,
        help="cluster size for every cell (default 5; scenarios scale with it)",
    )
    parser.add_argument(
        "--large-cluster-smoke",
        type=int,
        metavar="N",
        default=None,
        help=(
            "run the bounded large-cluster subset at N nodes (see "
            "ScenarioMatrixConfig.large_cluster_smoke); overrides "
            "--scenario/--n-nodes"
        ),
    )
    args = parser.parse_args(argv)
    if args.large_cluster_smoke is not None:
        cfg = dataclasses.replace(
            ScenarioMatrixConfig.large_cluster_smoke(args.large_cluster_smoke),
            seed=args.seed,
        )
    else:
        cfg = ScenarioMatrixConfig(
            seed=args.seed,
            n_nodes=args.n_nodes,
            scenarios=tuple(args.scenario) if args.scenario else scenario_names(),
        )
    result = run(cfg)
    print(
        render_markdown(
            render_rows(result),
            f"scenario matrix, seed {cfg.seed}, n={cfg.n_nodes}",
        )
    )
    violations = [
        (key, v) for key, cell in sorted(result.cells.items()) for v in cell.safety_violations
    ]
    if violations:
        print(f"\n{len(violations)} safety violation(s):", file=sys.stderr)
        for (system, scenario), v in violations:
            print(f"  [{system} × {scenario}] {v}", file=sys.stderr)
        return 1
    print(
        f"\nall {len(result.cells)} cells passed the partition safety checks "
        f"({len(cfg.systems)} systems × {len(cfg.scenarios)} scenarios)."
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
