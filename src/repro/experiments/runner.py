"""Parallel multi-trial experiment runner.

The kernel fast path makes a single run cheap; this module makes *suites*
cheap by fanning independent runs across cores.  Two facts make that safe:

* every run builds its own :class:`~repro.sim.loop.EventLoop`,
  :class:`~repro.sim.rng.RngRegistry` and cluster from an explicit seed —
  there is no shared mutable state between runs; and
* seeds for sharded trials are *derived*, never sequential: a SplitMix64
  mix of ``(base_seed, trial_index)`` decorrelates the underlying bit
  streams and is stable across platforms and job counts.

Determinism contract: the decomposition into tasks (and every derived
seed) depends only on the experiment configuration — ``REPRO_JOBS`` moves
work between processes but cannot change a single number in the results.
``run_tasks(fn, args, jobs=1)`` and ``run_tasks(fn, args, jobs=8)``
return identical lists.

Worker functions must be module-level (picklable) and their arguments and
results picklable; all the figure experiment configs/results are plain
dataclasses over numpy arrays, which qualify.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from typing import Any, Callable, Sequence, TypeVar

from repro.experiments.common import get_jobs

__all__ = ["derive_trial_seed", "run_tasks", "run_sharded_trials", "split_counts"]

T = TypeVar("T")

_MASK64 = (1 << 64) - 1


def derive_trial_seed(base_seed: int, trial: int) -> int:
    """Deterministic, decorrelated seed for trial ``trial`` of ``base_seed``.

    SplitMix64 finalizer over the combined key.  Adjacent ``(seed, trial)``
    pairs land far apart in the output space, so per-trial RNG registries
    do not share leading draws the way ``base_seed + trial`` would.
    The result is clamped to 63 bits (positive) for numpy's SeedSequence.
    """
    z = ((base_seed * 0x9E3779B97F4A7C15) + trial + 0x632BE59BD9B4E019) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    z ^= z >> 31
    return z & 0x7FFFFFFFFFFFFFFF


def split_counts(total: int, parts: int) -> list[int]:
    """Split ``total`` repetitions into ``parts`` near-equal positive chunks.

    The first ``total % parts`` chunks get one extra repetition; empty
    chunks are dropped (``parts > total`` yields ``total`` chunks of 1).
    """
    if total < 1:
        raise ValueError(f"total must be >= 1, got {total!r}")
    if parts < 1:
        raise ValueError(f"parts must be >= 1, got {parts!r}")
    parts = min(parts, total)
    base, extra = divmod(total, parts)
    return [base + (1 if i < extra else 0) for i in range(parts)]


def _invoke(pair: tuple[Callable[[Any], T], Any]) -> T:
    fn, arg = pair
    return fn(arg)


def run_tasks(
    fn: Callable[[Any], T],
    args: Sequence[Any],
    *,
    jobs: int | None = None,
) -> list[T]:
    """Run ``fn`` over ``args``, fanning across processes when asked to.

    Args:
        fn: module-level function of one (picklable) argument.
        args: one entry per task; results come back in the same order.
        jobs: worker processes; ``None`` reads ``REPRO_JOBS``.  ``1`` (the
            default) runs sequentially in-process.

    Results are bit-identical for every ``jobs`` value: tasks are
    self-contained simulations keyed by explicit seeds, and ordering is
    restored by ``Pool.map``.
    """
    if jobs is None:
        jobs = get_jobs()
    n = len(args)
    if jobs <= 1 or n <= 1:
        return [fn(a) for a in args]
    # fork shares the imported modules with the workers (cheap start, and
    # sys.path already set up); fall back to the platform default where
    # fork is unavailable.
    methods = multiprocessing.get_all_start_methods()
    ctx = multiprocessing.get_context("fork" if "fork" in methods else None)
    workers = min(jobs, n, os.cpu_count() or 1)
    with ctx.Pool(processes=workers) as pool:
        return pool.map(_invoke, [(fn, a) for a in args])


def run_sharded_trials(
    worker: Callable[[tuple[str, Any]], T],
    systems: Sequence[str],
    base_config: Any,
    *,
    n_trials: int,
    merge: Callable[[str, list[T]], T],
    jobs: int | None = None,
    count_field: str = "n_failures",
    seed_field: str = "seed",
) -> dict[str, T]:
    """Shard a repetition-count experiment into independently-seeded trials.

    Splits ``base_config.<count_field>`` across ``n_trials`` trials (each a
    frozen-dataclass copy with its share and ``derive_trial_seed(seed,
    trial)``), runs ``worker((system, trial_config))`` for every (system,
    trial) pair via :func:`run_tasks`, and merges each system's parts in
    trial order with ``merge``.  The decomposition — and thus every number
    in the result — depends only on ``(base_config, n_trials)``; ``jobs``
    moves trials between processes without changing anything.
    """
    shares = split_counts(getattr(base_config, count_field), n_trials)
    base_seed = getattr(base_config, seed_field)
    tasks = [
        (
            system,
            dataclasses.replace(
                base_config,
                **{
                    count_field: share,
                    seed_field: derive_trial_seed(base_seed, trial),
                },
            ),
        )
        for system in systems
        for trial, share in enumerate(shares)
    ]
    results = run_tasks(worker, tasks, jobs=jobs)
    per_system = len(shares)
    return {
        system: merge(system, results[idx * per_system : (idx + 1) * per_system])
        for idx, system in enumerate(systems)
    }
