"""Gray-failure experiment: partial faults, skewed clocks, a liveness gate.

The gray-failure counterpart of :mod:`repro.experiments.durability`: every
fault here leaves the cluster *technically* connected — the regime where
nothing crashes, no partition exists, and yet a naive Raft quietly stops
serving.  Each run boots a cluster under closed-loop client load, plays
one fault arm, and is judged by both oracles — the
:class:`~repro.scenarios.safety.SafetyChecker` (nothing bad) and the
:class:`~repro.scenarios.liveness.LivenessChecker` (the possible good
actually happens):

* ``control`` — no fault; both oracles must stay silent (the
  false-positive gate for the liveness checker).
* ``gray_egress`` — the leader's outbound paths degraded to heavy loss
  and delay while every return path stays clean
  (:func:`~repro.scenarios.library.gray_leader_egress`).  With
  ``check_quorum`` the leader notices its silence radius, steps down, and
  a cleanly-connected peer takes over within the outage bound.
* ``one_way`` — one node's *ingress* blocked: it campaigns out but never
  hears back (:func:`~repro.scenarios.library.one_way_isolation`).
  Without prevote each of its ever-growing terms deposes the live leader
  — the classic election livelock, which the liveness oracle must flag;
  with prevote the disruption is contained.
* ``skew_drift`` — per-node clock steps and drift
  (:func:`~repro.scenarios.library.drifting_clocks`).  Raft's safety
  never depends on synchronized clocks, so both oracles must stay silent
  with or without mitigations.

Each arm runs with mitigations (prevote + check_quorum) on and off, for
both the static-Raft and Dynatune systems.  Gates (:func:`check`): zero
safety violations everywhere; zero liveness flags in every *mitigated*
arm — faults included — which doubles as the oracle's false-positive
gate; bounded post-fault leader outage in mitigated fault arms; and the
unmitigated static-Raft ``one_way`` arm must actually reproduce the
livelock — the liveness oracle flags it and the cluster term inflates
well past its mitigated twin.  (Unmitigated Dynatune arms carry no
liveness gate: the adaptive timeout both partially self-dampens the
one-way disruptor and, fault-free, can churn on its own — each a
finding the report surfaces rather than a pass/fail.)

CLI::

    python -m repro.experiments.grayfail            # full grid
    python -m repro.experiments.grayfail --smoke    # CI budget
    python -m repro.experiments.grayfail --digest   # print the digest
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import sys

from repro.cluster.builder import Cluster, ClusterConfig, build_cluster
from repro.experiments.common import make_policy_factory
from repro.experiments.runner import run_tasks
from repro.fuzz.history import OpHistory
from repro.fuzz.workload import WorkloadConfig, WorkloadDriver
from repro.raft.types import RaftConfig
from repro.scenarios.library import build_scenario
from repro.scenarios.liveness import LivenessChecker
from repro.scenarios.safety import SafetyChecker
from repro.sim.events import PRIORITY_CONTROL

__all__ = [
    "ARMS",
    "GrayfailConfig",
    "GrayfailRunResult",
    "GrayfailResult",
    "run_one",
    "run",
    "check",
    "digest",
    "main",
]

#: The four fault arms the grid covers.
ARMS: tuple[str, ...] = ("control", "gray_egress", "one_way", "skew_drift")

#: Arm → library scenario it installs (the control installs none).
_ARM_SCENARIOS: dict[str, str] = {
    "gray_egress": "gray_leader_egress",
    "one_way": "one_way_isolation",
    "skew_drift": "drifting_clocks",
}


@dataclasses.dataclass(slots=True, frozen=True)
class GrayfailConfig:
    """One gray-failure run (the grid in :func:`run` derives variants)."""

    system: str = "raft"
    #: One of :data:`ARMS`.
    arm: str = "control"
    #: Prevote + check_quorum on (the gray-failure mitigations).
    mitigated: bool = True
    n_nodes: int = 5
    seed: int = 211
    rtt_ms: float = 50.0
    #: Fault window: opens at ``fault_start_ms``, plays for ``hold_ms``,
    #: then ``settle_ms`` of tail for recovery to land.
    fault_start_ms: float = 5_000.0
    hold_ms: float = 20_000.0
    settle_ms: float = 8_000.0
    #: Liveness-oracle bounds (tuned to the window above: tight enough to
    #: catch the unmitigated livelock inside ``hold_ms``, loose enough
    #: that startup elections and mitigated recoveries never flag).
    leaderless_bound_ms: float = 4_000.0
    leaderless_total_bound_ms: float = 6_000.0
    term_churn_bound: int = 12
    commit_stall_bound_ms: float = 6_000.0
    #: Sustained closed-loop client load.
    n_clients: int = 3
    n_keys: int = 4
    think_min_ms: float = 10.0
    think_max_ms: float = 60.0
    op_timeout_ms: float = 1_500.0

    def __post_init__(self) -> None:
        if self.arm not in ARMS:
            raise ValueError(f"arm must be one of {ARMS}, got {self.arm!r}")
        if self.n_nodes < 3:
            raise ValueError(f"n_nodes must be >= 3, got {self.n_nodes!r}")

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(f"n{i}" for i in range(1, self.n_nodes + 1))

    @property
    def horizon_ms(self) -> float:
        return self.fault_start_ms + self.hold_ms + self.settle_ms


@dataclasses.dataclass(slots=True, frozen=True)
class GrayfailRunResult:
    """One run reduced to its headline numbers and gate inputs (picklable)."""

    system: str
    arm: str
    mitigated: bool
    n_nodes: int
    horizon_ms: float
    #: Client-visible availability.
    ops_issued: int
    ops_completed: int
    #: Election churn evidence.
    leader_changes: int
    max_term: int
    #: Post-``fault_start_ms`` leader outage (100 ms sampling).
    max_leaderless_ms: float
    total_leaderless_ms: float
    #: Cluster-wide commit watermark at horizon.
    commit_index: int
    #: Liveness verdict: violation strings plus a kind histogram.
    liveness: tuple[str, ...]
    liveness_kinds: tuple[str, ...]
    #: Safety verdict over the whole run.
    violations: tuple[str, ...]

    @property
    def availability(self) -> float:
        return self.ops_completed / self.ops_issued if self.ops_issued else 0.0


@dataclasses.dataclass(slots=True, frozen=True)
class GrayfailResult:
    runs: tuple[GrayfailRunResult, ...]

    def find(self, system: str, arm: str, mitigated: bool) -> GrayfailRunResult:
        for r in self.runs:
            if r.system == system and r.arm == arm and r.mitigated == mitigated:
                return r
        raise KeyError(f"no grayfail run ({system}, {arm}, mitigated={mitigated})")


class _LeaderOutageSampler:
    """100 ms leader-presence sampler; reduces to post-fault outage windows."""

    def __init__(self, cluster: Cluster, *, from_ms: float) -> None:
        self._cluster = cluster
        self._from = from_ms
        self.max_ms = 0.0
        self.total_ms = 0.0
        self._gap_start: float | None = None

    def install(self, interval_ms: float = 100.0) -> None:
        self._interval = interval_ms
        self._cluster.loop.schedule(
            interval_ms, self._tick, priority=PRIORITY_CONTROL
        )

    def _tick(self) -> None:
        now = self._cluster.loop.now
        if now >= self._from:
            if self._cluster.leader() is None:
                if self._gap_start is None:
                    self._gap_start = now
                gap = now - self._gap_start + self._interval
                self.max_ms = max(self.max_ms, gap)
            else:
                if self._gap_start is not None:
                    self.total_ms += now - self._gap_start
                self._gap_start = None
        self._cluster.loop.schedule(
            self._interval, self._tick, priority=PRIORITY_CONTROL
        )


def run_one(cfg: GrayfailConfig) -> GrayfailRunResult:
    """Run one gray-failure variant end to end (run_tasks worker)."""
    cluster = build_cluster(
        ClusterConfig(
            n_nodes=cfg.n_nodes,
            seed=cfg.seed,
            rtt_ms=cfg.rtt_ms,
            raft=RaftConfig(
                prevote=cfg.mitigated,
                check_quorum=cfg.mitigated,
            ),
        ),
        make_policy_factory(cfg.system),
    )
    safety = SafetyChecker(cluster)
    safety.install(event_hooks=True)
    liveness = LivenessChecker(
        cluster,
        leaderless_bound_ms=cfg.leaderless_bound_ms,
        leaderless_total_bound_ms=cfg.leaderless_total_bound_ms,
        term_churn_bound=cfg.term_churn_bound,
        commit_stall_bound_ms=cfg.commit_stall_bound_ms,
    )
    liveness.install()
    outage = _LeaderOutageSampler(cluster, from_ms=cfg.fault_start_ms)
    outage.install()

    history = OpHistory()
    horizon = cfg.horizon_ms
    driver = WorkloadDriver(
        cluster,
        WorkloadConfig(
            n_clients=cfg.n_clients,
            n_keys=cfg.n_keys,
            op_timeout_ms=cfg.op_timeout_ms,
            think_min_ms=cfg.think_min_ms,
            think_max_ms=cfg.think_max_ms,
            start_ms=400.0,
            max_ops_per_client=1_000_000,
        ),
        history,
        stop_ms=horizon - 2.0 * cfg.op_timeout_ms,
    )
    driver.install()

    cluster.start()
    scenario_name = _ARM_SCENARIOS.get(cfg.arm)
    if scenario_name is not None:
        names: tuple[str, ...] = cfg.names
        if cfg.arm == "one_way":
            # The one-way victim must be a *follower* when the fault lands:
            # a deaf leader is a different (commit-stall) experiment, and
            # the livelock under test needs a disruptor campaigning against
            # a live leader.  Rotate the initial leader to the front so the
            # builder's victim (the last name) is someone else.
            leader = cluster.run_until_leader(timeout_ms=cfg.fault_start_ms)
            names = (leader, *(n for n in cfg.names if n != leader))
        build_scenario(
            scenario_name,
            names,
            start_ms=cfg.fault_start_ms,
            hold_ms=cfg.hold_ms,
        ).install(cluster)
    cluster.run_until(horizon)

    violations = tuple(safety.verify())
    liveness_problems = tuple(liveness.verify())
    ops = history.ops()
    return GrayfailRunResult(
        system=cfg.system,
        arm=cfg.arm,
        mitigated=cfg.mitigated,
        n_nodes=cfg.n_nodes,
        horizon_ms=horizon,
        ops_issued=len(ops),
        ops_completed=sum(1 for o in ops if o.completed),
        leader_changes=len(cluster.trace.of_kind("become_leader")),
        max_term=max(n.current_term for n in cluster.nodes.values()),
        max_leaderless_ms=outage.max_ms,
        total_leaderless_ms=outage.total_ms,
        commit_index=max(n.commit_index for n in cluster.nodes.values()),
        liveness=liveness_problems,
        liveness_kinds=tuple(sorted(v.kind for v in liveness.violations)),
        violations=violations,
    )


def _grid(
    base: GrayfailConfig, systems: tuple[str, ...]
) -> list[GrayfailConfig]:
    return [
        dataclasses.replace(base, system=system, arm=arm, mitigated=mitigated)
        for system in systems
        for arm in ARMS
        for mitigated in (True, False)
    ]


def run(
    config: GrayfailConfig | None = None,
    *,
    systems: tuple[str, ...] = ("raft", "dynatune"),
    jobs: int | None = None,
) -> GrayfailResult:
    """Run the gray-failure grid (parallel across ``REPRO_JOBS``,
    bit-stable)."""
    base = config if config is not None else GrayfailConfig()
    results = run_tasks(run_one, _grid(base, systems), jobs=jobs)
    return GrayfailResult(runs=tuple(results))


def digest(result: GrayfailResult) -> str:
    """SHA-256 over the canonical JSON of every run (REPRO_JOBS-invariant)."""
    payload = [dataclasses.asdict(r) for r in result.runs]
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def check(result: GrayfailResult) -> list[str]:
    """The gray-failure acceptance gates; empty list means all held."""
    problems: list[str] = []
    by_key = {(r.system, r.arm, r.mitigated): r for r in result.runs}
    for r in result.runs:
        tag = f"{r.system}/{r.arm}/{'mitigated' if r.mitigated else 'raw'}"
        if r.violations:
            problems.append(f"{tag}: safety violations: {r.violations[:3]}")
        if r.commit_index < 1:
            problems.append(f"{tag}: the cluster never committed anything")
        if r.mitigated and r.liveness:
            # The liveness oracle's false-positive gate: with mitigations
            # on, every arm — including the gray faults — must recover
            # inside the oracle's bounds.  (Unmitigated control/skew arms
            # carry no liveness gate: an untamed adaptive policy may
            # legitimately churn, and flagging that is a true positive.)
            problems.append(f"{tag}: liveness flagged: {r.liveness[:3]}")
        if r.mitigated and r.arm in ("gray_egress", "one_way"):
            if r.max_leaderless_ms > _OUTAGE_BOUND_MS:
                problems.append(
                    f"{tag}: leader outage {r.max_leaderless_ms:g} ms exceeds "
                    f"the mitigated bound {_OUTAGE_BOUND_MS:g} ms"
                )
        if not r.mitigated and r.arm == "one_way" and r.system == "raft":
            # The livelock demonstration, pinned to the static-timeout
            # system (Dynatune's adaptive timeout partially self-dampens
            # the disruptor — a finding, not a gate): the oracle must flag
            # it and the disruptor's campaigns must inflate the term.
            if not r.liveness:
                problems.append(
                    f"{tag}: unmitigated one-way isolation did not trip "
                    f"the liveness oracle"
                )
            twin = by_key.get((r.system, r.arm, True))
            if twin is not None and r.max_term - twin.max_term < _MIN_INFLATION:
                problems.append(
                    f"{tag}: term inflated by only "
                    f"{r.max_term - twin.max_term} over the mitigated twin "
                    f"(expected >= {_MIN_INFLATION})"
                )
    return problems


#: Gate thresholds used by :func:`check` (kept module-level so a config
#: object is not needed to evaluate a pickled result).
_OUTAGE_BOUND_MS = 5_000.0
_MIN_INFLATION = 5


def main(argv: list[str] | None = None) -> int:  # pragma: no cover - CLI
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=211)
    parser.add_argument(
        "--system", action="append", default=None, help="restrict systems (repeatable)"
    )
    parser.add_argument(
        "--arm", action="append", default=None, help="restrict arms (repeatable)"
    )
    parser.add_argument(
        "--digest", action="store_true", help="print the result digest"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI budget: 3 nodes, shorter fault window — all gates still on",
    )
    args = parser.parse_args(argv)

    base = GrayfailConfig(
        seed=args.seed,
        n_nodes=3 if args.smoke else 5,
        hold_ms=12_000.0 if args.smoke else 20_000.0,
        settle_ms=6_000.0 if args.smoke else 8_000.0,
        leaderless_total_bound_ms=4_000.0 if args.smoke else 6_000.0,
    )
    systems = tuple(args.system) if args.system else ("raft", "dynatune")
    result = run(base, systems=systems)
    if args.arm:
        result = GrayfailResult(
            runs=tuple(r for r in result.runs if r.arm in set(args.arm))
        )

    print(
        f"# grayfail — {base.n_nodes} nodes, fault at "
        f"{base.fault_start_ms / 1000.0:g}s for {base.hold_ms / 1000.0:g}s, "
        f"seed {base.seed}"
    )
    header = (
        f"{'run':<32} {'avail':>6} {'elects':>7} {'term':>5} "
        f"{'out_max':>8} {'out_tot':>8} {'commit':>7} {'liveness':>9}"
    )
    print(header)
    for r in result.runs:
        tag = f"{r.system}/{r.arm}/{'mit' if r.mitigated else 'raw'}"
        print(
            f"{tag:<32} {r.availability:>6.2f} {r.leader_changes:>7} "
            f"{r.max_term:>5} {r.max_leaderless_ms / 1000.0:>7.1f}s "
            f"{r.total_leaderless_ms / 1000.0:>7.1f}s {r.commit_index:>7} "
            f"{len(r.liveness):>9}"
        )
    if args.digest:
        print(f"digest: {digest(result)}")

    problems = check(result)
    if problems:
        print(f"\n{len(problems)} grayfail gate(s) failed:", file=sys.stderr)
        for p in problems:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(
        "\nall grayfail gates held (safety clean, controls silent, mitigated "
        "arms recovered, the unmitigated one-way arm livelocked and was "
        "flagged)."
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
