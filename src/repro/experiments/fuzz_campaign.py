"""Budgeted fuzz campaign: generated scenarios × {raft, dynatune} × oracle.

``python -m repro.experiments.fuzz_campaign --trials 200`` generates one
scenario per trial from SplitMix64-derived seeds, assigns systems
round-robin, and runs every trial through the full fuzz oracle
(:func:`repro.fuzz.oracle.run_trial`: partition-safety properties with
event hooks + client-history linearizability), fanned across
``REPRO_JOBS`` processes via the parallel runner.

Determinism contract — the same one every experiment here honours: a
trial is an independent simulation keyed by ``derive_trial_seed(seed,
index)``; workers *regenerate* scenarios from those seeds, so the task
list and every result depend only on the configuration.  ``REPRO_JOBS``
moves trials between processes and cannot change a byte of the report
(:func:`digest` is the auditable proof).

On any violation the campaign shrinks the lowest-index failing trial to a
minimal scenario (delta debugging re-runs the oracle in-process), writes
the JSON reproducer into ``--out`` (default ``tests/fuzz/regressions``,
where the regression harness auto-collects it), and exits non-zero.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import sys

from repro.experiments.runner import derive_trial_seed, run_tasks
from repro.fuzz.generator import GenConfig, ScenarioGen
from repro.fuzz.oracle import FuzzTrialConfig, run_trial
from repro.fuzz.shrinker import shrink, write_reproducer

__all__ = [
    "FuzzCampaignConfig",
    "TrialRecord",
    "CampaignResult",
    "run",
    "digest",
    "main",
]

#: Systems fuzz trials rotate through (the two the paper's claim hinges on).
CAMPAIGN_SYSTEMS: tuple[str, ...] = ("raft", "dynatune")


@dataclasses.dataclass(slots=True, frozen=True)
class FuzzCampaignConfig:
    """Shape of one campaign (the budget knob is ``n_trials``)."""

    n_trials: int = 200
    seed: int = 11
    systems: tuple[str, ...] = CAMPAIGN_SYSTEMS
    gen: GenConfig = dataclasses.field(default_factory=GenConfig)
    trial: FuzzTrialConfig = dataclasses.field(default_factory=FuzzTrialConfig)
    #: Bug injection for oracle validation (never written to reproducers).
    inject: str | None = None
    inject_at_ms: float = 9_000.0
    shrink_evals: int = 120

    def __post_init__(self) -> None:
        if self.n_trials < 1:
            raise ValueError(f"n_trials must be >= 1, got {self.n_trials!r}")
        if not self.systems:
            raise ValueError("campaign needs at least one system")


@dataclasses.dataclass(slots=True, frozen=True)
class TrialRecord:
    """One trial's identity and verdict (plain data, digestable)."""

    index: int
    system: str
    trial_seed: int
    scenario_name: str
    n_steps: int
    violations: tuple[str, ...]
    lin_undecided: bool
    n_ops: int
    n_completed: int
    steps_applied: int
    steps_skipped: int
    duration_ms: float
    compactions: int = 0
    snapshots_installed: int = 0
    config_commits: int = 0
    nodes_added: int = 0
    nodes_removed: int = 0
    batches_flushed: int = 0
    reads_readindex: int = 0
    reads_lease: int = 0
    disk_crash_points: int = 0
    disk_recoveries: int = 0
    wal_truncations: int = 0
    disk_corruptions: int = 0
    gray_faults: int = 0
    clock_skews: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations


@dataclasses.dataclass(slots=True, frozen=True)
class CampaignResult:
    config: FuzzCampaignConfig
    trials: tuple[TrialRecord, ...]

    @property
    def failures(self) -> tuple[TrialRecord, ...]:
        return tuple(t for t in self.trials if not t.ok)

    @property
    def all_ok(self) -> bool:
        return not self.failures


def _trial_config(config: FuzzCampaignConfig, index: int) -> tuple[FuzzTrialConfig, int]:
    trial_seed = derive_trial_seed(config.seed, index)
    system = config.systems[index % len(config.systems)]
    return (
        dataclasses.replace(
            config.trial,
            system=system,
            n_nodes=config.gen.n_nodes,
            seed=trial_seed,
            inject=config.inject,
            inject_at_ms=config.inject_at_ms,
        ),
        trial_seed,
    )


def _run_one(task: tuple[FuzzCampaignConfig, int]) -> TrialRecord:
    """Worker: regenerate trial ``index`` from seeds and run the oracle."""
    config, index = task
    trial_cfg, trial_seed = _trial_config(config, index)
    scenario = ScenarioGen(config.gen).generate(trial_seed)
    result = run_trial(trial_cfg, scenario)
    return TrialRecord(
        index=index,
        system=trial_cfg.system,
        trial_seed=trial_seed,
        scenario_name=scenario.name,
        n_steps=len(scenario.steps),
        violations=result.violations,
        lin_undecided=result.lin_undecided,
        n_ops=result.n_ops,
        n_completed=result.n_completed,
        steps_applied=result.steps_applied,
        steps_skipped=result.steps_skipped,
        duration_ms=result.duration_ms,
        compactions=result.compactions,
        snapshots_installed=result.snapshots_installed,
        config_commits=result.config_commits,
        nodes_added=result.nodes_added,
        nodes_removed=result.nodes_removed,
        batches_flushed=result.batches_flushed,
        reads_readindex=result.reads_readindex,
        reads_lease=result.reads_lease,
        disk_crash_points=result.disk_crash_points,
        disk_recoveries=result.disk_recoveries,
        wal_truncations=result.wal_truncations,
        disk_corruptions=result.disk_corruptions,
        gray_faults=result.gray_faults,
        clock_skews=result.clock_skews,
    )


def run(config: FuzzCampaignConfig | None = None) -> CampaignResult:
    """Run the campaign (parallel across ``REPRO_JOBS``, bit-stable)."""
    cfg = config if config is not None else FuzzCampaignConfig()
    tasks = [(cfg, i) for i in range(cfg.n_trials)]
    trials = run_tasks(_run_one, tasks)
    return CampaignResult(config=cfg, trials=tuple(trials))


def digest(result: CampaignResult) -> str:
    """SHA-256 over the canonical JSON of every trial record."""
    payload = [dataclasses.asdict(t) for t in result.trials]
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.sha256(blob).hexdigest()


def shrink_failure(
    result: CampaignResult, record: TrialRecord, *, out_dir: str
) -> tuple[str, int]:
    """Shrink one failing trial and write its reproducer.

    Returns:
        ``(reproducer path, final step count)``.
    """
    cfg = result.config
    trial_cfg, trial_seed = _trial_config(cfg, record.index)
    scenario = ScenarioGen(cfg.gen).generate(trial_seed)
    shrunk = shrink(trial_cfg, scenario, max_evals=cfg.shrink_evals)
    # Content digest in the name: two campaigns can shrink the same trial
    # index (e.g. under different injections) without clobbering files.
    tag = hashlib.sha256(
        (json.dumps(trial_cfg.to_dict(), sort_keys=True) + shrunk.scenario.to_json())
        .encode()
    ).hexdigest()[:8]
    path = os.path.join(
        out_dir, f"{record.system}_trial{record.index}_{tag}.json"
    )
    write_reproducer(
        path,
        trial_cfg,
        shrunk.scenario,
        shrunk.violations,
        meta={
            "campaign_seed": cfg.seed,
            "trial_index": record.index,
            "shrink_evaluations": shrunk.evaluations,
            "initial_steps": shrunk.initial_steps,
        },
    )
    return path, shrunk.final_steps


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--trials", type=int, default=200, help="campaign budget")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--system",
        action="append",
        default=None,
        help="restrict to these systems (repeatable; default: raft + dynatune)",
    )
    parser.add_argument(
        "--horizon-ms", type=float, default=None, help="scenario time horizon"
    )
    parser.add_argument(
        "--max-steps", type=int, default=None, help="max primary steps per scenario"
    )
    parser.add_argument(
        "--inject",
        default=None,
        help="inject a known bug (oracle validation; see repro.fuzz.bugs)",
    )
    parser.add_argument(
        "--compaction",
        nargs="?",
        type=int,
        const=40,
        default=None,
        metavar="THRESHOLD",
        help=(
            "run trials with log compaction on (threshold entries; default "
            "40 when the flag is bare) and bias half the scenarios toward "
            "a long-lagging crashed node, so snapshot installs happen "
            "under the full safety + linearizability oracle"
        ),
    )
    parser.add_argument(
        "--membership",
        nargs="?",
        type=float,
        const=0.6,
        default=None,
        metavar="PROB",
        help=(
            "give each generated scenario this probability of carrying a "
            "membership add (often paired with a later remove, sometimes "
            "of @leader; default 0.6 when the flag is bare) and make the "
            "steps live in the trial, so elastic reconfiguration runs "
            "under the full safety + linearizability oracle"
        ),
    )
    parser.add_argument(
        "--serving",
        action="store_true",
        help=(
            "run trials with the client-serving fast path on (leader-side "
            "append batching, replication pipelining, lease reads) and "
            "route the workload's gets over ReadIndex/lease serving, so "
            "batched writes and fast-path reads run under the full "
            "safety + linearizability oracle"
        ),
    )
    parser.add_argument(
        "--disk",
        nargs="?",
        type=float,
        const=0.7,
        default=None,
        metavar="PROB",
        help=(
            "give each generated scenario this probability of carrying "
            "disk-fault windows (default 0.7 when the flag is bare) and "
            "run every node on the fallible simdisk backend, so crash "
            "points at persist barriers, torn WAL tails and corruption "
            "recovery run under the full safety + durability + "
            "linearizability oracle"
        ),
    )
    parser.add_argument(
        "--gray",
        nargs="?",
        type=float,
        const=0.6,
        default=None,
        metavar="PROB",
        help=(
            "give each generated scenario this probability of carrying a "
            "gray fault (a one-way link block or an asymmetric loss/delay "
            "degradation) and, independently, of carrying per-node clock "
            "skew/drift windows (default 0.6 when the flag is bare); also "
            "turns on lease reads + fast-path gets, since skewed clocks "
            "stress exactly the lease-validity arithmetic"
        ),
    )
    parser.add_argument(
        "--out",
        default=None,
        help=(
            "directory for shrunk reproducers on failure (default: "
            "tests/fuzz/regressions, or fuzz-artifacts when --inject is "
            "set — planted-bug reproducers must not enter the regression "
            "corpus, where they would be collected as meaningless tests)"
        ),
    )
    parser.add_argument(
        "--no-shrink", action="store_true", help="report failures without shrinking"
    )
    parser.add_argument(
        "--digest", action="store_true", help="print the campaign result digest"
    )
    args = parser.parse_args(argv)
    if args.out is None:
        args.out = (
            "fuzz-artifacts"
            if args.inject
            else os.path.join("tests", "fuzz", "regressions")
        )

    gen_overrides = {}
    if args.horizon_ms is not None:
        gen_overrides["horizon_ms"] = args.horizon_ms
    if args.max_steps is not None:
        gen_overrides["max_steps"] = args.max_steps
    trial = FuzzTrialConfig()
    if args.compaction is not None:
        if args.compaction < 1:
            parser.error("--compaction threshold must be >= 1")
        gen_overrides["p_compaction_lag"] = 0.5
        trial = dataclasses.replace(
            trial, compaction_threshold=args.compaction, compaction_margin=8
        )
    if args.membership is not None:
        if not 0.0 < args.membership <= 1.0:
            parser.error("--membership probability must be in (0, 1]")
        gen_overrides["p_membership"] = args.membership
        trial = dataclasses.replace(trial, membership=True)
    if args.disk is not None:
        if not 0.0 < args.disk <= 1.0:
            parser.error("--disk probability must be in (0, 1]")
        gen_overrides["p_disk_fault"] = args.disk
        trial = dataclasses.replace(trial, disk=True)
    if args.gray is not None:
        if not 0.0 < args.gray <= 1.0:
            parser.error("--gray probability must be in (0, 1]")
        gen_overrides["p_gray"] = args.gray
        gen_overrides["p_clock_skew"] = args.gray
        # Gray campaigns stress the read fast path: lease serving on, and
        # one read-only observer client that stays parked on whichever
        # node keeps answering — the client that notices a fenced-off
        # leader serving stale lease reads.  The larger op budget keeps
        # the observer issuing through late fault windows.
        trial = dataclasses.replace(
            trial,
            lease_reads=True,
            workload=dataclasses.replace(
                trial.workload,
                read_fastpath=True,
                n_clients=4,
                read_only_clients=1,
                max_ops_per_client=120,
            ),
        )
    if args.serving:
        trial = dataclasses.replace(
            trial,
            batching=True,
            pipelining=True,
            lease_reads=True,
            workload=dataclasses.replace(trial.workload, read_fastpath=True),
        )
    cfg = FuzzCampaignConfig(
        n_trials=args.trials,
        seed=args.seed,
        systems=tuple(args.system) if args.system else CAMPAIGN_SYSTEMS,
        gen=GenConfig(**gen_overrides),
        trial=trial,
        inject=args.inject,
    )
    result = run(cfg)

    n_ops = sum(t.n_ops for t in result.trials)
    n_completed = sum(t.n_completed for t in result.trials)
    undecided = sum(1 for t in result.trials if t.lin_undecided)
    print(
        f"fuzz campaign: {len(result.trials)} trials (seed {cfg.seed}, "
        f"systems {'/'.join(cfg.systems)}), {n_ops} client ops "
        f"({n_completed} completed), {undecided} undecided linearizability searches"
    )
    if cfg.trial.compaction_threshold > 0:
        print(
            f"compaction coverage: {sum(t.compactions for t in result.trials)} "
            f"compactions, {sum(t.snapshots_installed for t in result.trials)} "
            "snapshot installs across the campaign"
        )
    if cfg.trial.membership:
        print(
            f"membership coverage: "
            f"{sum(t.config_commits for t in result.trials)} config commits, "
            f"{sum(t.nodes_added for t in result.trials)} promotions, "
            f"{sum(t.nodes_removed for t in result.trials)} decommissions "
            "across the campaign"
        )
    if cfg.trial.batching or cfg.trial.workload.read_fastpath:
        print(
            f"serving coverage: "
            f"{sum(t.batches_flushed for t in result.trials)} batches flushed, "
            f"{sum(t.reads_readindex for t in result.trials)} ReadIndex reads, "
            f"{sum(t.reads_lease for t in result.trials)} lease reads "
            "across the campaign"
        )
    if cfg.trial.disk:
        print(
            f"disk coverage: "
            f"{sum(t.disk_crash_points for t in result.trials)} crash/IO-error "
            f"points, {sum(t.disk_recoveries for t in result.trials)} recoveries, "
            f"{sum(t.wal_truncations for t in result.trials)} torn-tail "
            f"truncations, {sum(t.disk_corruptions for t in result.trials)} "
            "corruption refusals across the campaign"
        )
    if cfg.gen.p_gray > 0.0 or cfg.gen.p_clock_skew > 0.0:
        print(
            f"gray coverage: "
            f"{sum(t.gray_faults for t in result.trials)} asymmetric link "
            f"faults, {sum(t.clock_skews for t in result.trials)} clock "
            f"set/skew windows, "
            f"{sum(t.reads_lease for t in result.trials)} lease reads "
            "across the campaign"
        )
    if args.digest:
        print(f"digest: {digest(result)}")

    failures = result.failures
    if not failures:
        print("all trials passed the safety + linearizability oracle.")
        return 0

    print(f"\n{len(failures)} failing trial(s):", file=sys.stderr)
    for rec in failures[:10]:
        for v in rec.violations[:3]:
            print(f"  [trial {rec.index} · {rec.system}] {v}", file=sys.stderr)
    first = failures[0]
    if args.no_shrink:
        return 1
    print(
        f"\nshrinking trial {first.index} ({first.n_steps} steps)...",
        file=sys.stderr,
    )
    path, final_steps = shrink_failure(result, first, out_dir=args.out)
    print(
        f"minimal reproducer ({final_steps} steps) written to {path}",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
