"""Large-cluster scaling sweep: {Raft, Dynatune} × N ∈ {5, 25, 51, 101}.

The paper evaluates at 5–65 servers but the interesting claims — per-path
heartbeat tuning staying cheap while stock Raft's leader work grows with
N, detection latency staying flat as the quorum widens — only become
visible at sizes the seed simulator could not afford.  With the
protocol-layer fast path (incremental commit tracking, allocation-light
heartbeats) a 101-node cluster runs at interactive speed, so cluster size
becomes an ordinary experiment axis.

Per (system, N) cell this sweep runs the §IV-B1 leader-kill protocol and
reports:

* **detection / OTS latency** (mean over kills) — should stay flat-ish in
  N for both systems (quorum election is one round trip), with Dynatune's
  tuned timeouts far below the Raft default at every size;
* **message load** — heartbeats sent per simulated second, which grows
  linearly in N for the leader (the §IV-C2 CPU story);
* **wall-clock throughput** — simulated-cluster-seconds per wall second,
  the simulator-side scaling figure the CI smoke budget tracks.

Determinism: every simulated quantity depends only on ``(seed, system,
N)``; wall-clock numbers are reported but obviously machine-dependent.
Cells are independent simulations fanned out via
:func:`repro.experiments.runner.run_tasks` (``REPRO_JOBS``).

Run with ``python -m repro.experiments.fig_scale``; ``REPRO_SCALE=paper``
adds the 101-node column and more kills per cell.
"""

from __future__ import annotations

import dataclasses
import sys
import time

import numpy as np

from repro.cluster.builder import ClusterConfig, build_cluster
from repro.cluster.harness import ClusterHarness
from repro.cluster.measurements import extract_failure_episodes
from repro.experiments.common import get_scale, make_policy_factory
from repro.experiments.runner import derive_trial_seed, run_tasks

__all__ = ["ScaleSweepConfig", "ScaleCellResult", "ScaleSweepResult", "run", "main"]


@dataclasses.dataclass(slots=True, frozen=True)
class ScaleSweepConfig:
    """Shape of one scaling sweep."""

    systems: tuple[str, ...] = ("raft", "dynatune")
    sizes: tuple[int, ...] = (5, 25, 51)
    n_failures: int = 3
    rtt_ms: float = 100.0
    warmup_ms: float = 8_000.0
    sleep_ms: float = 6_000.0
    settle_ms: float = 8_000.0
    seed: int = 33

    def __post_init__(self) -> None:
        if not self.systems or not self.sizes:
            raise ValueError("sweep needs at least one system and one size")
        if self.n_failures < 1:
            raise ValueError(f"n_failures must be >= 1, got {self.n_failures!r}")
        if any(n < 3 for n in self.sizes):
            raise ValueError(f"cluster sizes must be >= 3, got {self.sizes!r}")

    @classmethod
    def quick(cls) -> "ScaleSweepConfig":
        scale = get_scale()
        return cls(sizes=scale.scale_sizes, n_failures=scale.scale_failures)

    @classmethod
    def paper_scale(cls) -> "ScaleSweepConfig":
        return cls(sizes=(5, 25, 51, 101), n_failures=10)


@dataclasses.dataclass(slots=True, frozen=True)
class ScaleCellResult:
    """One (system, N) leader-kill run, reduced to scaling figures."""

    system: str
    n_nodes: int
    n_failures: int
    #: Mean first-detection latency over resolved kills (ms).
    detection_ms: float
    #: Mean out-of-service time over resolved kills (ms).
    ots_ms: float
    #: Kills that resolved (detected + re-elected) — should equal n_failures.
    resolved: int
    #: Total virtual time simulated (ms).
    simulated_ms: float
    #: Heartbeats sent cluster-wide per simulated second.
    heartbeats_per_sim_s: float
    #: Messages offered to the fabric per simulated second.
    messages_per_sim_s: float
    #: Commit-index advances observed on leaders (replication liveness).
    commit_advances: int
    #: Wall seconds for the whole cell (machine-dependent; not asserted).
    wall_s: float

    @property
    def sim_seconds_per_wall_second(self) -> float:
        """Simulator throughput for this cell."""
        if self.wall_s <= 0.0:
            return float("inf")
        return (self.simulated_ms / 1_000.0) / self.wall_s


@dataclasses.dataclass(slots=True, frozen=True)
class ScaleSweepResult:
    config: ScaleSweepConfig
    cells: dict[tuple[str, int], ScaleCellResult]

    def cell(self, system: str, n: int) -> ScaleCellResult:
        return self.cells[(system, n)]


def run_one(system: str, n_nodes: int, cell_seed: int, config: ScaleSweepConfig) -> ScaleCellResult:
    t0 = time.perf_counter()
    cluster = build_cluster(
        ClusterConfig(n_nodes=n_nodes, seed=cell_seed, rtt_ms=config.rtt_ms),
        make_policy_factory(system),
    )
    cluster.start()
    harness = ClusterHarness(cluster)
    harness.run_leader_failure_loop(
        config.n_failures,
        warmup_ms=config.warmup_ms,
        sleep_ms=config.sleep_ms,
        settle_ms=config.settle_ms,
    )
    wall_s = time.perf_counter() - t0

    episodes = extract_failure_episodes(cluster.trace, cluster_size=n_nodes)
    detections = [e.detection_latency_ms for e in episodes if e.detection_latency_ms is not None]
    ots = [e.ots_ms for e in episodes if e.ots_ms is not None]
    simulated_ms = cluster.loop.now
    heartbeats = sum(n.metrics.heartbeats_sent for n in cluster.nodes.values())
    total = cluster.network.total_stats()
    return ScaleCellResult(
        system=system,
        n_nodes=n_nodes,
        n_failures=config.n_failures,
        detection_ms=float(np.mean(detections)) if detections else float("nan"),
        ots_ms=float(np.mean(ots)) if ots else float("nan"),
        resolved=sum(1 for e in episodes if e.resolved),
        simulated_ms=simulated_ms,
        heartbeats_per_sim_s=heartbeats / (simulated_ms / 1_000.0),
        messages_per_sim_s=total.sent / (simulated_ms / 1_000.0),
        commit_advances=sum(n.metrics.commit_advances for n in cluster.nodes.values()),
        wall_s=wall_s,
    )


def _run_cell(task: tuple[str, int, int, ScaleSweepConfig]) -> ScaleCellResult:
    """Module-level worker (picklable) for :func:`run_tasks`."""
    system, n_nodes, cell_seed, cfg = task
    return run_one(system, n_nodes, cell_seed, cfg)


def run(config: ScaleSweepConfig | None = None, *, jobs: int | None = None) -> ScaleSweepResult:
    """Run the (system × size) grid, parallel across ``REPRO_JOBS``."""
    cfg = config if config is not None else ScaleSweepConfig.quick()
    grid = [(system, n) for n in cfg.sizes for system in cfg.systems]
    tasks = [
        (system, n, derive_trial_seed(cfg.seed, i), cfg)
        for i, (system, n) in enumerate(grid)
    ]
    results = run_tasks(_run_cell, tasks, jobs=jobs)
    return ScaleSweepResult(config=cfg, cells=dict(zip(grid, results)))


def main() -> int:  # pragma: no cover - exercised via __main__
    result = run()
    cfg = result.config
    print(
        f"# Scaling sweep — {cfg.n_failures} leader kills per cell, "
        f"RTT {cfg.rtt_ms:.0f} ms, sizes {list(cfg.sizes)}"
    )
    print(
        f"{'N':>4} {'system':<9} {'detect':>9} {'OTS':>9} {'resolved':>9} "
        f"{'hb/sim-s':>9} {'msg/sim-s':>10} {'sim-s/wall-s':>13}"
    )
    unresolved = []
    for n in cfg.sizes:
        for system in cfg.systems:
            cell = result.cell(system, n)
            print(
                f"{n:>4} {system:<9} {cell.detection_ms:>7.0f}ms {cell.ots_ms:>7.0f}ms "
                f"{cell.resolved:>6}/{cell.n_failures:<2} {cell.heartbeats_per_sim_s:>9.0f} "
                f"{cell.messages_per_sim_s:>10.0f} {cell.sim_seconds_per_wall_second:>13.1f}"
            )
            if cell.resolved != cell.n_failures:
                unresolved.append((system, n, cell.resolved))
    if unresolved:
        # The CI scaling canary must fail on broken detection/re-election,
        # not only on wall-clock timeout.
        for system, n, resolved in unresolved:
            print(
                f"UNRESOLVED: {system} at N={n} resolved only "
                f"{resolved}/{cfg.n_failures} leader kills",
                file=sys.stderr,
            )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
