"""Fig. 4 + §IV-B1: election performance under stable network conditions.

Protocol (paper §IV-B1): five servers, pairwise RTT fixed at 100 ms, zero
packet loss, no injected jitter.  The leader is failed (container sleep)
repeatedly; detection time and OTS time are measured from logs.  The paper
reports, over 1000 failures:

=====================  ==========  ==========
quantity               Raft        Dynatune
=====================  ==========  ==========
mean detection          1205 ms      237 ms   (−80 %)
mean OTS                1449 ms      797 ms   (−45 %)
mean randomizedTimeout  1454 ms      152 ms
election time (§IV-E)    244 ms      560 ms
=====================  ==========  ==========

``run()`` reproduces the full protocol and returns per-episode samples plus
the CDF series of the figure.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.analysis.cdf import empirical_cdf
from repro.analysis.stats import SummaryStats, summarize
from repro.cluster.builder import ClusterConfig, build_cluster
from repro.cluster.harness import ClusterHarness
from repro.cluster.measurements import FailureEpisode, extract_failure_episodes
from repro.experiments.common import get_scale, make_policy_factory
from repro.experiments.runner import run_sharded_trials, run_tasks

__all__ = [
    "Fig4Config",
    "SystemElectionResult",
    "Fig4Result",
    "run",
    "run_trials",
    "main",
]

PAPER_NUMBERS = {
    "raft": {"detection": 1205.0, "ots": 1449.0, "randomized_timeout": 1454.0, "election": 244.0},
    "dynatune": {"detection": 237.0, "ots": 797.0, "randomized_timeout": 152.0, "election": 560.0},
}


@dataclasses.dataclass(slots=True, frozen=True)
class Fig4Config:
    """Parameters of the stable-network election experiment."""

    n_failures: int = 60
    n_nodes: int = 5
    rtt_ms: float = 100.0
    seed: int = 42
    systems: tuple[str, ...] = ("raft", "dynatune")
    warmup_ms: float = 8_000.0
    sleep_ms: float = 6_000.0
    settle_ms: float = 8_000.0

    @classmethod
    def quick(cls) -> "Fig4Config":
        return cls(n_failures=get_scale().fig4_failures)

    @classmethod
    def paper_scale(cls) -> "Fig4Config":
        return cls(n_failures=1000)


@dataclasses.dataclass(slots=True, frozen=True)
class SystemElectionResult:
    """Per-system outcome: raw samples, summaries and CDF series."""

    system: str
    episodes: tuple[FailureEpisode, ...]
    detection_ms: np.ndarray
    ots_ms: np.ndarray
    election_ms: np.ndarray
    randomized_timeout_ms: np.ndarray
    detection_summary: SummaryStats
    ots_summary: SummaryStats
    detection_cdf: tuple[np.ndarray, np.ndarray]
    ots_cdf: tuple[np.ndarray, np.ndarray]

    @property
    def mean_detection_ms(self) -> float:
        return self.detection_summary.mean

    @property
    def mean_ots_ms(self) -> float:
        return self.ots_summary.mean

    @property
    def mean_election_ms(self) -> float:
        return float(self.election_ms.mean())

    @property
    def mean_randomized_timeout_ms(self) -> float:
        return float(self.randomized_timeout_ms.mean())


@dataclasses.dataclass(slots=True, frozen=True)
class Fig4Result:
    config: Fig4Config
    systems: dict[str, SystemElectionResult]

    def reduction(self, metric: str, baseline: str = "raft", system: str = "dynatune") -> float:
        """Relative reduction of ``metric`` (``detection``/``ots``) vs baseline."""
        base = getattr(self.systems[baseline], f"mean_{metric}_ms")
        new = getattr(self.systems[system], f"mean_{metric}_ms")
        return 1.0 - new / base


def run_system(system: str, config: Fig4Config) -> SystemElectionResult:
    """Run the §IV-B1 failure loop for one system."""
    cluster = build_cluster(
        ClusterConfig(
            n_nodes=config.n_nodes,
            seed=config.seed,
            rtt_ms=config.rtt_ms,
            loss=0.0,
        ),
        make_policy_factory(system),
    )
    cluster.start()
    harness = ClusterHarness(cluster)
    harness.run_leader_failure_loop(
        config.n_failures,
        warmup_ms=config.warmup_ms,
        sleep_ms=config.sleep_ms,
        settle_ms=config.settle_ms,
    )
    episodes = tuple(
        e
        for e in extract_failure_episodes(cluster.trace, cluster_size=config.n_nodes)
        if e.resolved
    )
    if not episodes:
        raise RuntimeError(f"fig4[{system}]: no resolved failure episodes")
    detection = np.array([e.detection_latency_ms for e in episodes])
    ots = np.array([e.ots_ms for e in episodes])
    election = np.array([e.election_latency_ms for e in episodes])
    # §IV-B1's "mean randomizedTimeout": cluster-wide mean at the failure
    # instant (the per-detector value is min-biased by construction).
    rts = np.array(
        [
            e.randomized_timeout_cluster_mean_ms
            for e in episodes
            if e.randomized_timeout_cluster_mean_ms is not None
        ]
    )
    if rts.size == 0:
        rts = np.array(
            [
                e.randomized_timeout_at_detection_ms
                for e in episodes
                if e.randomized_timeout_at_detection_ms is not None
            ]
        )
    return SystemElectionResult(
        system=system,
        episodes=episodes,
        detection_ms=detection,
        ots_ms=ots,
        election_ms=election,
        randomized_timeout_ms=rts,
        detection_summary=summarize(detection),
        ots_summary=summarize(ots),
        detection_cdf=empirical_cdf(detection),
        ots_cdf=empirical_cdf(ots),
    )


def _run_system_task(args: tuple[str, Fig4Config]) -> SystemElectionResult:
    """Module-level worker for :func:`repro.experiments.runner.run_tasks`."""
    system, cfg = args
    return run_system(system, cfg)


def _merge_system_results(
    system: str, parts: list[SystemElectionResult]
) -> SystemElectionResult:
    """Concatenate per-shard samples and recompute the derived statistics."""
    episodes = tuple(e for p in parts for e in p.episodes)
    detection = np.concatenate([p.detection_ms for p in parts])
    ots = np.concatenate([p.ots_ms for p in parts])
    election = np.concatenate([p.election_ms for p in parts])
    rts = np.concatenate([p.randomized_timeout_ms for p in parts])
    return SystemElectionResult(
        system=system,
        episodes=episodes,
        detection_ms=detection,
        ots_ms=ots,
        election_ms=election,
        randomized_timeout_ms=rts,
        detection_summary=summarize(detection),
        ots_summary=summarize(ots),
        detection_cdf=empirical_cdf(detection),
        ots_cdf=empirical_cdf(ots),
    )


def run(config: Fig4Config | None = None, *, jobs: int | None = None) -> Fig4Result:
    """Run every system of the experiment (in parallel across systems when
    ``jobs``/``REPRO_JOBS`` allows); results are identical for any job count."""
    cfg = config if config is not None else Fig4Config.quick()
    results = run_tasks(_run_system_task, [(s, cfg) for s in cfg.systems], jobs=jobs)
    return Fig4Result(config=cfg, systems=dict(zip(cfg.systems, results)))


def run_trials(
    config: Fig4Config | None = None,
    *,
    n_trials: int,
    jobs: int | None = None,
) -> Fig4Result:
    """Shard the failure loop into ``n_trials`` independent trials.

    Each trial runs ``n_failures / n_trials`` leader kills on its own
    cluster seeded with ``derive_trial_seed(seed, trial)``; per-system
    samples are concatenated in trial order.  The decomposition (and thus
    every number in the result) depends only on ``(config, n_trials)`` —
    ``jobs`` moves trials between processes without changing anything.
    """
    cfg = config if config is not None else Fig4Config.quick()
    merged = run_sharded_trials(
        _run_system_task,
        cfg.systems,
        cfg,
        n_trials=n_trials,
        merge=_merge_system_results,
        jobs=jobs,
    )
    return Fig4Result(config=cfg, systems=merged)


def main() -> Fig4Result:  # pragma: no cover - exercised via __main__
    result = run(Fig4Config.quick())
    print(f"# Fig. 4 — election performance, {result.config.n_failures} leader failures")
    print(f"{'system':<10} {'detection':>12} {'OTS':>12} {'election':>12} {'randTO':>10}")
    for name, sysres in result.systems.items():
        paper = PAPER_NUMBERS.get(name, {})
        print(
            f"{name:<10} {sysres.mean_detection_ms:>9.0f} ms {sysres.mean_ots_ms:>9.0f} ms "
            f"{sysres.mean_election_ms:>9.0f} ms {sysres.mean_randomized_timeout_ms:>7.0f} ms"
            + (
                f"   (paper: det {paper.get('detection'):.0f}, ots {paper.get('ots'):.0f})"
                if paper
                else ""
            )
        )
    if "raft" in result.systems and "dynatune" in result.systems:
        print(
            f"reduction vs Raft: detection {100 * result.reduction('detection'):.0f} % "
            f"(paper 80 %), OTS {100 * result.reduction('ots'):.0f} % (paper 45 %)"
        )
        from repro.analysis.asciiplot import cdf_chart

        print()
        print(
            cdf_chart(
                {
                    f"{name} {metric}": getattr(sysres, f"{metric}_cdf")
                    for name, sysres in result.systems.items()
                    for metric in ("detection", "ots")
                },
                title="Fig. 4 — CDFs of detection and OTS times",
            )
        )
    return result


if __name__ == "__main__":  # pragma: no cover
    main()
