"""The discrete-event loop.

A single :class:`EventLoop` drives an entire simulated cluster: network
deliveries, Raft timers, fault injections and workload arrivals are all
events in one heap, executed in a deterministic total order (see
:mod:`repro.sim.events`).

Performance notes (this is the hot path of every benchmark):

* heap entries are the :class:`~repro.sim.events.Event` objects
  themselves — ``list`` subclasses laid out ``[time, priority, seq,
  callback]`` — so one allocation covers record, heap entry and handle.
  CPython compares lists element-wise in C, and because ``seq`` is unique
  the comparison never reaches the trailing callback: a sift costs zero
  Python-level calls and zero allocations, where comparing events via
  ``__lt__`` used to allocate two key tuples per comparison;
* ``run``/``run_until`` drain a *sorted batch*: everything pending at
  entry is snapshotted and Timsort-ed once (C, and adaptively fast on the
  mostly-ordered heap array), then consumed by index; only events
  scheduled *during* the run go through the live heap, which stays small.
  This replaces one O(log n) sift-down per pre-existing event with an
  amortised share of one ``sort()`` — several times cheaper in constants.
  ``run``/``run_until``/``step`` are therefore not reentrant from
  callbacks (they never were used that way; now it raises);
* virtual time is the plain attribute :attr:`EventLoop.now` (read-only by
  convention) — the hottest read in the simulator, not worth a property;
* cancelled events use *lazy deletion*: cancelling clears the callback
  slot in O(1) and the loop skips dead events as they surface.  Raft
  cancels timers on role changes and clients cancel retry timers on every
  response, so eager heap surgery would turn each cancel into O(n);
* the loop keeps an (approximate, over-counting) tally of cancelled
  events still buried in its structures and *compacts* the live heap
  (filter + re-heapify, O(n)) once the tally exceeds half the heap beyond
  a small floor; batch remainders are filtered on merge-back.
  Cancellation storms therefore cannot grow the pending set unboundedly:
  amortised cost per cancel stays O(log n).

Timers add one more trick on top: :class:`~repro.sim.timers.Timer` re-arms
lazily, so the per-heartbeat election-timer reset — the single most frequent
operation in a Raft simulation — does not touch the heap at all.
"""

from __future__ import annotations

import heapq
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, PRIORITY_MESSAGE

__all__ = ["EventLoop", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for scheduler-level misuse (negative delays, exhausted loop)."""


#: Never compact heaps smaller than this — rebuild cost would dominate.
_COMPACT_MIN_SIZE = 64


class _ClockView(VirtualClock):
    """Live, read-only :class:`VirtualClock` facade over a loop's time."""

    __slots__ = ("_loop",)

    def __init__(self, loop: "EventLoop") -> None:
        VirtualClock.__init__(self)
        self._loop = loop

    @property
    def now(self) -> float:
        return self._loop.now


class EventLoop:
    """Deterministic discrete-event scheduler with a virtual clock.

    Args:
        start: initial virtual time (ms).

    Attributes:
        now: current virtual time (ms).  Public for reading; only the loop
            itself advances it.

    Example:
        >>> loop = EventLoop()
        >>> fired = []
        >>> _ = loop.schedule(5.0, lambda: fired.append(loop.now))
        >>> loop.run()
        >>> fired
        [5.0]
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start before zero, got {start!r}")
        self.now: float = float(start)
        self._heap: list[Event] = []
        #: When True, ``_heap`` is an unordered bag: bursts of schedules
        #: outside a run are plain appends, and ordering is established
        #: lazily (one heapify/sort) the first time something needs it.
        self._unordered = True
        self._seq = 0
        self._executed = 0
        self._in_run = False
        #: Approximate count of cancelled events still pending (may
        #: over-count events cancelled after firing or parked in a run
        #: batch; only drives the compaction heuristic).
        self._cancelled = 0
        self._clock_view = _ClockView(self)

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def clock(self) -> VirtualClock:
        """Read-only live view of the loop's time (legacy API).

        The returned object's ``now`` always reflects the loop, so it is
        safe to hold across events; mutating it has no effect on the loop.
        """
        return self._clock_view

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones).

        During :meth:`run`/:meth:`run_until` this reflects only events
        scheduled since the run started — the pre-existing ones live in
        the run's private batch until it exits.
        """
        return len(self._heap)

    @property
    def executed(self) -> int:
        """Total number of events executed so far."""
        return self._executed

    def next_event_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the heap is drained.

        Raises:
            SimulationError: if called from a callback during ``run``/
                ``run_until`` — pre-existing events are parked in the run's
                private batch then, so the answer would be silently wrong.
        """
        if self._in_run:
            raise SimulationError(
                "next_event_time() is unavailable from inside run()/run_until()"
            )
        self._drop_cancelled()
        return self._heap[0][0] if self._heap else None  # Event[0] is time

    def _ensure_ordered(self) -> None:
        if self._unordered:
            heapq.heapify(self._heap)
            self._unordered = False

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #

    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        priority: int = PRIORITY_MESSAGE,
    ) -> Event:
        """Schedule ``callback`` to run ``delay`` ms from now.

        Returns the :class:`Event`, which doubles as the cancellation
        handle (``.cancel()`` / ``.cancelled`` / ``.time``).

        Args:
            delay: non-negative delay in ms.  A zero delay fires "later this
                instant" — after all events already queued for the current
                time with smaller sequence numbers.
            callback: zero-argument callable.
            priority: tie-break priority (see :mod:`repro.sim.events`).

        Raises:
            SimulationError: if ``delay`` is negative or not finite.
        """
        if not (delay >= 0.0):  # also rejects NaN
            raise SimulationError(f"delay must be >= 0 and finite, got {delay!r}")
        # Inline copy of _push_event: this is the hottest entry point and a
        # delegating call would cost ~100ns per scheduled event.  Keep the
        # two bodies in sync.
        time = self.now + delay
        seq = self._seq
        self._seq = seq + 1
        # Append-built: ~30ns faster than Event((...)) and avoids the
        # ephemeral argument tuple (one less GC-tracked alloc per event).
        event = Event()
        event.append(time)
        event.append(priority)
        event.append(seq)
        event.append(callback)
        event.loop = self
        if self._unordered:
            self._heap.append(event)
        else:
            _heappush(self._heap, event)
        return event

    def _push_event(
        self, time: float, callback: Callable[[], Any], priority: int
    ) -> Event:
        """Validation-free :meth:`schedule_at` for trusted internal callers.

        ``time`` must be a float ``>= now`` — timers re-arm at logical
        deadlines and the network schedules ``now + clamped-delay``, both
        of which hold by construction.
        """
        seq = self._seq
        self._seq = seq + 1
        event = Event()
        event.append(time)
        event.append(priority)
        event.append(seq)
        event.append(callback)
        event.loop = self
        if self._unordered:
            self._heap.append(event)
        else:
            _heappush(self._heap, event)
        return event

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = PRIORITY_MESSAGE,
    ) -> Event:
        """Schedule ``callback`` at absolute virtual time ``time`` (ms)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule in the past: now={self.now!r}, t={time!r}"
            )
        return self._push_event(float(time), callback, priority)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Execute the single next live event.

        Returns:
            ``True`` if an event was executed, ``False`` if the heap is empty.
        """
        if self._in_run:
            raise SimulationError("step() is not reentrant from a running loop")
        self._ensure_ordered()
        heap = self._heap
        while heap:
            event = _heappop(heap)
            cb = event[3]
            if cb is None:
                self._cancelled -= 1
                continue
            self.now = event[0]
            self._executed += 1
            cb()
            return True
        return False

    def run(self, *, max_events: int | None = None) -> int:
        """Run until the pending set drains (or ``max_events`` executed).

        Returns:
            Number of events executed by this call.

        Raises:
            SimulationError: if executing would exceed ``max_events`` — i.e.
                ``max_events`` events have run and live events remain.  A
                guard against accidental infinite simulations (e.g.
                heartbeat loops with no stop condition).  Exactly
                ``max_events`` events with nothing left over is *not* an
                error; :meth:`run_until` uses the same boundary.
        """
        return self._drain(None, max_events)

    def run_until(self, t: float, *, max_events: int | None = None) -> int:
        """Run all events with ``time <= t``, then advance the clock to ``t``.

        Periodic processes (heartbeat loops, workload generators) keep the
        pending set non-empty forever; ``run_until`` is the normal way to
        execute an experiment for a fixed virtual duration.

        Returns:
            Number of events executed by this call.

        Raises:
            SimulationError: if executing would exceed ``max_events`` — same
                boundary semantics as :meth:`run`: exactly ``max_events``
                events within the bound is fine, one more live event due at
                or before ``t`` raises.
        """
        if t < self.now:
            raise SimulationError(
                f"run_until target {t!r} is in the past (now={self.now!r})"
            )
        count = self._drain(t, max_events)
        self.now = float(t)  # keep the clock a float even for int targets
        return count

    def _drain(self, t: float | None, max_events: int | None) -> int:
        """Shared core of :meth:`run` / :meth:`run_until`.

        Snapshots the pending heap into a sorted batch consumed by index;
        events scheduled by callbacks flow through the (now small) live
        heap and are merged into the execution order by peek-compare.  The
        unconsumed batch tail is merged back into the heap on exit, so
        between runs the heap is the single pending structure again.
        """
        if self._in_run:
            raise SimulationError("run()/run_until() are not reentrant")
        heap = self._heap
        batch = heap[:]
        heap.clear()
        self._unordered = False  # in-run schedules must keep heap order
        batch.sort()
        i = 0
        n = len(batch)
        count = 0
        pop = _heappop
        simple = t is None and max_events is None
        self._in_run = True
        try:
            while True:
                if simple and not heap:
                    # Fast path: no bounds to check and nothing in the live
                    # heap — march straight down the sorted batch until a
                    # callback schedules something or the batch drains.
                    while i < n:
                        ev = batch[i]
                        i += 1
                        cb = ev[3]
                        if cb is None:
                            continue
                        self.now = ev[0]
                        count += 1
                        cb()
                        if heap:
                            break
                    if i >= n and not heap:
                        break
                    continue
                if t is not None and max_events is None and i >= n:
                    # Steady-state fast path for run_until: the batch is
                    # exhausted, so everything flows through the live heap
                    # until it drains or the next event is beyond t.
                    while heap:
                        ev = heap[0]
                        cb = ev[3]
                        if cb is None:
                            pop(heap)
                            self._cancelled -= 1
                            continue
                        time = ev[0]
                        if time > t:
                            break
                        pop(heap)
                        self.now = time
                        count += 1
                        cb()
                    break
                # Pick the earliest candidate across batch cursor and heap.
                bev = batch[i] if i < n else None
                if heap:
                    ev = heap[0]
                    if bev is not None and bev < ev:
                        ev = bev
                        from_heap = False
                    else:
                        from_heap = True
                elif bev is not None:
                    ev = bev
                    from_heap = False
                else:
                    break
                cb = ev[3]
                if cb is None:  # cancelled: skip without executing
                    if from_heap:
                        pop(heap)
                        self._cancelled -= 1
                    else:
                        i += 1
                    continue
                time = ev[0]
                if t is not None and time > t:
                    break
                if max_events is not None and count >= max_events:
                    if t is not None:
                        raise SimulationError(
                            f"run_until({t!r}) exceeded max_events={max_events}"
                        )
                    raise SimulationError(
                        f"run() exceeded max_events={max_events} with live "
                        f"events pending at t={self.now}"
                    )
                if from_heap:
                    pop(heap)
                else:
                    i += 1
                self.now = time
                count += 1
                cb()
        finally:
            self._in_run = False
            self._executed += count
            if i < n:
                # Merge the unconsumed (and still live) batch tail back;
                # ordering is re-established lazily on next use.
                heap.extend(e for e in batch[i:] if e[3] is not None)
                self._unordered = True
            elif not heap:
                self._unordered = True  # empty: cheap appends until needed
        return count

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _drop_cancelled(self) -> None:
        self._ensure_ordered()
        heap = self._heap
        while heap and heap[0][3] is None:
            _heappop(heap)
            self._cancelled -= 1

    def _note_cancelled(self) -> None:
        """Called by :meth:`Event.cancel`; triggers compaction.

        The tally can over-estimate (a handle cancelled *after* its event
        fired counts but occupies no slot); that only makes compaction
        fire early, never miss.
        """
        self._cancelled = c = self._cancelled + 1
        if c >= _COMPACT_MIN_SIZE and 2 * c > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries (O(n)).

        Mutates the list *in place*: the drain loop holds a local
        reference to it across callbacks, and a callback's cancel can land
        here.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if entry[3] is not None]
        if not self._unordered:
            heapq.heapify(heap)
        self._cancelled = 0
