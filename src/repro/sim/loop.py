"""The discrete-event loop.

A single :class:`EventLoop` drives an entire simulated cluster: network
deliveries, Raft timers, fault injections and workload arrivals are all
events in one heap, executed in a deterministic total order (see
:mod:`repro.sim.events`).

Performance notes (this is the hot path of every benchmark):

* ``heapq`` over a list of :class:`Event` dataclasses with ``__slots__`` —
  profiling showed attribute access on slotted dataclasses beats tuple
  unpacking once callbacks dominate, and avoids allocating a tuple per push;
* cancelled events use *lazy deletion*: cancelling is O(1) and the loop
  drops dead events as they surface.  Raft resets election timers on every
  heartbeat, so cancellations outnumber expirations by orders of magnitude —
  eager heap deletion would turn each reset into O(n).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from repro.sim.clock import VirtualClock
from repro.sim.events import Event, EventHandle, PRIORITY_MESSAGE

__all__ = ["EventLoop", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for scheduler-level misuse (negative delays, exhausted loop)."""


class EventLoop:
    """Deterministic discrete-event scheduler with a virtual clock.

    Args:
        start: initial virtual time (ms).

    Example:
        >>> loop = EventLoop()
        >>> fired = []
        >>> _ = loop.schedule(5.0, lambda: fired.append(loop.now))
        >>> loop.run()
        >>> fired
        [5.0]
    """

    def __init__(self, start: float = 0.0) -> None:
        self._clock = VirtualClock(start)
        self._heap: list[Event] = []
        self._seq = 0
        self._executed = 0
        self._running = False

    # ------------------------------------------------------------------ #
    # introspection
    # ------------------------------------------------------------------ #

    @property
    def now(self) -> float:
        """Current virtual time (ms)."""
        return self._clock.now

    @property
    def clock(self) -> VirtualClock:
        return self._clock

    @property
    def pending(self) -> int:
        """Number of events still in the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def executed(self) -> int:
        """Total number of events executed so far."""
        return self._executed

    def next_event_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the heap is drained."""
        self._drop_cancelled()
        return self._heap[0].time if self._heap else None

    # ------------------------------------------------------------------ #
    # scheduling
    # ------------------------------------------------------------------ #

    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        *,
        priority: int = PRIORITY_MESSAGE,
    ) -> EventHandle:
        """Schedule ``callback`` to run ``delay`` ms from now.

        Args:
            delay: non-negative delay in ms.  A zero delay fires "later this
                instant" — after all events already queued for the current
                time with smaller sequence numbers.
            callback: zero-argument callable.
            priority: tie-break priority (see :mod:`repro.sim.events`).

        Raises:
            SimulationError: if ``delay`` is negative or not finite.
        """
        if not (delay >= 0.0):  # also rejects NaN
            raise SimulationError(f"delay must be >= 0 and finite, got {delay!r}")
        return self.schedule_at(self._clock.now + delay, callback, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        *,
        priority: int = PRIORITY_MESSAGE,
    ) -> EventHandle:
        """Schedule ``callback`` at absolute virtual time ``time`` (ms)."""
        if time < self._clock.now:
            raise SimulationError(
                f"cannot schedule in the past: now={self._clock.now!r}, t={time!r}"
            )
        event = Event(time=float(time), priority=priority, seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #

    def step(self) -> bool:
        """Execute the single next live event.

        Returns:
            ``True`` if an event was executed, ``False`` if the heap is empty.
        """
        self._drop_cancelled()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._clock.advance_to(event.time)
        self._executed += 1
        event.callback()
        return True

    def run(self, *, max_events: int | None = None) -> int:
        """Run until the heap drains (or ``max_events`` executed).

        Returns:
            Number of events executed by this call.

        Raises:
            SimulationError: if ``max_events`` is exhausted with live events
                remaining — a guard against accidental infinite simulations
                (e.g. heartbeat loops with no stop condition).
        """
        count = 0
        while self.step():
            count += 1
            if max_events is not None and count >= max_events:
                self._drop_cancelled()
                if self._heap:
                    raise SimulationError(
                        f"run() exceeded max_events={max_events} with "
                        f"{len(self._heap)} events pending at t={self.now}"
                    )
                break
        return count

    def run_until(self, t: float, *, max_events: int | None = None) -> int:
        """Run all events with ``time <= t``, then advance the clock to ``t``.

        Periodic processes (heartbeat loops, workload generators) keep the
        heap non-empty forever; ``run_until`` is the normal way to execute an
        experiment for a fixed virtual duration.

        Returns:
            Number of events executed by this call.
        """
        if t < self._clock.now:
            raise SimulationError(
                f"run_until target {t!r} is in the past (now={self._clock.now!r})"
            )
        count = 0
        while True:
            nxt = self.next_event_time()
            if nxt is None or nxt > t:
                break
            self.step()
            count += 1
            if max_events is not None and count > max_events:
                raise SimulationError(
                    f"run_until({t!r}) exceeded max_events={max_events}"
                )
        self._clock.advance_to(t)
        return count

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #

    def _drop_cancelled(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
