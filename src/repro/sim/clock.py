"""Virtual clock for the discrete-event simulator.

Time is a ``float`` measured in **milliseconds** since simulation start.
Milliseconds are the natural unit for this paper: every parameter it
discusses (election timeout, heartbeat interval, RTT, detection time,
out-of-service time) is quoted in ms.
"""

from __future__ import annotations

__all__ = ["VirtualClock", "MS", "SECOND", "MINUTE"]

#: One millisecond in clock units (the base unit).
MS: float = 1.0
#: One second in clock units.
SECOND: float = 1000.0
#: One minute in clock units.
MINUTE: float = 60_000.0


class VirtualClock:
    """A monotonically non-decreasing virtual clock.

    Only the :class:`~repro.sim.loop.EventLoop` advances the clock; every
    other component reads it through :meth:`now`.  Attempting to move time
    backwards raises ``ValueError`` — that would indicate a scheduler bug and
    silently accepting it would corrupt every measurement downstream.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start before zero, got {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Advance the clock to absolute time ``t`` (ms).

        Raises:
            ValueError: if ``t`` is earlier than the current time.
        """
        if t < self._now:
            raise ValueError(
                f"time cannot run backwards: now={self._now!r}, requested={t!r}"
            )
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now!r})"
