"""Virtual clock for the discrete-event simulator.

Time is a ``float`` measured in **milliseconds** since simulation start.
Milliseconds are the natural unit for this paper: every parameter it
discusses (election timeout, heartbeat interval, RTT, detection time,
out-of-service time) is quoted in ms.

Two clock views live here:

* :class:`VirtualClock` — the loop-owned *simulation* clock, the single
  source of truth physics runs on;
* :class:`NodeClock` — one node's *local* view of time: an affine map
  (``offset`` + ``drift`` rate) over the simulation clock, standing in
  for the crystal-oscillator error and NTP offset a real host carries.
  Protocol code reads time exclusively through its node's clock, which
  is the first slice of the runtime abstraction (clock/timer/transport)
  the real-runtime backend needs: swap the ``NodeClock`` for one backed
  by ``time.monotonic`` and the protocol core never notices.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (loop imports clock)
    from repro.sim.loop import EventLoop

__all__ = ["VirtualClock", "NodeClock", "MS", "SECOND", "MINUTE"]

#: One millisecond in clock units (the base unit).
MS: float = 1.0
#: One second in clock units.
SECOND: float = 1000.0
#: One minute in clock units.
MINUTE: float = 60_000.0


class VirtualClock:
    """A monotonically non-decreasing virtual clock.

    Only the :class:`~repro.sim.loop.EventLoop` advances the clock; every
    other component reads it through :meth:`now`.  Attempting to move time
    backwards raises ``ValueError`` — that would indicate a scheduler bug and
    silently accepting it would corrupt every measurement downstream.
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0.0:
            raise ValueError(f"clock cannot start before zero, got {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    def advance_to(self, t: float) -> None:
        """Advance the clock to absolute time ``t`` (ms).

        Raises:
            ValueError: if ``t`` is earlier than the current time.
        """
        if t < self._now:
            raise ValueError(
                f"time cannot run backwards: now={self._now!r}, requested={t!r}"
            )
        self._now = float(t)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VirtualClock(now={self._now!r})"


class NodeClock:
    """One node's local clock: ``local = sim + offset_ms + drift * sim``.

    ``offset_ms`` models a fixed synchronisation error (NTP residual);
    ``drift`` a fractional rate error (crystal tolerance — ``0.01`` runs
    1 % fast).  Both default to ``0.0``, and the zero case is **bit-exact
    identity**: :meth:`now` returns the raw simulation time and
    :meth:`scale_duration` returns its argument unchanged, so a cluster
    with skew injection off replays byte-identically to one built before
    clocks existed.

    The two frames matter in two directions:

    * **timestamps** (:meth:`now`) are what the node writes down —
      measurement send times, lease anchors, trace times;
    * **durations** (:meth:`scale_duration`) convert a locally-specified
      interval (an election timeout the node *intends* to wait) into the
      simulation-frame delay the event loop must honour: a fast clock
      (``drift > 0``) experiences its timer early, so the sim-frame
      duration shrinks by ``1 / (1 + drift)``.

    Offset and drift are mutable so fault injection (the ``SetClock``
    scenario step) can skew a live node mid-run.  ``drift`` must stay
    ``> -1`` or local time would run backwards.
    """

    __slots__ = ("_loop", "offset_ms", "drift")

    def __init__(
        self, loop: "EventLoop", *, offset_ms: float = 0.0, drift: float = 0.0
    ) -> None:
        self._loop = loop
        self.offset_ms = 0.0
        self.drift = 0.0
        self.set(offset_ms=offset_ms, drift=drift)

    @property
    def skewed(self) -> bool:
        """Whether this clock currently deviates from simulation time."""
        return self.offset_ms != 0.0 or self.drift != 0.0

    def set(self, *, offset_ms: float = 0.0, drift: float = 0.0) -> None:
        """(Re-)skew the clock; ``set()`` restores the identity."""
        if not (drift > -1.0):  # also rejects NaN
            raise ValueError(f"drift must be > -1, got {drift!r}")
        if not (offset_ms == offset_ms):  # NaN guard
            raise ValueError(f"offset_ms must be a number, got {offset_ms!r}")
        self.offset_ms = float(offset_ms)
        self.drift = float(drift)

    def now(self) -> float:
        """Current *local* time (ms).

        The zero-skew fast path returns the loop's time untouched —
        bit-exact, so default-off clocks cannot perturb golden digests.
        """
        t = self._loop.now
        if self.offset_ms == 0.0 and self.drift == 0.0:
            return t
        return t + self.offset_ms + self.drift * t

    def sim_now(self) -> float:
        """The underlying simulation time (oracle/debug use only)."""
        return self._loop.now

    def scale_duration(self, duration: float) -> float:
        """Convert a local-frame duration to the simulation frame.

        A node that intends to wait ``duration`` local ms must sleep
        ``duration / (1 + drift)`` simulation ms.  Zero drift returns the
        argument unchanged (bit-exact; offsets cancel over intervals).
        """
        drift = self.drift
        if drift == 0.0:
            return duration
        return duration / (1.0 + drift)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeClock(offset_ms={self.offset_ms!r}, drift={self.drift!r})"
