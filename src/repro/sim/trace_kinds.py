"""Generated trace-kind registry — do not edit by hand.

Regenerate with::

    python -m tools.repolint src/ --write-trace-registry

Every kind emitted anywhere under ``src/`` (plus the justified
``extra_trace_kinds`` from ``tools/repolint/config.py``) is listed here.
``TraceLog.keep_kinds`` and ``SafetyChecker.install`` validate against
this set at runtime so a typo'd kind fails loudly instead of silently
blinding a gate or a safety hook; ``tools/repolint`` cross-checks it
statically on every run.
"""

from __future__ import annotations

__all__ = ["TRACE_KINDS"]

TRACE_KINDS: frozenset[str] = frozenset(
    (
        "become_leader",
        "bug_ack_before_sync",
        "bug_commit_rewrite",
        "bug_greedy_remove",
        "bug_stale_lease_under_skew",
        "client_abandon",
        "client_giveup",
        "config_append",
        "config_commit",
        "config_rejected",
        "disk_corruption",
        "disk_crash_point",
        "disk_io_error",
        "disk_recover",
        "disk_stall",
        "election_start",
        "election_timeout",
        "fault_crash",
        "fault_leader_pause",
        "fault_pause",
        "fault_recover",
        "leader_observed",
        "lease_fallback",
        "liveness_commit_stall",
        "liveness_election_livelock",
        "liveness_no_leader",
        "log_compact",
        "membership_giveup",
        "node_decommissioned",
        "prevote_start",
        "process_crashed",
        "process_paused",
        "process_recovered",
        "process_resumed",
        "process_stopped",
        "quorum_lost",
        "rt_sample",
        "rt_snapshot",
        "rtt_probe",
        "safety_violation_two_leaders",
        "scenario_step",
        "snapshot_install",
        "snapshot_send",
        "stall",
        "stall_pause",
        "step_down",
        "wal_truncated",
    )
)
