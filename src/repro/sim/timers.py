"""Resettable timers on top of the event loop.

Raft is timer-driven: followers run an election timer that is *reset* on
every heartbeat, and a Dynatune leader runs one heartbeat timer **per
follower** (each leader-follower pair has its own tuned interval ``h``,
§III-B).  This module provides the small abstraction both need:

* :class:`Timer` — a named one-shot timer with ``start / reset / cancel``
  and an expiry callback.  Resets are **lazy** (the asyncio/Go timer trick):
  the timer tracks a *logical deadline* separately from the one event it
  keeps scheduled, so the per-heartbeat reset that pushes the deadline out
  is two attribute writes — no heap traffic at all.  Only when the stale
  event fires early does the timer re-arm itself at the true deadline.
* :class:`TimerService` — a per-node factory that can freeze and thaw all
  of a node's timers, which is how the "container sleep" fault of §IV-B1 is
  implemented: a paused node's timers stop and its callbacks never run.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.sim.events import PRIORITY_TIMER
from repro.sim.loop import EventLoop, SimulationError

__all__ = ["Timer", "TimerService"]


class Timer:
    """A one-shot, resettable virtual timer.

    The timer is inert until :meth:`start` (or :meth:`reset`) is called.
    When it expires it invokes ``callback()`` once; restart it explicitly if
    periodic behaviour is wanted (Raft heartbeat loops restart themselves in
    the callback, which lets Dynatune change the interval between ticks).

    Internally the logical ``_deadline`` is authoritative; ``_handle`` is
    the single scheduled loop event, which may lag behind the deadline after
    lazy resets.  Invariant: whenever the timer is running, a live event is
    scheduled at some time ``<= _deadline``.
    """

    __slots__ = ("_loop", "name", "_callback", "_handle", "_handle_time", "_duration", "_deadline")

    def __init__(self, loop: EventLoop, name: str, callback: Callable[[], Any]) -> None:
        self._loop = loop
        self.name = name
        self._callback = callback
        self._handle = None
        self._handle_time = 0.0
        self._duration: float | None = None
        self._deadline: float | None = None

    # -- state ---------------------------------------------------------- #

    @property
    def running(self) -> bool:
        """Whether an expiration is currently pending."""
        return self._deadline is not None

    @property
    def duration(self) -> float | None:
        """Duration (ms) the timer was last armed with, if any."""
        return self._duration

    @property
    def deadline(self) -> float | None:
        """Absolute expiry time (ms) if running, else ``None``."""
        return self._deadline

    @property
    def remaining(self) -> float | None:
        """Time (ms) until expiry if running, else ``None``."""
        if self._deadline is None:
            return None
        return self._deadline - self._loop.now

    # -- control -------------------------------------------------------- #

    def start(self, duration: float) -> None:
        """Arm the timer to expire ``duration`` ms from now.

        Raises:
            SimulationError: if the timer is already running (use
                :meth:`reset` to re-arm) or ``duration`` is invalid.
        """
        if self._deadline is not None:
            raise SimulationError(f"timer {self.name!r} already running; use reset()")
        self.reset(duration)

    def reset(self, duration: float) -> None:
        """(Re-)arm the timer, cancelling any pending expiration.

        This is the operation a follower performs on every heartbeat.  The
        fast path (new deadline at or beyond the scheduled event, i.e. every
        heartbeat-driven extension) touches only this object's attributes.
        """
        if not (duration >= 0.0):
            raise SimulationError(
                f"timer {self.name!r} duration must be >= 0, got {duration!r}"
            )
        deadline = self._loop.now + duration
        self._duration = duration
        self._deadline = deadline
        if self._handle is not None:
            if self._handle_time <= deadline:
                return  # lazy: the stale event re-arms when it fires
            self._handle.cancel()  # deadline moved earlier: re-arm eagerly
        self._handle = self._loop._push_event(deadline, self._fire, PRIORITY_TIMER)
        self._handle_time = deadline

    def cancel(self) -> bool:
        """Disarm the timer.  Returns ``True`` if it had been running."""
        was_running = self._deadline is not None
        self._deadline = None
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
        return was_running

    def _fire(self) -> None:
        self._handle = None
        deadline = self._deadline
        if deadline is None:  # pragma: no cover - cancel also cancels the event
            return
        if deadline > self._loop.now:
            # Stale event from a lazy reset: re-arm at the true deadline.
            self._handle = self._loop._push_event(deadline, self._fire, PRIORITY_TIMER)
            self._handle_time = deadline
            return
        self._deadline = None
        self._callback()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.running:
            return f"Timer({self.name!r}, deadline={self.deadline!r})"
        return f"Timer({self.name!r}, idle)"


class TimerService:
    """Factory and registry for one node's timers, with freeze/thaw.

    Freezing is used by the pause fault (§IV-B1 puts the leader container to
    sleep): all pending expirations are cancelled and their *remaining*
    durations recorded; thawing re-arms each frozen timer with its remaining
    time, as an OS would when a process is resumed.
    """

    def __init__(self, loop: EventLoop, owner: str) -> None:
        self._loop = loop
        self._owner = owner
        self._timers: dict[str, Timer] = {}
        self._frozen: dict[str, float] | None = None

    @property
    def frozen(self) -> bool:
        return self._frozen is not None

    def timer(self, name: str, callback: Callable[[], Any]) -> Timer:
        """Create (or fetch) the timer called ``name`` for this node."""
        if name in self._timers:
            return self._timers[name]
        t = Timer(self._loop, f"{self._owner}/{name}", callback)
        self._timers[name] = t
        return t

    def get(self, name: str) -> Timer | None:
        return self._timers.get(name)

    def drop(self, name: str) -> None:
        """Cancel and forget a timer (leaders drop per-follower timers on
        step-down)."""
        t = self._timers.pop(name, None)
        if t is not None:
            t.cancel()

    def names(self) -> list[str]:
        return sorted(self._timers)

    def freeze(self) -> None:
        """Suspend all running timers, remembering their remaining time."""
        if self._frozen is not None:
            raise SimulationError(f"timers of {self._owner!r} already frozen")
        frozen: dict[str, float] = {}
        for name, t in self._timers.items():
            rem = t.remaining
            if rem is not None:
                frozen[name] = rem
                t.cancel()
        self._frozen = frozen

    def thaw(self) -> None:
        """Resume previously frozen timers with their remaining durations."""
        if self._frozen is None:
            raise SimulationError(f"timers of {self._owner!r} are not frozen")
        frozen, self._frozen = self._frozen, None
        for name, remaining in sorted(frozen.items()):
            t = self._timers.get(name)
            if t is not None and not t.running:
                t.reset(remaining)

    def cancel_all(self) -> None:
        """Disarm every timer (crash fault: state is lost, nothing resumes)."""
        for t in self._timers.values():
            t.cancel()
        self._frozen = None
