"""Structured trace log — the simulator's substitute for server log files.

The paper computes detection time and out-of-service (OTS) time by grepping
timestamps out of each etcd server's log (§IV-A): when the leader was failed,
when a follower's election timer expired ("detect failure"), and when a new
leader announced itself.  :class:`TraceLog` records exactly those structured
events with virtual timestamps; :mod:`repro.cluster.measurements` plays the
role of the log-scraping scripts.

Records are append-only and kept in one flat list for the whole cluster so
that cross-node ordering queries ("first detection after this failure") are
single scans.  Query helpers return lists rather than iterators so call
sites can index and len() them freely.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable

__all__ = ["TraceRecord", "TraceLog"]


@dataclasses.dataclass(slots=True, frozen=True)
class TraceRecord:
    """One structured log line.

    Attributes:
        time: virtual timestamp (ms).
        node: name of the emitting component.
        kind: event kind, e.g. ``"election_timeout"``, ``"become_leader"``.
        fields: free-form structured payload (term numbers, timer values...).
    """

    time: float
    node: str
    kind: str
    fields: dict[str, Any] = dataclasses.field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceLog:
    """Append-only structured event log shared by a simulated cluster.

    Live consumers (safety monitors, fuzz oracles) can :meth:`subscribe`
    a listener invoked synchronously on every appended record — the
    event-driven alternative to polling the log on a sampling cadence,
    which can miss violations whose whole window fits between samples.
    Listeners must not record into the log they observe (no re-entrant
    appends) and should be cheap: they run on the simulation hot path.
    """

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []
        self._kind_index: dict[str, list[TraceRecord]] = {}
        self._listeners: list[Callable[[TraceRecord], None]] = []

    def record(self, time: float, node: str, kind: str, **fields: Any) -> TraceRecord:
        """Append a record, notify listeners, and return it."""
        rec = TraceRecord(time=time, node=node, kind=kind, fields=fields)
        self._records.append(rec)
        self._kind_index.setdefault(kind, []).append(rec)
        if self._listeners:
            for listener in self._listeners:
                listener(rec)
        return rec

    # -- live subscriptions ------------------------------------------------ #

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener(record)`` synchronously for every new record."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # -- queries ---------------------------------------------------------- #

    def __len__(self) -> int:
        return len(self._records)

    def all(self) -> list[TraceRecord]:
        """All records in emission order (which is also time order)."""
        return list(self._records)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All records with the given kind, in time order (O(1) lookup)."""
        return list(self._kind_index.get(kind, ()))

    def of_kinds(self, *kinds: str) -> list[TraceRecord]:
        """Records matching any of ``kinds``, merged in time order."""
        wanted = set(kinds)
        return [r for r in self._records if r.kind in wanted]

    def where(
        self,
        predicate: Callable[[TraceRecord], bool],
        *,
        kind: str | None = None,
    ) -> list[TraceRecord]:
        """Records satisfying ``predicate`` (optionally pre-filtered by kind)."""
        pool: Iterable[TraceRecord]
        pool = self._kind_index.get(kind, ()) if kind is not None else self._records
        return [r for r in pool if predicate(r)]

    def first_after(
        self, t: float, *, kind: str | None = None, node: str | None = None
    ) -> TraceRecord | None:
        """Earliest record with ``time >= t`` matching the filters."""
        pool: Iterable[TraceRecord]
        pool = self._kind_index.get(kind, ()) if kind is not None else self._records
        for r in pool:
            if r.time >= t and (node is None or r.node == node):
                return r
        return None

    def last_before(
        self, t: float, *, kind: str | None = None, node: str | None = None
    ) -> TraceRecord | None:
        """Latest record with ``time <= t`` matching the filters."""
        pool: list[TraceRecord]
        pool = self._kind_index.get(kind, []) if kind is not None else self._records
        best: TraceRecord | None = None
        for r in pool:
            if r.time > t:
                break
            if node is None or r.node == node:
                best = r
        return best

    def clear(self) -> None:
        self._records.clear()
        self._kind_index.clear()
