"""Structured trace log — the simulator's substitute for server log files.

The paper computes detection time and out-of-service (OTS) time by grepping
timestamps out of each etcd server's log (§IV-A): when the leader was failed,
when a follower's election timer expired ("detect failure"), and when a new
leader announced itself.  :class:`TraceLog` records exactly those structured
events with virtual timestamps; :mod:`repro.cluster.measurements` plays the
role of the log-scraping scripts.

Records are append-only and kept in one flat list for the whole cluster so
that cross-node ordering queries ("first detection after this failure") are
single scans.  Query helpers return lists rather than iterators so call
sites can index and len() them freely.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Callable, Iterable

from repro.sim.trace_kinds import TRACE_KINDS

__all__ = ["TraceRecord", "TraceLog"]

#: Unregistered kinds already warned about by :meth:`TraceLog.wants`
#: (process-wide warn-once, so a hot probe loop cannot flood stderr).
_WARNED_KINDS: set[str] = set()


def _warn_unregistered(kind: str) -> None:
    _WARNED_KINDS.add(kind)
    warnings.warn(
        f"trace kind {kind!r} is not in repro.sim.trace_kinds.TRACE_KINDS; "
        "a typo here silently blinds every gate and query that greps for "
        "it (regenerate with: python -m tools.repolint src/ "
        "--write-trace-registry)",
        RuntimeWarning,
        stacklevel=3,
    )


@dataclasses.dataclass(slots=True, frozen=True)
class TraceRecord:
    """One structured log line.

    Attributes:
        time: virtual timestamp (ms).
        node: name of the emitting component.
        kind: event kind, e.g. ``"election_timeout"``, ``"become_leader"``.
        fields: free-form structured payload (term numbers, timer values...).
    """

    time: float
    node: str
    kind: str
    fields: dict[str, Any] = dataclasses.field(default_factory=dict)

    def get(self, key: str, default: Any = None) -> Any:
        return self.fields.get(key, default)


class TraceLog:
    """Append-only structured event log shared by a simulated cluster.

    Live consumers (safety monitors, fuzz oracles) can :meth:`subscribe`
    a listener invoked synchronously on every appended record — the
    event-driven alternative to polling the log on a sampling cadence,
    which can miss violations whose whole window fits between samples.
    Listeners must not record into the log they observe (no re-entrant
    appends) and should be cheap: they run on the simulation hot path.

    Storage can be **gated**: :meth:`set_enabled` switches retention off
    wholesale and :meth:`keep_kinds` restricts it to a kind allow-list
    (default: fully on — everything is retained).  Gating affects only
    what the log *stores*; subscribed listeners always observe every
    record, so an event-hooked :class:`~repro.scenarios.safety.
    SafetyChecker` stays exact under any gate.  When a record is neither
    stored nor observed it is never constructed at all — :meth:`record`
    returns ``None`` — which is what makes high-rate tracing free for
    runs that only read a few kinds.  Callers that build expensive field
    payloads can pre-check :meth:`wants`.

    Note the query helpers (:meth:`of_kind` & co.) only see *stored*
    records: a gate that drops kinds an end-of-run verifier greps for
    (e.g. ``become_leader`` for the election-safety check) silently
    blinds that verifier.  Keep the default for correctness work; gate
    for throughput sweeps that reduce to counters.
    """

    def __init__(self) -> None:
        self._records: list[TraceRecord] = []
        self._kind_index: dict[str, list[TraceRecord]] = {}
        self._listeners: list[Callable[[TraceRecord], None]] = []
        self._enabled = True
        self._kinds: frozenset[str] | None = None  # None = store all kinds

    def record(
        self, time: float, node: str, kind: str, **fields: Any
    ) -> TraceRecord | None:
        """Append a record and notify listeners.

        Returns the stored/observed record, or ``None`` when the gate
        dropped it (storage disabled or kind filtered, and no listener).
        """
        if self._enabled and (self._kinds is None or kind in self._kinds):
            rec = TraceRecord(time=time, node=node, kind=kind, fields=fields)
            self._records.append(rec)
            self._kind_index.setdefault(kind, []).append(rec)
            if self._listeners:
                for listener in self._listeners:
                    listener(rec)
            return rec
        if self._listeners:
            # Gated for storage but observed live: listeners see the full
            # stream regardless of the gate (safety hooks depend on it).
            rec = TraceRecord(time=time, node=node, kind=kind, fields=fields)
            for listener in self._listeners:
                listener(rec)
            return rec
        return None

    # -- storage gates ----------------------------------------------------- #

    @property
    def enabled(self) -> bool:
        """Whether records are being retained (listeners are unaffected)."""
        return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        """Turn record retention on or off (existing records are kept)."""
        self._enabled = bool(enabled)

    def keep_kinds(
        self, kinds: Iterable[str] | None, *, validate: bool = True
    ) -> None:
        """Retain only these kinds (``None`` restores store-everything).

        By default every kind must appear in the generated
        :data:`repro.sim.trace_kinds.TRACE_KINDS` registry — a typo'd
        allow-list would otherwise drop the records its caller meant to
        keep without any symptom until an analysis comes up empty.  Pass
        ``validate=False`` for synthetic kinds in tests.

        Raises:
            ValueError: if ``validate`` and any kind is unregistered.
        """
        if kinds is None:
            self._kinds = None
            return
        wanted = frozenset(kinds)
        if validate:
            unknown = wanted - TRACE_KINDS
            if unknown:
                raise ValueError(
                    f"keep_kinds: unregistered trace kind(s) "
                    f"{sorted(unknown)}; known kinds live in "
                    "repro.sim.trace_kinds.TRACE_KINDS (regenerate with: "
                    "python -m tools.repolint src/ --write-trace-registry; "
                    "pass validate=False for synthetic test kinds)"
                )
        self._kinds = wanted

    @property
    def kept_kinds(self) -> frozenset[str] | None:
        """The active kind allow-list, or ``None`` when storing all kinds."""
        return self._kinds

    def wants(self, kind: str) -> bool:
        """Whether a record of ``kind`` would be stored or observed now.

        Hot callers with expensive-to-build fields can skip the
        :meth:`record` call (and its kwargs dict) entirely when this is
        ``False``.

        Probing an unregistered kind warns once per kind per process
        (the probe site almost certainly typo'd the kind it emits); the
        check is one frozenset lookup, cheap enough for the hot path.
        """
        if kind not in TRACE_KINDS and kind not in _WARNED_KINDS:
            _warn_unregistered(kind)
        if self._listeners:
            return True
        return self._enabled and (self._kinds is None or kind in self._kinds)

    # -- live subscriptions ------------------------------------------------ #

    def subscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Invoke ``listener(record)`` synchronously for every new record."""
        self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[TraceRecord], None]) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    # -- queries ---------------------------------------------------------- #

    def __len__(self) -> int:
        return len(self._records)

    def all(self) -> list[TraceRecord]:
        """All records in emission order (which is also time order)."""
        return list(self._records)

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All records with the given kind, in time order (O(1) lookup)."""
        return list(self._kind_index.get(kind, ()))

    def of_kinds(self, *kinds: str) -> list[TraceRecord]:
        """Records matching any of ``kinds``, merged in time order."""
        wanted = set(kinds)
        return [r for r in self._records if r.kind in wanted]

    def where(
        self,
        predicate: Callable[[TraceRecord], bool],
        *,
        kind: str | None = None,
    ) -> list[TraceRecord]:
        """Records satisfying ``predicate`` (optionally pre-filtered by kind)."""
        pool: Iterable[TraceRecord]
        pool = self._kind_index.get(kind, ()) if kind is not None else self._records
        return [r for r in pool if predicate(r)]

    def first_after(
        self, t: float, *, kind: str | None = None, node: str | None = None
    ) -> TraceRecord | None:
        """Earliest record with ``time >= t`` matching the filters."""
        pool: Iterable[TraceRecord]
        pool = self._kind_index.get(kind, ()) if kind is not None else self._records
        for r in pool:
            if r.time >= t and (node is None or r.node == node):
                return r
        return None

    def last_before(
        self, t: float, *, kind: str | None = None, node: str | None = None
    ) -> TraceRecord | None:
        """Latest record with ``time <= t`` matching the filters."""
        pool: list[TraceRecord]
        pool = self._kind_index.get(kind, []) if kind is not None else self._records
        best: TraceRecord | None = None
        for r in pool:
            if r.time > t:
                break
            if node is None or r.node == node:
                best = r
        return best

    def clear(self) -> None:
        self._records.clear()
        self._kind_index.clear()
