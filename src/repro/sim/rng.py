"""Named deterministic random streams.

Every source of randomness in an experiment — per-link jitter, per-link loss,
per-node election randomization, workload arrivals, fault timing — draws from
its own named stream.  Streams are derived from a single experiment seed and
a stable string name, so:

* two runs with the same seed are bit-identical;
* adding a new consumer (a new link, say) does not perturb the draws any
  existing consumer sees — unlike ``SeedSequence.spawn``, whose children
  depend on spawn *order*.

Derivation hashes ``"{seed}:{name}"`` with SHA-256 and feeds 128 bits of the
digest to :class:`numpy.random.PCG64`.  numpy generators are used throughout
because the estimator layer (:mod:`repro.dynatune.estimators`) is vectorised
and the guides' first rule is to keep numeric work inside numpy.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_seed", "RngRegistry"]


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 128-bit child seed from a root seed and a stream name.

    The mapping is stable across processes and Python versions (unlike
    ``hash()``, which is salted).
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:16], "little")


class RngRegistry:
    """Factory for named :class:`numpy.random.Generator` streams.

    Example:
        >>> rngs = RngRegistry(seed=42)
        >>> jitter = rngs.stream("link/n1->n2/delay")
        >>> election = rngs.stream("raft/n1/election")
        >>> float(jitter.random()) != float(election.random())
        True
    """

    def __init__(self, seed: int) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        Repeated calls with the same name return the *same* generator
        object (state advances across calls), which is what stateful
        consumers like link jitter models want.
        """
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.Generator(np.random.PCG64(derive_seed(self._seed, name)))
            self._streams[name] = gen
        return gen

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name`` ignoring any cached one.

        Used by tests that need to replay a stream from its origin.
        """
        return np.random.Generator(np.random.PCG64(derive_seed(self._seed, name)))

    def names(self) -> list[str]:
        return sorted(self._streams)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngRegistry(seed={self._seed}, streams={len(self._streams)})"
