"""Event records and handles for the discrete-event scheduler.

Events are totally ordered by ``(time, priority, seq)``:

* ``time`` — absolute virtual time (ms) at which the event fires;
* ``priority`` — tie-break for events scheduled at the same instant; lower
  fires first.  Message deliveries default to priority ``0`` and timer
  expirations to priority ``10`` so that a heartbeat arriving at exactly the
  same virtual instant a follower's election timer would expire *resets the
  timer first* — matching the behaviour of a real server where the network
  interrupt is processed before the timer callback that is still queued.
* ``seq`` — global insertion counter; guarantees deterministic FIFO order
  among otherwise identical events.

Determinism of this total order is what makes every experiment in the paper
reproducible bit-for-bit from a seed.

Representation
--------------

An :class:`Event` *is* its own heap entry: a ``list`` subclass laid out as
``[time, priority, seq, callback]`` plus one ``loop`` slot.  This buys the
two properties the hot path needs:

* heap sifts compare events with ``list``'s C implementation, element-wise
  over ``(time, priority, seq)`` — and because ``seq`` is unique the
  comparison never reaches the trailing callback.  No ``__lt__`` is
  defined on the subclass (that would drop every comparison back into the
  interpreter) and no per-comparison key tuples are allocated;
* one object per scheduled event — the entry doubles as the cancellation
  handle returned by :meth:`EventLoop.schedule`, so there is no separate
  ``EventHandle`` allocation and no wrapper indirection.

Cancellation clears slot 3 (the callback) to ``None``, which both marks the
event dead for the loop's lazy deletion and releases the closure
immediately.  External code should use the named accessors (``.time``,
``.cancelled``, ``.cancel()``), not the list layout.
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["Event", "EventHandle", "PRIORITY_MESSAGE", "PRIORITY_TIMER", "PRIORITY_CONTROL"]

#: Priority for network message deliveries.
PRIORITY_MESSAGE: int = 0
#: Priority for control actions (fault injection, schedule changes).
PRIORITY_CONTROL: int = 5
#: Priority for timer expirations.
PRIORITY_TIMER: int = 10


class Event(list):
    """A scheduled callback, doubling as heap entry and cancellation handle.

    Construct with the 4-element layout ``Event((time, priority, seq,
    callback))`` and assign :attr:`loop` (done by
    :meth:`~repro.sim.loop.EventLoop.schedule`); a cancelled event has
    ``callback`` slot ``None``.
    """

    __slots__ = ("loop",)

    # NOTE: deliberately no __init__/__lt__/__eq__ overrides — list's
    # C-level construction and comparison are the whole point.

    @property
    def time(self) -> float:
        """Absolute virtual time at which the event will fire."""
        return self[0]

    @property
    def priority(self) -> int:
        return self[1]

    @property
    def seq(self) -> int:
        return self[2]

    @property
    def callback(self) -> Callable[[], Any] | None:
        return self[3]

    @property
    def cancelled(self) -> bool:
        return self[3] is None

    def cancel(self) -> bool:
        """Cancel the event.

        Returns:
            ``True`` if the event was live and is now cancelled, ``False``
            if it had already been cancelled (idempotent).
        """
        if self[3] is None:
            return False
        self[3] = None
        try:
            loop = self.loop
        except AttributeError:  # constructed outside a loop (tests)
            return True
        if loop is not None:
            loop._note_cancelled()
        return True

    def sort_key(self) -> tuple[float, int, int]:
        return (self[0], self[1], self[2])

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self[3] is None else "pending"
        return f"Event(t={self[0]!r}, prio={self[1]!r}, seq={self[2]!r}, {state})"


#: Backwards-compatible alias: the scheduler hands out :class:`Event`
#: objects directly instead of wrapping each one in a separate handle.
EventHandle = Event
