"""Event records and handles for the discrete-event scheduler.

Events are totally ordered by ``(time, priority, seq)``:

* ``time`` — absolute virtual time (ms) at which the event fires;
* ``priority`` — tie-break for events scheduled at the same instant; lower
  fires first.  Message deliveries default to priority ``0`` and timer
  expirations to priority ``10`` so that a heartbeat arriving at exactly the
  same virtual instant a follower's election timer would expire *resets the
  timer first* — matching the behaviour of a real server where the network
  interrupt is processed before the timer callback that is still queued.
* ``seq`` — global insertion counter; guarantees deterministic FIFO order
  among otherwise identical events.

Determinism of this total order is what makes every experiment in the paper
reproducible bit-for-bit from a seed.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable

__all__ = ["Event", "EventHandle", "PRIORITY_MESSAGE", "PRIORITY_TIMER", "PRIORITY_CONTROL"]

#: Priority for network message deliveries.
PRIORITY_MESSAGE: int = 0
#: Priority for control actions (fault injection, schedule changes).
PRIORITY_CONTROL: int = 5
#: Priority for timer expirations.
PRIORITY_TIMER: int = 10


@dataclasses.dataclass(slots=True)
class Event:
    """A scheduled callback.

    Attributes:
        time: absolute firing time (ms).
        priority: tie-break priority (lower first).
        seq: global insertion sequence number (FIFO tie-break).
        callback: zero-argument callable invoked when the event fires.
        cancelled: set by :meth:`EventHandle.cancel`; cancelled events are
            skipped by the loop (lazy deletion — cheaper than heap surgery).
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[], Any]
    cancelled: bool = False

    def sort_key(self) -> tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self.sort_key() < other.sort_key()


class EventHandle:
    """Cancellation handle returned by :meth:`EventLoop.schedule`.

    Holding a handle does not keep the event alive in any special way; it
    only allows the owner to cancel it before it fires.
    """

    __slots__ = ("_event",)

    def __init__(self, event: Event) -> None:
        self._event = event

    @property
    def time(self) -> float:
        """Absolute virtual time at which the event will fire."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    def cancel(self) -> bool:
        """Cancel the event.

        Returns:
            ``True`` if the event was live and is now cancelled, ``False``
            if it had already been cancelled (idempotent).
        """
        if self._event.cancelled:
            return False
        self._event.cancelled = True
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self._event.cancelled else "pending"
        return f"EventHandle(t={self._event.time!r}, {state})"
