"""Actor base class for simulated components.

A :class:`Process` is anything with an identity that receives messages and
owns timers: Raft nodes, clients, fault injectors.  The base class supplies

* a :class:`~repro.sim.timers.TimerService`,
* pause/resume plumbing (the "container sleep" fault of §IV-B1), and
* a liveness gate — messages delivered to a paused or crashed process are
  dropped by the caller after checking :attr:`alive`.

Subclasses implement :meth:`on_message`.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.sim.loop import EventLoop, SimulationError
from repro.sim.timers import TimerService
from repro.sim.tracing import TraceLog

__all__ = ["Process", "ProcessState"]


class ProcessState(enum.Enum):
    """Lifecycle of a simulated process."""

    RUNNING = "running"
    PAUSED = "paused"  # container sleep: state retained, nothing executes
    CRASHED = "crashed"  # crash fault: volatile state lost on recovery
    STOPPED = "stopped"  # decommissioned (removed from the cluster): terminal


class Process:
    """Base class for all message-driven simulated components."""

    def __init__(self, loop: EventLoop, name: str, trace: TraceLog | None = None) -> None:
        self.loop = loop
        self.name = name
        self.trace = trace if trace is not None else TraceLog()
        self.timers = TimerService(loop, name)
        self._state = ProcessState.RUNNING

    # -- liveness -------------------------------------------------------- #

    @property
    def state(self) -> ProcessState:
        return self._state

    @property
    def alive(self) -> bool:
        """True when the process executes callbacks and accepts messages."""
        return self._state is ProcessState.RUNNING

    def pause(self) -> None:
        """Suspend the process (``docker pause`` equivalent).

        Timers freeze with their remaining durations; in-flight messages
        addressed to this process are dropped on arrival (a paused container
        cannot ack TCP segments either — from the cluster's point of view it
        is silent).
        """
        if self._state is not ProcessState.RUNNING:
            raise SimulationError(f"cannot pause {self.name!r} in state {self._state}")
        self.timers.freeze()
        self._state = ProcessState.PAUSED
        self.trace.record(self.loop.now, self.name, "process_paused")

    def resume(self) -> None:
        """Resume a paused process; frozen timers continue where they left off."""
        if self._state is not ProcessState.PAUSED:
            raise SimulationError(f"cannot resume {self.name!r} in state {self._state}")
        self._state = ProcessState.RUNNING
        self.timers.thaw()
        self.trace.record(self.loop.now, self.name, "process_resumed")

    def crash(self) -> None:
        """Crash the process: all timers disarm, volatile state is the
        subclass's responsibility to reset in :meth:`on_recover`.

        A no-op on a STOPPED process — decommissioning is terminal, and a
        fault timeline that still names a removed node must not drag it
        back into a recoverable state."""
        if self._state in (ProcessState.CRASHED, ProcessState.STOPPED):
            return
        self.timers.cancel_all()
        self._state = ProcessState.CRASHED
        self.trace.record(self.loop.now, self.name, "process_crashed")

    def recover(self) -> None:
        """Restart after a crash.  Calls :meth:`on_recover`."""
        if self._state is not ProcessState.CRASHED:
            raise SimulationError(f"cannot recover {self.name!r} in state {self._state}")
        self._state = ProcessState.RUNNING
        self.trace.record(self.loop.now, self.name, "process_recovered")
        self.on_recover()

    def stop(self) -> None:
        """Decommission the process — the terminal state of a node removed
        from the cluster.

        Unlike :meth:`pause`/:meth:`crash` this is valid from *any* state
        (a node may be removed while crashed or paused) and is never
        reversed.  All timers are cancelled, so callbacks already queued
        fire as no-ops, and the ``deliver`` liveness gate drops every
        in-flight message still addressed here — a removed node cannot be
        resurrected by stale traffic or a stale timer.  Idempotent.
        """
        if self._state is ProcessState.STOPPED:
            return
        self.timers.cancel_all()
        self._state = ProcessState.STOPPED
        self.trace.record(self.loop.now, self.name, "process_stopped")

    # -- messaging ------------------------------------------------------- #

    def deliver(self, sender: str, payload: Any) -> None:
        """Entry point used by the network fabric.

        Silently drops the message if the process is not running — a slept
        or crashed server neither processes nor buffers traffic.
        """
        if self._state is not ProcessState.RUNNING:
            return
        self.on_message(sender, payload)

    # -- subclass hooks --------------------------------------------------- #

    def on_message(self, sender: str, payload: Any) -> None:
        """Handle an incoming message.  Subclasses must override."""
        raise NotImplementedError

    def on_recover(self) -> None:
        """Re-initialise volatile state after a crash.  Optional."""
