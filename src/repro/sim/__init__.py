"""Deterministic discrete-event simulation substrate.

This package is the foundation every other ``repro`` subsystem runs on.  It
provides:

* :class:`~repro.sim.clock.VirtualClock` — a monotonically advancing virtual
  clock measured in floating-point **milliseconds**;
* :class:`~repro.sim.loop.EventLoop` — a heapq-based scheduler with a total,
  deterministic event order (time, priority, sequence number);
* :class:`~repro.sim.timers.Timer` / :class:`~repro.sim.timers.TimerService`
  — resettable timers in the style Raft nodes need (election timers,
  per-follower heartbeat timers);
* :mod:`~repro.sim.rng` — named, reproducible random streams so that
  component randomness (link jitter, election randomization, workload
  arrivals) is independent and stable across runs;
* :class:`~repro.sim.process.Process` — the actor base class used by Raft
  nodes, transports, clients and fault injectors;
* :class:`~repro.sim.tracing.TraceLog` — the structured substitute for the
  server log files the paper extracts detection/OTS times from.

The paper's experiments ran on a single physical machine precisely so that a
single hardware clock timestamps every server's log (§IV-A).  A virtual clock
is the limit of that design: all nodes share one exact clock, so detection
and out-of-service intervals are measured with zero error.  (The geo
experiment of Fig. 8 deliberately re-introduces per-node clock offsets at
measurement-extraction time; see :mod:`repro.net.topology`.  Live per-node
skew/drift *inside* the protocol is :class:`~repro.sim.clock.NodeClock`,
identity by default.)
"""

from repro.sim.clock import NodeClock, VirtualClock
from repro.sim.events import Event, EventHandle
from repro.sim.loop import EventLoop, SimulationError
from repro.sim.process import Process
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.timers import Timer, TimerService
from repro.sim.tracing import TraceLog, TraceRecord

__all__ = [
    "Event",
    "EventHandle",
    "EventLoop",
    "NodeClock",
    "Process",
    "RngRegistry",
    "SimulationError",
    "Timer",
    "TimerService",
    "TraceLog",
    "TraceRecord",
    "VirtualClock",
    "derive_seed",
]
