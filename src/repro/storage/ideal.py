"""The idealized disk: free writes, infallible fsync, perfect recovery.

This backend reproduces the exact semantics the repo had before the
storage abstraction existed — ``current_term``, ``voted_for``, the log
and the snapshot simply survive a crash in memory.  Every mutation hook
is a no-op, ``sync()`` always succeeds, and ``recover()`` hands the
node's live objects straight back, so wiring it in changes no behaviour
and no trace byte (the golden-seed digests pin this).

It is also the hot-path-neutral default: the node's log keeps a ``None``
journal (no per-append mirroring), and each sync barrier costs one
method call returning a constant.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.raft.log import Snapshot, WalJournal
from repro.storage.base import DurableView, RecoveredState, live_view

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.raft.node import RaftNode

__all__ = ["IdealStorage"]


class IdealStorage:
    """Perfectly durable storage (see module docstring)."""

    __slots__ = ("_node",)

    kind: str = "ideal"
    #: No journal: the live :class:`~repro.raft.log.RaftLog` *is* durable.
    wal: WalJournal | None = None

    def __init__(self) -> None:
        self._node: "RaftNode | None" = None

    def attach(self, node: "RaftNode") -> None:
        self._node = node

    def save_hard_state(self, term: int, voted_for: str | None) -> None:
        pass

    def save_snapshot(self, snapshot: Snapshot) -> None:
        pass

    def sync(self) -> bool:
        return True

    def on_crash(self) -> None:
        pass

    def recover(self) -> RecoveredState:
        node = self._node
        assert node is not None, "IdealStorage.recover() before attach()"
        return RecoveredState(
            term=node.current_term,
            voted_for=node.voted_for,
            snapshot=node.snapshot,
            log=node.log,
        )

    def durable_view(self) -> DurableView:
        node = self._node
        assert node is not None, "IdealStorage.durable_view() before attach()"
        return live_view(node.current_term, node.voted_for, node.snapshot, node.log)
