"""The storage contract the Raft node writes its hard state through.

§5.2 of the Raft paper requires ``currentTerm``, ``votedFor`` and the log
to be durable before a node *externalizes* them — before an AppendEntries
response, a vote grant, or an InstallSnapshot ack leaves the node.  The
node therefore never touches its persistent fields directly: every
mutation is mirrored into a :class:`Storage` backend, and every
externalizing reply is preceded by an explicit :meth:`Storage.sync`
barrier (the fsync).  ``sync()`` returning ``False`` means the write
failed or the node crashed at the persist point — the caller must abort
without acking.

Writes between barriers are *pending* (the unsynced WAL tail): a crash
loses them, which is exactly the window the fuzzer's disk faults probe.

The log side of the contract is the :class:`~repro.raft.log.WalJournal`
protocol — :class:`~repro.raft.log.RaftLog` mirrors each of its own
mutations into the attached journal, so storage sees appends, conflict
truncations, compactions and wholesale snapshot resets in exactly the
order the in-memory log applied them.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Mapping, Protocol

from repro.raft.log import RaftLog, Snapshot, WalJournal

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.raft.node import RaftNode

__all__ = ["DiskCorruptionError", "DurableView", "RecoveredState", "Storage"]


class DiskCorruptionError(Exception):
    """Recovery found a checksum mismatch in the *synced* region.

    A torn (partial) final record is repairable — it was never covered by
    an acknowledged ``sync()``, so truncating it is safe.  Corruption at
    or below the synced frontier is not: the node may already have acked
    state it can no longer reproduce, so recovery must refuse and alarm
    rather than silently truncate (etcd's strict WAL policy).
    """


@dataclasses.dataclass(slots=True, frozen=True)
class RecoveredState:
    """What the disk actually holds, rebuilt at recovery time.

    Attributes:
        term / voted_for: the durable hard-state pair.
        snapshot: the durable state-machine image, if any.
        log: the rebuilt log (for :class:`~repro.storage.ideal.
            IdealStorage` this is the node's live log object, unchanged).
        wal_truncated: WAL records discarded as a torn/unsynced tail.
        replayed: log records replayed into ``log``.
    """

    term: int
    voted_for: str | None
    snapshot: Snapshot | None
    log: RaftLog
    wal_truncated: int = 0
    replayed: int = 0


@dataclasses.dataclass(slots=True, frozen=True)
class DurableView:
    """A point-in-time view of the *synced* region, for the safety oracle.

    Captured by the :class:`~repro.scenarios.safety.SafetyChecker` at
    crash time and compared against the node's recovered state: a synced
    committed entry must survive every recovery, and term/vote must never
    regress below their synced values.
    """

    term: int
    voted_for: str | None
    snapshot_index: int
    base_index: int
    base_term: int
    entry_terms: Mapping[int, int]


class Storage(Protocol):
    """Durable-state backend contract (structural; see module docstring)."""

    #: Backend tag ("ideal" / "simdisk") — recovery tracing keys on it.
    kind: str
    #: The journal the node attaches to its log (``None`` = no mirroring).
    wal: WalJournal | None

    def attach(self, node: "RaftNode") -> None:
        """Bind the backend to its node (once, at construction)."""
        ...

    def save_hard_state(self, term: int, voted_for: str | None) -> None:
        """Record a ``(currentTerm, votedFor)`` write (pending until sync)."""
        ...

    def save_snapshot(self, snapshot: Snapshot) -> None:
        """Record a durable snapshot write (pending until sync)."""
        ...

    def sync(self) -> bool:
        """Flush all pending records in order; the ack-after-sync barrier.

        Returns ``False`` iff the write failed or the node crashed at the
        persist point — the caller must stop without externalizing.
        """
        ...

    def on_crash(self) -> None:
        """Crash notification: the unsynced tail is lost (faults may
        additionally tear the tail record or flip a durable bit)."""
        ...

    def recover(self) -> RecoveredState:
        """Rebuild node state from the durable region.

        Raises:
            DiskCorruptionError: checksum mismatch below the synced
                frontier — the node must refuse to rejoin.
        """
        ...

    def durable_view(self) -> DurableView:
        """Snapshot of the synced region (safety-oracle introspection)."""
        ...


def live_view(
    term: int,
    voted_for: str | None,
    snapshot: Snapshot | None,
    log: RaftLog,
) -> DurableView:
    """A :class:`DurableView` of live node state (everything durable).

    Shared by :class:`~repro.storage.ideal.IdealStorage` (whose disk *is*
    the live state) and tests.
    """
    return DurableView(
        term=term,
        voted_for=voted_for,
        snapshot_index=snapshot.last_included_index if snapshot is not None else 0,
        base_index=log.last_included_index,
        base_term=log.last_included_term,
        entry_terms={e.index: e.term for e in log.entries()},
    )
