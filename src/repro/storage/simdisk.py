"""A simulated WAL-style disk with seeded fault injection.

The backend models what etcd-style persistence actually guarantees — and
what it doesn't:

* every mutation (hard state, log append/truncate/compact/reset,
  snapshot) becomes a checksummed WAL *record* appended to a pending
  tail;
* :meth:`SimDiskStorage.sync` is the fsync barrier: it materializes the
  pending records, in order, into the durable region.  Until then they
  are the **unsynced suffix** a crash simply loses;
* at a crash, the tail record may additionally survive **torn** (a
  partial write — detected and truncated at recovery, which is safe:
  no acknowledged ``sync()`` ever covered it);
* a **bit flip** may corrupt a record *below* the synced frontier — at
  recovery the checksum mismatch is fatal (:class:`DiskCorruptionError`):
  the node may have acked state it can no longer reproduce, so it must
  refuse to rejoin rather than silently truncate;
* fsync itself can fail (**IO error** → fail-stop, the post-fsync-errors
  consensus) or **stall** (the process freezes around a slow fsync —
  the write completes, but the node is unresponsive for the duration).

All randomness comes from the node's dedicated ``disk/<name>`` stream of
the sim RNG registry; every probability defaults to 0.0 and is guarded,
so a fault-free ``SimDiskStorage`` draws nothing.

Atomicity by record order: compound mutations (snapshot-then-compact,
snapshot-then-reset on InstallSnapshot) are written as ordered record
pairs within one pending tail, so a crash can lose the *suffix* of the
pair but never the prefix — recovery always sees a consistent
(snapshot, log-frontier) pair with the snapshot at or ahead of the
frontier.
"""

from __future__ import annotations

import dataclasses
import zlib
from typing import TYPE_CHECKING, Any

import numpy as np

from repro.raft.log import LogEntry, RaftLog, Snapshot
from repro.sim.events import PRIORITY_CONTROL
from repro.sim.process import ProcessState
from repro.storage.base import DiskCorruptionError, DurableView, RecoveredState

if TYPE_CHECKING:  # pragma: no cover - hints only
    from repro.raft.node import RaftNode

__all__ = ["DiskFaultConfig", "SimDiskStorage"]


@dataclasses.dataclass(slots=True, frozen=True)
class DiskFaultConfig:
    """Fault-injection knobs; every probability defaults to off (0.0).

    Attributes:
        p_crash_point: per-``sync()`` probability of power loss at the
            persist point — the node crashes and the pending tail is lost.
        p_io_error: per-``sync()`` probability the fsync fails — the node
            fail-stops (the only safe reaction to a failed fsync).
        p_stall: per-``sync()`` probability of an fsync stall — the write
            completes but the node freezes for ``stall_ms · [0.5, 1.5)``.
        p_torn_tail: at-crash probability the first pending record
            survives as a torn partial write (truncated at recovery).
        p_bitflip: at-crash probability one durable record gets a flipped
            bit (fatal checksum mismatch at recovery).
        stall_ms: stall duration scale.
        auto_recover_ms: when > 0, a crashed node is automatically
            recovered after this delay (generation-guarded) — the
            "operations restarts the box" loop that turns disk faults
            into crash-*recovery* coverage instead of permanent loss.
    """

    p_crash_point: float = 0.0
    p_io_error: float = 0.0
    p_stall: float = 0.0
    p_torn_tail: float = 0.0
    p_bitflip: float = 0.0
    stall_ms: float = 40.0
    auto_recover_ms: float = 0.0

    def __post_init__(self) -> None:
        for field in ("p_crash_point", "p_io_error", "p_stall", "p_torn_tail", "p_bitflip"):
            p = getattr(self, field)
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{field} must be in [0, 1], got {p!r}")
        if self.stall_ms <= 0.0:
            raise ValueError(f"stall_ms must be > 0, got {self.stall_ms!r}")
        if self.auto_recover_ms < 0.0:
            raise ValueError(
                f"auto_recover_ms must be >= 0, got {self.auto_recover_ms!r}"
            )


class _Record:
    """One WAL record: a kind tag, its payload, and checksummed bytes.

    ``blob`` is a stable byte encoding of the record used *only* for
    checksumming and fault simulation (torn tails shorten it, bit flips
    mutate it) — recovery validates ``crc32(blob)`` and then reads the
    structured ``payload``, mirroring how a real WAL validates framing
    before decoding.
    """

    __slots__ = ("op", "payload", "blob", "crc")

    def __init__(self, op: str, payload: Any, blob: bytes) -> None:
        self.op = op
        self.payload = payload
        self.blob = blob
        self.crc = zlib.crc32(blob)

    def intact(self) -> bool:
        return zlib.crc32(self.blob) == self.crc


def _hard_record(term: int, voted_for: str | None) -> _Record:
    return _Record(
        "hard", (term, voted_for), repr(("hard", term, voted_for)).encode()
    )


def _append_record(entry: LogEntry) -> _Record:
    blob = repr(("append", entry.term, entry.index, repr(entry.command))).encode()
    return _Record("append", entry, blob)


def _snapshot_record(snapshot: Snapshot) -> _Record:
    blob = repr(
        (
            "snapshot",
            snapshot.last_included_index,
            snapshot.last_included_term,
            repr(snapshot.data),
            repr(snapshot.config),
        )
    ).encode()
    return _Record("snapshot", snapshot, blob)


class SimDiskStorage:
    """Simulated durable disk (see module docstring)."""

    __slots__ = (
        "_node",
        "_rng",
        "faults",
        "wal",
        "_pending",
        "_hard",
        "_snap",
        "_base_index",
        "_base_term",
        "_entries",
        "_torn",
        "_fatal",
        "_epoch",
    )

    kind: str = "simdisk"

    def __init__(
        self, rng: np.random.Generator, faults: DiskFaultConfig | None = None
    ) -> None:
        self._node: "RaftNode | None" = None
        self._rng = rng
        self.faults = faults if faults is not None else DiskFaultConfig()
        #: The node's log journals its mutations straight into this backend.
        self.wal: "SimDiskStorage" = self
        #: Unsynced WAL tail, in write order.
        self._pending: list[_Record] = []
        # Durable (synced) region.
        self._hard: _Record | None = None
        self._snap: _Record | None = None
        self._base_index = 0
        self._base_term = 0
        self._entries: list[_Record] = []
        #: Torn partial record surviving the last crash, if any.
        self._torn: _Record | None = None
        #: Fatal corruption was detected: stay down (no auto-recovery).
        self._fatal = False
        #: Crash generation token guarding stale auto-recovery timers.
        self._epoch = 0

    def attach(self, node: "RaftNode") -> None:
        self._node = node

    # ------------------------------------------------------------------ #
    # write side (everything is pending until sync)
    # ------------------------------------------------------------------ #

    def save_hard_state(self, term: int, voted_for: str | None) -> None:
        self._pending.append(_hard_record(term, voted_for))

    def save_snapshot(self, snapshot: Snapshot) -> None:
        self._pending.append(_snapshot_record(snapshot))

    def wal_append(self, entry: LogEntry) -> None:
        self._pending.append(_append_record(entry))

    def wal_truncate(self, from_index: int) -> None:
        self._pending.append(
            _Record("truncate", from_index, repr(("truncate", from_index)).encode())
        )

    def wal_compact(self, upto: int, term: int) -> None:
        self._pending.append(
            _Record("compact", (upto, term), repr(("compact", upto, term)).encode())
        )

    def wal_reset(self, last_index: int, last_term: int) -> None:
        self._pending.append(
            _Record(
                "reset",
                (last_index, last_term),
                repr(("reset", last_index, last_term)).encode(),
            )
        )

    # ------------------------------------------------------------------ #
    # the fsync barrier
    # ------------------------------------------------------------------ #

    def sync(self) -> bool:
        pending = self._pending
        if not pending:
            return True  # nothing to flush: no fsync, no fault exposure
        f = self.faults
        node = self._node
        assert node is not None, "SimDiskStorage.sync() before attach()"
        if f.p_crash_point > 0.0 or f.p_io_error > 0.0 or f.p_stall > 0.0:
            rng = self._rng
            if f.p_crash_point > 0.0 and float(rng.random()) < f.p_crash_point:
                node.trace.record(
                    node.loop.now,
                    node.name,
                    "disk_crash_point",
                    pending=len(pending),
                )
                node.crash()  # on_crash() drops the tail (torn/bit-flip draws)
                return False
            if f.p_io_error > 0.0 and float(rng.random()) < f.p_io_error:
                node.trace.record(
                    node.loop.now, node.name, "disk_io_error", pending=len(pending)
                )
                node.crash()  # fail-stop: never run past a failed fsync
                return False
            if f.p_stall > 0.0 and float(rng.random()) < f.p_stall:
                self._stall(float(rng.random()))
        for rec in pending:
            self._materialize(rec)
        pending.clear()
        return True

    def _materialize(self, rec: _Record) -> None:
        op = rec.op
        if op == "append":
            entry: LogEntry = rec.payload
            expect = self._base_index + len(self._entries) + 1
            if entry.index != expect:
                raise RuntimeError(
                    f"WAL append out of order: index {entry.index}, expected {expect}"
                )
            self._entries.append(rec)
        elif op == "hard":
            self._hard = rec
        elif op == "truncate":
            idx: int = rec.payload
            if idx > self._base_index:
                del self._entries[idx - self._base_index - 1 :]
        elif op == "compact":
            upto, term = rec.payload
            if upto > self._base_index:
                del self._entries[: upto - self._base_index]
                self._base_index = upto
                self._base_term = term
        elif op == "reset":
            last_index, last_term = rec.payload
            self._entries = []
            self._base_index = last_index
            self._base_term = last_term
        elif op == "snapshot":
            self._snap = rec
        else:  # pragma: no cover - exhaustive over record constructors
            raise RuntimeError(f"unknown WAL record op {op!r}")

    def _stall(self, u: float) -> None:
        """Freeze the node around a slow fsync (the write still lands)."""
        node = self._node
        assert node is not None
        duration = self.faults.stall_ms * (0.5 + u)
        node.trace.record(
            node.loop.now, node.name, "disk_stall", duration_ms=duration
        )
        node.pause()
        token = getattr(node, "_pause_generation", 0) + 1
        node._pause_generation = token

        def _resume() -> None:
            # Same generation guard as faults.pause_for: only the latest
            # pause's resume applies.
            if (
                node.state is ProcessState.PAUSED
                and getattr(node, "_pause_generation", 0) == token
            ):
                node.resume()

        node.loop.schedule(duration, _resume, priority=PRIORITY_CONTROL)

    # ------------------------------------------------------------------ #
    # crash / recovery
    # ------------------------------------------------------------------ #

    def on_crash(self) -> None:
        self._epoch += 1
        if self._fatal:
            self._pending = []
            return
        f = self.faults
        rng = self._rng
        pending = self._pending
        if pending:
            # The unsynced suffix is lost; its first record may survive torn.
            if f.p_torn_tail > 0.0 and float(rng.random()) < f.p_torn_tail:
                torn = pending[0]
                torn.blob = torn.blob[: max(1, len(torn.blob) // 2)]
                self._torn = torn
            self._pending = []
        if f.p_bitflip > 0.0 and float(rng.random()) < f.p_bitflip:
            self._flip_bit(rng)
        if f.auto_recover_ms > 0.0:
            self._schedule_auto_recover()

    def _flip_bit(self, rng: np.random.Generator) -> None:
        candidates: list[_Record] = []
        if self._hard is not None:
            candidates.append(self._hard)
        candidates.extend(self._entries)
        if self._snap is not None:
            candidates.append(self._snap)
        if not candidates:
            return
        victim = candidates[int(rng.integers(len(candidates)))]
        blob = bytearray(victim.blob)
        byte = int(rng.integers(len(blob)))
        blob[byte] ^= 1 << int(rng.integers(8))
        victim.blob = bytes(blob)

    def _schedule_auto_recover(self) -> None:
        node = self._node
        assert node is not None
        token = self._epoch

        def _recover() -> None:
            if node.state is ProcessState.CRASHED and self._epoch == token:
                node.recover()

        node.loop.schedule(
            self.faults.auto_recover_ms, _recover, priority=PRIORITY_CONTROL
        )

    def recover(self) -> RecoveredState:
        truncated = 0
        if self._torn is not None:
            # The torn record was, by construction, never covered by an
            # acknowledged sync — truncating it is the safe WAL repair.
            self._torn = None
            truncated = 1
        self._pending = []
        hard = self._hard
        if hard is not None and not hard.intact():
            self._fatal = True
            raise DiskCorruptionError("hard-state record failed checksum")
        snap_rec = self._snap
        if snap_rec is not None and not snap_rec.intact():
            self._fatal = True
            raise DiskCorruptionError(
                "snapshot record failed checksum (committed state unrecoverable)"
            )
        for rec in self._entries:
            if not rec.intact():
                self._fatal = True
                raise DiskCorruptionError(
                    f"log record at index {rec.payload.index} failed checksum "
                    "below the synced frontier"
                )
        term, voted_for = hard.payload if hard is not None else (0, None)
        log = RaftLog.from_frontier(
            self._base_index, self._base_term, [r.payload for r in self._entries]
        )
        log.journal = self
        return RecoveredState(
            term=term,
            voted_for=voted_for,
            snapshot=snap_rec.payload if snap_rec is not None else None,
            log=log,
            wal_truncated=truncated,
            replayed=len(self._entries),
        )

    def durable_view(self) -> DurableView:
        hard = self._hard
        snap_rec = self._snap
        return DurableView(
            term=hard.payload[0] if hard is not None else 0,
            voted_for=hard.payload[1] if hard is not None else None,
            snapshot_index=(
                snap_rec.payload.last_included_index if snap_rec is not None else 0
            ),
            base_index=self._base_index,
            base_term=self._base_term,
            entry_terms={r.payload.index: r.payload.term for r in self._entries},
        )
