"""Durable storage backends for the Raft node.

The package provides the :class:`~repro.storage.base.Storage` contract
plus two implementations:

* :class:`~repro.storage.ideal.IdealStorage` — the idealized disk every
  pre-storage version of this repo assumed: writes are free, ``sync()``
  never fails, and recovery hands back the node's live objects.  Default
  everywhere; bit-identical to the pre-storage behaviour.
* :class:`~repro.storage.simdisk.SimDiskStorage` — a simulated WAL-style
  disk with checksummed records, a synced/unsynced frontier, and seeded
  fault injection (lost unsynced suffix, torn tail, bit-flip corruption,
  IO errors, fsync stalls).
"""

from repro.storage.base import DiskCorruptionError, DurableView, RecoveredState, Storage
from repro.storage.ideal import IdealStorage
from repro.storage.simdisk import DiskFaultConfig, SimDiskStorage

__all__ = [
    "DiskCorruptionError",
    "DiskFaultConfig",
    "DurableView",
    "IdealStorage",
    "RecoveredState",
    "SimDiskStorage",
    "Storage",
]
