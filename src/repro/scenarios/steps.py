"""Typed scenario steps — the vocabulary of the declarative timeline.

Each step is a frozen dataclass naming one fault or network mutation at an
absolute virtual time ``at_ms``, optionally replayed on a cadence via
``repeat``.  Steps are *data*: every step round-trips through
``to_dict``/``step_from_dict`` (and therefore JSON), so a scenario can live
in a config file as easily as in code.

The step vocabulary spans all three impairment layers:

* network weather — :class:`SetRtt`, :class:`SetLoss`,
  :class:`SetDuplicate` (global or per-pair, the generalized ``tc``
  knobs);
* connectivity — :class:`Partition`, :class:`Heal`, :class:`Flap` (one
  link blinking down and up), and the gray-failure pair
  :class:`BlockLink` / :class:`GrayLink` (one *direction* blocked or
  degraded — the asymmetric faults that livelock naive elections);
* node faults — :class:`Pause`, :class:`Crash`, :class:`Recover`,
  :class:`Churn` (a rolling crash/pause cycle over a node list), and
  :class:`SetClock` (skew/drift one node's local clock).

Node references are *selectors*: either a concrete node name or the
dynamic ``"@leader"``, resolved against the live cluster at the instant
the step applies (a leader-churn loop keeps chasing whoever currently
leads).  A selector that resolves to nothing — no leader during an
outage — skips that occurrence and records the skip in the trace rather
than failing the run: fault timelines must be robust to the very outages
they create.
"""

from __future__ import annotations

import dataclasses
import typing
from typing import Any, ClassVar

from repro.cluster.faults import crash as crash_node
from repro.cluster.faults import pause_for, recover_node
from repro.sim.events import PRIORITY_CONTROL
from repro.sim.process import ProcessState

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard for hints
    from repro.scenarios.scenario import ScenarioRuntime

__all__ = [
    "LEADER_SELECTOR",
    "Repeat",
    "Step",
    "SetRtt",
    "SetLoss",
    "SetDuplicate",
    "Partition",
    "Heal",
    "Pause",
    "Crash",
    "Recover",
    "Flap",
    "BlockLink",
    "GrayLink",
    "SetClock",
    "Churn",
    "DiskFault",
    "AddNode",
    "RemoveNode",
    "ReplaceNode",
    "step_from_dict",
    "STEP_TYPES",
]

#: Dynamic selector resolved to the current leader at apply time.
LEADER_SELECTOR = "@leader"


@dataclasses.dataclass(slots=True, frozen=True)
class Repeat:
    """Replay a step ``times`` times, ``every_ms`` apart (first at ``at_ms``)."""

    every_ms: float
    times: int

    def __post_init__(self) -> None:
        if self.every_ms <= 0.0:
            raise ValueError(f"every_ms must be > 0, got {self.every_ms!r}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times!r}")

    def to_dict(self) -> dict[str, Any]:
        return {"every_ms": self.every_ms, "times": self.times}


def _check_selector(value: str, field: str) -> None:
    if not isinstance(value, str) or not value:
        raise ValueError(f"{field} must be a non-empty node selector, got {value!r}")
    if value.startswith("@") and value != LEADER_SELECTOR:
        # A typo'd dynamic selector would pass install-time name validation
        # (which exempts "@"-tokens) and then silently skip every
        # occurrence — fail at construction instead.
        raise ValueError(
            f"{field}: unknown dynamic selector {value!r} "
            f"(only {LEADER_SELECTOR!r} is defined)"
        )


class Step:
    """Base behaviour shared by every step dataclass.

    Subclasses declare ``kind`` (the serialized tag), a ``_TUPLE_FIELDS``
    map for JSON list→tuple coercion, and implement
    :meth:`apply`; duration-carrying steps also override
    :meth:`effect_duration_ms`.
    """

    kind: ClassVar[str]
    #: Fields whose JSON form is a (possibly nested) list.
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ()
    #: Membership steps reference nodes that may not exist at install time
    #: (a joiner spawned mid-run) — install-time name validation skips them.
    _DYNAMIC_NODES: ClassVar[bool] = False

    # These annotations are provided by every subclass dataclass.
    at_ms: float
    repeat: Repeat | None

    def _validate_base(self) -> None:
        if self.at_ms < 0.0:
            raise ValueError(f"at_ms must be >= 0, got {self.at_ms!r}")

    def occurrence_times(self) -> list[float]:
        """Absolute times this step applies (one per repeat occurrence)."""
        if self.repeat is None:
            return [self.at_ms]
        return [
            self.at_ms + i * self.repeat.every_ms for i in range(self.repeat.times)
        ]

    def effect_duration_ms(self) -> float:
        """How long one occurrence's effect takes to play out (0 = instant)."""
        return 0.0

    @property
    def extent_ms(self) -> float:
        """Time the step's last occurrence has fully played out."""
        return self.occurrence_times()[-1] + self.effect_duration_ms()

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        """Execute one occurrence; return trace fields (``skipped`` flags)."""
        raise NotImplementedError

    # -- serialization ----------------------------------------------------- #

    def to_dict(self) -> dict[str, Any]:
        d: dict[str, Any] = {"kind": self.kind}
        for f in dataclasses.fields(self):  # type: ignore[arg-type]
            value = getattr(self, f.name)
            if f.name == "repeat":
                if value is not None:
                    d["repeat"] = value.to_dict()
                continue
            if isinstance(value, tuple):
                value = _tuple_to_list(value)
            d[f.name] = value
        return d


def _tuple_to_list(value: Any) -> Any:
    if isinstance(value, tuple):
        return [_tuple_to_list(v) for v in value]
    return value


def _list_to_tuple(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_list_to_tuple(v) for v in value)
    return value


def step_from_dict(data: dict[str, Any]) -> Step:
    """Reconstruct a step from its ``to_dict`` form (strict: no extra keys)."""
    if "kind" not in data:
        raise ValueError(f"step dict needs a 'kind' key, got {sorted(data)}")
    payload = dict(data)
    kind = payload.pop("kind")
    cls = STEP_TYPES.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown step kind {kind!r}; expected one of {sorted(STEP_TYPES)}"
        )
    field_names = {f.name for f in dataclasses.fields(cls)}
    unknown = set(payload) - field_names
    if unknown:
        raise ValueError(f"step {kind!r} got unknown keys {sorted(unknown)}")
    repeat = payload.pop("repeat", None)
    if repeat is not None:
        repeat = Repeat(**repeat)
    for name in cls._TUPLE_FIELDS:
        if payload.get(name) is not None:
            payload[name] = _list_to_tuple(payload[name])
    return cls(repeat=repeat, **payload)


# --------------------------------------------------------------------- #
# network weather
# --------------------------------------------------------------------- #


@dataclasses.dataclass(slots=True, frozen=True)
class SetRtt(Step):
    """Retarget RTT — of every pair, or of ``pair`` only."""

    kind: ClassVar[str] = "set_rtt"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ("pair",)

    at_ms: float
    rtt_ms: float
    pair: tuple[str, str] | None = None
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        if self.rtt_ms < 0.0:
            raise ValueError(f"rtt_ms must be >= 0, got {self.rtt_ms!r}")
        if self.pair is not None:
            if len(self.pair) != 2:
                raise ValueError(f"pair must name two nodes, got {self.pair!r}")
            for sel in self.pair:
                _check_selector(sel, "pair")

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        if self.pair is None:
            rt.network.set_all_rtt(self.rtt_ms)
            return {"rtt_ms": self.rtt_ms}
        a, b = (rt.resolve(s) for s in self.pair)
        if a is None or b is None or a == b:
            return {"skipped": True, "reason": "pair unresolved"}
        rt.network.set_rtt(a, b, self.rtt_ms)
        return {"rtt_ms": self.rtt_ms, "a": a, "b": b}


@dataclasses.dataclass(slots=True, frozen=True)
class SetLoss(Step):
    """Retarget loss rate — of every link, or of ``pair`` only."""

    kind: ClassVar[str] = "set_loss"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ("pair",)

    at_ms: float
    loss: float
    pair: tuple[str, str] | None = None
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        if not (0.0 <= self.loss <= 1.0):
            raise ValueError(f"loss must be in [0, 1], got {self.loss!r}")
        if self.pair is not None:
            if len(self.pair) != 2:
                raise ValueError(f"pair must name two nodes, got {self.pair!r}")
            for sel in self.pair:
                _check_selector(sel, "pair")

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        if self.pair is None:
            rt.network.set_all_loss(self.loss)
            return {"loss": self.loss}
        a, b = (rt.resolve(s) for s in self.pair)
        if a is None or b is None or a == b:
            return {"skipped": True, "reason": "pair unresolved"}
        rt.network.set_loss(a, b, self.loss)
        return {"loss": self.loss, "a": a, "b": b}


@dataclasses.dataclass(slots=True, frozen=True)
class SetDuplicate(Step):
    """Retarget UDP duplication probability — every link, or ``pair`` only.

    Completes the network-weather trio (RTT / loss / duplication):
    ``Link.duplicate_p`` existed from the start, but until this step no
    timeline could drive it.  The paper's measurement design handles
    duplicates explicitly (§III-C2), so weather scenarios should too.
    """

    kind: ClassVar[str] = "set_duplicate"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ("pair",)

    at_ms: float
    duplicate_p: float
    pair: tuple[str, str] | None = None
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        if not (0.0 <= self.duplicate_p <= 1.0):
            raise ValueError(
                f"duplicate_p must be in [0, 1], got {self.duplicate_p!r}"
            )
        if self.pair is not None:
            if len(self.pair) != 2:
                raise ValueError(f"pair must name two nodes, got {self.pair!r}")
            for sel in self.pair:
                _check_selector(sel, "pair")

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        if self.pair is None:
            rt.network.set_all_duplicate(self.duplicate_p)
            return {"duplicate_p": self.duplicate_p}
        a, b = (rt.resolve(s) for s in self.pair)
        if a is None or b is None or a == b:
            return {"skipped": True, "reason": "pair unresolved"}
        rt.network.set_duplicate(a, b, self.duplicate_p)
        return {"duplicate_p": self.duplicate_p, "a": a, "b": b}


# --------------------------------------------------------------------- #
# connectivity
# --------------------------------------------------------------------- #

_DIRECTIONS = ("both", "a_to_b", "b_to_a")


def _resolve_directions(
    direction: str, a: str, b: str
) -> list[tuple[str, str]]:
    """The ordered ``(src, dst)`` links a directional step touches."""
    if direction == "a_to_b":
        return [(a, b)]
    if direction == "b_to_a":
        return [(b, a)]
    return [(a, b), (b, a)]


@dataclasses.dataclass(slots=True, frozen=True)
class Partition(Step):
    """Install partition groups (unlisted nodes form the implicit rest).

    Groups may use selectors: ``(("@leader",),)`` isolates whoever leads
    at the instant the step fires.
    """

    kind: ClassVar[str] = "partition"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ("groups",)

    at_ms: float
    groups: tuple[tuple[str, ...], ...]
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        if not self.groups:
            raise ValueError("partition needs at least one group")
        for group in self.groups:
            if not group:
                raise ValueError("partition groups must be non-empty")
            for sel in group:
                _check_selector(sel, "group member")

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        resolved: list[set[str]] = []
        seen: set[str] = set()
        for group in self.groups:
            names = {n for n in (rt.resolve(s) for s in group) if n is not None}
            names -= seen  # "@leader" may coincide with an explicit member
            if not names:
                return {"skipped": True, "reason": "group unresolved"}
            seen |= names
            resolved.append(names)
        rt.network.set_partitions(resolved)
        return {"groups": [sorted(g) for g in resolved]}


@dataclasses.dataclass(slots=True, frozen=True)
class Heal(Step):
    """Clear all partitions."""

    kind: ClassVar[str] = "heal"

    at_ms: float
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        rt.network.clear_partitions()
        return {}


@dataclasses.dataclass(slots=True, frozen=True)
class Flap(Step):
    """Blink the ``a``↔``b`` link down for ``down_ms`` (both directions).

    One occurrence is one blink; a flapping link is a ``Flap`` with a
    ``repeat`` whose ``every_ms`` is the flap period.
    """

    kind: ClassVar[str] = "flap"

    at_ms: float
    a: str
    b: str
    down_ms: float
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        _check_selector(self.a, "a")
        _check_selector(self.b, "b")
        if self.down_ms <= 0.0:
            raise ValueError(f"down_ms must be > 0, got {self.down_ms!r}")
        if self.repeat is not None and self.repeat.every_ms <= self.down_ms:
            raise ValueError("flap period must exceed down_ms (link must come back up)")

    def effect_duration_ms(self) -> float:
        return self.down_ms

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        a, b = rt.resolve(self.a), rt.resolve(self.b)
        if a is None or b is None or a == b:
            return {"skipped": True, "reason": "pair unresolved"}
        links = [rt.network.link(a, b), rt.network.link(b, a)]
        for link in links:
            link.up = False
        token = rt.next_flap_token(a, b)

        def _up() -> None:
            # Only the latest down-window's restore applies; a stale timer
            # from an overlapping earlier flap must not raise the link early.
            if rt.flap_token(a, b) == token:
                for link in links:
                    link.up = True

        rt.loop.schedule(self.down_ms, _up, priority=PRIORITY_CONTROL)
        return {"a": a, "b": b, "down_ms": self.down_ms}


@dataclasses.dataclass(slots=True, frozen=True)
class BlockLink(Step):
    """Block the ``a``↔``b`` link in one (or both) directions.

    The asymmetric cousin of :class:`Flap`: ``direction="a_to_b"`` drops
    only traffic flowing ``a → b`` while the return path stays perfect —
    the "can send but cannot hear" gray failure that livelocks naive
    elections (the isolated node campaigns forever; its ever-growing
    terms still reach the cluster).  ``duration_ms=None`` blocks for the
    rest of the run; a finite window restores only the directions this
    occurrence blocked, guarded by per-direction tokens so an overlapping
    later block wins.
    """

    kind: ClassVar[str] = "block_link"

    at_ms: float
    a: str
    b: str
    direction: str = "both"
    duration_ms: float | None = None
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        _check_selector(self.a, "a")
        _check_selector(self.b, "b")
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS}, got {self.direction!r}"
            )
        if self.duration_ms is not None and self.duration_ms <= 0.0:
            raise ValueError(
                f"duration_ms must be > 0 or None, got {self.duration_ms!r}"
            )

    def effect_duration_ms(self) -> float:
        return self.duration_ms if self.duration_ms is not None else 0.0

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        a, b = rt.resolve(self.a), rt.resolve(self.b)
        if a is None or b is None or a == b:
            return {"skipped": True, "reason": "pair unresolved"}
        net = rt.network
        # Tokens are minted even for a permanent block: it must invalidate
        # any earlier finite window's pending restore on the same link.
        armed = []
        for src, dst in _resolve_directions(self.direction, a, b):
            net.block_direction(src, dst)
            armed.append((src, dst, rt.next_link_token("block", src, dst)))
        if self.duration_ms is not None:

            def _unblock() -> None:
                for src, dst, token in armed:
                    if rt.link_token("block", src, dst) == token:
                        net.unblock_direction(src, dst)

            rt.loop.schedule(self.duration_ms, _unblock, priority=PRIORITY_CONTROL)
        return {
            "a": a,
            "b": b,
            "direction": self.direction,
            "duration_ms": self.duration_ms,
        }


@dataclasses.dataclass(slots=True, frozen=True)
class GrayLink(Step):
    """Gray-degrade the ``a``↔``b`` link: heavy loss and/or delay, one way.

    Unlike :class:`BlockLink` the link still *works* — packets trickle
    through — which is exactly what makes gray failures hard: failure
    detectors keyed on total silence never fire, while quorum progress
    collapses.  ``loss`` (a rate, not a blackout) and ``one_way_ms`` (the
    direction's new base one-way delay) apply to each affected direction;
    a finite ``duration_ms`` restores the previous values afterwards,
    token-guarded per direction like :class:`BlockLink`.
    """

    kind: ClassVar[str] = "gray_link"

    at_ms: float
    a: str
    b: str
    direction: str = "a_to_b"
    loss: float | None = None
    one_way_ms: float | None = None
    duration_ms: float | None = None
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        _check_selector(self.a, "a")
        _check_selector(self.b, "b")
        if self.direction not in _DIRECTIONS:
            raise ValueError(
                f"direction must be one of {_DIRECTIONS}, got {self.direction!r}"
            )
        if self.loss is None and self.one_way_ms is None:
            raise ValueError("gray_link needs loss and/or one_way_ms")
        if self.loss is not None and not (0.0 <= self.loss <= 1.0):
            raise ValueError(f"loss must be in [0, 1], got {self.loss!r}")
        if self.one_way_ms is not None and self.one_way_ms < 0.0:
            raise ValueError(
                f"one_way_ms must be >= 0, got {self.one_way_ms!r}"
            )
        if self.duration_ms is not None and self.duration_ms <= 0.0:
            raise ValueError(
                f"duration_ms must be > 0 or None, got {self.duration_ms!r}"
            )

    def effect_duration_ms(self) -> float:
        return self.duration_ms if self.duration_ms is not None else 0.0

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        a, b = rt.resolve(self.a), rt.resolve(self.b)
        if a is None or b is None or a == b:
            return {"skipped": True, "reason": "pair unresolved"}
        net = rt.network
        armed = []
        for src, dst in _resolve_directions(self.direction, a, b):
            prev = net.degrade_direction(
                src, dst, loss=self.loss, one_way_ms=self.one_way_ms
            )
            armed.append((src, dst, prev, rt.next_link_token("gray", src, dst)))
        if self.duration_ms is not None:
            restore_loss = self.loss is not None
            restore_delay = self.one_way_ms is not None

            def _restore() -> None:
                for src, dst, prev, token in armed:
                    if rt.link_token("gray", src, dst) == token:
                        net.degrade_direction(
                            src,
                            dst,
                            loss=prev[0] if restore_loss else None,
                            one_way_ms=prev[1] if restore_delay else None,
                        )

            rt.loop.schedule(self.duration_ms, _restore, priority=PRIORITY_CONTROL)
        return {
            "a": a,
            "b": b,
            "direction": self.direction,
            "loss": self.loss,
            "one_way_ms": self.one_way_ms,
            "duration_ms": self.duration_ms,
        }


# --------------------------------------------------------------------- #
# node faults
# --------------------------------------------------------------------- #


@dataclasses.dataclass(slots=True, frozen=True)
class Pause(Step):
    """Container-sleep ``node`` for ``duration_ms`` (auto-resume).

    ``trace_kind`` is the trace record :func:`~repro.cluster.faults.
    pause_for` emits at pause time; pass ``"fault_leader_pause"`` when the
    pause *is* a leader failure so the measurement layer counts it.
    """

    kind: ClassVar[str] = "pause"

    at_ms: float
    node: str
    duration_ms: float
    trace_kind: str = "fault_pause"
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        _check_selector(self.node, "node")
        if self.duration_ms <= 0.0:
            raise ValueError(f"duration_ms must be > 0, got {self.duration_ms!r}")

    def effect_duration_ms(self) -> float:
        return self.duration_ms

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        proc = rt.process(self.node)
        if proc is None:
            return {"skipped": True, "reason": "node unresolved"}
        if proc.state is not ProcessState.RUNNING:
            return {"skipped": True, "reason": f"node {proc.name} not running"}
        pause_for(rt.loop, proc, self.duration_ms, kind=self.trace_kind)
        return {"target": proc.name, "duration_ms": self.duration_ms}


@dataclasses.dataclass(slots=True, frozen=True)
class Crash(Step):
    """Crash ``node`` (volatile state lost; recover via :class:`Recover`)."""

    kind: ClassVar[str] = "crash"

    at_ms: float
    node: str
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        _check_selector(self.node, "node")

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        proc = rt.process(self.node)
        if proc is None:
            return {"skipped": True, "reason": "node unresolved"}
        if proc.state is ProcessState.STOPPED:
            return {"skipped": True, "reason": f"node {proc.name} removed"}
        if proc.state is ProcessState.CRASHED:
            return {"skipped": True, "reason": f"node {proc.name} already crashed"}
        crash_node(proc)
        return {"target": proc.name}


@dataclasses.dataclass(slots=True, frozen=True)
class Recover(Step):
    """Restart a crashed ``node`` (no-op on a node that is not crashed)."""

    kind: ClassVar[str] = "recover"

    at_ms: float
    node: str
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        _check_selector(self.node, "node")

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        proc = rt.process(self.node)
        if proc is None:
            return {"skipped": True, "reason": "node unresolved"}
        if proc.state is not ProcessState.CRASHED:
            return {"skipped": True, "reason": f"node {proc.name} not crashed"}
        recover_node(proc)
        return {"target": proc.name}


@dataclasses.dataclass(slots=True, frozen=True)
class Churn(Step):
    """Rolling fault over ``nodes``: occurrence ``i`` hits ``nodes[i % n]``.

    With ``fault="crash"`` each hit is a crash followed by a recovery
    after ``down_ms``; with ``fault="pause"`` it is a container sleep.
    Pair with ``repeat`` to cycle through the list (and around it).
    """

    kind: ClassVar[str] = "churn"
    _TUPLE_FIELDS: ClassVar[tuple[str, ...]] = ("nodes",)

    at_ms: float
    nodes: tuple[str, ...]
    down_ms: float
    fault: str = "crash"
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        if not self.nodes:
            raise ValueError("churn needs at least one node")
        for sel in self.nodes:
            _check_selector(sel, "node")
        if self.down_ms <= 0.0:
            raise ValueError(f"down_ms must be > 0, got {self.down_ms!r}")
        if self.fault not in ("crash", "pause"):
            raise ValueError(f"fault must be 'crash' or 'pause', got {self.fault!r}")

    def effect_duration_ms(self) -> float:
        return self.down_ms

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        selector = self.nodes[occurrence % len(self.nodes)]
        proc = rt.process(selector)
        if proc is None:
            return {"skipped": True, "reason": "node unresolved"}
        if proc.state is ProcessState.STOPPED:
            # A churn list may name a node that was removed mid-run; hitting
            # it is a traced no-op, never a resurrection.
            return {"skipped": True, "reason": f"node {proc.name} removed"}
        if self.fault == "pause":
            if proc.state is not ProcessState.RUNNING:
                return {"skipped": True, "reason": f"node {proc.name} not running"}
            pause_for(rt.loop, proc, self.down_ms, kind="fault_pause")
            return {"target": proc.name, "fault": "pause", "down_ms": self.down_ms}
        if proc.state is ProcessState.CRASHED:
            return {"skipped": True, "reason": f"node {proc.name} already crashed"}
        crash_node(proc)
        # Generation guard (same class as pause_for/Flap): if anything
        # crashes this node again before the timer fires, the newer
        # crash's downtime wins and this recover is stale.
        token = getattr(proc, "_crash_generation", 0)

        def _recover(p=proc) -> None:
            if (
                p.state is ProcessState.CRASHED
                and getattr(p, "_crash_generation", 0) == token
            ):
                recover_node(p)

        rt.loop.schedule(self.down_ms, _recover, priority=PRIORITY_CONTROL)
        return {"target": proc.name, "fault": "crash", "down_ms": self.down_ms}


@dataclasses.dataclass(slots=True, frozen=True)
class DiskFault(Step):
    """Retarget ``node``'s disk-fault probabilities (simdisk storage only).

    One occurrence swaps the node's fault knobs for ``duration_ms``
    (0 = the rest of the run), then restores the previous knobs —
    identity-guarded, so an overlapping later occurrence wins and the
    stale revert no-ops.  Knobs not listed here (``stall_ms``,
    ``auto_recover_ms``) are preserved from the backend's configuration.

    On a cluster built with ideal storage the step is a traced skip: a
    fault timeline must degrade, not fail, when the storage layer under
    it cannot fault.
    """

    kind: ClassVar[str] = "disk_fault"

    at_ms: float
    node: str
    p_crash_point: float = 0.0
    p_io_error: float = 0.0
    p_stall: float = 0.0
    p_torn_tail: float = 0.0
    p_bitflip: float = 0.0
    duration_ms: float = 0.0
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        _check_selector(self.node, "node")
        for field in (
            "p_crash_point",
            "p_io_error",
            "p_stall",
            "p_torn_tail",
            "p_bitflip",
        ):
            p = getattr(self, field)
            if not (0.0 <= p <= 1.0):
                raise ValueError(f"{field} must be in [0, 1], got {p!r}")
        if self.duration_ms < 0.0:
            raise ValueError(f"duration_ms must be >= 0, got {self.duration_ms!r}")

    def effect_duration_ms(self) -> float:
        return self.duration_ms

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        proc = rt.process(self.node)
        if proc is None:
            return {"skipped": True, "reason": "node unresolved"}
        store = getattr(proc, "storage", None)
        if store is None or store.kind != "simdisk":
            return {"skipped": True, "reason": "ideal storage"}
        prev = store.faults
        new = dataclasses.replace(
            prev,
            p_crash_point=self.p_crash_point,
            p_io_error=self.p_io_error,
            p_stall=self.p_stall,
            p_torn_tail=self.p_torn_tail,
            p_bitflip=self.p_bitflip,
        )
        store.faults = new
        if self.duration_ms > 0.0:

            def _revert(s: Any = store, prev: Any = prev, new: Any = new) -> None:
                if s.faults is new:  # stale if a later occurrence replaced it
                    s.faults = prev

            rt.loop.schedule(self.duration_ms, _revert, priority=PRIORITY_CONTROL)
        return {
            "target": proc.name,
            "duration_ms": self.duration_ms,
            "p_crash_point": self.p_crash_point,
            "p_io_error": self.p_io_error,
            "p_stall": self.p_stall,
            "p_torn_tail": self.p_torn_tail,
            "p_bitflip": self.p_bitflip,
        }


@dataclasses.dataclass(slots=True, frozen=True)
class SetClock(Step):
    """Skew ``node``'s local clock: fixed ``offset_ms`` plus ``drift`` rate.

    Applies to the node's live :class:`~repro.sim.clock.NodeClock` — its
    view of time shifts while the simulation clock (the physics) is
    untouched.  ``SetClock(offset_ms=0, drift=0)`` restores the identity
    clock.  The effect persists until the next ``SetClock`` on the same
    node; already-armed timers keep their old deadlines (a clock step on
    a real host does not re-fire armed timers either).
    """

    kind: ClassVar[str] = "set_clock"

    at_ms: float
    node: str
    offset_ms: float = 0.0
    drift: float = 0.0
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        _check_selector(self.node, "node")
        if not self.drift > -1.0:  # also rejects NaN
            raise ValueError(f"drift must be > -1, got {self.drift!r}")

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        proc = rt.process(self.node)
        if proc is None:
            return {"skipped": True, "reason": "node unresolved"}
        clock = getattr(proc, "clock", None)
        if clock is None:
            return {"skipped": True, "reason": f"node {proc.name} has no clock"}
        clock.set(offset_ms=self.offset_ms, drift=self.drift)
        return {
            "target": proc.name,
            "offset_ms": self.offset_ms,
            "drift": self.drift,
        }


# --------------------------------------------------------------------- #
# dynamic membership
# --------------------------------------------------------------------- #


def _propose_with_retry(
    rt: "ScenarioRuntime",
    change: str,
    target: str,
    retry_ms: float,
    max_retries: int,
    on_accepted: Any = None,
) -> None:
    """Keep proposing ``change`` at whoever currently leads until a leader
    *appends* it (commit and any follow-on promotion are the protocol's
    business), giving up after ``max_retries`` re-attempts.

    Retries absorb the two transient rejection causes a live timeline
    produces: no leader right now (election in progress) and the
    one-at-a-time gate (an earlier config change still uncommitted).
    Permanent rejections (unknown node, double-add) burn retries too and
    end in a traced ``membership_giveup`` — a fault timeline must not
    fail the run.
    """
    state = [0]  # attempts so far

    def _try() -> None:
        leader = rt.cluster.leader()
        accepted = False
        if leader is not None:
            accepted = rt.cluster.nodes[leader].propose_config_change(change, target)
        if accepted:
            if on_accepted is not None:
                on_accepted()
            return
        state[0] += 1
        if state[0] > max_retries:
            rt.trace.record(
                rt.loop.now,
                "scenario",
                "membership_giveup",
                change=change,
                target=target,
                attempts=state[0],
            )
            return
        rt.loop.schedule(retry_ms, _try, priority=PRIORITY_CONTROL)

    _try()


class _MembershipStep(Step):
    """Shared validation/plumbing for the membership step family."""

    _DYNAMIC_NODES: ClassVar[bool] = True

    retry_ms: float
    max_retries: int

    def _validate_retry(self) -> None:
        if self.retry_ms <= 0.0:
            raise ValueError(f"retry_ms must be > 0, got {self.retry_ms!r}")
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries!r}")

    def effect_duration_ms(self) -> float:
        # Worst case: the proposal is retried to exhaustion.
        return self.retry_ms * (self.max_retries + 1)


@dataclasses.dataclass(slots=True, frozen=True)
class AddNode(_MembershipStep):
    """Grow the cluster: spawn ``node`` fresh and propose ``add_learner``.

    The joiner enters as a non-voting learner, is caught up by the leader
    (through the snapshot path when it starts behind the compaction
    frontier) and auto-promoted to voter once caught up — one step covers
    the whole §4.1 join flow.  ``node`` must be a concrete fresh name;
    names are never reused.
    """

    kind: ClassVar[str] = "add_node"

    at_ms: float
    node: str
    retry_ms: float = 500.0
    max_retries: int = 40
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        self._validate_retry()
        if not isinstance(self.node, str) or not self.node or self.node.startswith("@"):
            raise ValueError(f"add_node needs a concrete fresh name, got {self.node!r}")

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        if not rt.membership_enabled:
            return {"skipped": True, "reason": "membership disabled"}
        cluster = rt.cluster
        if self.node in cluster.nodes:
            return {"skipped": True, "reason": f"node {self.node} already exists"}
        cluster.spawn_node(self.node)
        _propose_with_retry(rt, "add_learner", self.node, self.retry_ms, self.max_retries)
        return {"target": self.node}


@dataclasses.dataclass(slots=True, frozen=True)
class RemoveNode(_MembershipStep):
    """Shrink the cluster: propose removing ``node`` (selectors allowed).

    ``"@leader"`` resolves at apply time, pinning whoever leads *now*; the
    proposal then chases the current leader on each retry (removing a
    leader makes it step down once the entry commits, so the retry target
    and the victim diverge by design).  The committed removal is finalized
    by the cluster: the node stops and detaches, never to return.
    """

    kind: ClassVar[str] = "remove_node"

    at_ms: float
    node: str
    retry_ms: float = 500.0
    max_retries: int = 40
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        self._validate_retry()
        _check_selector(self.node, "node")

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        if not rt.membership_enabled:
            return {"skipped": True, "reason": "membership disabled"}
        name = rt.resolve(self.node)
        if name is None:
            return {"skipped": True, "reason": "node unresolved"}
        if rt.cluster.nodes[name].state is ProcessState.STOPPED:
            return {"skipped": True, "reason": f"node {name} already removed"}
        rt.cluster.enable_membership()
        _propose_with_retry(rt, "remove", name, self.retry_ms, self.max_retries)
        return {"target": name}


@dataclasses.dataclass(slots=True, frozen=True)
class ReplaceNode(_MembershipStep):
    """Rolling replacement: add ``replacement`` first, then remove ``node``.

    Add-before-remove preserves fault-tolerance capacity through the swap.
    The two proposals are sequenced by the one-in-flight gate itself: the
    removal is first proposed once the *addition* is appended, and its
    retries absorb rejections until the addition (and usually the
    follow-on promotion) commits.
    """

    kind: ClassVar[str] = "replace_node"

    at_ms: float
    node: str
    replacement: str
    retry_ms: float = 500.0
    max_retries: int = 40
    repeat: Repeat | None = None

    def __post_init__(self) -> None:
        self._validate_base()
        self._validate_retry()
        _check_selector(self.node, "node")
        if (
            not isinstance(self.replacement, str)
            or not self.replacement
            or self.replacement.startswith("@")
        ):
            raise ValueError(
                f"replace_node needs a concrete fresh replacement name, "
                f"got {self.replacement!r}"
            )

    def apply(self, rt: "ScenarioRuntime", occurrence: int) -> dict[str, Any]:
        if not rt.membership_enabled:
            return {"skipped": True, "reason": "membership disabled"}
        cluster = rt.cluster
        victim = rt.resolve(self.node)
        if victim is None:
            return {"skipped": True, "reason": "node unresolved"}
        if victim == self.replacement:
            return {"skipped": True, "reason": "replacement equals victim"}
        if cluster.nodes[victim].state is ProcessState.STOPPED:
            return {"skipped": True, "reason": f"node {victim} already removed"}
        if self.replacement in cluster.nodes:
            return {"skipped": True, "reason": f"node {self.replacement} already exists"}
        cluster.spawn_node(self.replacement)

        def _then_remove() -> None:
            _propose_with_retry(rt, "remove", victim, self.retry_ms, self.max_retries)

        _propose_with_retry(
            rt,
            "add_learner",
            self.replacement,
            self.retry_ms,
            self.max_retries,
            on_accepted=_then_remove,
        )
        return {"target": victim, "replacement": self.replacement}


#: Registry used by :func:`step_from_dict` (kind tag → class).
STEP_TYPES: dict[str, type[Step]] = {
    cls.kind: cls
    for cls in (
        SetRtt,
        SetLoss,
        SetDuplicate,
        Partition,
        Heal,
        Pause,
        Crash,
        Recover,
        Flap,
        BlockLink,
        GrayLink,
        SetClock,
        Churn,
        DiskFault,
        AddNode,
        RemoveNode,
        ReplaceNode,
    )
}
