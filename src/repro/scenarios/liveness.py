"""Liveness monitoring: is the cluster making the progress it *could*?

Safety says nothing bad happened; :class:`LivenessChecker` is its dual —
the gray-failure scenarios (one-way link blocks, degraded-but-not-dead
egress, skewed clocks) are precisely the faults that leave every safety
invariant intact while the cluster silently stops serving.  The checker
samples the live cluster on the same cadence as
:class:`~repro.scenarios.safety.SafetyChecker` and flags three failure
shapes, each gated on *quorum connectivity* so a genuine partition (where
stalling is the correct behaviour) never false-positives:

* **no-leader window** — no live leader for longer than a bound while
  some running voter could reach a quorum of its voters over mutually
  usable links;
* **election livelock** — term keeps climbing without producing a leader
  while a quorum is connected (the classic disruption mode of a one-way
  isolated node: it can campaign *out* but never hear heartbeats *in*);
* **commit stall** — a leader exists, a quorum is connected, the log has
  uncommitted entries, and the cluster-wide commit watermark does not
  move for longer than a bound (the shape of a gray egress fault: the
  leader looks alive but its appends mostly die on the wire).

Connectivity is taken from :meth:`repro.net.network.Network.connected`,
which counts a direction as usable while its loss rate is below 1.0 — a
degraded-but-possible link still obligates progress (eventual delivery),
which is exactly what makes gray failures *gray* rather than partitions.

Each violation is recorded once per episode (a stalled window flags when
it first exceeds its bound, not once per sample) and also emitted as a
trace record (``liveness_no_leader`` / ``liveness_election_livelock`` /
``liveness_commit_stall``) so experiment reports can overlay the flag on
their measured series.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cluster.builder import Cluster
from repro.raft.types import Role
from repro.sim.events import PRIORITY_CONTROL
from repro.sim.process import ProcessState

__all__ = ["LivenessChecker", "LivenessViolation"]

_NEG_INF = float("-inf")


@dataclass(frozen=True, slots=True)
class LivenessViolation:
    """One detected liveness failure episode."""

    #: ``"no_leader"`` / ``"election_livelock"`` / ``"commit_stall"``.
    kind: str
    #: Sim time (ms) the episode crossed its bound.
    time: float
    #: Human-readable specifics (window length, term delta, watermark).
    detail: str

    def __str__(self) -> str:
        return f"t={self.time:g}: liveness/{self.kind}: {self.detail}"


class LivenessChecker:
    """Periodic liveness sampler for one cluster.

    Args:
        cluster: the wired cluster to observe.
        interval_ms: sampling cadence (same default as the safety checker).
        leaderless_bound_ms: longest tolerated *single* window without a
            live leader while a quorum is connected.
        leaderless_total_bound_ms: cumulative leaderless-while-connected
            budget over the whole run (catches repeated short outages that
            individually duck under the single-window bound).
        term_churn_bound: tolerated total term growth while a quorum is
            connected but leaderless; exceeding it flags election livelock.
        commit_stall_bound_ms: longest tolerated window in which a leader
            and a connected quorum coexist with uncommitted entries yet
            the commit watermark does not advance.
    """

    def __init__(
        self,
        cluster: Cluster,
        *,
        interval_ms: float = 250.0,
        leaderless_bound_ms: float = 10_000.0,
        leaderless_total_bound_ms: float = 30_000.0,
        term_churn_bound: int = 20,
        commit_stall_bound_ms: float = 10_000.0,
    ) -> None:
        if interval_ms <= 0.0:
            raise ValueError(f"interval_ms must be > 0, got {interval_ms!r}")
        for label, value in (
            ("leaderless_bound_ms", leaderless_bound_ms),
            ("leaderless_total_bound_ms", leaderless_total_bound_ms),
            ("commit_stall_bound_ms", commit_stall_bound_ms),
        ):
            if value <= 0.0:
                raise ValueError(f"{label} must be > 0, got {value!r}")
        if term_churn_bound <= 0:
            raise ValueError(
                f"term_churn_bound must be > 0, got {term_churn_bound!r}"
            )
        self.cluster = cluster
        self.interval_ms = interval_ms
        self.leaderless_bound_ms = leaderless_bound_ms
        self.leaderless_total_bound_ms = leaderless_total_bound_ms
        self.term_churn_bound = term_churn_bound
        self.commit_stall_bound_ms = commit_stall_bound_ms
        #: Violations detected so far, in detection order.
        self.violations: list[LivenessViolation] = []
        # -- no-leader tracking ---------------------------------------- #
        self._leaderless_since: float | None = None
        self._leaderless_total = 0.0
        self._window_flagged = False
        self._total_flagged = False
        self._last_sample_t: float | None = None
        # -- election-livelock tracking -------------------------------- #
        self._prev_max_term: int | None = None
        self._churn = 0
        self._churn_flagged = False
        # -- commit-stall tracking ------------------------------------- #
        self._stall_since: float | None = None
        self._stall_watermark = -1
        self._stall_flagged = False
        self._installed = False

    # ------------------------------------------------------------------ #
    # installation / sampling
    # ------------------------------------------------------------------ #

    def install(self) -> None:
        """Arm the periodic sampler (idempotent)."""
        if self._installed:
            return
        self._installed = True
        self.cluster.loop.schedule(
            self.interval_ms, self._tick, priority=PRIORITY_CONTROL
        )

    def _tick(self) -> None:
        self.sample()
        self.cluster.loop.schedule(
            self.interval_ms, self._tick, priority=PRIORITY_CONTROL
        )

    # ------------------------------------------------------------------ #
    # connectivity
    # ------------------------------------------------------------------ #

    def quorum_connected(self) -> bool:
        """Could *some* running voter assemble a quorum right now?

        True iff a running voter ``v`` exists whose own configuration's
        quorum is reachable: ``v`` itself plus the running voters ``u``
        with ``network.connected(v, u)`` (both directions usable).  Each
        candidate is judged against *its own* membership view — during a
        config change different nodes legitimately hold different voter
        sets, and a node can only win with the quorum it believes in.
        """
        network = self.cluster.network
        nodes = self.cluster.nodes
        running = {
            name
            for name, node in nodes.items()
            if node.state is ProcessState.RUNNING
        }
        for name in running:
            node = nodes[name]
            cfg = node.membership
            if name not in cfg.voters:
                continue
            reachable = 1  # itself
            for peer in cfg.voters:
                if peer == name or peer not in running:
                    continue
                if network.connected(name, peer):
                    reachable += 1
            if reachable >= cfg.quorum:
                return True
        return False

    # ------------------------------------------------------------------ #
    # detectors
    # ------------------------------------------------------------------ #

    def _flag(self, kind: str, detail: str, **fields: object) -> None:
        now = self.cluster.loop.now
        self.violations.append(LivenessViolation(kind, now, detail))
        # The three liveness_* kinds are registered via extra_trace_kinds
        # in tools/repolint/config.py.
        # repolint: disable=trace-dynamic-kind
        self.cluster.trace.record(
            now, "liveness", f"liveness_{kind}", detail=detail, **fields
        )

    def sample(self) -> None:
        """Record one liveness observation (also callable directly)."""
        now = self.cluster.loop.now
        prev_t = self._last_sample_t
        self._last_sample_t = now
        connected = self.quorum_connected()

        nodes = self.cluster.nodes.values()
        leader_alive = any(
            n.state is ProcessState.RUNNING and n.role is Role.LEADER
            for n in nodes
        )
        max_term = max(
            (
                n.current_term
                for n in nodes
                if n.state is ProcessState.RUNNING
            ),
            default=0,
        )

        self._check_no_leader(now, prev_t, connected, leader_alive)
        self._check_livelock(now, connected, leader_alive, max_term)
        self._check_commit_stall(now, connected, leader_alive)

    def _check_no_leader(
        self,
        now: float,
        prev_t: float | None,
        connected: bool,
        leader_alive: bool,
    ) -> None:
        if leader_alive or not connected:
            # A leader, or a genuine loss of quorum connectivity, ends the
            # episode — a cluster that *cannot* elect is allowed to idle.
            self._leaderless_since = None
            self._window_flagged = False
            return
        if self._leaderless_since is None:
            self._leaderless_since = prev_t if prev_t is not None else now
        window = now - self._leaderless_since
        # The cumulative budget accrues per observed leaderless interval,
        # so repeated short outages add up even though each window resets.
        if prev_t is not None:
            self._leaderless_total += now - max(prev_t, self._leaderless_since)
        if window > self.leaderless_bound_ms and not self._window_flagged:
            self._window_flagged = True
            self._flag(
                "no_leader",
                f"no live leader for {window:g} ms "
                f"(bound {self.leaderless_bound_ms:g}) with a quorum connected",
                window_ms=window,
            )
        if (
            self._leaderless_total > self.leaderless_total_bound_ms
            and not self._total_flagged
        ):
            self._total_flagged = True
            self._flag(
                "no_leader",
                f"cumulative leaderless-while-connected time "
                f"{self._leaderless_total:g} ms exceeds budget "
                f"{self.leaderless_total_bound_ms:g}",
                total_ms=self._leaderless_total,
            )

    def _check_livelock(
        self, now: float, connected: bool, leader_alive: bool, max_term: int
    ) -> None:
        prev = self._prev_max_term
        self._prev_max_term = max_term
        if leader_alive:
            # A winner resets the churn account: terms spent *reaching* a
            # leader were productive, not livelock.
            self._churn = 0
            self._churn_flagged = False
            return
        if not connected or prev is None:
            return
        if max_term > prev:
            self._churn += max_term - prev
        if self._churn > self.term_churn_bound and not self._churn_flagged:
            self._churn_flagged = True
            self._flag(
                "election_livelock",
                f"term climbed by {self._churn} without electing a leader "
                f"(bound {self.term_churn_bound}) while a quorum is connected",
                term_delta=self._churn,
                term=max_term,
            )

    def _check_commit_stall(
        self, now: float, connected: bool, leader_alive: bool
    ) -> None:
        running = [
            n
            for n in self.cluster.nodes.values()
            if n.state is ProcessState.RUNNING
        ]
        watermark = max((n.commit_index for n in running), default=0)
        pending = any(n.log.last_index > watermark for n in running)
        if (
            not leader_alive
            or not connected
            or not pending
            or watermark > self._stall_watermark
        ):
            # Progress (or a state in which stalling is legitimate) closes
            # the episode and re-anchors the watermark.
            self._stall_watermark = max(watermark, self._stall_watermark)
            self._stall_since = None
            self._stall_flagged = False
            return
        if self._stall_since is None:
            self._stall_since = now
            return
        window = now - self._stall_since
        if window > self.commit_stall_bound_ms and not self._stall_flagged:
            self._stall_flagged = True
            self._flag(
                "commit_stall",
                f"commit watermark stuck at {watermark} for {window:g} ms "
                f"(bound {self.commit_stall_bound_ms:g}) with a leader and "
                f"a quorum connected",
                window_ms=window,
                commit_index=watermark,
            )

    # ------------------------------------------------------------------ #
    # verification
    # ------------------------------------------------------------------ #

    def verify(self) -> list[str]:
        """All liveness violations over the run, as display strings."""
        self.sample()  # capture the final state too
        return [str(v) for v in self.violations]

    def assert_live(self) -> None:
        """Raise ``AssertionError`` listing every liveness violation."""
        problems = self.verify()
        assert not problems, "liveness violations:\n  " + "\n  ".join(problems)
