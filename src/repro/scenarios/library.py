"""The canonical scenario library — the partition-heavy regimes BALLAST
stresses and the paper's §IV-C scripts cannot express.

Every builder takes the cluster's node names and returns a fully concrete
:class:`~repro.scenarios.scenario.Scenario` (pure data; dump any of them
with ``scenario.to_json()`` to seed a config file).  Default timings keep
a whole scenario under ~40 s of virtual time so the full matrix stays
CI-sized; pass ``start_ms``/duration overrides for longer studies.

The nine canonical entries:

========================== ==================================================
``symmetric_split``        half/half partition, heal, repeat
``minority_partition``     a leaderless minority islanded (majority sails on)
``majority_partition``     the leader islanded with a minority; majority
                           re-elects, heal forces the deposed leader back
``rolling_partitions``     each node isolated in turn
``flapping_wan_link``      one inter-node link blinking on a short period
``asymmetric_geo``         one node's paths degraded (RTT+loss), others clean
``leader_churn_loop``      whoever leads gets put to sleep, repeatedly
``correlated_stall_storm`` simultaneous short pauses across several nodes
``partition_rtt_spike``    a split lands mid RTT-spike (SEER's worst case)
``elastic_grow``           fresh learners join and get promoted, one by one
``elastic_shrink``         members removed one at a time (optionally the
                           leader itself)
``elastic_replace_all``    rolling replacement of every original member
``gray_leader_egress``     the leader's outbound paths gray-degraded (heavy
                           loss + delay, return paths clean) over a duplicate
                           -prone network
``one_way_isolation``      one node's *ingress* blocked: it can campaign out
                           but never hear back (the election-livelock shape)
``drifting_clocks``        per-node clock steps and drift, then back to true
========================== ==================================================

The three ``elastic_*`` scenarios are the dynamic-membership family: they
reconfigure the cluster through one-at-a-time config changes while the
run is live, and only take effect on clusters installed with membership
enabled (the default).
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.cluster.measurements import LEADER_FAILURE_KIND
from repro.scenarios.scenario import Scenario
from repro.scenarios.steps import (
    LEADER_SELECTOR,
    AddNode,
    BlockLink,
    Churn,
    Flap,
    GrayLink,
    Heal,
    Partition,
    Pause,
    RemoveNode,
    Repeat,
    ReplaceNode,
    SetClock,
    SetDuplicate,
    SetLoss,
    SetRtt,
)

__all__ = [
    "SCENARIO_BUILDERS",
    "scenario_names",
    "build_scenario",
    "build_all",
    "symmetric_split",
    "minority_partition",
    "majority_partition",
    "rolling_partitions",
    "flapping_wan_link",
    "asymmetric_geo",
    "leader_churn_loop",
    "correlated_stall_storm",
    "partition_rtt_spike",
    "elastic_grow",
    "elastic_shrink",
    "elastic_replace_all",
    "gray_leader_egress",
    "one_way_isolation",
    "drifting_clocks",
]


def _names(names: Sequence[str]) -> list[str]:
    names = list(names)
    if len(names) < 3:
        raise ValueError(f"scenarios need >= 3 nodes, got {len(names)}")
    return names


def symmetric_split(
    names: Sequence[str],
    *,
    start_ms: float = 5_000.0,
    hold_ms: float = 5_000.0,
    cycles: int = 2,
    gap_ms: float = 10_000.0,
) -> Scenario:
    """Split the cluster down the middle, heal, and do it again."""
    names = _names(names)
    half = tuple(names[: (len(names) + 1) // 2])
    repeat = Repeat(every_ms=gap_ms, times=cycles) if cycles > 1 else None
    return Scenario(
        "symmetric_split",
        [
            Partition(at_ms=start_ms, groups=(half,), repeat=repeat),
            Heal(at_ms=start_ms + hold_ms, repeat=repeat),
        ],
        description="half/half partition, heal, repeat",
    )


def minority_partition(
    names: Sequence[str],
    *,
    start_ms: float = 5_000.0,
    hold_ms: float = 8_000.0,
) -> Scenario:
    """Island a leaderless minority; the majority keeps (or regains) quorum."""
    names = _names(names)
    minority = tuple(names[-((len(names) - 1) // 2) :])
    return Scenario(
        "minority_partition",
        [
            Partition(at_ms=start_ms, groups=(minority,)),
            Heal(at_ms=start_ms + hold_ms),
        ],
        description="leaderless minority islanded; majority sails on",
    )


def majority_partition(
    names: Sequence[str],
    *,
    start_ms: float = 5_000.0,
    hold_ms: float = 8_000.0,
    cycles: int = 2,
    gap_ms: float = 12_000.0,
) -> Scenario:
    """Island the *leader* (with one companion) away from the majority.

    The majority side must detect and re-elect; the heal forces the
    deposed leader to fall back in line — the history where stale tuned
    timeouts are most dangerous.
    """
    names = _names(names)
    repeat = Repeat(every_ms=gap_ms, times=cycles) if cycles > 1 else None
    return Scenario(
        "majority_partition",
        [
            Partition(
                at_ms=start_ms,
                groups=((LEADER_SELECTOR, names[0]),),
                repeat=repeat,
            ),
            Heal(at_ms=start_ms + hold_ms, repeat=repeat),
        ],
        description="leader islanded with a minority; majority re-elects",
    )


def rolling_partitions(
    names: Sequence[str],
    *,
    start_ms: float = 4_000.0,
    hold_ms: float = 4_000.0,
    gap_ms: float = 6_000.0,
) -> Scenario:
    """Isolate each node in turn, healing between victims."""
    names = _names(names)
    steps = []
    for i, name in enumerate(names):
        t = start_ms + i * gap_ms
        steps.append(Partition(at_ms=t, groups=((name,),)))
        steps.append(Heal(at_ms=t + hold_ms))
    return Scenario(
        "rolling_partitions",
        steps,
        description="each node isolated in turn",
    )


def flapping_wan_link(
    names: Sequence[str],
    *,
    start_ms: float = 4_000.0,
    down_ms: float = 900.0,
    period_ms: float = 2_400.0,
    flaps: int = 10,
) -> Scenario:
    """One inter-node link blinking down/up on a short period."""
    names = _names(names)
    return Scenario(
        "flapping_wan_link",
        [
            Flap(
                at_ms=start_ms,
                a=names[0],
                b=names[1],
                down_ms=down_ms,
                repeat=Repeat(every_ms=period_ms, times=flaps),
            )
        ],
        description="one WAN link flapping on a short period",
    )


def asymmetric_geo(
    names: Sequence[str],
    *,
    start_ms: float = 5_000.0,
    hold_ms: float = 12_000.0,
    degraded_rtt_ms: float = 320.0,
    degraded_loss: float = 0.08,
    base_rtt_ms: float = 100.0,
) -> Scenario:
    """Degrade every path of one node (RTT + loss) while the rest stay clean."""
    names = _names(names)
    victim = names[0]
    steps = []
    for peer in names[1:]:
        steps.append(
            SetRtt(at_ms=start_ms, rtt_ms=degraded_rtt_ms, pair=(victim, peer))
        )
        steps.append(SetLoss(at_ms=start_ms, loss=degraded_loss, pair=(victim, peer)))
        steps.append(
            SetRtt(at_ms=start_ms + hold_ms, rtt_ms=base_rtt_ms, pair=(victim, peer))
        )
        steps.append(SetLoss(at_ms=start_ms + hold_ms, loss=0.0, pair=(victim, peer)))
    return Scenario(
        "asymmetric_geo",
        steps,
        description="one node's paths impaired, everyone else clean",
    )


def leader_churn_loop(
    names: Sequence[str],
    *,
    start_ms: float = 5_000.0,
    sleep_ms: float = 3_000.0,
    period_ms: float = 9_000.0,
    kills: int = 3,
) -> Scenario:
    """Put whoever currently leads to sleep, on a loop (declarative §IV-B1)."""
    _names(names)
    return Scenario(
        "leader_churn_loop",
        [
            Pause(
                at_ms=start_ms,
                node=LEADER_SELECTOR,
                duration_ms=sleep_ms,
                trace_kind=LEADER_FAILURE_KIND,
                repeat=Repeat(every_ms=period_ms, times=kills),
            )
        ],
        description="repeated leader container-sleeps",
    )


def correlated_stall_storm(
    names: Sequence[str],
    *,
    start_ms: float = 5_000.0,
    stall_ms: float = 450.0,
    period_ms: float = 3_000.0,
    rounds: int = 4,
) -> Scenario:
    """Simultaneous sub-timeout stalls on several nodes (shared-host noise)."""
    names = _names(names)
    victims = names[: max(2, len(names) // 2)]
    return Scenario(
        "correlated_stall_storm",
        [
            Pause(
                at_ms=start_ms,
                node=name,
                duration_ms=stall_ms,
                repeat=Repeat(every_ms=period_ms, times=rounds),
            )
            for name in victims
        ],
        description="correlated short pauses across several nodes",
    )


def partition_rtt_spike(
    names: Sequence[str],
    *,
    start_ms: float = 4_000.0,
    spike_rtt_ms: float = 500.0,
    base_rtt_ms: float = 100.0,
    partition_after_ms: float = 4_000.0,
    hold_ms: float = 6_000.0,
) -> Scenario:
    """A split landing in the middle of an RTT spike.

    Dynatune's followers have just re-tuned upward for the spike when the
    partition cuts their sample streams — the regime SEER identifies as
    the breaking point of naive timeout tuning.
    """
    names = _names(names)
    minority = tuple(names[-((len(names) - 1) // 2) :])
    t_split = start_ms + partition_after_ms
    return Scenario(
        "partition_rtt_spike",
        [
            SetRtt(at_ms=start_ms, rtt_ms=spike_rtt_ms),
            Partition(at_ms=t_split, groups=(minority,)),
            Heal(at_ms=t_split + hold_ms),
            SetRtt(at_ms=t_split + hold_ms + 2_000.0, rtt_ms=base_rtt_ms),
        ],
        description="minority partition during a radical RTT spike",
    )


def _fresh_names(names: Sequence[str], count: int) -> list[str]:
    """Mint ``count`` names that continue the cluster's naming sequence.

    ``["n1", "n2", "n3"]`` → ``["n4", "n5", ...]``.  Node names are never
    reused, so joiners always extend past the highest existing index.
    """
    prefix = names[0].rstrip("0123456789") or "n"
    top = 0
    for name in names:
        suffix = name[len(prefix) :] if name.startswith(prefix) else ""
        if suffix.isdigit():
            top = max(top, int(suffix))
    return [f"{prefix}{top + 1 + i}" for i in range(count)]


def elastic_grow(
    names: Sequence[str],
    *,
    start_ms: float = 4_000.0,
    gap_ms: float = 6_000.0,
    joiners: int = 2,
) -> Scenario:
    """Grow the cluster by ``joiners`` fresh nodes, one at a time.

    Each joiner enters as a learner, is snapshot/append caught up, and is
    auto-promoted to voter; ``gap_ms`` spaces the additions so each config
    change (and its follow-on promotion) can commit before the next.
    """
    names = _names(names)
    if joiners < 1:
        raise ValueError(f"joiners must be >= 1, got {joiners!r}")
    steps = [
        AddNode(at_ms=start_ms + i * gap_ms, node=fresh)
        for i, fresh in enumerate(_fresh_names(names, joiners))
    ]
    return Scenario(
        "elastic_grow",
        steps,
        description="fresh learners join and get promoted, one by one",
    )


def elastic_shrink(
    names: Sequence[str],
    *,
    start_ms: float = 4_000.0,
    gap_ms: float = 6_000.0,
    removals: int | None = None,
    include_leader: bool = False,
) -> Scenario:
    """Shrink the cluster one removal at a time.

    Removes the tail of the name list (defaults to shrinking down to three
    members, at least one removal).  With ``include_leader`` the first
    removal targets ``"@leader"`` instead — the step-down-on-self-removal
    path (§4.2.2).
    """
    names = _names(names)
    if removals is None:
        removals = max(1, len(names) - 3)
    if not (1 <= removals < len(names)):
        raise ValueError(
            f"removals must be in [1, {len(names) - 1}], got {removals!r}"
        )
    victims = [LEADER_SELECTOR] if include_leader else []
    victims += list(reversed(names))[: removals - len(victims)]
    steps = [
        RemoveNode(at_ms=start_ms + i * gap_ms, node=victim)
        for i, victim in enumerate(victims)
    ]
    return Scenario(
        "elastic_shrink",
        steps,
        description="members removed one at a time",
    )


def elastic_replace_all(
    names: Sequence[str],
    *,
    start_ms: float = 4_000.0,
    gap_ms: float = 8_000.0,
) -> Scenario:
    """Rolling replacement: every original member swapped for a fresh node.

    Each swap adds the replacement first (learner → voter) and then
    removes the original, so fault-tolerance capacity never dips below the
    starting level.  By the end no original member remains — the
    history-independence stress: the final cluster's state exists only
    through snapshots and replicated config entries.
    """
    names = _names(names)
    steps = [
        ReplaceNode(at_ms=start_ms + i * gap_ms, node=victim, replacement=fresh)
        for i, (victim, fresh) in enumerate(
            zip(names, _fresh_names(names, len(names)))
        )
    ]
    return Scenario(
        "elastic_replace_all",
        steps,
        description="rolling replacement of every original member",
    )


def gray_leader_egress(
    names: Sequence[str],
    *,
    start_ms: float = 5_000.0,
    hold_ms: float = 8_000.0,
    loss: float = 0.9,
    extra_delay_ms: float = 150.0,
    duplicate_p: float = 0.02,
) -> Scenario:
    """Gray-degrade the leader's *outbound* paths; return paths stay clean.

    The leader keeps hearing acks for the few appends that survive, so it
    still believes it leads — but commit progress collapses.  With
    ``check_quorum`` the leader notices its silence radius and steps down;
    without it the cluster limps until the commit-stall oracle flags it.
    A low background duplicate rate runs throughout (dedup must hold even
    while the fault plays out).
    """
    names = _names(names)
    steps = [SetDuplicate(at_ms=start_ms - 1_000.0, duplicate_p=duplicate_p)]
    for peer in names:
        # "@leader" resolves at fire time; the occurrence naming the
        # leader itself is skipped (a == b), so covering every name
        # grays exactly the leader's egress fan-out.
        steps.append(
            GrayLink(
                at_ms=start_ms,
                a=LEADER_SELECTOR,
                b=peer,
                direction="a_to_b",
                loss=loss,
                one_way_ms=extra_delay_ms,
                duration_ms=hold_ms,
            )
        )
    steps.append(SetDuplicate(at_ms=start_ms + hold_ms + 2_000.0, duplicate_p=0.0))
    return Scenario(
        "gray_leader_egress",
        steps,
        description="leader egress gray-degraded, return paths clean",
    )


def one_way_isolation(
    names: Sequence[str],
    *,
    start_ms: float = 5_000.0,
    hold_ms: float = 10_000.0,
) -> Scenario:
    """Block one node's *ingress* only: it speaks but cannot hear.

    The victim's elections time out forever (no heartbeat reaches it), so
    it campaigns with ever-growing terms that *do* reach the cluster —
    without prevote each campaign deposes the live leader; with prevote
    the disruption is contained and on heal the victim's inflated local
    term never touches the cluster.
    """
    names = _names(names)
    victim = names[-1]
    steps = [
        BlockLink(
            at_ms=start_ms,
            a=victim,
            b=peer,
            direction="b_to_a",
            duration_ms=hold_ms,
        )
        for peer in names
        if peer != victim
    ]
    return Scenario(
        "one_way_isolation",
        steps,
        description="one node's ingress blocked; egress keeps working",
    )


def drifting_clocks(
    names: Sequence[str],
    *,
    start_ms: float = 4_000.0,
    hold_ms: float = 15_000.0,
    max_offset_ms: float = 200.0,
    max_drift: float = 0.02,
) -> Scenario:
    """Step and drift every node's clock, then snap all clocks back to true.

    Offsets alternate sign and ramp up to ``max_offset_ms``; drifts do the
    same up to ``max_drift`` — nodes disagree on both *when* and *how
    fast*.  Raft's correctness never depends on synchronized clocks, so
    safety must hold throughout; what skew does stress is everything
    timeout-shaped (election spreads, lease validity margins).
    """
    names = _names(names)
    n = len(names)
    steps = []
    for i, name in enumerate(names):
        sign = 1.0 if i % 2 == 0 else -1.0
        scale = (i + 1) / n
        steps.append(
            SetClock(
                at_ms=start_ms,
                node=name,
                offset_ms=sign * max_offset_ms * scale,
                drift=sign * max_drift * scale,
            )
        )
        steps.append(SetClock(at_ms=start_ms + hold_ms, node=name))
    return Scenario(
        "drifting_clocks",
        steps,
        description="per-node clock steps and drift, then back to true",
    )


#: Name → builder for every canonical scenario.
SCENARIO_BUILDERS: dict[str, Callable[..., Scenario]] = {
    "symmetric_split": symmetric_split,
    "minority_partition": minority_partition,
    "majority_partition": majority_partition,
    "rolling_partitions": rolling_partitions,
    "flapping_wan_link": flapping_wan_link,
    "asymmetric_geo": asymmetric_geo,
    "leader_churn_loop": leader_churn_loop,
    "correlated_stall_storm": correlated_stall_storm,
    "partition_rtt_spike": partition_rtt_spike,
    "elastic_grow": elastic_grow,
    "elastic_shrink": elastic_shrink,
    "elastic_replace_all": elastic_replace_all,
    "gray_leader_egress": gray_leader_egress,
    "one_way_isolation": one_way_isolation,
    "drifting_clocks": drifting_clocks,
}


def scenario_names() -> tuple[str, ...]:
    """The library's scenario names, in canonical order."""
    return tuple(SCENARIO_BUILDERS)


def build_scenario(name: str, names: Sequence[str], **overrides: object) -> Scenario:
    """Instantiate one library scenario for a concrete node list."""
    builder = SCENARIO_BUILDERS.get(name)
    if builder is None:
        raise ValueError(
            f"unknown scenario {name!r}; expected one of {sorted(SCENARIO_BUILDERS)}"
        )
    return builder(names, **overrides)


def build_all(names: Sequence[str]) -> list[Scenario]:
    """Every library scenario, instantiated for ``names``."""
    return [build_scenario(n, names) for n in scenario_names()]
