"""Declarative fault/network scenario engine.

One :class:`~repro.scenarios.scenario.Scenario` unifies the three
impairment layers — network weather (:class:`SetRtt`/:class:`SetLoss`),
connectivity (:class:`Partition`/:class:`Heal`/:class:`Flap`) and node
faults (:class:`Pause`/:class:`Crash`/:class:`Recover`/:class:`Churn`) —
into a single replayable timeline that installs onto a cluster the way
:class:`~repro.net.schedule.NetworkSchedule` does, emits a trace record
per applied step, and round-trips through plain dicts/JSON.

See :mod:`repro.scenarios.library` for the canonical scenario set and
:mod:`repro.scenarios.safety` for the partition safety checker.
"""

from repro.scenarios.library import (
    SCENARIO_BUILDERS,
    build_all,
    build_scenario,
    scenario_names,
)
from repro.scenarios.liveness import LivenessChecker, LivenessViolation
from repro.scenarios.safety import SafetyChecker
from repro.scenarios.scenario import Scenario, ScenarioRuntime
from repro.scenarios.steps import (
    LEADER_SELECTOR,
    STEP_TYPES,
    BlockLink,
    Churn,
    Crash,
    Flap,
    GrayLink,
    Heal,
    Partition,
    Pause,
    Recover,
    Repeat,
    SetClock,
    SetDuplicate,
    SetLoss,
    SetRtt,
    Step,
    step_from_dict,
)

__all__ = [
    "Scenario",
    "ScenarioRuntime",
    "SafetyChecker",
    "LivenessChecker",
    "LivenessViolation",
    "Step",
    "Repeat",
    "SetRtt",
    "SetLoss",
    "SetDuplicate",
    "Partition",
    "Heal",
    "Pause",
    "Crash",
    "Recover",
    "Flap",
    "BlockLink",
    "GrayLink",
    "SetClock",
    "Churn",
    "LEADER_SELECTOR",
    "STEP_TYPES",
    "step_from_dict",
    "SCENARIO_BUILDERS",
    "scenario_names",
    "build_scenario",
    "build_all",
]
