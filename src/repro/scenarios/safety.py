"""Raft safety monitoring across split/heal cycles.

The partition scenarios exercise exactly the histories where naive tuning
breaks Raft in the wild: leadership contested across a split, commit
pipelines cut mid-replication, nodes rejoining with stale state.
:class:`SafetyChecker` samples the live cluster on a fixed cadence and
checks, over the whole run:

* **election safety** — at most one ``become_leader`` per term, and no
  ``safety_violation_two_leaders`` trace record;
* **monotone commit** — a node's commit index never moves backwards
  within one incarnation (a crash legitimately resets the volatile commit
  index, so monotonicity restarts after each ``process_crashed``);
* **no committed-entry loss** — every ``(index, term)`` pair ever
  observed at or below a commit index stays in every node's log at that
  index for the rest of the run (committed entries are never overwritten).
  With log compaction enabled, a pair at or below a node's snapshot
  frontier counts as *retained via snapshot*: the entry's bytes are gone
  but its effect is inside the state-machine image, which is exactly what
  §7 of the Raft paper promises.  The frontier itself still carries a
  term, so a frontier whose term contradicts the committed pair at that
  index is a violation — a snapshot must never launder an overwrite.

Commit indices are sound under-approximations of "truly committed" even
on a deposed leader (it cannot advance commit without a majority), so the
sampled pairs are all genuinely committed entries — the check has no
false positives by construction.

Sampling alone has a blind spot: a violation whose entire window fits
*between* two samples — e.g. a node that silently flips into the leader
role of the current term for 100 ms — leaves no evidence at either
endpoint.  ``install(event_hooks=True)`` closes it by subscribing to the
cluster trace and re-checking the instantaneous "at most one live leader
per term" invariant (plus taking a full sample) at every term/role/fault
transition, so any double-leader window that coincides with *any* traced
cluster event is caught at the instant it exists.

With fallible storage the hooks additionally enforce **crash-recovery
durability** (the other half of §5.2's ack-after-sync contract): at every
``process_crashed`` the checker captures the node's *synced* durable view,
and at the matching ``disk_recover`` verifies the recovered node against
it — term and (same-term) vote never regress below their synced values, a
synced entry observed committed survives in the recovered log or under
its snapshot frontier, and a compacted log never recovers without a
covering snapshot image.
"""

from __future__ import annotations

from repro.cluster.builder import Cluster
from repro.raft.membership import quorums_overlap
from repro.storage.base import DurableView
from repro.raft.types import Role
from repro.sim.events import PRIORITY_CONTROL
from repro.sim.process import ProcessState
from repro.sim.trace_kinds import TRACE_KINDS
from repro.sim.tracing import TraceRecord

__all__ = ["SafetyChecker", "HOOK_KINDS"]

#: Trace kinds that mark a term/role/liveness transition somewhere in the
#: cluster — the moments the event-driven checker re-examines live state.
#: ``process_recovered`` is deliberately absent: the record is emitted
#: after the process is marked RUNNING but *before* ``on_recover`` resets
#: volatile state, so sampling there would pin the dead incarnation's
#: commit index onto the new one (a guaranteed false positive).
HOOK_KINDS: frozenset[str] = frozenset(
    {
        "become_leader",
        "step_down",
        "leader_observed",
        "election_start",
        "election_timeout",
        "quorum_lost",
        "process_paused",
        "process_resumed",
        "process_crashed",
        # Quorum arithmetic changes the instant a config entry commits or a
        # removed node is decommissioned — worth a full sample each.
        "config_commit",
        "process_stopped",
        # Emitted at the *end* of a fallible-storage recovery (volatile
        # state already reset — unlike process_recovered, see above), so a
        # full sample here is sound and the durability check runs on it.
        "disk_recover",
    }
)


class SafetyChecker:
    """Periodic safety sampler + end-of-run verifier for one cluster."""

    def __init__(self, cluster: Cluster, *, interval_ms: float = 250.0) -> None:
        if interval_ms <= 0.0:
            raise ValueError(f"interval_ms must be > 0, got {interval_ms!r}")
        self.cluster = cluster
        self.interval_ms = interval_ms
        #: Violations detected during sampling (monotonicity breaks).
        self.violations: list[str] = []
        #: index → term of a committed entry observed there.
        self._committed: dict[int, int] = {}
        #: node → (commit index, crash count) at the previous sample.
        self._last: dict[str, tuple[int, int]] = {}
        #: (term, frozenset of leaders) overlaps already reported.
        self._overlaps_seen: set[tuple[int, frozenset[str]]] = set()
        #: node → synced durable view captured at its latest crash.
        self._durable_at_crash: dict[str, DurableView] = {}
        self._installed = False
        self._hooked = False

    # ------------------------------------------------------------------ #
    # sampling
    # ------------------------------------------------------------------ #

    def install(self, *, event_hooks: bool = False) -> None:
        """Arm the periodic sampler (idempotent).

        Args:
            event_hooks: additionally subscribe to the cluster trace and
                run :meth:`check_now` on every term/role/fault transition
                (see :data:`HOOK_KINDS`) — catches violation windows
                shorter than ``interval_ms``.

        Raises:
            ValueError: if any hook kind is absent from the generated
                :data:`repro.sim.trace_kinds.TRACE_KINDS` registry — a
                typo'd hook kind would never match a record, silently
                shrinking event-hook coverage.
        """
        unknown = HOOK_KINDS - TRACE_KINDS
        if unknown:
            raise ValueError(
                f"SafetyChecker hook kind(s) {sorted(unknown)} are not in "
                "repro.sim.trace_kinds.TRACE_KINDS; a typo here silently "
                "disables the event-driven safety hooks (regenerate with: "
                "python -m tools.repolint src/ --write-trace-registry)"
            )
        if event_hooks and not self._hooked:
            self._hooked = True
            self.cluster.trace.subscribe(self._on_trace_record)
        if self._installed:
            return
        self._installed = True
        self.cluster.loop.schedule(
            self.interval_ms, self._tick, priority=PRIORITY_CONTROL
        )

    def _on_trace_record(self, rec: TraceRecord) -> None:
        kind = rec.kind
        if kind == "process_crashed":
            # The record is emitted before storage.on_crash() runs, so the
            # captured view is exactly the synced region — the pending tail
            # (legitimately lost) was never part of it.
            node = self.cluster.nodes.get(rec.node)
            if node is not None:
                self._durable_at_crash[rec.node] = node.storage.durable_view()
        elif kind == "disk_recover":
            self._check_durability(rec.node)
        if kind in HOOK_KINDS:
            self.check_now()

    def _check_durability(self, name: str) -> None:
        """Crash-recovery durability: what storage had synced when the node
        crashed must be reproduced by the recovery that follows —
        ack-after-sync is only sound if synced state is actually stable
        across the crash."""
        view = self._durable_at_crash.get(name)
        node = self.cluster.nodes.get(name)
        if view is None or node is None:
            return
        now = self.cluster.loop.now
        if node.current_term < view.term:
            self.violations.append(
                f"t={now:g}: {name} recovered into term {node.current_term} "
                f"below its synced term {view.term}"
            )
        elif (
            node.current_term == view.term
            and view.voted_for is not None
            and node.voted_for != view.voted_for
        ):
            self.violations.append(
                f"t={now:g}: {name} recovered with vote {node.voted_for!r} in "
                f"term {view.term} but had synced a vote for {view.voted_for!r}"
            )
        log = node.log
        snap_index = (
            node.snapshot.last_included_index if node.snapshot is not None else 0
        )
        if log.last_included_index > 0 and snap_index < log.last_included_index:
            self.violations.append(
                f"t={now:g}: {name} recovered a compacted log (frontier "
                f"{log.last_included_index}) without a covering snapshot "
                f"(snapshot index {snap_index})"
            )
        for index in sorted(view.entry_terms):
            term = view.entry_terms[index]
            if self._committed.get(index) != term:
                continue  # never observed committed: losing it is legal
            if index <= log.last_included_index:
                continue  # retained via snapshot frontier
            if index <= log.last_index and log.term_at(index) == term:
                continue
            self.violations.append(
                f"t={now:g}: {name} lost synced committed entry "
                f"(index {index}, term {term}) across recovery"
            )

    def check_now(self) -> None:
        """Event-driven check: instantaneous leader overlap + a full sample."""
        now = self.cluster.loop.now
        by_term: dict[int, list[str]] = {}
        for node in self.cluster.nodes.values():
            if node.state is ProcessState.RUNNING and node.role is Role.LEADER:
                by_term.setdefault(node.current_term, []).append(node.name)
        for term, names in by_term.items():
            if len(names) > 1:
                key = (term, frozenset(names))
                if key not in self._overlaps_seen:
                    self._overlaps_seen.add(key)
                    self.violations.append(
                        f"t={now:g}: {len(names)} live leaders in term {term} "
                        f"({sorted(names)})"
                    )
        self.sample()

    def _crash_counts(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for rec in self.cluster.trace.of_kind("process_crashed"):
            counts[rec.node] = counts.get(rec.node, 0) + 1
        return counts

    def _tick(self) -> None:
        self.sample()
        self.cluster.loop.schedule(
            self.interval_ms, self._tick, priority=PRIORITY_CONTROL
        )

    def sample(self) -> None:
        """Record one safety observation (also callable directly by tests)."""
        crashes = self._crash_counts()
        now = self.cluster.loop.now
        for name, node in self.cluster.nodes.items():
            if node.state is ProcessState.CRASHED:
                # A crashed node's volatile state is limbo: commit_index
                # still shows the pre-crash value and only resets at
                # recovery, so sampling it would pin a stale high-water
                # mark onto the post-recovery incarnation.
                continue
            commit = node.commit_index
            incarnation = crashes.get(name, 0)
            prev = self._last.get(name)
            if prev is not None:
                prev_commit, prev_incarnation = prev
                if incarnation == prev_incarnation and commit < prev_commit:
                    self.violations.append(
                        f"t={now:g}: commit index of {name} moved backwards "
                        f"({prev_commit} -> {commit}) without a crash"
                    )
            # Record every index the commit advanced over since the last
            # sample (not just the endpoint): an entry committed and then
            # lost *between* samples must still be caught.  After a crash
            # the commit restarts at 0 (or the snapshot index) and the
            # prefix is re-recorded — harmless, and re-checking it against
            # earlier terms is free extra coverage.
            start = prev[0] if prev is not None and prev[1] == incarnation else 0
            self._last[name] = (commit, incarnation)
            log = node.log
            frontier = log.last_included_index
            lo = min(start, commit)
            if frontier > 0:
                # Entries below the frontier are retained via snapshot and
                # have no individually readable term; the frontier entry
                # itself still does, so per-index recording starts there.
                # (The frontier term is cross-checked against the committed
                # map below via the same term_at read.)
                lo = max(lo, frontier - 1)
            for index in range(lo + 1, commit + 1):
                term = log.term_at(index)
                seen = self._committed.get(index)
                if seen is None:
                    self._committed[index] = term
                elif seen != term:
                    self.violations.append(
                        f"t={now:g}: index {index} committed with term {term} "
                        f"on {name} but term {seen} was committed there earlier"
                    )

    # ------------------------------------------------------------------ #
    # verification
    # ------------------------------------------------------------------ #

    def verify(self) -> list[str]:
        """All violations over the run (empty list = every property held)."""
        self.sample()  # capture the final state too
        problems = list(self.violations)

        by_term: dict[int, set[str]] = {}
        for rec in self.cluster.trace.of_kind("become_leader"):
            by_term.setdefault(rec.get("term"), set()).add(rec.node)
        for term, nodes in sorted(by_term.items()):
            if len(nodes) > 1:
                problems.append(
                    f"election safety: term {term} elected {sorted(nodes)}"
                )
        for rec in self.cluster.trace.of_kind("safety_violation_two_leaders"):
            problems.append(
                f"t={rec.time:g}: two leaders observed in term {rec.get('term')} "
                f"({rec.node} vs {rec.get('other')})"
            )

        for name, node in self.cluster.nodes.items():
            log = node.log
            frontier = log.last_included_index
            for index, term in self._committed.items():
                if index > node.commit_index:
                    continue
                if index < frontier:
                    # Retained via snapshot: the frontier covers it, and a
                    # frontier is only ever taken over applied (committed)
                    # state, so the pair is preserved by construction.
                    continue
                held = log.term_at(index)
                if held != term:
                    what = (
                        "snapshot frontier contradicts committed entry"
                        if index == frontier
                        else "committed entry lost"
                    )
                    problems.append(
                        f"{what}: {name} holds term {held} at index {index}, "
                        f"but term {term} was committed there"
                    )

        problems.extend(self._verify_membership())
        return problems

    def _verify_membership(self) -> list[str]:
        """Reconfiguration invariants, checked from ``config_commit`` records.

        * **config agreement** — every node that commits the config entry
          at an index reports the same resulting voter set;
        * **one-at-a-time** — adjacent configurations differ by at most one
          voter (the structural precondition of the single-change protocol);
        * **quorum overlap** — any majority of the old voters intersects
          any majority of the new (what actually transfers safety across
          the change);
        * **no orphaned committed entry** — every entry ever observed
          committed is still held (in log or via snapshot) by a majority of
          the *final* committed configuration's voters, i.e. removing the
          replicas that acked it never stranded it on departed nodes.
        """
        problems: list[str] = []
        by_index: dict[int, TraceRecord] = {}
        for rec in self.cluster.trace.of_kind("config_commit"):
            index = rec.get("index")
            first = by_index.get(index)
            if first is None:
                by_index[index] = rec
            elif sorted(first.get("voters")) != sorted(rec.get("voters")) or sorted(
                first.get("learners")
            ) != sorted(rec.get("learners")):
                problems.append(
                    f"config divergence at index {index}: {first.node} committed "
                    f"{sorted(first.get('voters'))} but {rec.node} committed "
                    f"{sorted(rec.get('voters'))}"
                )
        if not by_index:
            return problems

        for index in sorted(by_index):
            rec = by_index[index]
            old = set(rec.get("prev_voters") or ())
            new = set(rec.get("voters") or ())
            if len(old ^ new) > 1:
                problems.append(
                    f"config change at index {index} moved more than one voter: "
                    f"{sorted(old)} -> {sorted(new)}"
                )
            if not quorums_overlap(old, new):
                problems.append(
                    f"config change at index {index} breaks quorum overlap: "
                    f"{sorted(old)} -> {sorted(new)}"
                )

        final = by_index[max(by_index)]
        final_voters = [
            v for v in final.get("voters", ()) if v in self.cluster.nodes
        ]
        if not final_voters:
            return problems
        quorum = len(final_voters) // 2 + 1
        for index, term in sorted(self._committed.items()):
            holders = 0
            for name in final_voters:
                log = self.cluster.nodes[name].log
                if index <= log.last_included_index:
                    holders += 1  # retained via snapshot
                elif index <= log.last_index and log.term_at(index) == term:
                    holders += 1
            if holders < quorum:
                problems.append(
                    f"orphaned committed entry: index {index} (term {term}) held "
                    f"by {holders}/{len(final_voters)} final voters "
                    f"(quorum {quorum}) — stranded on removed nodes"
                )
        return problems

    def assert_safe(self) -> None:
        """Raise ``AssertionError`` listing every violated property."""
        problems = self.verify()
        assert not problems, "safety violations:\n  " + "\n  ".join(problems)
