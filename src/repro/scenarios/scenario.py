"""The :class:`Scenario`: a named, replayable fault/network timeline.

A scenario is to faults what :class:`~repro.net.schedule.NetworkSchedule`
is to network weather — a list of timed, typed steps that *installs* onto
a cluster as control-priority events and holds no run state, so one
scenario object can drive any number of independent runs.  Unlike the
schedule it spans all three layers (weather, connectivity, node faults)
and is pure data: ``Scenario.from_dict``/``to_dict`` (and the JSON
convenience wrappers) round-trip the whole timeline, so a scenario can be
checked into a repo as a ``.json`` file and replayed bit-for-bit.

Every applied step occurrence emits one ``scenario_step`` trace record
(node ``"scenario"``) carrying the scenario name, step kind, occurrence
index and the step's resolved effect — the ground truth experiment
reports overlay on their measured series.
"""

from __future__ import annotations

import json
from typing import Any, Callable

from repro.cluster.builder import Cluster
from repro.scenarios.steps import LEADER_SELECTOR, Step, step_from_dict
from repro.sim.events import PRIORITY_CONTROL
from repro.sim.process import Process

__all__ = ["Scenario", "ScenarioRuntime"]


class ScenarioRuntime:
    """Resolution context handed to steps at apply time."""

    __slots__ = (
        "cluster",
        "network",
        "loop",
        "trace",
        "membership_enabled",
        "_flap_tokens",
        "_link_tokens",
    )

    def __init__(self, cluster: Cluster, *, membership_enabled: bool = True) -> None:
        self.cluster = cluster
        self.network = cluster.network
        self.loop = cluster.loop
        self.trace = cluster.trace
        #: When ``False`` the membership steps (AddNode/RemoveNode/
        #: ReplaceNode) are traced no-ops — how a replayed fuzz timeline
        #: with its membership knob off stays bit-identical.
        self.membership_enabled = membership_enabled
        self._flap_tokens: dict[tuple[str, str], int] = {}
        self._link_tokens: dict[tuple[str, str, str], int] = {}

    def next_flap_token(self, a: str, b: str) -> int:
        """Start a new down-window on the ``a``↔``b`` link; returns its token.

        Only the restore callback holding the *latest* token may bring the
        link back up — a stale timer from an earlier, overlapping flap must
        not cut a newer down-window short (same guard as ``pause_for``).
        """
        key = (a, b) if a <= b else (b, a)
        token = self._flap_tokens.get(key, 0) + 1
        self._flap_tokens[key] = token
        return token

    def flap_token(self, a: str, b: str) -> int:
        key = (a, b) if a <= b else (b, a)
        return self._flap_tokens.get(key, 0)

    def next_link_token(self, family: str, src: str, dst: str) -> int:
        """Directed-link cousin of :meth:`next_flap_token`: start a new
        fault window of ``family`` (``"block"`` / ``"gray"``) on the
        *ordered* ``src → dst`` link.  Direction-aware keys matter — a
        window on ``a → b`` must not invalidate (or be cut short by) one
        on ``b → a``; separate families keep a block's restore from
        no-opping a gray window's and vice versa."""
        key = (family, src, dst)
        token = self._link_tokens.get(key, 0) + 1
        self._link_tokens[key] = token
        return token

    def link_token(self, family: str, src: str, dst: str) -> int:
        return self._link_tokens.get((family, src, dst), 0)

    def resolve(self, selector: str) -> str | None:
        """Selector → concrete node name (``None`` if unresolvable now)."""
        if selector == LEADER_SELECTOR:
            return self.cluster.leader()
        return selector if selector in self.cluster.nodes else None

    def process(self, selector: str) -> Process | None:
        name = self.resolve(selector)
        return self.cluster.nodes.get(name) if name is not None else None


class _StepApplier:
    """Bound callback for one step occurrence (no late-binding closures)."""

    __slots__ = ("_scenario", "_step", "_rt", "_occurrence", "_observer")

    def __init__(
        self,
        scenario: "Scenario",
        step: Step,
        rt: ScenarioRuntime,
        occurrence: int,
        observer: Callable[[Step], None] | None,
    ) -> None:
        self._scenario = scenario
        self._step = step
        self._rt = rt
        self._occurrence = occurrence
        self._observer = observer

    def __call__(self) -> None:
        rt = self._rt
        fields = self._step.apply(rt, self._occurrence)
        rt.trace.record(
            rt.loop.now,
            "scenario",
            "scenario_step",
            scenario=self._scenario.name,
            step=self._step.kind,
            occurrence=self._occurrence,
            **fields,
        )
        if self._observer is not None:
            self._observer(self._step)


class Scenario:
    """A named sequence of typed steps (see :mod:`repro.scenarios.steps`).

    Args:
        name: identifier used in traces and reports.
        steps: the timeline; order is irrelevant (times are absolute).
        description: one-line human summary.
    """

    def __init__(
        self, name: str, steps: list[Step] | tuple[Step, ...], *, description: str = ""
    ) -> None:
        if not name:
            raise ValueError("scenario needs a non-empty name")
        self.name = name
        self.steps: tuple[Step, ...] = tuple(steps)
        self.description = description

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Scenario({self.name!r}, {len(self.steps)} steps, end={self.end_ms:g} ms)"

    @property
    def end_ms(self) -> float:
        """Time the last step occurrence has fully played out."""
        return max((s.extent_ms for s in self.steps), default=0.0)

    def with_steps(
        self, steps: list[Step] | tuple[Step, ...], *, name: str | None = None
    ) -> "Scenario":
        """A copy of this scenario with a different timeline.

        The mutation primitive the fuzz shrinker is built on: removing or
        simplifying steps always goes through here, so the result carries
        the original name/description and re-runs the constructor checks.
        """
        return Scenario(
            self.name if name is None else name,
            steps,
            description=self.description,
        )

    def referenced_nodes(self) -> set[str]:
        """Concrete node names the timeline mentions (selectors excluded)."""
        names: set[str] = set()
        for step in self.steps:
            if step._DYNAMIC_NODES:
                # Membership steps may legally reference nodes that do not
                # exist yet (spawned mid-run) or that an earlier step adds.
                continue
            for field in ("node", "a", "b"):
                value = getattr(step, field, None)
                if isinstance(value, str):
                    names.add(value)
            pair = getattr(step, "pair", None)
            if pair is not None:
                names.update(pair)
            for group in getattr(step, "groups", ()) or ():
                names.update(group)
            names.update(getattr(step, "nodes", ()) or ())
        return {n for n in names if not n.startswith("@")}

    def validate_against(self, known_names: set[str]) -> None:
        """Raise if the timeline names nodes the cluster does not have."""
        unknown = self.referenced_nodes() - known_names
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} references unknown nodes {sorted(unknown)}"
            )

    # ------------------------------------------------------------------ #
    # installation
    # ------------------------------------------------------------------ #

    def install(
        self,
        cluster: Cluster,
        *,
        on_apply: Callable[[Step], None] | None = None,
        membership_enabled: bool = True,
    ) -> None:
        """Register every step occurrence as a future control event.

        Args:
            cluster: the wired cluster (install before or at time zero of
                the timeline; occurrences in the past are rejected by the
                loop).
            on_apply: optional observer invoked after each occurrence.
            membership_enabled: pass ``False`` to turn membership steps
                into traced no-ops (fuzz replays with the knob off).
        """
        self.validate_against(set(cluster.names))
        rt = ScenarioRuntime(cluster, membership_enabled=membership_enabled)
        for step in self.steps:
            for occurrence, t in enumerate(step.occurrence_times()):
                cluster.loop.schedule_at(
                    t,
                    _StepApplier(self, step, rt, occurrence, on_apply),
                    priority=PRIORITY_CONTROL,
                )

    # ------------------------------------------------------------------ #
    # serialization
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "steps": [s.to_dict() for s in self.steps],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "Scenario":
        unknown = set(data) - {"name", "description", "steps"}
        if unknown:
            raise ValueError(f"scenario dict got unknown keys {sorted(unknown)}")
        if "name" not in data or "steps" not in data:
            raise ValueError("scenario dict needs 'name' and 'steps'")
        return cls(
            data["name"],
            [step_from_dict(s) for s in data["steps"]],
            description=data.get("description", ""),
        )

    def to_json(self, *, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        return cls.from_dict(json.loads(text))
