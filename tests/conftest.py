"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.cluster.builder import Cluster, ClusterConfig, build_cluster
from repro.dynatune.config import DynatuneConfig
from repro.dynatune.policy import DynatunePolicy, StaticPolicy
from repro.net.network import Network
from repro.sim.loop import EventLoop
from repro.sim.rng import RngRegistry
from repro.sim.tracing import TraceLog


@pytest.fixture
def loop() -> EventLoop:
    return EventLoop()


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(seed=1234)


@pytest.fixture
def trace() -> TraceLog:
    return TraceLog()


@pytest.fixture
def network(loop: EventLoop, rngs: RngRegistry) -> Network:
    return Network(loop, rngs)


def make_raft_cluster(
    n: int = 3,
    *,
    seed: int = 5,
    rtt_ms: float = 20.0,
    loss: float = 0.0,
    **config_kwargs,
) -> Cluster:
    """A small static-policy Raft cluster for protocol tests.

    Fast RTT keeps elections quick; tests that need Dynatune use
    :func:`make_dynatune_cluster` instead.
    """
    cluster = build_cluster(
        ClusterConfig(n_nodes=n, seed=seed, rtt_ms=rtt_ms, loss=loss, **config_kwargs),
        lambda name: StaticPolicy(election_timeout_ms=300.0, heartbeat_interval_ms=50.0),
    )
    cluster.start()
    return cluster


def make_dynatune_cluster(
    n: int = 5,
    *,
    seed: int = 5,
    rtt_ms: float = 50.0,
    loss: float = 0.0,
    dynatune: DynatuneConfig | None = None,
    **config_kwargs,
) -> Cluster:
    cfg = dynatune if dynatune is not None else DynatuneConfig()
    cluster = build_cluster(
        ClusterConfig(n_nodes=n, seed=seed, rtt_ms=rtt_ms, loss=loss, **config_kwargs),
        lambda name: DynatunePolicy(cfg),
    )
    cluster.start()
    return cluster


@pytest.fixture
def raft_cluster() -> Cluster:
    return make_raft_cluster()


@pytest.fixture
def dynatune_cluster() -> Cluster:
    return make_dynatune_cluster()
