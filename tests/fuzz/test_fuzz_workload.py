"""Workload driver: history recording, client sequentiality, determinism."""

from repro.fuzz.history import OpHistory
from repro.fuzz.linearizability import check_history
from repro.fuzz.workload import WorkloadConfig, WorkloadDriver
from tests.conftest import make_raft_cluster


def drive(seed=9, stop_ms=8_000.0, run_ms=12_000.0, **cfg_kwargs):
    cluster = make_raft_cluster(5, seed=seed)
    history = OpHistory()
    driver = WorkloadDriver(
        cluster, WorkloadConfig(**cfg_kwargs), history, stop_ms=stop_ms
    )
    driver.install()
    cluster.run_until(run_ms)
    return cluster, driver, history


def test_healthy_cluster_history_is_rich_and_linearizable():
    _, driver, history = drive()
    ops = history.ops()
    assert driver.ops_issued == len(ops) > 30
    assert len(history.completed_ops()) > 0.8 * len(ops)
    assert check_history(ops)


def test_clients_are_sequential():
    _, _, history = drive()
    by_client = {}
    for o in history.ops():
        by_client.setdefault(o.client, []).append(o)
    for ops in by_client.values():
        ops.sort(key=lambda o: o.invoke_ms)
        for prev, nxt in zip(ops, ops[1:]):
            if prev.completed:
                # A client never invokes its next op before the previous
                # one settled (abandoned ops may stay open, but the next
                # invocation still waits for the abandon timeout).
                assert nxt.invoke_ms >= prev.return_ms


def test_put_values_are_unique():
    _, _, history = drive()
    values = [o.value for o in history.ops() if o.op == "put"]
    assert len(values) == len(set(values))


def test_workload_is_deterministic():
    def fingerprint():
        _, _, history = drive()
        return [
            (o.client, o.req_id, o.op, o.key, o.value, o.invoke_ms, o.return_ms)
            for o in history.ops()
        ]

    assert fingerprint() == fingerprint()


def test_stop_ms_bounds_issuing():
    _, _, history = drive(stop_ms=2_000.0)
    assert all(o.invoke_ms <= 2_000.0 for o in history.ops())


def test_max_ops_per_client_caps_issuing():
    _, driver, history = drive(max_ops_per_client=3, stop_ms=50_000.0, run_ms=60_000.0)
    by_client = {}
    for o in history.ops():
        by_client[o.client] = by_client.get(o.client, 0) + 1
    assert by_client and all(v <= 3 for v in by_client.values())
