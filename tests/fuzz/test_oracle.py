"""The fuzz trial oracle: clean runs stay clean, injected bugs get caught."""

import dataclasses

import pytest

from repro.fuzz.bugs import BUG_KINDS, install_bug
from repro.fuzz.generator import GenConfig, ScenarioGen
from repro.fuzz.oracle import FuzzTrialConfig, run_trial
from repro.scenarios.scenario import Scenario

#: A fast trial shape shared by the tests here.
QUICK = FuzzTrialConfig(min_run_ms=9_000.0, settle_ms=4_000.0)


def test_empty_scenario_trial_is_clean_and_busy():
    result = run_trial(QUICK, Scenario("noop", []))
    assert result.violations == ()
    assert not result.lin_undecided
    assert result.n_completed > 20
    assert result.first_leader_ms is not None
    assert result.duration_ms == QUICK.min_run_ms


def test_generated_scenario_trial_is_clean():
    scenario = ScenarioGen(GenConfig()).generate(5)
    result = run_trial(dataclasses.replace(QUICK, seed=123), scenario)
    assert result.violations == ()
    assert result.steps_applied >= 1


def test_trial_is_deterministic():
    scenario = ScenarioGen(GenConfig()).generate(7)
    cfg = dataclasses.replace(QUICK, seed=99, system="dynatune")
    assert run_trial(cfg, scenario) == run_trial(cfg, scenario)


def test_commit_rewrite_bug_is_caught():
    cfg = dataclasses.replace(QUICK, inject="commit_rewrite", inject_at_ms=6_000.0)
    result = run_trial(cfg, Scenario("noop", []))
    assert result.violations
    assert any("committed" in v for v in result.violations)


def test_stale_apply_bug_is_caught_by_linearizability():
    # Seed chosen so the dropped put's key is read again afterwards.
    cfg = dataclasses.replace(QUICK, inject="stale_apply", seed=3)
    result = run_trial(cfg, Scenario("noop", []))
    assert any(v.startswith("linearizability:") for v in result.violations)


def test_bug_free_inject_field_roundtrips():
    cfg = dataclasses.replace(QUICK, inject="stale_apply", seed=1)
    back = FuzzTrialConfig.from_dict(cfg.to_dict())
    assert back == cfg


def test_unknown_bug_kind_rejected():
    from tests.conftest import make_raft_cluster

    cluster = make_raft_cluster(3)
    with pytest.raises(ValueError):
        install_bug(cluster, "segfault", 1_000.0)
    assert "segfault" not in BUG_KINDS
