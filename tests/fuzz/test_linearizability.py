"""Linearizability checker unit tests on handcrafted histories."""

import pytest

from repro.fuzz.history import KVOp
from repro.fuzz.linearizability import check_history, check_key_history


def op(client, rid, kind, key, *, inv, ret=None, value=None, result=None):
    return KVOp(
        client=client,
        req_id=rid,
        op=kind,
        key=key,
        value=value,
        invoke_ms=inv,
        return_ms=ret,
        result=result,
    )


def test_empty_history_is_linearizable():
    assert check_history([])


def test_sequential_put_get_ok():
    ops = [
        op("a", 0, "put", "k", inv=0, ret=10, value="v1", result="v1"),
        op("a", 1, "get", "k", inv=20, ret=30, result="v1"),
    ]
    assert check_history(ops)


def test_stale_read_is_flagged():
    ops = [
        op("a", 0, "put", "k", inv=0, ret=10, value="v1", result="v1"),
        op("a", 1, "put", "k", inv=20, ret=30, value="v2", result="v2"),
        op("b", 0, "get", "k", inv=40, ret=50, result="v1"),  # overwritten value
    ]
    result = check_history(ops)
    assert not result.ok and result.decided
    assert result.key == "k"


def test_lost_write_is_flagged():
    ops = [
        op("a", 0, "put", "k", inv=0, ret=10, value="v1", result="v1"),
        op("b", 0, "get", "k", inv=20, ret=30, result=None),  # put vanished
    ]
    assert not check_history(ops).ok


def test_concurrent_ops_allow_either_order():
    # put and get overlap: the get may see the old or the new value.
    for seen in (None, "v1"):
        ops = [
            op("a", 0, "put", "k", inv=0, ret=100, value="v1", result="v1"),
            op("b", 0, "get", "k", inv=10, ret=90, result=seen),
        ]
        assert check_history(ops), f"get seeing {seen!r} must be legal"


def test_open_op_may_have_applied():
    # The put never returned, but a later get observed its value: legal
    # (the response was lost, not the command).
    ops = [
        op("a", 0, "put", "k", inv=0, value="v1"),
        op("b", 0, "get", "k", inv=50, ret=60, result="v1"),
    ]
    assert check_history(ops)


def test_open_op_may_never_have_applied():
    ops = [
        op("a", 0, "put", "k", inv=0, value="v1"),
        op("b", 0, "get", "k", inv=50, ret=60, result=None),
    ]
    assert check_history(ops)


def test_open_op_cannot_apply_before_invocation():
    # get completed before the open put was even invoked, yet saw its value.
    ops = [
        op("b", 0, "get", "k", inv=0, ret=10, result="v1"),
        op("a", 0, "put", "k", inv=20, value="v1"),
    ]
    assert not check_history(ops).ok


def test_delete_returns_removed_value():
    ops = [
        op("a", 0, "put", "k", inv=0, ret=10, value="v1", result="v1"),
        op("a", 1, "delete", "k", inv=20, ret=30, result="v1"),
        op("a", 2, "get", "k", inv=40, ret=50, result=None),
    ]
    assert check_history(ops)
    bad = [
        op("a", 0, "put", "k", inv=0, ret=10, value="v1", result="v1"),
        op("a", 1, "delete", "k", inv=20, ret=30, result=None),  # wrong witness
    ]
    assert not check_history(bad).ok


def test_keys_are_checked_independently():
    ops = [
        op("a", 0, "put", "k1", inv=0, ret=10, value="v1", result="v1"),
        op("a", 1, "get", "k2", inv=20, ret=30, result=None),  # other key: fresh
        op("b", 0, "put", "k2", inv=40, ret=50, value="w", result="w"),
        op("b", 1, "get", "k2", inv=60, ret=70, result="v1"),  # k1's value on k2
    ]
    result = check_history(ops)
    assert not result.ok
    assert result.key == "k2"


def test_real_time_order_is_enforced():
    # Non-overlapping puts, then a get returning the *first* value: the
    # second put completed strictly before the get began, so it must be
    # ordered before the get.
    ops = [
        op("a", 0, "put", "k", inv=0, ret=10, value="v1", result="v1"),
        op("b", 0, "put", "k", inv=30, ret=40, value="v2", result="v2"),
        op("a", 1, "get", "k", inv=60, ret=70, result="v1"),
    ]
    assert not check_history(ops).ok


def test_budget_exhaustion_reports_undecided():
    # Many concurrent open puts explode the search; a tiny budget must
    # surface as undecided, never as a silent pass/fail.
    ops = [op("c%d" % i, 0, "put", "k", inv=0, value=f"v{i}") for i in range(12)]
    ops.append(op("r", 0, "get", "k", inv=1, ret=2, result="nope"))
    result = check_history(ops, budget=5)
    assert not result.decided
    assert "budget" in result.reason


def test_check_key_history_counts_configs():
    ops = [
        op("a", 0, "put", "k", inv=0, ret=10, value="v1", result="v1"),
        op("a", 1, "get", "k", inv=20, ret=30, result="v1"),
    ]
    ok, decided, explored = check_key_history(ops)
    assert ok and decided and explored >= 1


def test_unknown_op_kind_raises():
    with pytest.raises(ValueError):
        check_history([op("a", 0, "increment", "k", inv=0, ret=1)])
